"""The ahead-of-time execution engine: Wasm -> Python source.

WaTZ executes AOT-compiled Wasm (paper §III, "Execution modes"): WAMR's
LLVM back end lowers bytecode to ARM64 before loading, and the runtime only
needs executable pages. Our analog lowers each Wasm function to Python
source once at instantiation time, removing the per-instruction dispatch of
the interpreter; the measured speed-up is the subject of the A1 ablation
(the paper reports ~28x).

Compilation strategy:

* the operand stack is resolved statically; the value at stack height
  ``h`` canonically lives in the Python local ``s{h}``;
* **expression fusion**: pure, non-trapping operations (constants, local
  and global reads, integer/float arithmetic, comparisons, conversions)
  are deferred as expression strings and fused into the statement that
  consumes them — a store, a local write, a call argument, a branch
  condition — so a Wasm address computation or FP chain becomes one
  Python expression instead of a statement per instruction. Deferred
  expressions are *spilled* into their canonical ``s{h}`` variables at
  every point where their value could change (writes to the locals,
  globals or memory they read) and at all control-flow boundaries.
  Trapping operations (loads, stores, integer division, float-to-int
  truncation, indirect calls) are never deferred, preserving the spec's
  trap ordering;
* structured control lowers to ``while True:`` capsules; a branch sets the
  target label id in ``_br`` and breaks, and every construct's epilogue
  either consumes the branch or keeps unwinding;
* branches to the function frame compile to direct ``return`` statements;
* dead code after an unconditional transfer is skipped entirely.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import TrapError, WasmError
from repro.wasm import aotopt
from repro.wasm import numerics as num
from repro.wasm import opcodes as op
from repro.wasm.interpreter import _fdiv
from repro.wasm.module import Function, Module
from repro.wasm.runtime import (Engine, Instance, Memory, S_F32, S_F64, S_I16,
                                S_I32, S_I64)
from repro.wasm.types import ValType

_MASK32 = "0xFFFFFFFF"
_MASK64 = "0xFFFFFFFFFFFFFFFF"

#: Expressions larger than this many fused operations are spilled to a
#: variable; keeps generated lines (and CPython's expression stack) sane.
_MAX_FUSED_OPS = 16

# ---------------------------------------------------------------------------
# Optimisation-level knob (mirrors repro.crypto.ec.use_fast_paths).
#
# Level 0 is the original lowering, kept byte-identical as the reference
# codegen; level 1 adds the value-range / purity passes (mask elimination,
# signed-compare elision, loop-invariant code motion); level 2 — the default
# — additionally emits typed-memory-plane accesses and loop versioning with
# hoisted bounds checks. The interpreter remains the semantic oracle at
# every level: results and trap type/ordering/messages are identical.
# ---------------------------------------------------------------------------

#: The opt level used when an :class:`AotCompiler` is built without one.
DEFAULT_OPT_LEVEL = 2

_OPT_LEVELS = (0, 1, 2)


def default_opt_level() -> int:
    """The process-wide default AOT optimisation level."""
    return DEFAULT_OPT_LEVEL


def set_default_opt_level(level: int) -> int:
    """Set the default opt level; returns the previous one."""
    global DEFAULT_OPT_LEVEL
    if level not in _OPT_LEVELS:
        raise WasmError(f"unknown aot opt level: {level!r}")
    previous = DEFAULT_OPT_LEVEL
    DEFAULT_OPT_LEVEL = level
    return previous


@contextmanager
def reference_codegen() -> Iterator[None]:
    """Force the reference (opt level 0) lowering within the block.

    The differential tests run every program through this and through the
    default level and require identical results and traps.
    """
    previous = set_default_opt_level(0)
    try:
        yield
    finally:
        set_default_opt_level(previous)


def _trap(message: str):
    raise TrapError(message)


# Pure (non-trapping) binary operators: opcode -> template over {a}, {b}.
_BINOPS: Dict[int, str] = {
    op.I32_ADD: "({a} + {b}) & " + _MASK32,
    op.I32_SUB: "({a} - {b}) & " + _MASK32,
    op.I32_MUL: "({a} * {b}) & " + _MASK32,
    op.I32_AND: "{a} & {b}",
    op.I32_OR: "{a} | {b}",
    op.I32_XOR: "{a} ^ {b}",
    op.I32_SHL: "({a} << ({b} % 32)) & " + _MASK32,
    op.I32_SHR_U: "{a} >> ({b} % 32)",
    op.I32_SHR_S: "_shrs({a}, {b}, 32)",
    op.I32_ROTL: "_rotl({a}, {b}, 32)",
    op.I32_ROTR: "_rotr({a}, {b}, 32)",
    op.I64_ADD: "({a} + {b}) & " + _MASK64,
    op.I64_SUB: "({a} - {b}) & " + _MASK64,
    op.I64_MUL: "({a} * {b}) & " + _MASK64,
    op.I64_AND: "{a} & {b}",
    op.I64_OR: "{a} | {b}",
    op.I64_XOR: "{a} ^ {b}",
    op.I64_SHL: "({a} << ({b} % 64)) & " + _MASK64,
    op.I64_SHR_U: "{a} >> ({b} % 64)",
    op.I64_SHR_S: "_shrs({a}, {b}, 64)",
    op.I64_ROTL: "_rotl({a}, {b}, 64)",
    op.I64_ROTR: "_rotr({a}, {b}, 64)",
    op.F64_ADD: "{a} + {b}",
    op.F64_SUB: "{a} - {b}",
    op.F64_MUL: "{a} * {b}",
    op.F64_DIV: "_fdiv({a}, {b})",
    op.F64_MIN: "_fmin({a}, {b})",
    op.F64_MAX: "_fmax({a}, {b})",
    op.F64_COPYSIGN: "_copysign({a}, {b})",
    op.F32_ADD: "_f32r({a} + {b})",
    op.F32_SUB: "_f32r({a} - {b})",
    op.F32_MUL: "_f32r({a} * {b})",
    op.F32_DIV: "_f32r(_fdiv({a}, {b}))",
    op.F32_MIN: "_fmin({a}, {b})",
    op.F32_MAX: "_fmax({a}, {b})",
    op.F32_COPYSIGN: "_copysign({a}, {b})",
}

# Trapping binary operators (division family): always materialised.
_TRAPPING_BINOPS: Dict[int, str] = {
    op.I32_DIV_S: "_divs({a}, {b}, 32)",
    op.I32_DIV_U: "_divu({a}, {b})",
    op.I32_REM_S: "_rems({a}, {b}, 32)",
    op.I32_REM_U: "_remu({a}, {b})",
    op.I64_DIV_S: "_divs({a}, {b}, 64)",
    op.I64_DIV_U: "_divu({a}, {b})",
    op.I64_REM_S: "_rems({a}, {b}, 64)",
    op.I64_REM_U: "_remu({a}, {b})",
}

# Comparison operators producing i32 booleans (pure).
_RELOPS: Dict[int, str] = {
    op.I32_EQ: "{a} == {b}",
    op.I32_NE: "{a} != {b}",
    op.I32_LT_S: "_s32({a}) < _s32({b})",
    op.I32_LT_U: "{a} < {b}",
    op.I32_GT_S: "_s32({a}) > _s32({b})",
    op.I32_GT_U: "{a} > {b}",
    op.I32_LE_S: "_s32({a}) <= _s32({b})",
    op.I32_LE_U: "{a} <= {b}",
    op.I32_GE_S: "_s32({a}) >= _s32({b})",
    op.I32_GE_U: "{a} >= {b}",
    op.I64_EQ: "{a} == {b}",
    op.I64_NE: "{a} != {b}",
    op.I64_LT_S: "_s64({a}) < _s64({b})",
    op.I64_LT_U: "{a} < {b}",
    op.I64_GT_S: "_s64({a}) > _s64({b})",
    op.I64_GT_U: "{a} > {b}",
    op.I64_LE_S: "_s64({a}) <= _s64({b})",
    op.I64_LE_U: "{a} <= {b}",
    op.I64_GE_S: "_s64({a}) >= _s64({b})",
    op.I64_GE_U: "{a} >= {b}",
    op.F32_EQ: "{a} == {b}",
    op.F64_EQ: "{a} == {b}",
    op.F32_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F64_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F32_LT: "{a} < {b}",
    op.F64_LT: "{a} < {b}",
    op.F32_GT: "{a} > {b}",
    op.F64_GT: "{a} > {b}",
    op.F32_LE: "{a} <= {b}",
    op.F64_LE: "{a} <= {b}",
    op.F32_GE: "{a} >= {b}",
    op.F64_GE: "{a} >= {b}",
}

# NaN-reading comparisons re-evaluate {a}/{b}; those must stay variables.
_MULTI_USE_RELOPS = {op.F32_NE, op.F64_NE}

# Signed comparisons: operands that are literals fold through _s32/_s64 at
# compile time (loop bounds are almost always constants).
_SIGNED_RELOPS = {
    op.I32_LT_S: 32, op.I32_GT_S: 32, op.I32_LE_S: 32, op.I32_GE_S: 32,
    op.I64_LT_S: 64, op.I64_GT_S: 64, op.I64_LE_S: 64, op.I64_GE_S: 64,
}

# Integer binops whose literal-literal results fold at compile time.
_FOLDABLE_BINOPS = {
    op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_AND, op.I32_OR, op.I32_XOR,
    op.I32_SHL, op.I32_SHR_U, op.I32_SHR_S, op.I32_ROTL, op.I32_ROTR,
    op.I64_ADD, op.I64_SUB, op.I64_MUL, op.I64_AND, op.I64_OR, op.I64_XOR,
    op.I64_SHL, op.I64_SHR_U, op.I64_SHR_S, op.I64_ROTL, op.I64_ROTR,
}

_FOLD_NAMESPACE = {
    "_shrs": num.shr_s, "_rotl": num.rotl, "_rotr": num.rotr,
    "_s32": num.s32, "_s64": num.s64,
}

# Pure unary operators: opcode -> template over {a}.
_UNOPS: Dict[int, str] = {
    op.I32_CLZ: "_clz({a}, 32)",
    op.I32_CTZ: "_ctz({a}, 32)",
    op.I32_POPCNT: "_popcnt({a})",
    op.I64_CLZ: "_clz({a}, 64)",
    op.I64_CTZ: "_ctz({a}, 64)",
    op.I64_POPCNT: "_popcnt({a})",
    op.F64_ABS: "abs({a})",
    op.F64_NEG: "-({a})",
    op.F64_CEIL: "_fceil({a})",
    op.F64_FLOOR: "_ffloor({a})",
    op.F64_TRUNC: "_ftrunc({a})",
    op.F64_NEAREST: "_fnearest({a})",
    op.F64_SQRT: "_fsqrt({a})",
    op.F32_ABS: "abs({a})",
    op.F32_NEG: "-({a})",
    op.F32_CEIL: "_fceil({a})",
    op.F32_FLOOR: "_ffloor({a})",
    op.F32_TRUNC: "_ftrunc({a})",
    op.F32_NEAREST: "_fnearest({a})",
    op.F32_SQRT: "_f32r(_fsqrt({a}))",
    op.I32_WRAP_I64: "{a} & " + _MASK32,
    op.I64_EXTEND_I32_U: "{a}",
    op.I64_EXTEND_I32_S: "_s32({a}) & " + _MASK64,
    op.F32_CONVERT_I32_S: "_f32r(float(_s32({a})))",
    op.F32_CONVERT_I32_U: "_f32r(float({a}))",
    op.F32_CONVERT_I64_S: "_f32r(float(_s64({a})))",
    op.F32_CONVERT_I64_U: "_f32r(float({a}))",
    op.F32_DEMOTE_F64: "_f32r({a})",
    op.F64_CONVERT_I32_S: "float(_s32({a}))",
    op.F64_CONVERT_I32_U: "float({a})",
    op.F64_CONVERT_I64_S: "float(_s64({a}))",
    op.F64_CONVERT_I64_U: "float({a})",
    op.F64_PROMOTE_F32: "{a}",
    op.I32_REINTERPRET_F32: "_ri32f32({a})",
    op.I64_REINTERPRET_F64: "_ri64f64({a})",
    op.F32_REINTERPRET_I32: "_rf32i32({a})",
    op.F64_REINTERPRET_I64: "_rf64i64({a})",
    op.I32_EXTEND8_S: "_ext({a}, 8, 32)",
    op.I32_EXTEND16_S: "_ext({a}, 16, 32)",
    op.I64_EXTEND8_S: "_ext({a}, 8, 64)",
    op.I64_EXTEND16_S: "_ext({a}, 16, 64)",
    op.I64_EXTEND32_S: "_ext({a}, 32, 64)",
}

# Trapping unary operators (float-to-int truncation): materialised.
_TRAPPING_UNOPS: Dict[int, str] = {
    op.I32_TRUNC_F32_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F32_U: "_trunc({a}, False, 32)",
    op.I32_TRUNC_F64_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F64_U: "_trunc({a}, False, 32)",
    op.I64_TRUNC_F32_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F32_U: "_trunc({a}, False, 64)",
    op.I64_TRUNC_F64_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F64_U: "_trunc({a}, False, 64)",
}

_LOADS: Dict[int, tuple] = {
    op.I32_LOAD: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD: (8, "_upI64({m}, {a})[0]"),
    op.F32_LOAD: (4, "_upF32({m}, {a})[0]"),
    op.F64_LOAD: (8, "_upF64({m}, {a})[0]"),
    op.I32_LOAD8_U: (1, "{m}[{a}]"),
    op.I64_LOAD8_U: (1, "{m}[{a}]"),
    op.I32_LOAD8_S: (1, "_ext({m}[{a}], 8, 32)"),
    op.I64_LOAD8_S: (1, "_ext({m}[{a}], 8, 64)"),
    op.I32_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I64_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I32_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 32)"),
    op.I64_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 64)"),
    op.I64_LOAD32_U: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD32_S: (4, "_ext(_upI32({m}, {a})[0], 32, 64)"),
}

_STORES: Dict[int, tuple] = {
    op.I32_STORE: (4, "_pkI32({m}, {a}, {v})"),
    op.I64_STORE: (8, "_pkI64({m}, {a}, {v})"),
    op.F32_STORE: (4, "_pkF32({m}, {a}, {v})"),
    op.F64_STORE: (8, "_pkF64({m}, {a}, {v})"),
    op.I32_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I64_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I32_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE32: (4, "_pkI32({m}, {a}, ({v}) & " + _MASK32 + ")"),
}

# Typed-memory-plane templates: when the compiler proves an access aligned
# to its width (every affine coefficient and the constant offset divisible
# by the width), it indexes a `memoryview(..).cast(fmt)` plane directly
# instead of going through struct pack/unpack. ``{i}`` is the *element*
# index (byte address // width). 8-bit accesses already index the
# bytearray directly and need no plane.
_PLANE_LOADS: Dict[int, str] = {
    op.I32_LOAD: "_pI[{i}]",
    op.I64_LOAD: "_pQ[{i}]",
    op.F32_LOAD: "_pF[{i}]",
    op.F64_LOAD: "_pD[{i}]",
    op.I32_LOAD16_U: "_pH[{i}]",
    op.I64_LOAD16_U: "_pH[{i}]",
    op.I32_LOAD16_S: "_ext(_pH[{i}], 16, 32)",
    op.I64_LOAD16_S: "_ext(_pH[{i}], 16, 64)",
    op.I64_LOAD32_U: "_pI[{i}]",
    op.I64_LOAD32_S: "_ext(_pI[{i}], 32, 64)",
}

_PLANE_STORES: Dict[int, str] = {
    op.I32_STORE: "_pI[{i}] = {v}",
    op.I64_STORE: "_pQ[{i}] = {v}",
    op.F32_STORE: "_pF[{i}] = {v}",
    op.F64_STORE: "_pD[{i}] = {v}",
    op.I32_STORE16: "_pH[{i}] = ({v}) & 0xFFFF",
    op.I64_STORE16: "_pH[{i}] = ({v}) & 0xFFFF",
    op.I64_STORE32: "_pI[{i}] = ({v}) & " + _MASK32,
}

#: The plane names the instance namespace must provide, by format code.
_PLANE_NAMES = {"H": "_pH", "I": "_pI", "Q": "_pQ", "f": "_pF", "d": "_pD"}

#: Proven result ranges of zero-extending loads.
_LOAD_RANGES: Dict[int, tuple] = {
    op.I32_LOAD8_U: (0, 0xFF),
    op.I64_LOAD8_U: (0, 0xFF),
    op.I32_LOAD16_U: (0, 0xFFFF),
    op.I64_LOAD16_U: (0, 0xFFFF),
    op.I32_LOAD: (0, 0xFFFFFFFF),
    op.I64_LOAD32_U: (0, 0xFFFFFFFF),
}

# Integer binops the range pass understands (kind, bit width).
_RANGE_BINOPS: Dict[int, tuple] = {
    op.I32_ADD: ("add", 32), op.I64_ADD: ("add", 64),
    op.I32_SUB: ("sub", 32), op.I64_SUB: ("sub", 64),
    op.I32_MUL: ("mul", 32), op.I64_MUL: ("mul", 64),
    op.I32_AND: ("and", 32), op.I64_AND: ("and", 64),
    op.I32_OR: ("or", 32), op.I64_OR: ("or", 64),
    op.I32_XOR: ("xor", 32), op.I64_XOR: ("xor", 64),
    op.I32_SHL: ("shl", 32), op.I64_SHL: ("shl", 64),
    op.I32_SHR_U: ("shru", 32), op.I64_SHR_U: ("shru", 64),
}

_EMPTY: FrozenSet[int] = frozenset()
_NO_TEMPS: FrozenSet[str] = frozenset()


class _Value:
    """One compile-time stack slot: a deferred expression or a variable.

    Beyond the purity facts the spiller needs, each slot optionally carries
    the optimiser's value metadata:

    * ``lo``/``hi`` — a proven inclusive range of the (canonical,
      non-negative) integer value; ``None`` when unknown. The passes use
      it to drop ``& MASK``s on values already in range and to elide
      ``_s32``/``_s64`` on signed compares of values below the sign bit.
    * ``affine`` — the *real-arithmetic* (unwrapped) form of the value as
      ``{local_index: coefficient, -1: constant}`` with all coefficients
      non-negative, or ``None``. ``expr`` may wrap (masks); ``affine``
      never does — versioned loops bound it symbolically for the hoisted
      preflight check and rebuild addresses from it mask-free.
    * ``temps`` — generated variable names the expression references
      (``t``/``s``/``h`` vars); an expression is only hoistable to a loop
      preheader when every such name was itself hoisted there.
    """

    __slots__ = ("expr", "locals_read", "reads_global", "reads_memory",
                 "ops", "is_var", "bool_expr", "lo", "hi", "affine", "temps")

    def __init__(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
                 reads_global: bool = False, reads_memory: bool = False,
                 ops: int = 1, is_var: bool = False,
                 bool_expr: Optional[str] = None,
                 lo: Optional[int] = None, hi: Optional[int] = None,
                 affine: Optional[Dict[int, int]] = None,
                 temps: FrozenSet[str] = _NO_TEMPS) -> None:
        self.expr = expr
        self.locals_read = locals_read
        self.reads_global = reads_global
        self.reads_memory = reads_memory
        self.ops = ops
        self.is_var = is_var
        # For i32 booleans produced by comparisons/eqz: the raw Python
        # condition, so branches can test it without the 1/0 round trip.
        self.bool_expr = bool_expr
        self.lo = lo
        self.hi = hi
        self.affine = affine
        self.temps = temps

    @classmethod
    def var(cls, name: str) -> "_Value":
        return cls(name, ops=0, is_var=True, temps=frozenset((name,)))

    @classmethod
    def var_like(cls, name: str, value: "_Value") -> "_Value":
        """A variable slot that keeps ``value``'s range/affine metadata.

        The range still holds (the variable holds the same value). The
        affine form stays usable as a *bound*: materialisation captured
        the locals at some loop point, and the preflight substitutes each
        local's loop-wide maximum, which dominates any captured value.
        """
        return cls(name, ops=0, is_var=True, lo=value.lo, hi=value.hi,
                   affine=value.affine, temps=frozenset((name,)))

    @property
    def paren(self) -> str:
        """The expression, parenthesised unless it is atomic."""
        if self.is_var or self.expr.isidentifier() or _is_literal(self.expr):
            return self.expr
        return f"({self.expr})"

    @property
    def condition(self) -> str:
        """The truth-test form for if/br_if/select."""
        return self.bool_expr if self.bool_expr is not None else self.expr

    @property
    def literal(self) -> Optional[int]:
        """The integer value when this is a literal constant."""
        if _is_literal(self.expr):
            return int(self.expr)
        return None


def _is_literal(expr: str) -> bool:
    return expr.isdigit() or (expr.startswith("-") and expr[1:].isdigit())


class _Emitter:
    """Accumulates generated source with explicit indentation control."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        # Single-space indentation maximises nesting headroom in the
        # tokenizer for deeply nested Wasm control flow.
        self.lines.append(" " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Frame:
    """One open structured construct during compilation."""

    __slots__ = ("kind", "label", "entry_height", "arity", "top_level")

    def __init__(self, kind: int, label: int, entry_height: int,
                 arity: int, top_level: bool) -> None:
        self.kind = kind
        self.label = label
        self.entry_height = entry_height
        self.arity = arity
        self.top_level = top_level


class _LoopCtx:
    """Optimiser state for one loop currently being compiled."""

    __slots__ = ("index", "info", "frame", "emitter", "insert_at", "indent",
                 "hoisted", "ind_local", "ind_lo", "ind_hi")

    def __init__(self, index: int, info: aotopt.LoopInfo, frame: _Frame,
                 emitter: _Emitter, insert_at: int, indent: int) -> None:
        self.index = index
        self.info = info
        self.frame = frame
        self.emitter = emitter
        #: Line index in ``emitter`` where preheader statements land.
        self.insert_at = insert_at
        self.indent = indent
        #: expr -> hoisted variable name (dedup within this preheader).
        self.hoisted: Dict[str, str] = {}
        induction = info.induction
        self.ind_local = induction.local if induction else None
        self.ind_lo: int = 0
        self.ind_hi: Optional[int] = None
        if induction is not None and induction.loop_hi is not None \
                and (not induction.signed or induction.fast_path_sound()[0]):
            self.ind_hi = induction.loop_hi
            # The init is a lower bound only when the masked step add can
            # never wrap past 2^32 (it always holds for sound signed
            # loops; unsigned loops need the explicit ceiling check).
            if induction.max_numeric + induction.step <= num.MASK32:
                self.ind_lo = induction.loop_lo


class _FastCtx:
    """Collects preflight requirements while probing a versioned loop."""

    __slots__ = ("root", "reqs", "numeric", "failed")

    def __init__(self, root: aotopt.LoopInfo) -> None:
        self.root = root
        self.reqs: List[str] = []
        #: Max over fully-constant address bounds: one combined check.
        self.numeric: Optional[int] = None
        self.failed = False

    def require(self, condition: str) -> None:
        if condition not in self.reqs:
            self.reqs.append(condition)

    def require_numeric(self, bound: int) -> None:
        if self.numeric is None or bound > self.numeric:
            self.numeric = bound

    def conditions(self) -> List[str]:
        conditions = []
        if self.numeric is not None:
            conditions.append(f"{self.numeric} <= _ml")
        return conditions + self.reqs


#: Preflight checks beyond this count cost more than they save.
_MAX_PREFLIGHT = 8


class _FunctionCompiler:
    """Compiles one decoded function body into Python source."""

    def __init__(self, module: Module, func: Function, func_index: int,
                 opt_level: int = 0, use_planes: bool = False) -> None:
        self.module = module
        self.func = func
        self.func_index = func_index
        self.func_type = module.types[func.type_index]
        self.out = _Emitter()
        self.frames: List[_Frame] = []
        self.next_label = 0
        self.next_temp = 0
        self.next_hoist = 0
        self.stack: List[_Value] = []
        self.opt = opt_level
        self.use_planes = use_planes and opt_level >= 2
        self.local_types: List[ValType] = \
            list(self.func_type.params) + list(func.locals)
        self.analysis: Dict[int, aotopt.LoopInfo] = \
            aotopt.analyze(func) if opt_level >= 1 else {}
        self.loop_ctxs: List[_LoopCtx] = []
        self.fast: Optional[_FastCtx] = None
        #: Depth of versioned-region recompilation (no nested versioning).
        self.version_depth = 0
        #: Loops whose version probe failed; compiled plainly thereafter.
        self.no_version: set = set()

    # -- stack management ---------------------------------------------------------
    #
    # Naming discipline: mid-stream materialisations always get a *fresh*
    # temporary (t{n}) so a deferred expression can never observe its
    # referenced variable being recycled. Canonical position names (s{i})
    # are written only at control-flow boundaries by `_spill_all`, in
    # ascending position order — an entry can only reference position
    # names of positions <= its own (values are consumed linearly), so
    # the ascending pass reads every old value before overwriting it.

    def _push(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
              reads_global: bool = False, reads_memory: bool = False,
              ops: int = 1, bool_expr: Optional[str] = None,
              lo: Optional[int] = None, hi: Optional[int] = None,
              affine: Optional[Dict[int, int]] = None,
              temps: FrozenSet[str] = _NO_TEMPS) -> None:
        value = _Value(expr, locals_read, reads_global, reads_memory, ops,
                       bool_expr=bool_expr, lo=lo, hi=hi, affine=affine,
                       temps=temps)
        self._push_value(value)

    def _push_value(self, value: _Value) -> None:
        if self.opt >= 1 and self._try_hoist(value):
            return
        self.stack.append(value)
        if value.ops > _MAX_FUSED_OPS:
            self._materialize(len(self.stack) - 1)

    def _try_hoist(self, value: _Value) -> bool:
        """Loop-invariant code motion: move ``value`` to the preheader.

        Eligible when a loop is open, the expression is pure (deferred
        expressions always are), big enough to be worth a variable, reads
        no state the loop region writes, and references only variables
        that were themselves hoisted to an enclosing preheader.
        """
        if not self.loop_ctxs or value.is_var or value.bool_expr is not None:
            return False
        if value.ops < 2 or value.reads_global or value.reads_memory:
            return False
        ctx = self.loop_ctxs[-1]
        if value.locals_read & ctx.info.writes:
            return False
        if value.temps:
            hoisted_names = set()
            for open_ctx in self.loop_ctxs:
                hoisted_names.update(open_ctx.hoisted.values())
            if not value.temps <= hoisted_names:
                return False
        name = ctx.hoisted.get(value.expr)
        if name is None:
            name = f"h{self.next_hoist}"
            self.next_hoist += 1
            ctx.hoisted[value.expr] = name
            line = " " * ctx.indent + f"{name} = {value.expr}"
            ctx.emitter.lines.insert(ctx.insert_at, line)
            ctx.insert_at += 1
        self.stack.append(_Value.var_like(name, value))
        return True

    def _push_var(self, expr: str, lo: Optional[int] = None,
                  hi: Optional[int] = None,
                  affine: Optional[Dict[int, int]] = None) -> None:
        """Materialise ``expr`` into a fresh temporary immediately."""
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {expr}")
        self.stack.append(
            _Value(name, ops=0, is_var=True, lo=lo, hi=hi, affine=affine,
                   temps=frozenset((name,))))

    def _pop(self) -> _Value:
        return self.stack.pop()

    def _materialize(self, position: int) -> None:
        """Evaluate a deferred entry now, into a fresh temporary."""
        value = self.stack[position]
        if value.is_var:
            return
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var_like(name, value)

    def _spill(self, position: int) -> None:
        """Place a stack entry into its canonical boundary variable."""
        value = self.stack[position]
        name = f"s{position}"
        if value.is_var and value.expr == name:
            return
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var_like(name, value)

    def _spill_all(self) -> None:
        for position in range(len(self.stack)):
            self._spill(position)

    def _spill_local_readers(self, local_index: int) -> None:
        for position, value in enumerate(self.stack):
            if local_index in value.locals_read:
                self._materialize(position)

    def _spill_global_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_global:
                self._materialize(position)

    def _spill_memory_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_memory:
                self._materialize(position)

    def _spill_call_clobbered(self) -> None:
        """A call may write globals and memory (not our locals)."""
        for position, value in enumerate(self.stack):
            if value.reads_global or value.reads_memory:
                self._materialize(position)

    def _reset_stack(self, height: int) -> None:
        """Canonical var entries s0..s{height-1} (control-join state)."""
        self.stack = [_Value.var(f"s{i}") for i in range(height)]

    # -- helpers ----------------------------------------------------------------

    def _result_expr(self) -> str:
        if len(self.func_type.results) == 0:
            return "None"
        return self.stack[-1].expr if self.stack else "None"

    def _emit_branch(self, depth: int) -> None:
        """Emit the transfer for ``br depth``; stack entries are vars."""
        height = len(self.stack)
        if depth >= len(self.frames):
            # Branch to the function frame: a return.
            if len(self.func_type.results) == 0:
                self.out.emit("return None")
            else:
                self.out.emit(f"return s{height - 1}")
            return
        frame = self.frames[-1 - depth]
        arity = 0 if frame.kind == op.LOOP else frame.arity
        base = frame.entry_height
        source_base = height - arity
        for position in range(arity):
            if source_base + position != base + position:
                self.out.emit(f"s{base + position} = s{source_base + position}")
        if depth == 0 and frame.kind != op.LOOP:
            self.out.emit("break")
        elif depth == 0:
            # Back edge to the innermost loop: at this point the
            # innermost Python `while` is that loop's body capsule, whose
            # body *is* the loop body — `continue` restarts it directly,
            # skipping the _br unwind machinery.
            self.out.emit("continue")
        else:
            self.out.emit(f"_br = {frame.label}")
            self.out.emit("break")

    def _emit_epilogue(self, frame: _Frame) -> None:
        """Post-capsule branch bookkeeping for a construct."""
        if frame.kind == op.LOOP:
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            self.out.emit(f"if _br == {frame.label}:")
            self.out.indent += 1
            self.out.emit("_br = -1")
            self.out.emit("continue")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1  # close outer while
            if not frame.top_level:
                self.out.emit("if _br >= 0:")
                self.out.indent += 1
                self.out.emit("break")
                self.out.indent -= 1
        else:
            self.out.indent -= 1  # close capsule while
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            if frame.top_level:
                self.out.emit("_br = -1")
            else:
                self.out.emit(f"if _br != {frame.label}: break")
                self.out.emit("_br = -1")
            self.out.indent -= 1

    # -- main pass ---------------------------------------------------------------

    def compile(self) -> str:
        func_type = self.func_type
        params = [f"l{i}" for i in range(len(func_type.params))]
        name = f"_wasm_f{self.func_index}"
        self.out.emit(f"def {name}({', '.join(params)}):")
        self.out.indent += 1
        self.out.emit("_inst.enter_call()")
        self.out.emit("try:")
        self.out.indent += 1
        for offset, valtype in enumerate(self.func.locals):
            index = len(params) + offset
            zero = "0" if valtype.is_integer else "0.0"
            self.out.emit(f"l{index} = {zero}")
        self.out.emit("_br = -1")
        self._compile_range(0, len(self.func.body))
        self.out.indent -= 1
        self.out.emit("finally:")
        self.out.indent += 1
        self.out.emit("_inst.exit_call()")
        self.out.indent -= 1
        self.out.indent -= 1
        return self.out.source()

    def _pop_loop_ctx(self, frame: _Frame) -> None:
        if self.loop_ctxs and self.loop_ctxs[-1].frame is frame:
            self.loop_ctxs.pop()

    def _compile_range(self, start: int, stop: int) -> None:
        """Compile the instruction range ``[start, stop)``.

        The whole function body is one range; a versioned loop compiles
        its own ``[loop, end]`` sub-range twice (fast probe + safe copy)
        through the same machinery.
        """
        module = self.module
        body = self.func.body
        out = self.out
        dead = False
        dead_depth = 0
        skip_until = -1

        for index in range(start, stop):
            if index < skip_until:
                continue
            instr = body[index]
            code = instr.opcode
            out = self.out

            if dead:
                if code in (op.BLOCK, op.LOOP, op.IF):
                    dead_depth += 1
                elif code == op.ELSE and dead_depth == 0:
                    frame = self.frames[-1]
                    out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    out.emit("pass")
                    self._reset_stack(frame.entry_height)
                    dead = False
                elif code == op.END:
                    if dead_depth:
                        dead_depth -= 1
                    elif not self.frames:
                        dead = False
                    else:
                        frame = self.frames.pop()
                        self._pop_loop_ctx(frame)
                        if frame.kind == op.IF:
                            out.indent -= 1  # close if/else suite
                        self._reset_stack(frame.entry_height + frame.arity)
                        dead = False
                        if frame.kind == op.LOOP:
                            out.emit("break")
                            out.indent -= 1
                            self._emit_epilogue(frame)
                        else:
                            out.emit("break")
                            self._emit_epilogue(frame)
                continue

            if code == op.NOP:
                continue

            if code == op.BLOCK:
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # block L{frame.label}")
                out.indent += 1
                out.emit("pass")
            elif code == op.LOOP:
                if self._can_version(index):
                    skip_until = self._compile_versioned_loop(index)
                    continue
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                if self.opt >= 1:
                    info = self.analysis.get(index)
                    if info is not None:
                        self.loop_ctxs.append(
                            _LoopCtx(index, info, frame, out,
                                     len(out.lines), out.indent))
                out.emit(f"while True:  # loop L{frame.label}")
                out.indent += 1
                out.emit("while True:")
                out.indent += 1
                out.emit("pass")
            elif code == op.IF:
                condition = self._pop()
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # if L{frame.label}")
                out.indent += 1
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                out.emit("pass")
            elif code == op.ELSE:
                frame = self.frames[-1]
                self._spill_all()
                out.indent -= 1
                out.emit("else:")
                out.indent += 1
                out.emit("pass")
                self._reset_stack(frame.entry_height)
            elif code == op.END:
                self._spill_all()
                if not self.frames:
                    out.emit(f"return {self._result_expr()}")
                    continue
                frame = self.frames.pop()
                self._pop_loop_ctx(frame)
                if frame.kind == op.IF:
                    out.indent -= 1  # close if (or else) suite
                self._reset_stack(frame.entry_height + frame.arity)
                if frame.kind == op.LOOP:
                    out.emit("break")
                    out.indent -= 1
                    self._emit_epilogue(frame)
                else:
                    out.emit("break")
                    self._emit_epilogue(frame)
            elif code == op.BR:
                self._spill_all()
                self._emit_branch(instr.arg)
                dead = True
            elif code == op.BR_IF:
                condition = self._pop()
                self._spill_all()
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                self._emit_branch(instr.arg)
                out.indent -= 1
            elif code == op.BR_TABLE:
                depths, default = instr.arg
                selector = self._pop()
                self._spill_all()
                if depths:
                    out.emit(f"_i = {selector.expr}")
                    for position, depth in enumerate(depths):
                        keyword = "if" if position == 0 else "elif"
                        out.emit(f"{keyword} _i == {position}:")
                        out.indent += 1
                        self._emit_branch(depth)
                        out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    self._emit_branch(default)
                    out.indent -= 1
                else:
                    self._emit_branch(default)
                dead = True
            elif code == op.RETURN:
                out.emit(f"return {self._result_expr()}")
                dead = True
            elif code == op.UNREACHABLE:
                out.emit('_trap("unreachable executed")')
                dead = True
            elif code == op.CALL:
                signature = module.func_type(instr.arg)
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[{instr.arg}]({argument_list})")
                else:
                    out.emit(f"_f[{instr.arg}]({argument_list})")
            elif code == op.CALL_INDIRECT:
                signature = module.types[instr.arg]
                element = self._pop()
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                out.emit(f"_fi = _tbl.get({element.expr})")
                out.emit(f"if _ft[_fi] != _sig{instr.arg}:")
                out.indent += 1
                out.emit('_trap("indirect call signature mismatch")')
                out.indent -= 1
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[_fi]({argument_list})")
                else:
                    out.emit(f"_f[_fi]({argument_list})")
            elif code == op.DROP:
                self._pop()  # deferred expressions are pure: discard
            elif code == op.SELECT:
                condition = self._pop()
                self._spill(len(self.stack) - 2)
                self._spill(len(self.stack) - 1)
                top = len(self.stack)
                out.emit(f"if not ({condition.condition}):")
                out.indent += 1
                out.emit(f"s{top - 2} = s{top - 1}")
                out.indent -= 1
                self._pop()
            elif code == op.LOCAL_GET:
                self._push_local(instr.arg)
            elif code == op.LOCAL_SET:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
            elif code == op.LOCAL_TEE:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
                self._push_local(instr.arg)
            elif code == op.GLOBAL_GET:
                self._push(f"_g[{instr.arg}].value", reads_global=True, ops=1)
            elif code == op.GLOBAL_SET:
                value = self._pop()
                self._spill_global_readers()
                out.emit(f"_g[{instr.arg}].value = {value.expr}")
            elif code in (op.I32_CONST, op.I64_CONST):
                literal = instr.arg
                if literal >= 0:
                    affine = {-1: literal} if code == op.I32_CONST else None
                    self._push(str(literal), ops=0, lo=literal, hi=literal,
                               affine=affine)
                else:
                    self._push(str(literal), ops=0)
            elif code in (op.F32_CONST, op.F64_CONST):
                value = instr.arg
                if math.isnan(value):
                    self._push("float('nan')", ops=0)
                elif math.isinf(value):
                    sign = "-" if value < 0 else ""
                    self._push(f"float('{sign}inf')", ops=0)
                else:
                    self._push(repr(value), ops=0)
            elif code in _LOADS:
                width, template = _LOADS[code]
                address = self._pop()
                offset = instr.arg or 0
                lo, hi = _LOAD_RANGES.get(code, (None, None))
                if self.fast is not None:
                    access = self._fast_access(address, offset, width)
                    if access is not None:
                        addr, plane = access
                        if plane is not None and code in _PLANE_LOADS:
                            expr = _PLANE_LOADS[code].format(i=plane)
                        else:
                            expr = template.format(m="_m", a=addr)
                        self._push_var(expr, lo=lo, hi=hi)
                        continue
                offset_text = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset_text}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                shift = self._plane_shift(code, _PLANE_LOADS, address,
                                          offset, width)
                if shift is not None:
                    self._push_var(
                        _PLANE_LOADS[code].format(i=f"_a >> {shift}"),
                        lo=lo, hi=hi)
                else:
                    self._push_var(template.format(m="_m", a="_a"),
                                   lo=lo, hi=hi)
            elif code in _STORES:
                width, template = _STORES[code]
                value = self._pop()
                address = self._pop()
                self._spill_memory_readers()
                offset = instr.arg or 0
                if self.fast is not None:
                    access = self._fast_access(address, offset, width)
                    if access is not None:
                        addr, plane = access
                        if plane is not None and code in _PLANE_STORES:
                            out.emit(_PLANE_STORES[code].format(
                                i=plane, v=value.expr))
                        else:
                            out.emit(template.format(m="_m", a=addr,
                                                     v=value.expr))
                        continue
                offset_text = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset_text}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                shift = self._plane_shift(code, _PLANE_STORES, address,
                                          offset, width)
                if shift is not None:
                    out.emit(_PLANE_STORES[code].format(i=f"_a >> {shift}",
                                                        v=value.expr))
                else:
                    out.emit(template.format(m="_m", a="_a", v=value.expr))
            elif code == op.MEMORY_SIZE:
                self._push("_mem.size_pages", reads_memory=True, ops=1)
            elif code == op.MEMORY_GROW:
                value = self._pop()
                self._spill_memory_readers()
                self._push_var(f"_mem.grow({value.expr}) & {_MASK32}")
            elif code in (op.I32_EQZ, op.I64_EQZ):
                operand = self._pop()
                if operand.bool_expr is not None:
                    raw = f"not ({operand.bool_expr})"
                elif operand.literal is not None:
                    raw = "True" if operand.literal == 0 else "False"
                else:
                    raw = f"{operand.paren} == 0"
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=operand.locals_read,
                    reads_global=operand.reads_global,
                    reads_memory=operand.reads_memory,
                    ops=operand.ops + 2,
                    bool_expr=raw,
                    lo=0, hi=1, temps=operand.temps,
                )
            elif code in _BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                if (code in _FOLDABLE_BINOPS and lhs.literal is not None
                        and rhs.literal is not None):
                    folded = eval(  # compile-time, pure integer arithmetic
                        _BINOPS[code].format(a=lhs.expr, b=rhs.expr),
                        dict(_FOLD_NAMESPACE),
                    )
                    if self.opt >= 1 and folded >= 0:
                        self._push(str(folded), ops=0, lo=folded, hi=folded,
                                   affine={-1: folded}
                                   if _RANGE_BINOPS.get(code, ("", 0))[1] == 32
                                   else None)
                    else:
                        self._push(str(folded), ops=0)
                    continue
                if self.opt >= 1 and code in _RANGE_BINOPS:
                    self._push_value(self._range_binop(code, lhs, rhs))
                    continue
                self._push(
                    _BINOPS[code].format(a=lhs.paren, b=rhs.paren),
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 1,
                    temps=lhs.temps | rhs.temps,
                )
            elif code in _TRAPPING_BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                self._push_var(
                    _TRAPPING_BINOPS[code].format(a=lhs.expr, b=rhs.expr))
            elif code in _RELOPS:
                rhs = self._pop()
                lhs = self._pop()
                if code in _MULTI_USE_RELOPS:
                    # The template reads each operand more than once:
                    # materialise both into fresh temporaries first.
                    self.stack.append(lhs)
                    self._materialize(len(self.stack) - 1)
                    self.stack.append(rhs)
                    self._materialize(len(self.stack) - 1)
                    rhs = self._pop()
                    lhs = self._pop()
                if code in _SIGNED_RELOPS:
                    bits = _SIGNED_RELOPS[code]
                    sign_bit = 1 << (bits - 1)
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                    # Fold _sNN(literal) operands into signed literals, and
                    # elide _sNN entirely on values proven below the sign
                    # bit (their signed and raw readings coincide).
                    for operand in (lhs, rhs):
                        literal = operand.literal
                        if literal is not None:
                            signed = num.s32(literal) if bits == 32 \
                                else num.s64(literal)
                            raw = raw.replace(
                                f"_s{bits}({operand.paren})", str(signed), 1)
                        elif (self.opt >= 1 and operand.hi is not None
                                and operand.hi < sign_bit):
                            raw = raw.replace(
                                f"_s{bits}({operand.paren})",
                                operand.paren, 1)
                else:
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 2,
                    bool_expr=raw,
                    lo=0, hi=1, temps=lhs.temps | rhs.temps,
                )
            elif code in _UNOPS:
                operand = self._pop()
                template = _UNOPS[code]
                if template == "{a}":
                    self.stack.append(operand)
                    continue
                if self.opt >= 1 and operand.hi is not None:
                    # Conversions that are identities on proven-in-range
                    # values: the wrap/sign-extension cannot fire.
                    if (code == op.I32_WRAP_I64
                            and operand.hi <= num.MASK32) or \
                       (code == op.I64_EXTEND_I32_S
                            and operand.hi < (1 << 31)):
                        self.stack.append(operand)
                        continue
                self._push(
                    template.format(a=operand.paren),
                    locals_read=operand.locals_read,
                    reads_global=operand.reads_global,
                    reads_memory=operand.reads_memory,
                    ops=operand.ops + 1,
                    temps=operand.temps,
                )
            elif code in _TRAPPING_UNOPS:
                operand = self._pop()
                self._push_var(_TRAPPING_UNOPS[code].format(a=operand.expr))
            else:
                raise WasmError(f"AOT: unimplemented opcode {op.name(code)}")

    # -- optimisation passes ------------------------------------------------------

    def _push_local(self, local: int) -> None:
        """local.get / the re-read half of local.tee, with metadata."""
        lo = hi = None
        affine = None
        if self.opt >= 1 and self.local_types[local] == ValType.I32:
            affine = {local: 1}
            for ctx in reversed(self.loop_ctxs):
                if ctx.ind_local == local and ctx.ind_hi is not None:
                    lo, hi = ctx.ind_lo, ctx.ind_hi
                    break
        self._push(f"l{local}", locals_read=frozenset((local,)), ops=1,
                   lo=lo, hi=hi, affine=affine)

    def _range_binop(self, code: int, lhs: _Value, rhs: _Value) -> _Value:
        """An integer binop through the value-range lattice.

        Emits the mask-free form whenever the result provably fits the
        type's range (the ``& MASK`` would be the identity); tracks the
        real-arithmetic affine form for i32 address computations.
        """
        kind, bits = _RANGE_BINOPS[code]
        mask = num.MASK32 if bits == 32 else num.MASK64
        is32 = bits == 32
        a_lo, a_hi = (lhs.lo, lhs.hi) if lhs.hi is not None else (0, mask)
        b_lo, b_hi = (rhs.lo, rhs.hi) if rhs.hi is not None else (0, mask)
        expr = None
        lo = hi = None
        affine = None
        if kind == "add":
            if a_hi + b_hi <= mask:
                expr = f"{lhs.paren} + {rhs.paren}"
                lo, hi = a_lo + b_lo, a_hi + b_hi
            if is32 and lhs.affine is not None and rhs.affine is not None:
                affine = dict(lhs.affine)
                for key, coeff in rhs.affine.items():
                    affine[key] = affine.get(key, 0) + coeff
        elif kind == "sub":
            if a_lo >= b_hi:
                expr = f"{lhs.paren} - {rhs.paren}"
                lo, hi = a_lo - b_hi, a_hi - b_lo
                # Borrow-free subtraction of a constant keeps the value
                # affine (only the constant term may go negative).
                if is32 and rhs.literal is not None \
                        and lhs.affine is not None:
                    affine = dict(lhs.affine)
                    affine[-1] = affine.get(-1, 0) - rhs.literal
        elif kind == "mul":
            if a_hi * b_hi <= mask:
                expr = f"{lhs.paren} * {rhs.paren}"
                lo, hi = a_lo * b_lo, a_hi * b_hi
            if is32:
                if rhs.literal is not None and lhs.affine is not None:
                    affine = {key: coeff * rhs.literal
                              for key, coeff in lhs.affine.items()}
                elif lhs.literal is not None and rhs.affine is not None:
                    affine = {key: coeff * lhs.literal
                              for key, coeff in rhs.affine.items()}
        elif kind == "and":
            literal = rhs.literal if rhs.literal is not None else lhs.literal
            other = lhs if rhs.literal is not None else rhs
            other_hi = a_hi if other is lhs else b_hi
            if literal is not None and (literal + 1) & literal == 0 \
                    and other_hi <= literal:
                return other  # the mask is the identity: drop it
            lo, hi = 0, min(a_hi, b_hi)
        elif kind in ("or", "xor"):
            lo = 0
            hi = (1 << max(a_hi.bit_length(), b_hi.bit_length())) - 1
        elif kind == "shl":
            if rhs.literal is not None:
                count = rhs.literal % bits
                if a_hi << count <= mask:
                    expr = f"{lhs.paren} << {count}"
                    lo, hi = a_lo << count, a_hi << count
                if is32 and lhs.affine is not None:
                    affine = {key: coeff << count
                              for key, coeff in lhs.affine.items()}
        elif kind == "shru":
            if rhs.literal is not None:
                count = rhs.literal % bits
                expr = f"{lhs.paren} >> {count}"
                lo, hi = a_lo >> count, a_hi >> count
        if expr is None:
            expr = _BINOPS[code].format(a=lhs.paren, b=rhs.paren)
        return _Value(
            expr,
            locals_read=lhs.locals_read | rhs.locals_read,
            reads_global=lhs.reads_global or rhs.reads_global,
            reads_memory=lhs.reads_memory or rhs.reads_memory,
            ops=lhs.ops + rhs.ops + 1,
            lo=lo, hi=hi, affine=affine,
            temps=lhs.temps | rhs.temps,
        )

    def _plane_shift(self, code: int, table: Dict[int, str], address: _Value,
                     offset: int, width: int) -> Optional[int]:
        """The plane shift when the access is provably width-aligned.

        An affine address with every coefficient and the total constant
        offset divisible by the width is aligned — masking preserves that
        (2^32 is a multiple of every plane width), so the proof needs no
        wrap analysis.
        """
        if not self.use_planes or code not in table or width not in (2, 4, 8):
            return None
        if address.affine is None:
            return None
        constant = address.affine.get(-1, 0) + offset
        if constant % width:
            return None
        for key, coeff in address.affine.items():
            if key >= 0 and coeff % width:
                return None
        return width.bit_length() - 1

    # -- loop versioning ----------------------------------------------------------

    def _can_version(self, index: int) -> bool:
        if self.opt < 2 or self.version_depth > 0 \
                or index in self.no_version:
            return False
        info = self.analysis.get(index)
        return (info is not None and info.versionable
                and self.func.body[index].arg.arity == 0)

    def _fast_bound(self, local: int) -> Optional[tuple]:
        """``(numeric, symbolic)`` loop-wide max of a local read by an
        address inside the versioned region, or None when unboundable.

        A local the region never writes is its own (runtime) bound. A
        local written inside the region is only boundable when it is the
        induction variable of a loop the access is structurally inside
        (its ctx is still open): there the guard has passed, so the value
        is at most the guard bound.
        """
        fast = self.fast
        if local not in fast.root.writes:
            return None, f"l{local}"
        for ctx in reversed(self.loop_ctxs):
            induction = ctx.info.induction
            if induction is None or induction.local != local \
                    or ctx.index < fast.root.start:
                continue
            ok, conjunct = induction.fast_path_sound()
            if not ok:
                return None
            if conjunct:
                fast.require(conjunct)
            if induction.max_numeric is not None:
                return max(induction.max_numeric, 0), None
            part, reads = induction.max_parts()
            if reads & fast.root.writes:
                return None
            return None, part
        return None

    def _fast_access(self, address: _Value, offset: int,
                     width: int) -> Optional[tuple]:
        """Hoist one access's bounds check into the loop preflight.

        Returns ``(address_expr, plane_index_expr_or_None)`` and records
        the requirement ``max_address + width <= _ml``, or None (probe
        failure) when the address cannot be bounded at loop entry.
        """
        fast = self.fast
        if address.affine is None:
            fast.failed = True
            return None
        effective = dict(address.affine)
        effective[-1] = effective.get(-1, 0) + offset
        numeric = effective[-1] + width
        symbolic: List[str] = []
        for local, coeff in sorted(effective.items()):
            if local < 0 or coeff == 0:
                continue
            bound = self._fast_bound(local)
            if bound is None:
                fast.failed = True
                return None
            bound_numeric, bound_symbolic = bound
            if bound_numeric is not None:
                numeric += coeff * bound_numeric
            elif coeff == 1:
                symbolic.append(bound_symbolic)
            else:
                symbolic.append(f"{coeff} * {bound_symbolic}")
        if symbolic:
            fast.require(" + ".join(symbolic + [str(numeric)]) + " <= _ml")
        else:
            fast.require_numeric(numeric)
        # The emitted address: a materialised variable is its own (proven
        # unwrapped) value; a deferred expression is rebuilt mask-free
        # from the affine form.
        if address.is_var:
            addr = f"{address.expr} + {offset}" if offset else address.expr
        else:
            addr = _affine_expr(effective, 1)
        plane = None
        if self.use_planes and width in (2, 4, 8) \
                and effective.get(-1, 0) % width == 0 \
                and all(coeff % width == 0
                        for key, coeff in effective.items() if key >= 0):
            shift = width.bit_length() - 1
            if address.is_var:
                base = f"({addr})" if offset else addr
                plane = f"{base} >> {shift}"
            else:
                plane = _affine_expr(effective, width)
        return addr, plane

    def _compile_versioned_loop(self, index: int) -> int:
        """Emit a fast/safe versioned pair for the loop at ``index``.

        The fast copy elides every per-access bounds check (and computes
        addresses mask-free, through planes when aligned) under a single
        preflight conjunction evaluated at loop entry; the safe copy is
        the plain lowering, taken whenever the preflight cannot prove the
        whole iteration space in bounds — including every program that
        would trap, which therefore traps with the byte-identical message
        at the identical point.
        """
        info = self.analysis[index]
        stop = info.end + 1
        self._spill_all()
        height = len(self.stack)
        frames_len = len(self.frames)
        snapshot = (self.next_label, self.next_temp, self.next_hoist)
        outer = self.out

        self.version_depth += 1
        fast = _FastCtx(info)
        _ok, conjunct = info.induction.fast_path_sound()
        if conjunct:
            fast.require(conjunct)
        self.fast = fast
        fast_out = _Emitter()
        fast_out.indent = outer.indent + 1
        self.out = fast_out
        self._compile_range(index, stop)
        self.fast = None
        fast_counters = (self.next_label, self.next_temp, self.next_hoist)

        del self.frames[frames_len:]
        self._reset_stack(height)
        self.next_label, self.next_temp, self.next_hoist = snapshot

        conditions = fast.conditions()
        if fast.failed or not conditions or len(conditions) > _MAX_PREFLIGHT:
            # Probe failed: compile this loop in place, unversioned —
            # but let its inner loops try their own versions.
            self.no_version.add(index)
            self.version_depth -= 1
            self.out = outer
            self._compile_range(index, stop)
            return stop

        safe_out = _Emitter()
        safe_out.indent = outer.indent + 1
        self.out = safe_out
        self._compile_range(index, stop)
        self.version_depth -= 1
        self.out = outer

        self.next_label = max(fast_counters[0], self.next_label)
        self.next_temp = max(fast_counters[1], self.next_temp)
        self.next_hoist = max(fast_counters[2], self.next_hoist)

        outer.emit("_ml = len(_m)")
        outer.emit(f"if {' and '.join(conditions)}:")
        outer.lines.extend(fast_out.lines)
        outer.emit("else:")
        outer.lines.extend(safe_out.lines)

        del self.frames[frames_len:]
        self._reset_stack(height)
        return stop


def _affine_expr(affine: Dict[int, int], scale: int) -> str:
    """Rebuild an affine form as real-arithmetic source, divided by
    ``scale`` (1 for byte addresses; the access width for plane indices,
    only called when every term is divisible)."""
    terms = []
    for local, coeff in sorted(affine.items()):
        if local < 0 or coeff == 0:
            continue
        scaled = coeff // scale
        terms.append(f"l{local}" if scaled == 1 else f"l{local} * {scaled}")
    constant = affine.get(-1, 0) // scale
    if constant or not terms:
        terms.append(str(constant))
    return " + ".join(terms)


class AotCompiler(Engine):
    """Engine that compiles functions to Python closures at load time."""

    name = "aot"

    #: The Wasm -> Python lowering and CPython bytecode compilation depend
    #: only on the module content, so the resulting top-level code object
    #: (plus its source) is a reusable artifact; only the ``exec`` into a
    #: per-instance namespace is instance-specific.
    supports_code_artifacts = True

    def __init__(self, opt_level: Optional[int] = None,
                 tracer: Optional[object] = None) -> None:
        level = DEFAULT_OPT_LEVEL if opt_level is None else opt_level
        if level not in _OPT_LEVELS:
            raise WasmError(f"unknown aot opt level: {level!r}")
        self.opt_level = level
        self.tracer = tracer

    @property
    def cache_identity(self) -> str:
        """Cache key component: the opt level changes the artifact."""
        return f"{self.name}@o{self.opt_level}"

    def compile_artifact(self, module: Module, func_index: int) -> tuple:
        """Lower one function to a (code object, source) artifact."""
        func = module.functions[func_index - len(module.imported_funcs)]
        tracer = self.tracer
        if tracer is None:
            compiler = _FunctionCompiler(
                module, func, func_index, opt_level=self.opt_level,
                use_planes=Memory.planes_supported)
            source = compiler.compile()
            code = compile(source, f"<wasm-aot f{func_index}>", "exec")
            return (code, source)
        with tracer.span("aot.compile", func=func_index,
                         opt=self.opt_level):
            with tracer.span("aot.analyze"):
                compiler = _FunctionCompiler(
                    module, func, func_index, opt_level=self.opt_level,
                    use_planes=Memory.planes_supported)
            with tracer.span("aot.codegen"):
                source = compiler.compile()
            with tracer.span("aot.pycompile"):
                code = compile(source, f"<wasm-aot f{func_index}>", "exec")
        return (code, source)

    def link_artifact(self, module: Module, instance: Instance,
                      func_index: int, artifact: object) -> Callable:
        """Bind a compiled artifact to an instance's fresh namespace."""
        code, source = artifact
        namespace = self._namespace(module, instance)
        exec(code, namespace)
        compiled = namespace[f"_wasm_f{func_index}"]
        compiled.__wasm_source__ = source  # aid debugging and tests
        # Internal Wasm->Wasm calls skip the coercing wrapper: values
        # produced inside the sandbox are already canonical.
        namespace["_f"].append(compiled)
        func = module.functions[func_index - len(module.imported_funcs)]
        param_types = module.types[func.type_index].params
        return _wrap_entry(compiled, param_types)

    def compile_function(self, module: Module, instance: Instance,
                         func_index: int) -> Callable:
        artifact = self.compile_artifact(module, func_index)
        entry = self.link_artifact(module, instance, func_index, artifact)
        entry.code_artifact = artifact
        return entry

    def _namespace(self, module: Module, instance: Instance) -> dict:
        cached = getattr(instance, "_aot_namespace", None)
        if cached is not None:
            return cached
        namespace = {
            "_inst": instance,
            # The fast call table: host bindings as-is (they are ordinary
            # Python callables), local functions appended *unwrapped* as
            # they are compiled. instance.funcs keeps the wrapped entry
            # points for the embedder.
            "_f": list(instance.funcs),
            "_ft": instance.func_types,
            "_g": instance.globals,
            "_mem": instance.memory,
            "_m": instance.memory.data if instance.memory else b"",
            "_tbl": instance.table,
            "_trap": _trap,
            "_s32": num.s32,
            "_s64": num.s64,
            "_f32r": num.f32_round,
            "_clz": num.clz,
            "_ctz": num.ctz,
            "_popcnt": num.popcnt,
            "_rotl": num.rotl,
            "_rotr": num.rotr,
            "_divs": num.idiv_s,
            "_divu": num.idiv_u,
            "_rems": num.irem_s,
            "_remu": num.irem_u,
            "_shrs": num.shr_s,
            "_trunc": num.trunc_to_int,
            "_ext": num.extend_signed,
            "_fdiv": _fdiv,
            "_fmin": num.fmin,
            "_fmax": num.fmax,
            "_fceil": num.fceil,
            "_ffloor": num.ffloor,
            "_ftrunc": num.ftrunc,
            "_fnearest": num.fnearest,
            "_fsqrt": num.fsqrt,
            "_copysign": math.copysign,
            "_isnan": math.isnan,
            "_ri32f32": num.i32_reinterpret_f32,
            "_ri64f64": num.i64_reinterpret_f64,
            "_rf32i32": num.f32_reinterpret_i32,
            "_rf64i64": num.f64_reinterpret_i64,
            "_upI16": S_I16.unpack_from,
            "_upI32": S_I32.unpack_from,
            "_upI64": S_I64.unpack_from,
            "_upF32": S_F32.unpack_from,
            "_upF64": S_F64.unpack_from,
            "_pkI16": S_I16.pack_into,
            "_pkI32": S_I32.pack_into,
            "_pkI64": S_I64.pack_into,
            "_pkF32": S_F32.pack_into,
            "_pkF64": S_F64.pack_into,
        }
        memory = instance.memory
        if memory is not None and memory.planes_supported:
            # Typed planes over the linear memory. `memory.grow` swaps
            # the backing buffer, so the namespace re-requests them on
            # every grow; generated code reads the names per access.
            def _refresh_planes(space=namespace, memory=memory) -> None:
                for fmt, plane_name in _PLANE_NAMES.items():
                    space[plane_name] = memory.plane(fmt)
            _refresh_planes()
            memory.add_plane_listener(_refresh_planes)
        for type_index, func_type in enumerate(module.types):
            namespace[f"_sig{type_index}"] = func_type
        instance._aot_namespace = namespace  # type: ignore[attr-defined]
        return namespace


def _wrap_entry(compiled: Callable, param_types) -> Callable:
    """Coerce host-supplied arguments once at the public boundary."""
    from repro.wasm.interpreter import _coerce

    def entry(*args):
        if len(args) != len(param_types):
            raise TrapError(
                f"expected {len(param_types)} arguments, got {len(args)}"
            )
        return compiled(*(
            _coerce(value, valtype)
            for value, valtype in zip(args, param_types)
        ))

    entry.__wasm_source__ = compiled.__wasm_source__
    entry.compiled = compiled
    return entry
