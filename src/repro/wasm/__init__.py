"""A from-scratch WebAssembly MVP virtual machine.

This package replaces WAMR in the paper's stack: a binary decoder and
encoder (builder), the spec validation algorithm, an interpreting engine
and an ahead-of-time engine that lowers Wasm to Python closures.
"""

from repro.wasm.aot import (
    AotCompiler,
    default_opt_level,
    reference_codegen,
    set_default_opt_level,
)
from repro.wasm.builder import FunctionBuilder, ModuleBuilder
from repro.wasm.codecache import DEFAULT_CACHE, CodeCache
from repro.wasm.compilesvc import artifact_fingerprint, precompile
from repro.wasm.decoder import decode_module
from repro.wasm.interpreter import Interpreter
from repro.wasm.module import Module
from repro.wasm.pgo import (
    Profile,
    ProfileCollector,
    ProfileError,
    ProfileWarning,
    merge_profiles,
    profile_module,
)
from repro.wasm.runtime import (
    Engine,
    HostFunction,
    Instance,
    Memory,
    Table,
)
from repro.wasm.types import F32, F64, I32, I64, PAGE_SIZE, FuncType, ValType
from repro.wasm.validation import validate_module

__all__ = [
    "AotCompiler",
    "default_opt_level",
    "set_default_opt_level",
    "reference_codegen",
    "Profile",
    "ProfileCollector",
    "ProfileError",
    "ProfileWarning",
    "profile_module",
    "merge_profiles",
    "precompile",
    "artifact_fingerprint",
    "Interpreter",
    "Engine",
    "CodeCache",
    "DEFAULT_CACHE",
    "ModuleBuilder",
    "FunctionBuilder",
    "decode_module",
    "validate_module",
    "Module",
    "Instance",
    "Memory",
    "Table",
    "HostFunction",
    "FuncType",
    "ValType",
    "I32",
    "I64",
    "F32",
    "F64",
    "PAGE_SIZE",
]
