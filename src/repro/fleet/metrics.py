"""Observability for the fleet gateway: counters and latency histograms.

Everything exports as one plain-dict ``snapshot()`` so the fleet
benchmark (and any future scraper) consumes gateway state without
reaching into internals. Latencies are recorded in seconds of real
``perf_counter`` time; simulated world-transition nanoseconds are
tracked as a separate counter, never mixed into the same number
(DESIGN.md, "Clock discipline").
"""

from __future__ import annotations

import random
import threading
from collections import defaultdict
from typing import Dict, List

from repro.bench.harness import percentile


class LatencyHistogram:
    """Bounded reservoir histogram with interpolated percentiles.

    ``add()`` is thread-safe and O(1): exact accumulators (count, sum,
    min, max) are always updated, while the raw samples backing the
    percentiles live in a fixed-size reservoir (Vitter's Algorithm R,
    seeded deterministically so snapshots are reproducible). A gateway
    left running for days therefore keeps exact count/mean/min/max and
    statistically representative percentiles without growing without
    bound, which is what the old unbounded-and-unlocked sample list did.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0x0B5) -> None:
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self._lock = threading.Lock()
        self._capacity = capacity
        self._random = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
                return
            slot = self._random.randrange(self._count)
            if slot < self._capacity:
                self._samples[slot] = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def capacity(self) -> int:
        return self._capacity

    def percentile(self, fraction: float) -> float:
        with self._lock:
            return percentile(self._samples, fraction)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._count:
                return {"count": 0}
            return {
                "count": self._count,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": percentile(self._samples, 0.50),
                "p95": percentile(self._samples, 0.95),
                "p99": percentile(self._samples, 0.99),
            }


class FleetMetrics:
    """Thread-safe counters, gauges and histograms for the gateway."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._in_flight = 0
        self._max_in_flight = 0

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.add(seconds)

    def enter_flight(self) -> None:
        with self._lock:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)

    def exit_flight(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Dict[str, float]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.summary() if histogram else {"count": 0}

    def snapshot(self) -> Dict[str, object]:
        """One plain dict: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "latency": {name: histogram.summary()
                            for name, histogram in self._histograms.items()},
            }
