"""Observability for the fleet gateway: counters and latency histograms.

Everything exports as one plain-dict ``snapshot()`` so the fleet
benchmark (and any future scraper) consumes gateway state without
reaching into internals. Latencies are recorded in seconds of real
``perf_counter`` time; simulated world-transition nanoseconds are
tracked as a separate counter, never mixed into the same number
(DESIGN.md, "Clock discipline").
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List

from repro.bench.harness import percentile


class LatencyHistogram:
    """Raw-sample histogram with interpolated percentiles."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, seconds: float) -> None:
        self._samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> float:
        return percentile(self._samples, fraction)

    def summary(self) -> Dict[str, float]:
        if not self._samples:
            return {"count": 0}
        return {
            "count": len(self._samples),
            "mean": sum(self._samples) / len(self._samples),
            "min": min(self._samples),
            "max": max(self._samples),
            "p50": percentile(self._samples, 0.50),
            "p95": percentile(self._samples, 0.95),
            "p99": percentile(self._samples, 0.99),
        }


class FleetMetrics:
    """Thread-safe counters, gauges and histograms for the gateway."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._in_flight = 0
        self._max_in_flight = 0

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.add(seconds)

    def enter_flight(self) -> None:
        with self._lock:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)

    def exit_flight(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Dict[str, float]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.summary() if histogram else {"count": 0}

    def snapshot(self) -> Dict[str, object]:
        """One plain dict: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "latency": {name: histogram.summary()
                            for name, histogram in self._histograms.items()},
            }
