"""Observability for the fleet gateway: counters and latency histograms.

Everything exports as one plain-dict ``snapshot()`` so the fleet
benchmark (and any future scraper) consumes gateway state without
reaching into internals. Latencies are recorded in seconds of real
``perf_counter`` time; simulated world-transition nanoseconds are
tracked as a separate counter, never mixed into the same number
(DESIGN.md, "Clock discipline").

With the process-sharded gateway (:mod:`repro.fleet.shards`) metrics are
produced in several processes at once, so both classes also have a
*serializable snapshot-merge path*: :meth:`LatencyHistogram.state` /
:meth:`FleetMetrics.state` export plain JSON-safe dicts, and the
``from_states`` constructors fold any number of those back into one
aggregate object. Exact accumulators (counts, sums, min/max) merge
exactly; reservoirs merge by deterministic quantile-spaced subsampling
with slots allocated proportionally to each shard's observation count,
so the merged percentiles stay representative without any randomness in
the merge itself.
"""

from __future__ import annotations

import random
import threading
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping

from repro.bench.harness import percentile


class LatencyHistogram:
    """Bounded reservoir histogram with interpolated percentiles.

    ``add()`` is thread-safe and O(1): exact accumulators (count, sum,
    min, max) are always updated, while the raw samples backing the
    percentiles live in a fixed-size reservoir (Vitter's Algorithm R,
    seeded deterministically so snapshots are reproducible). A gateway
    left running for days therefore keeps exact count/mean/min/max and
    statistically representative percentiles without growing without
    bound, which is what the old unbounded-and-unlocked sample list did.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0x0B5) -> None:
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self._lock = threading.Lock()
        self._capacity = capacity
        self._random = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
                return
            slot = self._random.randrange(self._count)
            if slot < self._capacity:
                self._samples[slot] = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def capacity(self) -> int:
        return self._capacity

    def percentile(self, fraction: float) -> float:
        with self._lock:
            return percentile(self._samples, fraction)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._count:
                return {"count": 0}
            return {
                "count": self._count,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": percentile(self._samples, 0.50),
                "p95": percentile(self._samples, 0.95),
                "p99": percentile(self._samples, 0.99),
            }

    # -- cross-process merge ---------------------------------------------------

    def state(self) -> Dict[str, object]:
        """JSON-safe full state, suitable for IPC and for ``from_states``."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "samples": list(self._samples),
            }

    @classmethod
    def from_states(cls, states: Iterable[Mapping[str, object]],
                    capacity: int = 4096, seed: int = 0x0B5
                    ) -> "LatencyHistogram":
        """Fold exported states into one histogram, deterministically.

        Exact accumulators add exactly. The merged reservoir allocates
        its slots to the inputs proportionally to their observation
        counts (largest-remainder rounding), then fills each allocation
        with quantile-spaced picks from that input's sorted samples — no
        randomness, so the same states always merge to the same
        percentiles, whichever process does the merge.
        """
        merged = cls(capacity=capacity, seed=seed)
        live = [s for s in states if s and s.get("count")]
        if not live:
            return merged
        merged._count = sum(int(s["count"]) for s in live)
        merged._sum = sum(float(s["sum"]) for s in live)
        merged._min = min(float(s["min"]) for s in live)
        merged._max = max(float(s["max"]) for s in live)
        sampled = [s for s in live if s["samples"]]
        total_represented = sum(int(s["count"]) for s in sampled)
        if sum(len(s["samples"]) for s in sampled) <= capacity:
            for s in sampled:
                merged._samples.extend(float(v) for v in s["samples"])
            return merged
        # Largest-remainder allocation of the reservoir slots.
        shares = [capacity * int(s["count"]) / total_represented
                  for s in sampled]
        slots = [min(int(share), len(s["samples"]))
                 for share, s in zip(shares, sampled)]
        remainders = sorted(
            range(len(sampled)),
            key=lambda i: (slots[i] - shares[i], i),
        )
        spare = capacity - sum(slots)
        for index in remainders:
            if spare <= 0:
                break
            headroom = len(sampled[index]["samples"]) - slots[index]
            take = min(spare, headroom)
            slots[index] += take
            spare -= take
        for s, quota in zip(sampled, slots):
            ordered = sorted(float(v) for v in s["samples"])
            if quota >= len(ordered):
                merged._samples.extend(ordered)
                continue
            # Quantile-spaced picks keep the shard's distribution shape.
            step = len(ordered) / quota
            merged._samples.extend(
                ordered[min(int((k + 0.5) * step), len(ordered) - 1)]
                for k in range(quota)
            )
        return merged


class FleetMetrics:
    """Thread-safe counters, gauges and histograms for the gateway."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._in_flight = 0
        self._max_in_flight = 0

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.add(seconds)

    def enter_flight(self) -> None:
        with self._lock:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)

    def exit_flight(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Dict[str, float]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.summary() if histogram else {"count": 0}

    def snapshot(self) -> Dict[str, object]:
        """One plain dict: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "latency": {name: histogram.summary()
                            for name, histogram in self._histograms.items()},
            }

    # -- cross-process merge ---------------------------------------------------

    def state(self) -> Dict[str, object]:
        """JSON-safe full state (counters + raw histogram states)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "histograms": {name: histogram.state()
                               for name, histogram
                               in self._histograms.items()},
            }

    @classmethod
    def from_states(cls, states: Iterable[Mapping[str, object]]
                    ) -> "FleetMetrics":
        """One aggregate view over states exported by several processes.

        Counters and the in-flight gauge add; ``max_in_flight`` is the
        max of the per-process highwater marks (each process observed its
        own peak — the true global peak is unobservable after the fact,
        and this lower bound is what a scrape-side aggregator reports
        too). Histograms merge through
        :meth:`LatencyHistogram.from_states`.
        """
        merged = cls()
        states = list(states)
        histogram_states: Dict[str, List[Mapping[str, object]]] = \
            defaultdict(list)
        for state in states:
            if not state:
                continue
            for name, value in state.get("counters", {}).items():
                merged._counters[name] += int(value)
            merged._in_flight += int(state.get("in_flight", 0))
            merged._max_in_flight = max(merged._max_in_flight,
                                        int(state.get("max_in_flight", 0)))
            for name, hist_state in state.get("histograms", {}).items():
                histogram_states[name].append(hist_state)
        for name, parts in histogram_states.items():
            merged._histograms[name] = LatencyHistogram.from_states(parts)
        return merged
