"""Backpressure for the fleet gateway: shed load instead of queueing.

Two mechanisms compose in :class:`AdmissionController`:

* a :class:`TokenBucket` caps the sustained message rate (with a burst
  allowance), so a flood of attesters degrades into explicit rejections
  rather than an ever-growing backlog;
* a bounded in-flight window caps how many admitted messages may be
  outstanding at once — the "accept queue" in front of the verifier TA
  lanes is finite.

Both reject with :class:`~repro.errors.FleetOverloaded`, carrying the
reason (``"rate"`` vs ``"queue"``) so metrics can tell them apart. The
window is consulted before the bucket, so a single rejection never
consumes more than one admission resource.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import FleetOverloaded


class TokenBucket:
    """Classic token bucket; ``try_acquire`` never blocks."""

    def __init__(self, rate_per_s: float, burst: int,
                 time_source=time.monotonic_ns) -> None:
        if rate_per_s < 0:
            raise ValueError("rate must be non-negative")
        if burst < 1:
            raise ValueError("burst must be positive")
        self._rate_per_ns = rate_per_s / 1e9
        self._burst = float(burst)
        self._now = time_source
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last_refill = self._now()

    def _refill(self) -> None:
        now = self._now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self._burst,
                               self._tokens + elapsed * self._rate_per_ns)
            self._last_refill = now

    def try_acquire(self, tokens: int = 1) -> bool:
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """Gate in front of the worker pool: rate limit + bounded in-flight."""

    def __init__(self, max_in_flight: int,
                 bucket: Optional[TokenBucket] = None) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self._max_in_flight = max_in_flight
        self._bucket = bucket
        self._lock = threading.Lock()
        self._in_flight = 0
        self.rejected_rate = 0
        self.rejected_queue = 0

    def admit(self) -> None:
        """Admit one message or raise :class:`FleetOverloaded`.

        The in-flight window is checked first: a message the window
        cannot hold is rejected *before* the bucket is drawn from, so
        each rejection consumes at most one admission resource and a
        queue rejection never burns a rate token on top.
        """
        with self._lock:
            if self._in_flight >= self._max_in_flight:
                self.rejected_queue += 1
                raise FleetOverloaded(reason="queue")
            if self._bucket is not None and not self._bucket.try_acquire():
                self.rejected_rate += 1
                raise FleetOverloaded(reason="rate")
            self._in_flight += 1

    def release(self) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release without a matching admit")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "rejected_rate": self.rejected_rate,
                "rejected_queue": self.rejected_queue,
            }
