"""Single-loop IPC core for the fleet: framing without thread wakeups.

The first sharded gateway spent its router budget on threads: two
blocking reader threads per shard plus a control thread inside every
worker, each message paying a GIL handoff and a condition-variable
wakeup per hop. This module is the replacement substrate, shared by the
router and the shard workers:

* :class:`FrameReader` — incremental, zero-copy parsing of the
  length-prefixed frame format (``u32 len | u8 opcode | u64 req-id |
  body``). Bytes land straight in one growable buffer via
  ``recv_into``; parsed bodies are :class:`memoryview` slices of that
  buffer, valid until the next fill, so a frame is copied at most once
  (when the consumer keeps it) instead of the join-plus-slice per frame
  of the blocking reader. An oversized length is rejected when the
  four header bytes arrive — before any body buffering.

* :class:`FrameWriter` — frame encoding plus short-write-safe delivery
  on sockets that may be non-blocking; partial sends keep a pending
  buffer and drain it with an explicit writability wait.

* :class:`Reactor` — ONE selector thread multiplexing every registered
  socket (the router runs one per gateway, replacing ``2 * shards``
  reader threads). Callbacks run on the loop thread; registration and
  removal are thread-safe through a self-pipe wakeup.

The shard worker does not use :class:`Reactor` — its whole process *is*
a single loop (see :func:`repro.fleet.shards.shard_main`) — but it
parses with the same :class:`FrameReader`, so the framing edge cases
are pinned once, in ``tests/fleet/test_asynccore.py``, for both ends.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
from typing import Callable, Iterator, List, Optional, Tuple

#: Name of the event-loop backend, recorded in ``BENCH_fleet.json`` so a
#: benchmark artifact says what core produced it.
LOOP_BACKEND = "selectors"

_HEADER = struct.Struct(">I")
_PREFIX = struct.Struct(">BQ")

#: Hard ceiling on one frame's length field. The largest legitimate
#: frame is a ticket-sync bundle (well under a megabyte); anything
#: claiming more is a corrupt or hostile peer and is rejected before a
#: single body byte is buffered for it.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(Exception):
    """Corrupt framing: oversized or impossible length prefix."""


class FrameReader:
    """Incremental parser for ``u32 len | u8 opcode | u64 req-id | body``.

    Feed it bytes (``fill`` from a socket, ``feed`` from tests) and
    iterate ``frames()``. Yielded bodies are memoryviews into the
    internal buffer — valid until the next ``fill``/``feed`` — so
    consumers that retain a body must copy it (``bytes(body)``), and
    consumers that only parse it in place never pay a copy at all.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES,
                 recv_chunk: int = 65536) -> None:
        if max_frame < _PREFIX.size:
            raise ValueError("max_frame cannot be below the frame prefix")
        self._max_frame = max_frame
        self._recv_chunk = recv_chunk
        self._buf = bytearray(recv_chunk)
        self._rpos = 0  # first unparsed byte
        self._wpos = 0  # first free byte

    def _reserve(self, need: int) -> None:
        """Make ``need`` contiguous free bytes, compacting parsed space."""
        if len(self._buf) - self._wpos >= need:
            return
        pending = self._wpos - self._rpos
        if self._rpos and len(self._buf) - pending >= need:
            # Slide the unparsed tail to the front; cheaper than growing.
            self._buf[:pending] = self._buf[self._rpos:self._wpos]
        else:
            grown = bytearray(max(len(self._buf) * 2, pending + need))
            grown[:pending] = self._buf[self._rpos:self._wpos]
            self._buf = grown
        self._rpos, self._wpos = 0, pending

    def fill(self, sock: socket.socket) -> Optional[bool]:
        """Pull one chunk from ``sock`` into the buffer.

        Returns ``True`` when bytes arrived, ``False`` on EOF (or a
        closed/reset socket), ``None`` when a non-blocking socket had
        nothing ready. One call makes at most one ``recv_into``, so a
        caller woken by a selector never blocks here.
        """
        self._reserve(self._recv_chunk)
        view = memoryview(self._buf)
        try:
            received = sock.recv_into(view[self._wpos:])
        except (BlockingIOError, InterruptedError):
            return None
        except OSError:
            return False
        finally:
            view.release()
        if received == 0:
            return False
        self._wpos += received
        return True

    def feed(self, data: bytes) -> None:
        """Append raw bytes (the test-side twin of :meth:`fill`)."""
        self._reserve(len(data))
        self._buf[self._wpos:self._wpos + len(data)] = data
        self._wpos += len(data)

    def frames(self) -> Iterator[Tuple[int, int, memoryview]]:
        """Yield every complete ``(opcode, req_id, body)`` buffered so far.

        Raises :class:`FrameError` as soon as a length prefix is
        readable and out of range — the body may not even have been
        sent yet, so a hostile length can never make us buffer for it.
        """
        while True:
            avail = self._wpos - self._rpos
            if avail < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buf, self._rpos)
            if length < _PREFIX.size or length > self._max_frame:
                raise FrameError(
                    f"frame length {length} outside "
                    f"[{_PREFIX.size}, {self._max_frame}]")
            if avail < _HEADER.size + length:
                return
            start = self._rpos + _HEADER.size
            opcode, req_id = _PREFIX.unpack_from(self._buf, start)
            body = memoryview(self._buf)[start + _PREFIX.size:
                                         start + length]
            self._rpos += _HEADER.size + length
            yield opcode, req_id, body

    @property
    def buffered(self) -> int:
        """Unparsed bytes currently held (for tests and introspection)."""
        return self._wpos - self._rpos


def encode_frame(opcode: int, req_id: int, body: bytes = b"") -> bytes:
    """One wire frame: ``u32 len | u8 opcode | u64 req-id | body``."""
    return (_HEADER.pack(_PREFIX.size + len(body))
            + _PREFIX.pack(opcode, req_id) + body)


class FrameWriter:
    """Short-write-safe frame delivery on a (possibly non-blocking) socket.

    ``send`` queues the encoded frame and pumps the socket; a partial
    send keeps the remainder in the pending buffer. ``pump(block=True)``
    waits for writability (via ``select``) until drained — correct for
    both blocking and non-blocking sockets, and exercised byte-by-byte
    in the frame-parser edge-case suite.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._pending = bytearray()

    def send(self, opcode: int, req_id: int, body: bytes = b"") -> None:
        self._pending += encode_frame(opcode, req_id, body)
        self.pump(block=True)

    def pump(self, block: bool = False) -> bool:
        """Push pending bytes out; returns True when fully drained."""
        while self._pending:
            try:
                sent = self._sock.send(self._pending)
            except (BlockingIOError, InterruptedError):
                if not block:
                    return False
                selectors_wait_writable(self._sock)
                continue
            del self._pending[:sent]
        return True

    @property
    def pending(self) -> int:
        return len(self._pending)


def selectors_wait_writable(sock: socket.socket) -> None:
    """Block until ``sock`` accepts more bytes (one-shot selector)."""
    with selectors.DefaultSelector() as selector:
        selector.register(sock, selectors.EVENT_WRITE)
        selector.select()


#: ``on_frame(opcode, req_id, body)`` — body is a memoryview valid only
#: for the duration of the callback.
FrameCallback = Callable[[int, int, memoryview], None]
EofCallback = Callable[[socket.socket], None]


class _Registration:
    __slots__ = ("reader", "on_frame", "on_eof")

    def __init__(self, reader: FrameReader, on_frame: FrameCallback,
                 on_eof: EofCallback) -> None:
        self.reader = reader
        self.on_frame = on_frame
        self.on_eof = on_eof


class Reactor:
    """One selector thread demultiplexing frames for many sockets.

    The router registers every shard channel's data and control sockets
    here; response frames resolve their pending requests from the loop
    thread. Compared with two blocking reader threads per shard, the
    scheduler wakes exactly one thread per readiness burst no matter
    how many shards answered.

    Registration and removal are thread-safe: both enqueue an operation
    and prod the loop through a self-pipe, and ``unregister`` blocks
    until the loop has dropped the socket, so the caller can close the
    fd without racing the selector.
    """

    def __init__(self, name: str = "fleet-reactor") -> None:
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._lock = threading.Lock()
        self._ops: List[tuple] = []
        self._stopping = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=name)
        self._thread.start()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    def register(self, sock: socket.socket, on_frame: FrameCallback,
                 on_eof: EofCallback,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        registration = _Registration(FrameReader(max_frame=max_frame),
                                     on_frame, on_eof)
        with self._lock:
            self._ops.append(("add", sock, registration, None))
        self._wake()

    def unregister(self, sock: socket.socket,
                   timeout: float = 5.0) -> None:
        """Drop ``sock`` and wait until the loop no longer touches it."""
        done = threading.Event()
        with self._lock:
            self._ops.append(("drop", sock, None, done))
        self._wake()
        done.wait(timeout)

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            self._stopping = True
        self._wake()
        self._thread.join(timeout)
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    def _apply_ops(self) -> bool:
        with self._lock:
            ops, self._ops = self._ops, []
            stopping = self._stopping
        for kind, sock, registration, done in ops:
            try:
                if kind == "add":
                    self._selector.register(sock, selectors.EVENT_READ,
                                            registration)
                else:
                    self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            if done is not None:
                done.set()
        return stopping

    def _drop(self, sock: socket.socket,
              registration: _Registration) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass
        registration.on_eof(sock)

    def _run(self) -> None:
        while True:
            if self._apply_ops():
                return
            try:
                events = self._selector.select()
            except OSError:
                # A registered fd was closed out from under us (worker
                # teardown racing the loop): sweep and carry on.
                self._sweep_closed()
                continue
            for key, _mask in events:
                registration = key.data
                if registration is None:
                    # Self-pipe prod: drain and loop back to the op queue.
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError:
                        pass
                    continue
                sock = key.fileobj
                status = registration.reader.fill(sock)
                if status is False:
                    self._drop(sock, registration)
                    continue
                if status is None:
                    continue
                try:
                    for opcode, req_id, body in \
                            registration.reader.frames():
                        registration.on_frame(opcode, req_id, body)
                except FrameError:
                    self._drop(sock, registration)

    def _sweep_closed(self) -> None:
        dead = []
        for key in list(self._selector.get_map().values()):
            sock = key.fileobj
            if getattr(sock, "fileno", lambda: -1)() == -1:
                dead.append((sock, key.data))
        for sock, registration in dead:
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            if registration is not None:
                registration.on_eof(sock)
