"""Churn-scale load: Zipf reconnect populations, storms, and their model.

The fabric's claim is about *churn*: a fleet of many device identities
whose reconnects are heavily skewed (a hot head re-attests constantly, a
long tail shows up rarely), served by shards the devices do not choose.
This module provides the three pieces needed to test that claim at the
million-identity scale the paper's relying party would face:

* :func:`zipf_sequence` — a deterministic Zipf(s) reconnect schedule
  over ``identities`` devices (seeded, CDF + bisect; no platform RNG
  variance).

* :func:`model_churn` — a discrete-event model of the appraisal-cache
  hit-rate under that schedule, in both fabric and partitioned modes.
  It reproduces the partitioned pathology exactly: every full verify
  mints a *new* resumption key, so a device bouncing between shards
  invalidates the entry its previous shard holds — same-shard affinity
  is the only way a partitioned cache ever hits, while the fabric
  replicates the freshest key everywhere. The model runs millions of
  identities in seconds; live runs validate it at small scale and
  ``BENCH_fabric.json`` records the gap.

* :func:`model_revocation_storm` — drain-time projection for a mass
  eviction: O(shards) frames with the batched/coalesced evict path
  versus O(devices) frames with the per-device RPC it replaces.

:func:`run_churn` is the live half: it drives a real gateway through a
reconnect schedule, one handshake at a time (closed loop — resumption
state must settle before the same device reconnects).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.loadgen import run_one_handshake

DEFAULT_SEED = 0x5EED_FAB


def zipf_sequence(identities: int, count: int, s: float = 1.1,
                  seed: int = DEFAULT_SEED) -> List[int]:
    """``count`` device indices drawn Zipf(s) over ``identities`` ranks.

    Deterministic for a given ``(identities, count, s, seed)`` on every
    platform: the CDF is explicit and the draws come from a seeded
    :class:`random.Random`. Rank 0 is the hottest device.
    """
    if identities < 1 or count < 0:
        raise ValueError("need at least one identity and count >= 0")
    cdf: List[float] = []
    total = 0.0
    for rank in range(1, identities + 1):
        total += 1.0 / (rank ** s)
        cdf.append(total)
    rng = Random(seed)
    return [bisect_right(cdf, rng.random() * total) for _ in range(count)]


@dataclass(frozen=True)
class ChurnProfile:
    """One churn workload: the population and the serving fleet."""

    identities: int = 1_000_000
    reconnects: int = 200_000
    zipf_s: float = 1.1
    shards: int = 2
    #: Per-shard appraisal-cache capacity (and, in fabric mode, the
    #: replicated store is sized ``capacity * shards``).
    cache_capacity: int = 65_536
    cache_ttl_s: Optional[float] = 300.0
    #: Virtual seconds between consecutive reconnects (drives TTL decay).
    mean_interarrival_s: float = 0.001
    seed: int = DEFAULT_SEED

    def sequence(self) -> List[int]:
        return zipf_sequence(self.identities, self.reconnects,
                             s=self.zipf_s, seed=self.seed)


@dataclass
class ChurnResult:
    """Predicted cache behaviour of one modelled churn run."""

    mode: str  # "fabric" | "partitioned"
    shards: int
    reconnects: int
    hits: int = 0
    misses: int = 0
    cross_shard_hits: int = 0
    full_verifies: int = 0
    expirations: int = 0
    distinct_devices: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def model_churn(profile: ChurnProfile, fabric: bool,
                sequence: Optional[Sequence[int]] = None) -> ChurnResult:
    """Discrete-event hit-rate projection of a Zipf reconnect workload.

    Mirrors the live gateway's mechanics exactly: connections are
    numbered globally from 1 and land on ``conn % shards`` (session
    affinity), a redeem hits only if the serving shard's entry holds the
    device's *current* resumption key, and every miss is a full verify
    that mints a fresh key (invalidating whatever other shards hold).
    With ``fabric=True`` the freshest entry is visible to every shard —
    the replication bus at zero modelled cost, its upper bound.
    """
    if sequence is None:
        sequence = profile.sequence()
    result = ChurnResult(mode="fabric" if fabric else "partitioned",
                         shards=profile.shards, reconnects=len(sequence))
    ttl = profile.cache_ttl_s
    #: device -> generation of its current resumption key.
    key_generation: Dict[int, int] = {}
    if fabric:
        # One replicated view: device -> (stored_t, generation, origin).
        store: "OrderedDict[int, Tuple[float, int, int]]" = OrderedDict()
        capacity = profile.cache_capacity * profile.shards
    else:
        # Partitioned: each shard sees only what it verified itself.
        caches: List["OrderedDict[int, Tuple[float, int]]"] = [
            OrderedDict() for _ in range(profile.shards)]
        capacity = profile.cache_capacity

    for conn, device in enumerate(sequence, start=1):
        now = conn * profile.mean_interarrival_s
        shard = conn % profile.shards
        generation = key_generation.get(device)
        hit = False
        if fabric:
            entry = store.get(device)
            if entry is not None:
                stored_t, entry_generation, origin = entry
                if ttl is not None and stored_t <= now - ttl:
                    del store[device]
                    result.expirations += 1
                elif generation is not None and \
                        entry_generation == generation:
                    hit = True
                    if origin != shard:
                        result.cross_shard_hits += 1
        else:
            cache = caches[shard]
            entry = cache.get(device)
            if entry is not None:
                stored_t, entry_generation = entry
                if ttl is not None and stored_t <= now - ttl:
                    del cache[device]
                    result.expirations += 1
                elif generation is not None and \
                        entry_generation == generation:
                    hit = True
        if hit:
            result.hits += 1
            continue
        # Full verify: a fresh resumption key supersedes every copy.
        result.misses += 1
        result.full_verifies += 1
        generation = (generation or 0) + 1
        key_generation[device] = generation
        if fabric:
            store.pop(device, None)
            store[device] = (now, generation, shard)
            while len(store) > capacity:
                store.popitem(last=False)
        else:
            cache = caches[shard]
            cache.pop(device, None)
            cache[device] = (now, generation)
            while len(cache) > capacity:
                cache.popitem(last=False)
    result.distinct_devices = len(key_generation)
    return result


@dataclass
class StormResult:
    """Projected cost of a mass-revocation / mass-evict fan-out."""

    revoked: int
    shards: int
    batched: bool
    frames: int
    drain_s: float


def model_revocation_storm(revoked: int, shards: int, batched: bool,
                           per_frame_s: float = 50e-6,
                           per_entry_s: float = 2e-6) -> StormResult:
    """Drain-time projection of evicting ``revoked`` devices' state.

    The per-device evict RPC issues one frame per device; the coalesced
    path issues one batched frame per shard carrying all of that shard's
    victims. Per-entry work (the TA dropping its state) is identical —
    the frames, and the round-trips they serialise, are the difference.
    """
    if revoked < 0 or shards < 1:
        raise ValueError("revoked must be >= 0 and shards >= 1")
    frames = min(shards, revoked) if batched else revoked
    return StormResult(
        revoked=revoked,
        shards=shards,
        batched=batched,
        frames=frames,
        drain_s=frames * per_frame_s + revoked * per_entry_s,
    )


@dataclass
class ChurnRunReport:
    """Outcome of one live churn drive."""

    reconnects: int
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_hz(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds


def run_churn(network, host: str, port: int, identity_public: bytes,
              stacks: Sequence, sequence: Sequence[int]) -> ChurnRunReport:
    """Drive a live gateway through a reconnect schedule, closed-loop.

    ``sequence`` indexes into ``stacks`` (one stack per device
    identity); each reconnect is a full handshake on a fresh connection,
    serially — the device's resumption key from handshake *n* is what
    makes handshake *n+1* a candidate cache hit, so overlap within one
    device would be a different workload, not an optimisation.
    """
    report = ChurnRunReport(reconnects=len(sequence))
    attempts: Dict[int, int] = {}
    started = time.perf_counter()
    for device in sequence:
        stack = stacks[device]
        attempt = attempts.get(device, 0)
        attempts[device] = attempt + 1
        outcome = run_one_handshake(network, host, port, identity_public,
                                    stack, attempt)
        if outcome.ok:
            report.completed += 1
        elif outcome.rejected:
            report.rejected += 1
        else:
            report.failed += 1
            report.errors[outcome.error] = \
                report.errors.get(outcome.error, 0) + 1
    report.wall_seconds = time.perf_counter() - started
    return report
