"""Hierarchical verification: edge gateways appraise, a root audits.

Ménétrey et al.'s distributed-TEE follow-up argues that fleet-scale
attestation cannot run through one verifier: appraisal must happen at
the *edge* (close to the devices, where the gateways already hold the
policy and the resumption tickets), while accountability and the
revocation authority concentrate at a *root*. This module is that
second tier:

* :class:`AuditRelay` lives beside one edge gateway and drains its
  hash-chained audit streams (PR 6's :class:`~repro.appraisal.audit.
  AuditLog`) into bounded, chain-verified batches — one stream per log:
  the router's engine plus, on a sharded gateway, one per shard
  *generation* (a respawned shard restarts its log at the genesis, so
  the stream key changes rather than the chain silently forking).

* :class:`RootAuditor` ingests those batches, re-verifying every hash
  chain against the per-stream cursor it keeps, folds the verdict
  counts into a fleet-wide view, and records one chained digest entry
  per accepted batch in its *own* audit log — the root's log is the
  court record over the edges' records. A batch whose chain does not
  extend the cursor (tampered, reordered, or gapped past the bounded
  ring) is rejected and counted, never ingested.

* Revocations flow the other way: :meth:`RootAuditor.revoke_measurement`
  / :meth:`revoke_identity` fan the killswitch out to every attached
  edge, each of which propagates it to its shards through the existing
  lazy policy-sync path. One call, fleet-wide effect.

The relay pulls (the root polls the edges through :meth:`RootAuditor.
pump`); nothing here owns threads — cadence belongs to the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.appraisal.audit import (
    AuditEntry,
    AuditLog,
    verify_chain,
)

#: Audit reason the root records per accepted batch digest.
BATCH_REASON = "audit-batch"

#: Default per-stream batch bound: small enough to stay far under the
#: bounded ring, large enough to amortise a pump over a busy edge.
DEFAULT_BATCH_LIMIT = 512


@dataclass
class AuditBatch:
    """One contiguous, chain-verified slice of an edge audit stream."""

    edge_id: str
    stream: str
    #: Digest preceding ``entries[0]`` — ``None`` means the slice starts
    #: at the stream's genesis (sequence 0).
    previous: Optional[bytes]
    entries: List[AuditEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class AuditRelay:
    """Edge-side drain: turns an edge gateway's logs into batches.

    Works against either gateway flavour by capability, not type: a
    gateway with ``shard_audit``/``shard_generations`` (the sharded
    router) contributes one stream per live shard generation next to
    its router-side engine log; a threaded gateway contributes just its
    engine's log. Gateways without an engine have no audit streams.
    """

    def __init__(self, edge_id: str, gateway,
                 batch_limit: int = DEFAULT_BATCH_LIMIT) -> None:
        if batch_limit < 1:
            raise ValueError("batch limit must be positive")
        self.edge_id = edge_id
        self.gateway = gateway
        self._batch_limit = batch_limit
        #: stream -> (next sequence to forward, digest of the last
        #: forwarded entry or None at genesis).
        self._cursors: Dict[str, Tuple[int, Optional[bytes]]] = {}

    def _slice(self, stream: str,
               entries: List[AuditEntry]) -> Optional[AuditBatch]:
        next_seq, previous = self._cursors.get(stream, (0, None))
        fresh = [entry for entry in entries
                 if entry.sequence >= next_seq][: self._batch_limit]
        if not fresh:
            return None
        batch = AuditBatch(edge_id=self.edge_id, stream=stream,
                           previous=previous, entries=fresh)
        self._cursors[stream] = (fresh[-1].sequence + 1, fresh[-1].digest)
        return batch

    def collect(self) -> List[AuditBatch]:
        """Everything new since the last collect, across all streams."""
        batches: List[AuditBatch] = []
        engine = getattr(self.gateway, "engine", None)
        if engine is not None:
            batch = self._slice("router", engine.audit.entries())
            if batch is not None:
                batches.append(batch)
        shard_audit = getattr(self.gateway, "shard_audit", None)
        if shard_audit is not None:
            for index, generation in self.gateway.shard_generations():
                # The generation is part of the stream key: a respawned
                # shard's log restarts at the genesis, which must read
                # as a *new* stream, not a rewind of the old one.
                stream = f"shard-{index}#{generation}"
                batch = self._slice(stream, shard_audit(index))
                if batch is not None:
                    batches.append(batch)
        return batches


class RootAuditor:
    """Fleet root: verifies edge audit digests, owns fleet revocation."""

    def __init__(self, audit: Optional[AuditLog] = None) -> None:
        self._lock = threading.Lock()
        self._relays: Dict[str, AuditRelay] = {}
        #: (edge, stream) -> digest the next batch must chain from.
        self._cursors: Dict[Tuple[str, str], Optional[bytes]] = {}
        self.audit = audit or AuditLog()
        self.batches_accepted = 0
        self.batches_rejected = 0
        self.entries_ingested = 0
        self.revocations_pushed = 0
        self.accepts = 0
        self.denials = 0
        self.denials_by_reason: Dict[str, int] = {}

    # -- edges ------------------------------------------------------------------

    def attach(self, edge_id: str, gateway,
               batch_limit: int = DEFAULT_BATCH_LIMIT) -> AuditRelay:
        """Register an edge gateway; returns its relay."""
        with self._lock:
            if edge_id in self._relays:
                raise ValueError(f"edge {edge_id!r} is already attached")
            relay = AuditRelay(edge_id, gateway, batch_limit=batch_limit)
            self._relays[edge_id] = relay
            return relay

    @property
    def edges(self) -> List[str]:
        with self._lock:
            return sorted(self._relays)

    # -- the upward path: audit ingestion ---------------------------------------

    def submit(self, batch: AuditBatch) -> bool:
        """Verify one batch against its stream cursor; ingest or reject.

        Acceptance demands both continuity (``batch.previous`` equals
        the digest this stream's last accepted batch ended on) and chain
        integrity (every entry's digest re-derives). Anything else —
        tampered fields, reordering, a gap where the edge's bounded ring
        dropped entries before they were relayed — is rejected whole.
        """
        with self._lock:
            cursor_key = (batch.edge_id, batch.stream)
            expected = self._cursors.get(cursor_key)
            if batch.previous != expected or not batch.entries:
                self.batches_rejected += 1
                return False
            if not verify_chain(batch.entries, previous=batch.previous):
                self.batches_rejected += 1
                return False
            self._cursors[cursor_key] = batch.entries[-1].digest
            self.batches_accepted += 1
            self.entries_ingested += len(batch.entries)
            for entry in batch.entries:
                if entry.accepted:
                    self.accepts += 1
                else:
                    self.denials += 1
                    self.denials_by_reason[entry.reason] = \
                        self.denials_by_reason.get(entry.reason, 0) + 1
        # The root's own chained record: one digest entry per batch,
        # binding the edge, stream, and the slice's closing digest.
        self.audit.record(
            tee_type=0, accepted=True, reason=BATCH_REASON,
            policy_fingerprint=batch.entries[-1].digest,
            detail=f"{batch.edge_id}/{batch.stream}"
                   f"+{len(batch.entries)}",
        )
        return True

    def pump(self) -> int:
        """Drain every attached edge once; returns entries ingested."""
        with self._lock:
            relays = list(self._relays.values())
        ingested = 0
        for relay in relays:
            for batch in relay.collect():
                if self.submit(batch):
                    ingested += len(batch)
        return ingested

    # -- the downward path: fleet-wide revocation --------------------------------

    def _fan_out(self, method: str, value: bytes) -> int:
        with self._lock:
            gateways = [relay.gateway for relay in self._relays.values()]
        pushed = 0
        for gateway in gateways:
            getattr(gateway, method)(value)
            pushed += 1
        with self._lock:
            self.revocations_pushed += pushed
        return pushed

    def revoke_measurement(self, claim: bytes) -> int:
        """Push a measurement revocation to every edge; returns count."""
        return self._fan_out("revoke_measurement", claim)

    def revoke_identity(self, identity: bytes) -> int:
        """Push an identity revocation to every edge; returns count."""
        return self._fan_out("revoke_identity", identity)

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "edges": sorted(self._relays),
                "batches_accepted": self.batches_accepted,
                "batches_rejected": self.batches_rejected,
                "entries_ingested": self.entries_ingested,
                "accepts": self.accepts,
                "denials": self.denials,
                "denials_by_reason": dict(self.denials_by_reason),
                "revocations_pushed": self.revocations_pushed,
                "root_log": len(self.audit),
            }
