"""Deterministic consistent-hash ring over shard members.

Ticket ownership must be a pure function of (membership, key): the
router computes it when deciding where to replicate, the rebalance path
recomputes it after a death or respawn, and the tests recompute it
independently — all three must agree, on every platform, with no RNG.
Every member contributes ``vnodes`` points derived from SHA-256 (the
repo's own primitive, not Python's salted ``hash``), so removing one
member moves only the keys it owned, roughly ``1/len(members)`` of the
space, instead of reshuffling everything the way ``conn_id % shards``
does.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

from repro.crypto.hashing import sha256

#: Default virtual nodes per member: enough to keep the largest/smallest
#: ownership-arc ratio small at single-digit member counts.
DEFAULT_VNODES = 64


def _point(label: bytes) -> int:
    return int.from_bytes(sha256(label)[:8], "big")


class HashRing:
    """Consistent-hash ownership of byte keys across integer members."""

    def __init__(self, members: Iterable[int] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("ring needs at least one vnode per member")
        self._vnodes = vnodes
        self._members: set = set()
        self._points: List[Tuple[int, int]] = []  # (hash, member), sorted
        self._hashes: List[int] = []
        for member in members:
            self.add(member)

    def _rebuild(self) -> None:
        points = []
        for member in self._members:
            for vnode in range(self._vnodes):
                points.append((_point(b"fabric-member:%d:%d"
                                      % (member, vnode)), member))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def add(self, member: int) -> None:
        if member not in self._members:
            self._members.add(member)
            self._rebuild()

    def remove(self, member: int) -> None:
        if member in self._members:
            self._members.discard(member)
            self._rebuild()

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def owner(self, key: bytes) -> Optional[int]:
        """The member owning ``key``; ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._hashes, _point(bytes(key)))
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members
