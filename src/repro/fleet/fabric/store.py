"""The replicated resumption-ticket store and its wire codecs.

Authority lives with the router: every ticket a shard mints (a full
msg2 verify followed by :meth:`AppraisalCache.store`) is reported back
on the reply frame, recorded here, and replicated out — eagerly to the
key's consistent-hash owner, lazily to whichever shard is about to
serve a msg2 for that key. Replication is *versioned*: the store stamps
each accepted mint with its scope epoch (bumped whenever the combined
policy fingerprint moves, i.e. on every revocation) and a globally
monotonic sequence number, and evictions leave sequence-stamped
tombstones. A shard-side :class:`ReplicaState` admits a ``TICKET_PUT``
only if it is newer than everything it has seen for that key, so late,
reordered or replayed replication frames can never resurrect a revoked
or superseded ticket.

Clock discipline: entries carry the *router's* monotonic store time and
travel as relative ages (``age_ns``), because shard processes have
unrelated monotonic clocks. A seeded replica therefore inherits the
authority's residual TTL rather than restarting it.
"""

from __future__ import annotations

import struct
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import RESUMPTION_KEY_SIZE
from repro.crypto.hashing import SHA256_SIZE
from repro.fleet.cache import AppraisalCache, CacheKey
from repro.fleet.fabric.ring import DEFAULT_VNODES, HashRing

_KEY_HEAD = struct.Struct(">BI")
_U32 = struct.Struct(">I")
_PUT_HEAD = struct.Struct(">QQQ")  # epoch, seq, age_ns
_MINT_AGE = struct.Struct(">Q")


# -- wire codecs ----------------------------------------------------------------


def encode_ticket_key(key: CacheKey) -> bytes:
    """``u8 tee | (u32 len | bytes) x identity, claim, cache_extra``."""
    tee, identity, claim, extra = key
    out = [_KEY_HEAD.pack(tee, len(identity)), identity]
    for part in (claim, extra):
        out.append(_U32.pack(len(part)))
        out.append(part)
    return b"".join(out)


def decode_ticket_key(blob: bytes, offset: int = 0
                      ) -> Tuple[CacheKey, int]:
    tee, id_len = _KEY_HEAD.unpack_from(blob, offset)
    offset += _KEY_HEAD.size
    identity = bytes(blob[offset:offset + id_len])
    offset += id_len
    parts = []
    for _ in range(2):
        (length,) = _U32.unpack_from(blob, offset)
        offset += _U32.size
        parts.append(bytes(blob[offset:offset + length]))
        offset += length
    return (tee, identity, parts[0], parts[1]), offset


def encode_ticket_put(epoch: int, seq: int, age_ns: int, fingerprint: bytes,
                      key: CacheKey, resumption_key: bytes) -> bytes:
    """Body of ``OP_TICKET_PUT`` (and of each ``OP_TICKET_SYNC`` entry)."""
    return (_PUT_HEAD.pack(epoch, seq, age_ns) + bytes(fingerprint)
            + bytes(resumption_key) + encode_ticket_key(key))


def decode_ticket_put(body: bytes
                      ) -> Tuple[int, int, int, bytes, CacheKey, bytes]:
    epoch, seq, age_ns = _PUT_HEAD.unpack_from(body)
    offset = _PUT_HEAD.size
    fingerprint = bytes(body[offset:offset + SHA256_SIZE])
    offset += SHA256_SIZE
    resumption_key = bytes(body[offset:offset + RESUMPTION_KEY_SIZE])
    offset += RESUMPTION_KEY_SIZE
    key, _ = decode_ticket_key(body, offset)
    return epoch, seq, age_ns, fingerprint, key, resumption_key


def encode_ticket_evict(epoch: int, seq: int, key: CacheKey) -> bytes:
    """Body of ``OP_TICKET_EVICT``: a sequence-stamped tombstone."""
    return struct.pack(">QQ", epoch, seq) + encode_ticket_key(key)


def decode_ticket_evict(body: bytes) -> Tuple[int, int, CacheKey]:
    epoch, seq = struct.unpack_from(">QQ", body)
    key, _ = decode_ticket_key(body, 16)
    return epoch, seq, key


def encode_ticket_mint(fingerprint: bytes, age_ns: int, key: CacheKey,
                       resumption_key: bytes) -> bytes:
    """One shard-minted ticket, reported on the message reply frame.

    Mints carry no epoch/sequence — the router is the versioning
    authority and stamps them on acceptance; the fingerprint is the
    scope the shard stored under, so a mint that raced a revocation is
    recognisably stale and dropped.
    """
    return (bytes(fingerprint) + _MINT_AGE.pack(age_ns)
            + bytes(resumption_key) + encode_ticket_key(key))


def decode_ticket_mint(body: bytes) -> Tuple[bytes, int, CacheKey, bytes]:
    fingerprint = bytes(body[:SHA256_SIZE])
    offset = SHA256_SIZE
    (age_ns,) = _MINT_AGE.unpack_from(body, offset)
    offset += _MINT_AGE.size
    resumption_key = bytes(body[offset:offset + RESUMPTION_KEY_SIZE])
    offset += RESUMPTION_KEY_SIZE
    key, _ = decode_ticket_key(body, offset)
    return fingerprint, age_ns, key, resumption_key


def ticket_key_from_message(data: bytes) -> Optional[CacheKey]:
    """Best-effort appraisal-cache key from a msg2's *public* bytes.

    This is what lets the router push a replicated ticket to the serving
    shard ahead of the message (the lazy half of replication): plain
    msg2 and the multi-TEE envelope both carry every keyed field in the
    clear, the same property :func:`prewarm_msg2_tables` exploits.
    Encrypted msg2 (``MSG2_ENC``) and malformed input yield ``None`` —
    the shard then simply takes its normal path.
    """
    from repro.core import protocol

    if not data:
        return None
    try:
        if data[0] == protocol.MSG2:
            evidence = protocol.decode_msg2(data).signed_evidence.evidence
            return AppraisalCache._key(evidence)
        if data[0] == protocol.MSG2_MULTI:
            from repro.appraisal.envelope import default_registry

            global _key_registry
            if _key_registry is None:
                _key_registry = default_registry()
            multi = protocol.decode_msg2_multi(data)
            return AppraisalCache._key(_key_registry.decode(multi.envelope))
    except Exception:
        return None
    return None


#: Lazily built registry for decoding multi-TEE envelopes; key
#: derivation is pure maths over public bytes, so one shared default
#: registry is fine even when the verifier runs a restricted one.
_key_registry = None


# -- the router-side authority ---------------------------------------------------


class FabricTicket:
    """One replicated ticket: the key material plus replication state."""

    __slots__ = ("resumption_key", "stored_ns", "seq", "origin", "replicas")

    def __init__(self, resumption_key: bytes, stored_ns: int, seq: int,
                 origin: int) -> None:
        self.resumption_key = resumption_key
        self.stored_ns = stored_ns
        self.seq = seq
        self.origin = origin
        #: Members known to hold this (epoch, seq) of the entry.
        self.replicas = {origin}


class FabricStore:
    """Epoch/sequence-versioned authority over the fleet's tickets.

    The epoch is the scope-fingerprint generation: :meth:`refresh` bumps
    it (and drops every entry and tombstone) whenever the combined
    policy fingerprint moves, so a revocation invalidates all
    outstanding tickets fabric-wide in O(1) — replicas converge because
    their caches are fingerprint-scoped and their
    :class:`ReplicaState` rejects anything from an older epoch.
    """

    def __init__(self, members, capacity: int = 65536,
                 ttl_s: Optional[float] = None,
                 vnodes: int = DEFAULT_VNODES,
                 time_source=time.monotonic_ns) -> None:
        if capacity < 1:
            raise ValueError("fabric store capacity must be positive")
        self._capacity = capacity
        self._ttl_ns = None if ttl_s is None else int(ttl_s * 1e9)
        self._now = time_source
        self._lock = threading.Lock()
        self._ring = HashRing(members, vnodes=vnodes)
        self._entries: "OrderedDict[CacheKey, FabricTicket]" = OrderedDict()
        self._tombstones: Dict[CacheKey, int] = {}
        self._fingerprint: Optional[bytes] = None
        self.epoch = 1
        self._seq = 0
        self.mints = 0
        self.stale_mints = 0
        self.evictions = 0
        self.expirations = 0
        self.epoch_bumps = 0
        self.rebalanced = 0

    # -- scope ------------------------------------------------------------------

    def refresh(self, fingerprint: bytes) -> bool:
        """Adopt the current combined policy fingerprint.

        A change means every outstanding appraisal (and so every ticket)
        is void: entries and tombstones clear and the epoch bumps, which
        is the rule that makes an un-revoke safe — the pre-revocation
        tickets live in an epoch no replica will accept again.
        """
        fingerprint = bytes(fingerprint)
        with self._lock:
            if fingerprint == self._fingerprint:
                return False
            if self._fingerprint is not None:
                self.epoch += 1
                self.epoch_bumps += 1
            self._fingerprint = fingerprint
            self._entries.clear()
            self._tombstones.clear()
            return True

    @property
    def fingerprint(self) -> Optional[bytes]:
        with self._lock:
            return self._fingerprint

    # -- entries ----------------------------------------------------------------

    def _expired(self, entry: FabricTicket) -> bool:
        return (self._ttl_ns is not None
                and entry.stored_ns <= self._now() - self._ttl_ns)

    def record_mint(self, origin: int, fingerprint: bytes, key: CacheKey,
                    resumption_key: bytes,
                    age_ns: int = 0) -> Optional[FabricTicket]:
        """Accept a shard-minted ticket; ``None`` if its scope is stale.

        Call :meth:`refresh` with the *current* fingerprint first; a
        mint whose fingerprint differs raced a policy change and is
        dropped (its shard's cache will clear on its own refresh).
        """
        with self._lock:
            if bytes(fingerprint) != self._fingerprint:
                self.stale_mints += 1
                return None
            self._seq += 1
            entry = FabricTicket(bytes(resumption_key),
                                 self._now() - age_ns, self._seq, origin)
            self._entries.pop(key, None)
            self._entries[key] = entry
            self._tombstones.pop(key, None)  # superseded by a newer seq
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            self.mints += 1
            return entry

    def lookup(self, key: CacheKey) -> Optional[FabricTicket]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                return None
            return entry

    def age_ns(self, entry: FabricTicket) -> int:
        return max(0, self._now() - entry.stored_ns)

    def evict(self, key: CacheKey
              ) -> Optional[Tuple[int, int, List[int]]]:
        """Drop an entry, leaving a tombstone newer than every replica.

        Returns ``(epoch, seq, replicas)`` so the caller can fan the
        ``OP_TICKET_EVICT`` out to exactly the members holding it.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._seq += 1
            self._tombstones[key] = self._seq
            self.evictions += 1
            return self.epoch, self._seq, sorted(entry.replicas)

    def evict_identity(self, identity: bytes
                       ) -> List[Tuple[CacheKey, int, int, List[int]]]:
        """Tombstone every ticket bound to one attestation identity."""
        with self._lock:
            keys = [key for key in self._entries if key[1] == identity]
        evicted = []
        for key in keys:
            result = self.evict(key)
            if result is not None:
                evicted.append((key,) + result)
        return evicted

    def mark_replicated(self, key: CacheKey, member: int) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.replicas.add(member)

    def pending_push(self, key: CacheKey, member: int
                     ) -> Optional[Tuple[int, int, int, bytes]]:
        """What (if anything) ``member`` is missing for ``key``.

        Returns ``(epoch, seq, age_ns, resumption_key)`` when the store
        holds a live entry the member has no replica of — the payload of
        the lazy ``OP_TICKET_PUT`` the router sends ahead of the msg2.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                return None
            if member in entry.replicas:
                return None
            return (self.epoch, entry.seq,
                    max(0, self._now() - entry.stored_ns),
                    entry.resumption_key)

    # -- membership -------------------------------------------------------------

    def owner(self, key: CacheKey) -> Optional[int]:
        return self._ring.owner(encode_ticket_key(key))

    @property
    def members(self) -> frozenset:
        return self._ring.members

    def member_down(self, member: int) -> List[Tuple[CacheKey, int]]:
        """Remove a member; plan the deterministic rebalance.

        The member's replicas are forgotten (its process state is gone)
        and the ring shrinks, so ownership of its arc moves to the
        survivors. Returns ``(key, new_owner)`` for every entry whose
        owner changed and whose new owner holds no replica yet — the
        eager pushes that keep the owner invariant across the death.
        """
        with self._lock:
            owned_before = {
                key: self._ring.owner(encode_ticket_key(key))
                for key in self._entries
            }
            self._ring.remove(member)
            moves = []
            for key, entry in self._entries.items():
                entry.replicas.discard(member)
                if owned_before[key] != member:
                    continue
                new_owner = self._ring.owner(encode_ticket_key(key))
                if new_owner is not None and \
                        new_owner not in entry.replicas:
                    moves.append((key, new_owner))
            self.rebalanced += len(moves)
            return moves

    def member_up(self, member: int) -> List[CacheKey]:
        """Re-add a member; return the keys it now owns (to sync)."""
        with self._lock:
            self._ring.add(member)
            return [key for key in self._entries
                    if self._ring.owner(encode_ticket_key(key)) == member]

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "epoch": self.epoch,
                "sequence": self._seq,
                "members": sorted(self._ring.members),
                "tombstones": len(self._tombstones),
                "mints": self.mints,
                "stale_mints": self.stale_mints,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "epoch_bumps": self.epoch_bumps,
                "rebalanced": self.rebalanced,
            }


# -- the shard-side replica bookkeeping -------------------------------------------


class ReplicaState:
    """Versioned admission control for replication frames in a shard.

    The shard's appraisal cache holds the ticket material; this tracks
    the highest ``(epoch, seq)`` applied per key plus per-key eviction
    tombstones, so a replayed or reordered ``OP_TICKET_PUT`` — however
    it arrives — can never reinstate something newer frames retired.
    """

    def __init__(self) -> None:
        self.epoch = 0
        self._applied: Dict[CacheKey, int] = {}
        self._tombstones: Dict[CacheKey, int] = {}
        self.applied = 0
        self.rejected = 0
        self.evicted = 0

    def _enter_epoch(self, epoch: int) -> bool:
        if epoch < self.epoch:
            return False
        if epoch > self.epoch:
            # A new epoch retires all per-key state wholesale: the
            # fingerprint-scoped cache clears itself on its next access.
            self.epoch = epoch
            self._applied.clear()
            self._tombstones.clear()
        return True

    def admit_put(self, epoch: int, seq: int, key: CacheKey) -> bool:
        if not self._enter_epoch(epoch) \
                or seq <= self._tombstones.get(key, -1) \
                or seq <= self._applied.get(key, -1):
            self.rejected += 1
            return False
        self._applied[key] = seq
        self.applied += 1
        return True

    def admit_evict(self, epoch: int, seq: int, key: CacheKey) -> bool:
        if not self._enter_epoch(epoch) \
                or seq <= self._tombstones.get(key, -1):
            self.rejected += 1
            return False
        self._tombstones[key] = seq
        self.evicted += 1
        return True

    def snapshot(self) -> Dict[str, int]:
        return {
            "epoch": self.epoch,
            "applied": self.applied,
            "rejected": self.rejected,
            "evicted": self.evicted,
        }
