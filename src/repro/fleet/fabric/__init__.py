"""repro.fleet.fabric: the replicated resumption-ticket tier.

PR 4 sharded the gateway but left appraisal caches partitioned per
shard: a device that reconnects to a different shard always pays the
full msg2 ECDSA verify — exactly the cost the paper's resumption
tickets exist to amortise. This package makes any shard able to resume
any device:

* :mod:`~repro.fleet.fabric.ring` — deterministic consistent-hash
  ownership of ticket keys across shard members, so rebalancing on
  shard death/respawn moves only the dead member's slice.
* :mod:`~repro.fleet.fabric.store` — the router-side replicated store
  (epoch/sequence-versioned so late or reordered replication can never
  resurrect a revoked or stale ticket), the shard-side replica
  bookkeeping, and the wire codecs for the ``OP_TICKET_*`` opcodes.
* :mod:`~repro.fleet.fabric.hierarchy` — hierarchical verification:
  edge gateways appraise and seal tickets; a root auditor ingests
  batched, hash-chained audit digests and pushes fleet-wide
  revocations down.
* :mod:`~repro.fleet.fabric.churn` — million-identity synthetic
  populations with Zipf-distributed reconnects, the churn/storm
  extension of the DES capacity model, and the live churn driver.

The fabric is off by default (``FleetConfig.fabric=False``); disabled,
the gateways are byte-identical in transcript and SimClock behaviour to
the pre-fabric code. See DESIGN.md §13.
"""

from repro.fleet.fabric.churn import (
    ChurnProfile,
    ChurnResult,
    ChurnRunReport,
    StormResult,
    model_churn,
    model_revocation_storm,
    run_churn,
    zipf_sequence,
)
from repro.fleet.fabric.hierarchy import AuditBatch, AuditRelay, RootAuditor
from repro.fleet.fabric.ring import HashRing
from repro.fleet.fabric.store import (
    FabricStore,
    FabricTicket,
    ReplicaState,
    decode_ticket_evict,
    decode_ticket_key,
    decode_ticket_mint,
    decode_ticket_put,
    encode_ticket_evict,
    encode_ticket_key,
    encode_ticket_mint,
    encode_ticket_put,
    ticket_key_from_message,
)

__all__ = [
    "AuditBatch",
    "AuditRelay",
    "ChurnProfile",
    "ChurnResult",
    "ChurnRunReport",
    "FabricStore",
    "FabricTicket",
    "HashRing",
    "ReplicaState",
    "RootAuditor",
    "StormResult",
    "decode_ticket_evict",
    "decode_ticket_key",
    "decode_ticket_mint",
    "decode_ticket_put",
    "encode_ticket_evict",
    "encode_ticket_key",
    "encode_ticket_mint",
    "encode_ticket_put",
    "model_churn",
    "model_revocation_storm",
    "run_churn",
    "ticket_key_from_message",
    "zipf_sequence",
]
