"""Load generation and capacity modelling for the fleet gateway.

Two halves, split along the repo's clock discipline (DESIGN.md):

* :func:`run_load` drives N concurrent attester stacks — each a fresh
  testbed device with its own SoC, kernel attestation service and
  protocol engine — through full RA handshakes and secret delivery over
  real threads. Every crypto segment is measured in real
  ``perf_counter`` seconds; every world transition lands on the
  attester's (and the gateway device's) ``SimClock``.

* :func:`model_fleet` composes those *measured* per-message costs into a
  deterministic discrete-event model of the fleet: attesters are
  independent boards, and the gateway's verifier TA lanes serve their
  messages like a K-server queue. This is the same composition approach
  the repo uses for the Fig. 3 platform latencies: measure the
  primitives for real, let the architecture-level numbers emerge from
  composition.

With the process-sharded gateway (:mod:`repro.fleet.shards`) the live
numbers scale with host cores too — each shard is its own process with
its own GIL — so the model is no longer the only way to see scaling: the
fleet benchmark reports the live-vs-model gap per shard count, and the
model remains the reference for projecting beyond the cores this host
has (its lanes are *ideal* serial servers with zero routing cost).
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence

from repro.core.attester import Attester
from repro.core.measurement import measure_bytes
from repro.errors import FleetOverloaded, ReproError
from repro.bench.harness import percentile


@dataclass
class AttesterStack:
    """One attesting board: device + protocol engine + measured claim."""

    index: int
    device: object  # repro.testbed.Device
    attester: Attester
    claim: bytes

    def sign_evidence(self, body: bytes) -> bytes:
        """Sign through the kernel attestation service, as the runtime TA
        would: the call only exists in the secure world, so it pays the
        world transition on this board's own clock."""
        with self.device.soc.enter_secure_world():
            return self.device.kernel.attestation_service.sign_evidence(body)


def build_attester_stacks(testbed, policy, count: int,
                          claim: Optional[bytes] = None,
                          trusted: bool = True) -> List[AttesterStack]:
    """Manufacture ``count`` fresh attester boards and endorse them.

    ``trusted=False`` builds stacks whose measurement is *not* added to
    the reference values — attesters that must be rejected.
    """
    if claim is None:
        label = b"fleet attested application v1" if trusted \
            else b"fleet tampered application"
        claim = measure_bytes(label).digest
    if trusted:
        policy.trust_measurement(claim)
    stacks = []
    for _ in range(count):
        device = testbed.create_device()
        policy.endorse(device.attestation_public_key)
        if trusted:
            policy.trust_boot_measurement(device.kernel.boot_measurement)
        stacks.append(AttesterStack(
            index=len(stacks),
            device=device,
            attester=Attester(os.urandom),
            claim=claim,
        ))
    return stacks


@dataclass
class MultiTeeStack:
    """One heterogeneous-fleet attester: an evidence backend + protocol.

    The protocol engine is the unchanged :class:`Attester` — the
    multi-TEE message variants are backend-agnostic — while the evidence
    itself comes from either a TrustZone testbed board (``device``) or a
    synthetic SGX/TDX device (``enclave``). Exactly one of the two is
    set.
    """

    index: int
    tee_type: int
    attester: Attester
    claim: bytes
    device: object = None   # repro.testbed.Device (TrustZone)
    enclave: object = None  # repro.appraisal.synthetic device (SGX/TDX)
    tracer: object = None   # enclave stacks have no SoC to carry one

    def collect_view(self, anchor: bytes):
        """Produce this backend's evidence view for a session anchor."""
        if self.enclave is not None:
            return self.enclave.collect_evidence(anchor)
        from repro.appraisal.codecs.trustzone import TrustZoneView

        signed = self.attester.collect_evidence(
            anchor, self.claim, self.device.attestation_public_key,
            self._sign_evidence,
            boot_claim=self.device.kernel.boot_measurement,
        )
        return TrustZoneView(signed)

    def _sign_evidence(self, body: bytes) -> bytes:
        with self.device.soc.enter_secure_world():
            return self.device.kernel.attestation_service.sign_evidence(body)


def build_mixed_stacks(testbed, appraisal, population: Sequence[int],
                       claim: Optional[bytes] = None,
                       trusted: bool = True) -> List["MultiTeeStack"]:
    """Manufacture a heterogeneous attester population and provision it.

    ``population`` is a sequence of envelope TEE tags (one stack per
    entry); ``appraisal`` is the :class:`repro.appraisal.AppraisalPolicy`
    the fleet's engine enforces, which this provisions in place: every
    backend presents the *same* Wasm measurement (``claim``; the MRTD is
    its fixed widening), so one logical reference value covers the whole
    fleet. ``trusted=False`` skips the provisioning — attesters the
    policy must deny.
    """
    from repro.appraisal import synthetic
    from repro.appraisal.envelope import TEE_SGX, TEE_TDX, TEE_TRUSTZONE

    if claim is None:
        label = b"fleet attested application v1" if trusted \
            else b"fleet tampered application"
        claim = measure_bytes(label).digest
    stacks: List[MultiTeeStack] = []
    for tee_type in population:
        index = len(stacks)
        device = None
        enclave = None
        if tee_type == TEE_TRUSTZONE:
            device = testbed.create_device()
            if trusted:
                tee = appraisal.accept_tee(TEE_TRUSTZONE)
                tee.trust_measurement(claim)
                tee.endorse(device.attestation_public_key)
                tee.trust_boot_measurement(device.kernel.boot_measurement)
        elif tee_type == TEE_SGX:
            enclave = synthetic.sgx_enclave(index, claim)
            if trusted:
                tee = appraisal.accept_tee(TEE_SGX)
                tee.trust_measurement(enclave.mrenclave)
                tee.endorse(enclave.attestation_public_key)
                tee.trust_signer(enclave.mrsigner)
        elif tee_type == TEE_TDX:
            enclave = synthetic.tdx_domain(index, claim)
            if trusted:
                tee = appraisal.accept_tee(TEE_TDX)
                tee.trust_measurement(enclave.mrtd)
                tee.endorse(enclave.attestation_public_key)
        else:
            raise ValueError(f"unknown tee_type {tee_type:#04x}")
        stacks.append(MultiTeeStack(
            index=index,
            tee_type=tee_type,
            attester=Attester(os.urandom),
            claim=claim,
            device=device,
            enclave=enclave,
        ))
    return stacks


@dataclass(frozen=True)
class LoadProfile:
    """What the load generator drives."""

    concurrency: int = 4
    handshakes_per_attester: int = 2
    blob_size: int = 4 * 1024


@dataclass
class HandshakeResult:
    """Outcome and real-time breakdown of one attempted handshake."""

    attester: int
    index: int
    ok: bool
    rejected: bool = False
    error: str = ""
    secret_len: int = 0
    #: Real perf_counter seconds per segment: client_pre (keygen + msg0),
    #: wait_msg1 (includes the gateway's msg0 service), client_mid (msg1
    #: checks + evidence signing + msg2 build), wait_msg3 (includes the
    #: gateway's msg2 appraisal), client_post (msg3 decrypt), total.
    segments: Dict[str, float] = field(default_factory=dict)


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    profile: LoadProfile
    results: List[HandshakeResult]
    wall_seconds: float

    @property
    def completed(self) -> List[HandshakeResult]:
        return [r for r in self.results if r.ok]

    @property
    def rejected(self) -> List[HandshakeResult]:
        return [r for r in self.results if r.rejected]

    @property
    def failed(self) -> List[HandshakeResult]:
        return [r for r in self.results if not r.ok and not r.rejected]

    @property
    def throughput_hz(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.completed) / self.wall_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        totals = [r.segments["total"] for r in self.completed]
        if not totals:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": percentile(totals, 0.50),
            "p95": percentile(totals, 0.95),
            "p99": percentile(totals, 0.99),
        }

    def segment_median(self, name: str) -> float:
        values = [r.segments[name] for r in self.completed
                  if name in r.segments]
        return median(values) if values else 0.0


def run_one_handshake(network, host: str, port: int,
                      identity_public: bytes, stack: AttesterStack,
                      attempt: int = 0) -> HandshakeResult:
    """Drive one full RA handshake + secret delivery over the fabric.

    With a tracer attached to the attester board's SoC, every client
    segment is mirrored as a ``core.protocol.msg*`` span under one
    ``fleet.handshake`` root (the attester-side view of the handshake).
    """
    result = HandshakeResult(attester=stack.index, index=attempt, ok=False)
    segments = result.segments
    tracer = stack.device.soc.tracer

    def traced(name):
        return nullcontext() if tracer is None \
            else tracer.span(name, world="normal")

    total_start = time.perf_counter()
    try:
        connection = network.connect(host, port)
    except ReproError as exc:
        result.error = type(exc).__name__
        return result
    root = ExitStack()
    try:
        if tracer is not None:
            root.enter_context(tracer.span(
                "fleet.handshake", world="normal",
                attester=stack.index, attempt=attempt))
        started = time.perf_counter()
        with traced("core.protocol.msg0"):
            session = stack.attester.start_session(identity_public)
            connection.send(stack.attester.make_msg0(session))
        segments["client_pre"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("net.wait_msg1"):
            msg1 = connection.receive()
        segments["wait_msg1"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("core.protocol.msg2"):
            stack.attester.handle_msg1(session, msg1)
            signed = stack.attester.collect_evidence(
                session.anchor, stack.claim,
                stack.device.attestation_public_key,
                stack.sign_evidence,
                boot_claim=stack.device.kernel.boot_measurement,
            )
            connection.send(stack.attester.make_msg2(session, signed))
        segments["client_mid"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("net.wait_msg3"):
            msg3 = connection.receive()
        segments["wait_msg3"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("core.protocol.msg3"):
            secret = stack.attester.handle_msg3(session, msg3)
        segments["client_post"] = time.perf_counter() - started

        result.ok = True
        result.secret_len = len(secret)
    except FleetOverloaded:
        result.rejected = True
        result.error = "FleetOverloaded"
    except ReproError as exc:
        result.error = type(exc).__name__
    finally:
        root.close()  # end the fleet.handshake span, if one was opened
        segments["total"] = time.perf_counter() - total_start
        try:
            connection.close()
        except ReproError:
            pass
    return result


def run_one_handshake_multi(network, host: str, port: int,
                            identity_public: bytes, stack: MultiTeeStack,
                            attempt: int = 0) -> HandshakeResult:
    """One multi-TEE handshake: envelope-framed evidence, any backend.

    Same segment breakdown as :func:`run_one_handshake`; the transcript
    differs only in the message variants (msg0/1/2 carry the negotiated
    ``tee_type``, the evidence travels in a self-describing envelope).
    """
    result = HandshakeResult(attester=stack.index, index=attempt, ok=False)
    segments = result.segments
    tracer = stack.tracer
    if tracer is None and stack.device is not None:
        tracer = stack.device.soc.tracer

    def traced(name):
        return nullcontext() if tracer is None \
            else tracer.span(name, world="normal")

    total_start = time.perf_counter()
    try:
        connection = network.connect(host, port)
    except ReproError as exc:
        result.error = type(exc).__name__
        return result
    root = ExitStack()
    try:
        if tracer is not None:
            root.enter_context(tracer.span(
                "fleet.handshake", world="normal",
                attester=stack.index, attempt=attempt,
                tee_type=stack.tee_type))
        started = time.perf_counter()
        with traced("core.protocol.msg0"):
            session = stack.attester.start_session(identity_public)
            connection.send(stack.attester.make_msg0_multi(
                session, stack.tee_type))
        segments["client_pre"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("net.wait_msg1"):
            msg1 = connection.receive()
        segments["wait_msg1"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("core.protocol.msg2"):
            stack.attester.handle_msg1(session, msg1)
            view = stack.collect_view(session.anchor)
            connection.send(stack.attester.make_msg2_multi(session, view))
        segments["client_mid"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("net.wait_msg3"):
            msg3 = connection.receive()
        segments["wait_msg3"] = time.perf_counter() - started

        started = time.perf_counter()
        with traced("core.protocol.msg3"):
            secret = stack.attester.handle_msg3(session, msg3)
        segments["client_post"] = time.perf_counter() - started

        result.ok = True
        result.secret_len = len(secret)
    except FleetOverloaded:
        result.rejected = True
        result.error = "FleetOverloaded"
    except ReproError as exc:
        result.error = type(exc).__name__
    finally:
        root.close()
        segments["total"] = time.perf_counter() - total_start
        try:
            connection.close()
        except ReproError:
            pass
    return result


def run_load(network, host: str, port: int, identity_public: bytes,
             stacks: Sequence[AttesterStack],
             profile: LoadProfile) -> LoadReport:
    """Drive every stack through its handshakes on concurrent threads.

    Accepts legacy :class:`AttesterStack` and :class:`MultiTeeStack`
    entries in the same population — mixed fleets are one run.
    """
    if len(stacks) < profile.concurrency:
        raise ValueError("not enough attester stacks for the concurrency")
    active = list(stacks)[: profile.concurrency]
    results: List[HandshakeResult] = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(len(active))

    def drive(stack) -> None:
        runner = run_one_handshake_multi \
            if isinstance(stack, MultiTeeStack) else run_one_handshake
        barrier.wait()
        for attempt in range(profile.handshakes_per_attester):
            outcome = runner(network, host, port,
                             identity_public, stack, attempt)
            with results_lock:
                results.append(outcome)

    threads = [threading.Thread(target=drive, args=(stack,), daemon=True)
               for stack in active]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start
    return LoadReport(profile=profile, results=results,
                      wall_seconds=wall_seconds)


# --- capacity model -----------------------------------------------------------


@dataclass(frozen=True)
class FleetModel:
    """Measured per-segment costs (seconds) composing one handshake."""

    client_pre_s: float
    client_mid_s: float
    client_post_s: float
    server_msg0_s: float
    server_msg2_s: float

    @classmethod
    def from_measurements(cls, report: LoadReport,
                          records) -> "FleetModel":
        """Medians of a live run: client segments from the load report,
        server service times from the gateway's message records."""
        msg0 = [r.service_s for r in records if r.kind == "msg0"]
        msg2 = [r.service_s for r in records if r.kind == "msg2"]
        # The wait segments contain the server service (synchronous
        # fabric); the pure client cost is measured directly.
        return cls(
            client_pre_s=report.segment_median("client_pre"),
            client_mid_s=report.segment_median("client_mid"),
            client_post_s=report.segment_median("client_post"),
            server_msg0_s=median(msg0) if msg0 else 0.0,
            server_msg2_s=median(msg2) if msg2 else 0.0,
        )


@dataclass
class ModelResult:
    """Deterministic fleet-capacity projection."""

    concurrency: int
    workers: int
    handshakes: int
    makespan_s: float
    throughput_hz: float
    p50_s: float
    p95_s: float
    p99_s: float


def model_fleet(model: FleetModel, workers: int, concurrency: int,
                handshakes_per_attester: int,
                arrival_interval_s: float = 0.0) -> ModelResult:
    """Discrete-event projection of the gateway serving a fleet.

    Attesters are independent boards; their client segments overlap
    freely. Server segments (msg0 handling, msg2 appraisal) queue on
    ``workers`` verifier TA lanes, FIFO in ready order. With
    ``arrival_interval_s`` > 0 handshakes arrive on a fixed global
    schedule (open loop); otherwise each attester re-attests as soon as
    the previous handshake finishes (closed loop).
    """
    if workers < 1 or concurrency < 1 or handshakes_per_attester < 1:
        raise ValueError("workers, concurrency and handshakes must be >= 1")

    lanes = [0.0] * workers
    heapq.heapify(lanes)
    # Event = (ready_time, sequence, stage, attester, handshake_index,
    #          handshake_start). Sequence breaks ties deterministically.
    events = []
    sequence = 0
    latencies: List[float] = []
    finish_times: List[float] = []

    def arrival_of(attester: int, index: int) -> float:
        if arrival_interval_s <= 0:
            return 0.0
        return (index * concurrency + attester) * arrival_interval_s

    def push(ready: float, stage: str, attester: int, index: int,
             start: float) -> None:
        nonlocal sequence
        sequence += 1
        heapq.heappush(events, (ready, sequence, stage, attester, index,
                                start))

    for attester in range(concurrency):
        start = arrival_of(attester, 0)
        push(start + model.client_pre_s, "msg0", attester, 0, start)

    while events:
        ready, _, stage, attester, index, start = heapq.heappop(events)
        lane_free = heapq.heappop(lanes)
        begin = max(ready, lane_free)
        if stage == "msg0":
            done = begin + model.server_msg0_s
            heapq.heappush(lanes, done)
            push(done + model.client_mid_s, "msg2", attester, index, start)
        else:
            done = begin + model.server_msg2_s
            heapq.heappush(lanes, done)
            finished = done + model.client_post_s
            latencies.append(finished - start)
            finish_times.append(finished)
            next_index = index + 1
            if next_index < handshakes_per_attester:
                next_start = max(finished, arrival_of(attester, next_index))
                push(next_start + model.client_pre_s, "msg0", attester,
                     next_index, next_start)

    makespan = max(finish_times) if finish_times else 0.0
    total = len(latencies)
    return ModelResult(
        concurrency=concurrency,
        workers=workers,
        handshakes=total,
        makespan_s=makespan,
        throughput_hz=(total / makespan) if makespan > 0 else 0.0,
        p50_s=percentile(latencies, 0.50) if latencies else 0.0,
        p95_s=percentile(latencies, 0.95) if latencies else 0.0,
        p99_s=percentile(latencies, 0.99) if latencies else 0.0,
    )
