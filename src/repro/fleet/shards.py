"""Process-sharded verifier pool: the fleet gateway that scales with cores.

The thread-pool gateway (:mod:`repro.fleet.gateway`) multiplexes many
attesters onto verifier TA lanes, but every lane is a thread of *one*
Python process: the GIL serialises all verifier crypto, so throughput is
flat in the worker count (the flat "live hs/s" column of the PR 3 fleet
bench). This module moves the lanes into *processes*, the way the
paper's deployment scales across independent TrustZone boards:

* **Shards.** Each shard is a forked worker that boots its own verifier
  stack — a fresh simulated board (SoC, secure boot, OP-TEE kernel,
  attestation service), the fleet verifier TA, a per-shard appraisal
  cache, and prewarmed EC tables. Shards never share Python state with
  the router; everything crosses a length-prefixed binary IPC channel as
  bytes (no pickling of live TAs, sessions or sockets).

* **Session affinity.** The router (:class:`ShardedGateway`) owns the
  session table and pins each connection to ``conn_id % shards`` for its
  whole handshake, so msg0→msg2 always land on the shard holding that
  connection's protocol state. Admission control (token bucket + global
  in-flight window) is unchanged; a bounded *per-shard* queue adds one
  more shed point, surfacing ``FleetOverloaded("queue")`` exactly like
  the thread-pool gateway.

* **Supervision.** A heartbeat thread pings every shard over a separate
  control channel. A dead worker (EOF, ``is_alive()`` false), a wedged
  one (no pong within the timeout), or a stuck one (data loop making no
  progress while requests are outstanding) is killed and respawned; its
  sessions are evicted with the distinct reason ``"shard_crash"``,
  in-flight messages fail with
  :class:`~repro.errors.FleetShardCrashed`, and ``shard_respawns``
  counts the event. The attester retries from msg0 on the fresh worker.

* **Clock discipline.** Each shard's board has its own ``SimClock``;
  every forwarded message still pays the Fig. 3b world-transition costs
  on *its* shard's clock, and the per-message virtual-nanosecond delta
  travels back in the reply frame. Real service seconds are measured in
  the shard around the TA invoke, exactly where the threaded gateway
  measures them. The two time bases never mix.

* **Mergeable metrics.** Shards keep their own ``FleetMetrics``; the
  router's :meth:`ShardedGateway.snapshot` pulls JSON state snapshots
  over the control channel and folds them through
  :meth:`~repro.fleet.metrics.FleetMetrics.from_states` into one
  aggregate view shaped like the threaded gateway's.

Behaviour invariance with the threaded gateway — protocol transcripts,
``FleetOverloaded`` semantics, per-message SimClock nanoseconds — is
asserted by ``tests/fleet/test_shards.py``, using deterministic board
entropy (``FleetConfig.shard_base_serial`` + ``shard_deterministic_rng``)
to make both gateways draw identical bytes.

Worker processes are created with the ``fork`` start method: the shard
spec carries the ``secret_provider`` callable by inheritance, and only
bytes ever cross the channel afterwards.
"""

from __future__ import annotations

import json
import multiprocessing
import selectors
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.appraisal.audit import AuditEntry, entry_from_dict
from repro.core.server import SecretProvider
from repro.core.transport import Network
from repro.core.verifier import VerifierPolicy
from repro.crypto import ec, ecdsa
from repro.errors import (
    FleetOverloaded,
    FleetShardCrashed,
    TeeBadParameters,
)
from repro.fleet.asynccore import (
    LOOP_BACKEND,
    FrameError,
    FrameReader,
    FrameWriter,
    Reactor,
    encode_frame,
)
from repro.fleet.backpressure import AdmissionController, TokenBucket
from repro.fleet.cache import AppraisalCache, CacheKey, policy_fingerprint
from repro.fleet.fabric.store import (
    FabricStore,
    ReplicaState,
    decode_ticket_evict,
    decode_ticket_mint,
    decode_ticket_put,
    encode_ticket_evict,
    encode_ticket_mint,
    encode_ticket_put,
    ticket_key_from_message,
)
from repro.fleet.gateway import (
    CMD_FLEET_EVICT,
    CMD_FLEET_MESSAGE,
    FLEET_VERIFIER_UUID,
    AttestationGateway,
    FleetConfig,
    MessageRecord,
    _GatewayConnection,
    batch_candidate_from_message,
    make_fleet_verifier_ta,
    prewarm_msg2_tables,
)
from repro.fleet.metrics import FleetMetrics
from repro.fleet.sessions import SessionEntry, SessionTable
from repro.optee.ta import TaManifest, sign_ta

#: Eviction reason for sessions orphaned by a dead shard — distinct from
#: ``"ttl"``/``"lru"`` so metrics (and tests) can tell a crash apart.
CRASH_EVICT_REASON = "shard_crash"

# -- wire format ---------------------------------------------------------------
#
# Every frame is ``u32 length | u8 opcode | u64 request-id | body``; the
# body is opcode-specific packed binary (bytes in, bytes out). Requests
# travel parent->shard, responses shard->parent with the same request-id.

_FRAME_HEADER = struct.Struct(">I")
_FRAME_PREFIX = struct.Struct(">BQ")
_CONN_ID = struct.Struct(">Q")
#: Message response head: done, cache_hit, sim-transition ns, service s.
_MESSAGE_RESP = struct.Struct(">BBQd")
_PONG = struct.Struct(">Q")

OP_MESSAGE = 0x01
OP_EVICT = 0x02
OP_POLICY = 0x03
OP_PING = 0x04
OP_SNAPSHOT = 0x05
OP_SHUTDOWN = 0x06
#: Fabric opcodes (data channel): replicate a versioned ticket into a
#: shard, land a sequence-stamped tombstone, bulk-seed a fresh member.
OP_TICKET_PUT = 0x07
OP_TICKET_EVICT = 0x08
OP_TICKET_SYNC = 0x09
#: Hierarchy opcode (control channel): incremental audit-log export.
OP_AUDIT = 0x0A
#: Flame export (control channel): drain the shard-local tracer's spans
#: as folded stacks + a per-name summary (``FleetConfig.shard_trace``).
OP_FLAME = 0x0B
OP_OK = 0x40
OP_ERR = 0x41


def _send_frame(sock: socket.socket, lock: threading.Lock, opcode: int,
                req_id: int, body: bytes = b"") -> None:
    frame = encode_frame(opcode, req_id, body)
    with lock:
        sock.sendall(frame)


def encode_policy(policy: VerifierPolicy) -> bytes:
    """Serialise a policy as deterministic length-prefixed binary."""
    parts = [struct.pack(">II", policy.minimum_version[0],
                         policy.minimum_version[1])]
    for group in (policy.endorsements, policy.reference_values,
                  policy.trusted_boot_measurements):
        members = sorted(group)
        parts.append(struct.pack(">I", len(members)))
        for item in members:
            parts.append(struct.pack(">I", len(item)))
            parts.append(bytes(item))
    return b"".join(parts)


def encode_policy_bundle(policy: VerifierPolicy,
                         appraisal_blob: bytes = b"") -> bytes:
    """OP_POLICY body: the legacy policy plus the declarative one.

    ``u32 vp_len || encode_policy(vp) || appraisal_policy_blob`` — the
    appraisal part is empty for engine-less deployments, so the legacy
    codecs (:func:`encode_policy` / :func:`decode_policy_into`) keep
    their pinned formats untouched.
    """
    vp_blob = encode_policy(policy)
    return struct.pack(">I", len(vp_blob)) + vp_blob + appraisal_blob


def decode_policy_bundle(body: bytes) -> Tuple[bytes, bytes]:
    (vp_len,) = struct.unpack_from(">I", body, 0)
    return body[4:4 + vp_len], body[4 + vp_len:]


def decode_policy_into(policy: VerifierPolicy, blob: bytes) -> None:
    """Replace ``policy``'s contents in place (verifiers hold references)."""
    major, minor = struct.unpack_from(">II", blob, 0)
    offset = 8
    groups = []
    for _ in range(3):
        (count,) = struct.unpack_from(">I", blob, offset)
        offset += 4
        items = set()
        for _ in range(count):
            (length,) = struct.unpack_from(">I", blob, offset)
            offset += 4
            items.add(bytes(blob[offset:offset + length]))
            offset += length
        groups.append(items)
    policy.minimum_version = (major, minor)
    for target, items in zip((policy.endorsements, policy.reference_values,
                              policy.trusted_boot_measurements), groups):
        target.clear()
        target.update(items)


def _encode_error(exc: BaseException) -> bytes:
    name = type(exc).__name__.encode()
    message = str(exc).encode()
    return (struct.pack(">I", len(name)) + name
            + struct.pack(">I", len(message)) + message)


def _decode_error(body: bytes) -> Tuple[str, str]:
    (name_len,) = struct.unpack_from(">I", body, 0)
    name = body[4:4 + name_len].decode()
    (msg_len,) = struct.unpack_from(">I", body, 4 + name_len)
    start = 8 + name_len
    return name, body[start:start + msg_len].decode()


def _resolve_error(name: str, message: str) -> Exception:
    """Rebuild the shard's exception so callers see the same type the
    threaded gateway would raise (ProtocolError, EndorsementError, ...)."""
    from repro import errors as errors_module

    cls = getattr(errors_module, name, None)
    if isinstance(cls, type) and issubclass(cls, errors_module.ReproError):
        try:
            return cls(message)
        except TypeError:
            pass
    return errors_module.FleetError(f"{name}: {message}")


def _encode_message_response(done: bool, cache_hit: bool, sim_ns: int,
                             service_s: float,
                             reply: Optional[bytes]) -> bytes:
    head = _MESSAGE_RESP.pack(1 if done else 0, 1 if cache_hit else 0,
                              sim_ns, service_s)
    if reply is None:
        return head + b"\x00"
    return head + b"\x01" + reply


def _decode_message_response(body: bytes
                             ) -> Tuple[bool, bool, int, float,
                                        Optional[bytes]]:
    done, cache_hit, sim_ns, service_s = _MESSAGE_RESP.unpack_from(body)
    rest = body[_MESSAGE_RESP.size:]
    reply = rest[1:] if rest[:1] == b"\x01" else None
    return bool(done), bool(cache_hit), sim_ns, service_s, reply


def _encode_message_response_fabric(done: bool, cache_hit: bool,
                                    sim_ns: int, service_s: float,
                                    reply: Optional[bytes],
                                    mints: List[bytes]) -> bytes:
    """Fabric-mode message response: the reply gains a length prefix so
    freshly minted tickets can piggyback after it. Both ends key the
    format off ``config.fabric`` — the legacy encoding stays
    byte-identical when the fabric is off."""
    head = _MESSAGE_RESP.pack(1 if done else 0, 1 if cache_hit else 0,
                              sim_ns, service_s)
    if reply is None:
        head += b"\x00" + struct.pack(">I", 0)
    else:
        head += b"\x01" + struct.pack(">I", len(reply)) + reply
    parts = [head, struct.pack(">H", len(mints))]
    for mint in mints:
        parts.append(struct.pack(">I", len(mint)))
        parts.append(mint)
    return b"".join(parts)


def _decode_message_response_fabric(body: bytes
                                    ) -> Tuple[bool, bool, int, float,
                                               Optional[bytes],
                                               List[bytes]]:
    done, cache_hit, sim_ns, service_s = _MESSAGE_RESP.unpack_from(body)
    offset = _MESSAGE_RESP.size
    has_reply = body[offset:offset + 1] == b"\x01"
    offset += 1
    (reply_len,) = struct.unpack_from(">I", body, offset)
    offset += 4
    reply = bytes(body[offset:offset + reply_len]) if has_reply else None
    offset += reply_len
    (count,) = struct.unpack_from(">H", body, offset)
    offset += 2
    mints = []
    for _ in range(count):
        (length,) = struct.unpack_from(">I", body, offset)
        offset += 4
        mints.append(bytes(body[offset:offset + length]))
        offset += length
    return bool(done), bool(cache_hit), sim_ns, service_s, reply, mints


def encode_evict_batch(conn_ids: List[int]) -> bytes:
    """``OP_EVICT`` body: ``u32 count | u64 conn_id * count``."""
    return struct.pack(">I", len(conn_ids)) + b"".join(
        _CONN_ID.pack(conn_id) for conn_id in conn_ids)


def decode_evict_batch(body: bytes) -> Tuple[int, ...]:
    (count,) = struct.unpack_from(">I", body)
    return struct.unpack_from(f">{count}Q", body, 4) if count else ()


# -- the shard worker (child process) ------------------------------------------


@dataclass
class ShardSpec:
    """Everything a shard needs to boot its verifier stack.

    Shipped into the fork, never over the wire. ``secret_provider`` is a
    callable carried by fork inheritance; every later exchange with the
    worker is pure bytes on the IPC channel.
    """

    index: int
    serial: int
    vendor_private: int
    identity_private: int
    policy_blob: bytes
    secret_provider: SecretProvider
    config: FleetConfig
    deterministic_rng: bool = False
    #: Serialised :class:`repro.appraisal.AppraisalPolicy`; non-empty
    #: arms a per-shard appraisal engine (multi-TEE envelopes, audit
    #: log, revocation killswitch).
    appraisal_blob: bytes = b""


def shard_main(spec: ShardSpec, data_sock: socket.socket,
               ctrl_sock: socket.socket,
               inherited: Tuple[socket.socket, ...] = ()) -> None:
    """Entry point of one verifier shard process.

    Boots a fresh board, installs the fleet verifier TA, then runs ONE
    selector loop over both channels — no reader/control threads, no
    per-message thread wakeups, no locks. Control frames (heartbeats,
    snapshots) are answered the moment they arrive and re-checked
    between data frames, so supervision waits at most one verifier
    serve. Data frames queue in arrival order (fabric replication
    ordering — a ticket push sent before a msg2 is applied before it)
    and are served strictly sequentially, exactly like the threaded
    loop; what changed is *around* the serves: zero-copy incremental
    frame parsing, and a batch tick that joins the ECDSA checks of
    every independent plain msg2 waiting in the queue into one
    randomised multi-scalar chain whose time is split across them.
    """
    # Forked children inherit every parent fd: drop the other shards'
    # channel ends so their EOFs stay meaningful to the router.
    for stale in inherited:
        try:
            stale.close()
        except OSError:
            pass

    from repro.testbed import Testbed

    config = spec.config
    testbed = Testbed(deterministic_rng=spec.deterministic_rng,
                      first_serial=spec.serial)
    testbed.vendor_key = ecdsa.keypair_from_private(spec.vendor_private)
    device = testbed.create_device()
    identity = ecdsa.keypair_from_private(spec.identity_private)
    policy = VerifierPolicy()
    decode_policy_into(policy, spec.policy_blob)
    engine = None
    if spec.appraisal_blob:
        from repro.appraisal import AppraisalEngine, AppraisalPolicy

        engine = AppraisalEngine(AppraisalPolicy.decode(spec.appraisal_blob))
    cache = None
    if config.enable_cache:
        cache = AppraisalCache(capacity=config.cache_capacity,
                               ttl_s=config.cache_ttl_s)
    metrics = FleetMetrics()
    manifest = TaManifest(uuid=FLEET_VERIFIER_UUID,
                          name="watz-fleet-verifier",
                          heap_size=config.lane_heap_size)
    ta_class = make_fleet_verifier_ta(identity, policy, spec.secret_provider,
                                      None, appraisal_cache=cache,
                                      engine=engine)
    image = sign_ta(manifest, b"watz fleet verifier ta", ta_class,
                    testbed.vendor_key)
    device.kernel.install_ta(image)
    session = device.client.open_session(FLEET_VERIFIER_UUID)
    clock = device.soc.clock
    if config.prewarm_crypto:
        # Boot-time prewarm: the generator comb (msg1 signing) and the
        # identity key's tables, so the first handshake served by a
        # respawned shard does not pay table construction.
        ec.scalar_base_mult(2)
        ec.precompute_public_key(identity.public)

    tracer = None
    if config.shard_trace:
        from repro.obs import Tracer

        # Shard-local dual-clock tracer: world transitions from this
        # shard's board plus the loop's own phases. Spans stay in the
        # worker and export on demand over OP_FLAME — in-process tracing
        # (the constructor-rejected kind) remains a threaded facility.
        tracer = Tracer(sim_now=clock.now_ns)
        device.soc.attach_tracer(tracer)

    #: Data-loop progress counter, reported in pongs so the supervisor
    #: can tell "busy but alive" from "stuck on one frame".
    progress = {"frames": 0}

    # Fabric wiring: the cache reports every ticket it mints (a real
    # full-verify store, never a seed) into ``minted``; the data loop is
    # strictly sequential, so draining it after the TA invoke is safe.
    replica: Optional[ReplicaState] = None
    minted: List[Tuple[bytes, tuple, bytes, int]] = []
    if config.fabric and cache is not None:
        replica = ReplicaState()
        cache.set_store_listener(
            lambda fingerprint, key, resumption_key, stored_at:
            minted.append((fingerprint, key, resumption_key, stored_at)))

    def apply_ticket_put(put: bytes) -> bool:
        epoch, seq, age_ns, fingerprint, key, resumption_key = \
            decode_ticket_put(put)
        if replica is None or not replica.admit_put(epoch, seq, key):
            return False
        return cache.seed(fingerprint, key, resumption_key, age_ns=age_ns)

    ctrl_writer = FrameWriter(ctrl_sock)

    def serve_control(opcode: int, req_id: int, body: bytes) -> None:
        try:
            if opcode == OP_PING:
                ctrl_writer.send(OP_OK, req_id,
                                 _PONG.pack(progress["frames"]))
            elif opcode == OP_SNAPSHOT:
                state = {
                    "metrics": metrics.state(),
                    "cache": (cache.snapshot()
                              if cache is not None else None),
                    "live_states": session.ta.live_states,
                    "audit": (engine.audit.counts_by_reason()
                              if engine is not None else None),
                    "fabric": (replica.snapshot()
                               if replica is not None else None),
                }
                ctrl_writer.send(OP_OK, req_id, json.dumps(state).encode())
            elif opcode == OP_AUDIT:
                (since,) = _CONN_ID.unpack_from(body)
                entries = (engine.audit.entries_since(since)
                           if engine is not None else [])
                ctrl_writer.send(OP_OK, req_id,
                                 json.dumps([entry.to_dict()
                                             for entry in entries]).encode())
            elif opcode == OP_FLAME:
                from repro.obs.export import flame_summary, folded_stacks

                spans = tracer.drain() if tracer is not None else []
                payload = {
                    "folded_wall": folded_stacks(spans, clock="wall"),
                    "folded_sim": folded_stacks(spans, clock="sim"),
                    "summary": flame_summary(spans),
                    "spans": len(spans),
                }
                ctrl_writer.send(OP_OK, req_id,
                                 json.dumps(payload).encode())
            else:
                raise TeeBadParameters(
                    f"unknown control opcode {opcode:#x}")
        except Exception as exc:
            ctrl_writer.send(OP_ERR, req_id, _encode_error(exc))

    def serve_message(body: bytes, extra_s: float = 0.0,
                      batched: bool = False) -> bytes:
        (conn_id,) = _CONN_ID.unpack_from(body)
        data = body[_CONN_ID.size:]
        kind = AttestationGateway._kind(data)
        if config.prewarm_crypto and kind == "msg2" and not batched and \
                prewarm_msg2_tables(data):
            # A batch-covered msg2 skips the table build outright: its
            # verify settles from the memo, never touching the tables.
            metrics.increment("crypto_prewarms")
        hits_before = cache.hits if cache is not None else 0
        sim_before = clock.now_ns()
        started = time.perf_counter()
        try:
            if tracer is None:
                result = session.invoke(CMD_FLEET_MESSAGE,
                                        {"conn": conn_id, "data": data})
            else:
                with tracer.span("fleet.request", lane=spec.index,
                                 conn=conn_id, kind=kind):
                    result = session.invoke(CMD_FLEET_MESSAGE,
                                            {"conn": conn_id, "data": data})
        finally:
            # ``extra_s`` is this message's share of the batch tick that
            # verified its signature ahead of the invoke — the amortised
            # cost travels with the message, so the capacity model sees
            # the true service time, not a subsidised one.
            service_s = time.perf_counter() - started + extra_s
            metrics.observe(f"service.{kind}", service_s)
        sim_delta = clock.now_ns() - sim_before
        cache_hit = cache is not None and cache.hits > hits_before
        if kind == "msg2":
            suffix = "hit" if cache_hit else "miss"
            metrics.observe(f"service.msg2_{suffix}", service_s)
        metrics.increment("messages")
        if replica is None:
            return _encode_message_response(bool(result.get("done")),
                                            cache_hit, sim_delta, service_s,
                                            result.get("reply"))
        # Fabric mode: piggyback every ticket this invoke minted onto the
        # reply frame as relative ages — shard clocks never cross the IPC.
        shard_now = time.monotonic_ns()
        mints = [encode_ticket_mint(fingerprint,
                                    max(0, shard_now - stored_at),
                                    key, resumption_key)
                 for fingerprint, key, resumption_key, stored_at in minted]
        minted.clear()
        if mints:
            metrics.increment("fabric_minted", len(mints))
        return _encode_message_response_fabric(bool(result.get("done")),
                                               cache_hit, sim_delta,
                                               service_s,
                                               result.get("reply"), mints)

    data_writer = FrameWriter(data_sock)
    #: Data frames parsed but not yet served, in arrival order — the
    #: order the fabric's lazy-push-before-msg2 discipline relies on.
    queue: Deque[Tuple[int, int, bytes]] = deque()
    #: req-id -> this message's share of a batch tick's elapsed time.
    #: Membership doubles as "signature already settled, skip prewarm".
    batch_shares: Dict[int, float] = {}
    state = {"running": True, "ctrl_open": True}

    def batch_tick() -> None:
        """Jointly verify every independent plain msg2 waiting in line.

        Runs when the frame about to be served is a batchable msg2 and
        at least one more is queued behind it: ONE randomised
        multi-scalar chain (:func:`repro.crypto.batch.verify_batch`)
        settles them all and seeds the consume-once memo, so each later
        TA invoke's signature check is a dict hit. The elapsed time is
        split evenly across the covered messages (`batch_shares`). This
        is the handshake pipelining of the perf tentpole: while one
        lane's msg0 ECDH waits its turn, the hash+verify work of every
        queued msg2 has already been amortised.
        """
        from repro.crypto.batch import verify_batch

        staged: List[Tuple[int, tuple]] = []
        for opcode, req_id, body in queue:
            if opcode != OP_MESSAGE or req_id in batch_shares:
                continue
            item = batch_candidate_from_message(body[_CONN_ID.size:])
            if item is not None:
                staged.append((req_id, item))
        if len(staged) < 2:
            return
        started = time.perf_counter()
        if tracer is None:
            verify_batch([item for _, item in staged], seed_memo=True)
        else:
            with tracer.span("fleet.batch_verify", n=len(staged)):
                verify_batch([item for _, item in staged], seed_memo=True)
        share = (time.perf_counter() - started) / len(staged)
        for req_id, _ in staged:
            batch_shares[req_id] = share
        metrics.increment("batch_drains")
        metrics.increment("batch_verified", len(staged))
        metrics.observe("batch.drain", share * len(staged))

    def serve_data(opcode: int, req_id: int, body: bytes) -> None:
        progress["frames"] += 1
        try:
            if opcode == OP_MESSAGE:
                extra_s = batch_shares.pop(req_id, None)
                data_writer.send(OP_OK, req_id,
                                 serve_message(body, extra_s or 0.0,
                                               batched=extra_s is not None))
            elif opcode == OP_EVICT:
                if len(body) == _CONN_ID.size:
                    # Legacy single-conn frame: the exact TA invoke the
                    # pre-fabric gateway issued (SimClock invariance).
                    (conn_id,) = _CONN_ID.unpack_from(body)
                    session.invoke(CMD_FLEET_EVICT, {"conn": conn_id})
                else:
                    conns = decode_evict_batch(body)
                    if len(conns) == 1:
                        session.invoke(CMD_FLEET_EVICT, {"conn": conns[0]})
                    elif conns:
                        session.invoke(CMD_FLEET_EVICT,
                                       {"conns": list(conns)})
                data_writer.send(OP_OK, req_id)
            elif opcode == OP_TICKET_PUT:
                ok = apply_ticket_put(body)
                data_writer.send(OP_OK, req_id, b"\x01" if ok else b"\x00")
            elif opcode == OP_TICKET_EVICT:
                epoch, seq, key = decode_ticket_evict(body)
                ok = replica is not None and \
                    replica.admit_evict(epoch, seq, key)
                if ok:
                    cache.evict_key(key)
                data_writer.send(OP_OK, req_id, b"\x01" if ok else b"\x00")
            elif opcode == OP_TICKET_SYNC:
                (count,) = struct.unpack_from(">I", body)
                offset, applied = 4, 0
                for _ in range(count):
                    (length,) = struct.unpack_from(">I", body, offset)
                    offset += 4
                    if apply_ticket_put(body[offset:offset + length]):
                        applied += 1
                    offset += length
                data_writer.send(OP_OK, req_id, struct.pack(">I", applied))
            elif opcode == OP_POLICY:
                vp_blob, ap_blob = decode_policy_bundle(body)
                decode_policy_into(policy, vp_blob)
                if engine is not None and ap_blob:
                    from repro.appraisal import AppraisalPolicy

                    engine.replace_policy(AppraisalPolicy.decode(ap_blob))
                metrics.increment("policy_syncs")
                data_writer.send(OP_OK, req_id)
            elif opcode == OP_SHUTDOWN:
                data_writer.send(OP_OK, req_id)
                state["running"] = False
            else:
                raise TeeBadParameters(f"unknown data opcode {opcode:#x}")
        except OSError:
            # The router side of the channel is gone mid-reply; the
            # supervisor will reap us — stop serving.
            state["running"] = False
        except Exception as exc:
            data_writer.send(OP_ERR, req_id, _encode_error(exc))

    selector = selectors.DefaultSelector()
    data_reader = FrameReader()
    ctrl_reader = FrameReader()
    selector.register(data_sock, selectors.EVENT_READ,
                      (data_reader, False))
    selector.register(ctrl_sock, selectors.EVENT_READ,
                      (ctrl_reader, True))

    def pump(timeout: Optional[float]) -> None:
        """One selector pass: answer control, queue data, in that order.

        Called blocking (``None``) when idle and non-blocking (``0``)
        between data serves, which is what keeps heartbeat latency
        bounded by one verifier serve instead of one queue drain.
        """
        for key, _mask in selector.select(timeout):
            reader, is_ctrl = key.data
            status = reader.fill(key.fileobj)
            if status is False:
                selector.unregister(key.fileobj)
                if is_ctrl:
                    state["ctrl_open"] = False
                else:
                    # Router hung up: protocol state is worthless without
                    # a peer — drop anything unserved and wind down.
                    state["running"] = False
                    queue.clear()
                continue
            if status is None:
                continue
            try:
                frames = list(reader.frames())
            except FrameError:
                selector.unregister(key.fileobj)
                if is_ctrl:
                    state["ctrl_open"] = False
                else:
                    state["running"] = False
                    queue.clear()
                continue
            for opcode, req_id, body in frames:
                if is_ctrl:
                    serve_control(opcode, req_id, bytes(body))
                else:
                    queue.append((opcode, req_id, bytes(body)))

    try:
        while state["running"]:
            if not queue:
                pump(None)
                continue
            if config.batch_verify and len(queue) > 1 and \
                    queue[0][0] == OP_MESSAGE and \
                    queue[0][1] not in batch_shares:
                batch_tick()
            serve_data(*queue.popleft())
            # Control priority between serves: a ping that arrived while
            # we verified never waits behind the rest of the queue.
            pump(0)
    except OSError:
        pass
    try:
        session.close()
    except Exception:
        pass
    selector.close()
    for sock in (data_sock, ctrl_sock):
        try:
            sock.close()
        except OSError:
            pass


# -- the router (parent process) -----------------------------------------------


class _Pending:
    """One outstanding request awaiting its response frame."""

    __slots__ = ("event", "response", "failure", "sent_at")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[Tuple[int, bytes]] = None
        self.failure: Optional[Exception] = None
        self.sent_at = time.monotonic()


class _ShardChannel:
    """One generation of a shard worker: process, sockets, reactor slots.

    Response frames are demultiplexed by the gateway's single
    :class:`~repro.fleet.asynccore.Reactor` — no per-channel reader
    threads; the only wakeup a response costs is the waiter's own event.
    """

    def __init__(self, spec: ShardSpec, context,
                 siblings: List[socket.socket], reactor: Reactor) -> None:
        self.spec = spec
        self.reactor = reactor
        data_parent, data_child = socket.socketpair()
        ctrl_parent, ctrl_child = socket.socketpair()
        self.data_sock = data_parent
        self.ctrl_sock = ctrl_parent
        self.data_lock = threading.Lock()
        self.ctrl_lock = threading.Lock()
        self.pending: Dict[int, _Pending] = {}
        self.pending_lock = threading.Lock()
        self._next_req = 1
        self.down = threading.Event()
        # Supervisor bookkeeping for stuck-detection.
        self.progress_frames = -1
        self.progress_stalled_since: Optional[float] = None
        self.process = context.Process(
            target=shard_main,
            args=(spec, data_child, ctrl_child, tuple(siblings)),
            daemon=True,
            name=f"fleet-shard-{spec.index}",
        )
        self.process.start()
        data_child.close()
        ctrl_child.close()
        # Request ids are unique across both sockets (one counter), so
        # one frame callback serves them both.
        for sock in (data_parent, ctrl_parent):
            reactor.register(sock, self._on_frame, self._on_eof)

    def _on_frame(self, opcode: int, req_id: int,
                  body: memoryview) -> None:
        with self.pending_lock:
            pending = self.pending.pop(req_id, None)
        if pending is not None:
            # The memoryview dies with the reactor's next fill; the
            # response outlives it, so this is the one copy a reply pays.
            pending.response = (opcode, bytes(body))
            pending.event.set()

    def _on_eof(self, _sock: socket.socket) -> None:
        self.mark_down()

    def request(self, opcode: int, body: bytes, timeout: float,
                control: bool = False) -> Tuple[int, bytes]:
        pending = _Pending()
        with self.pending_lock:
            if self.down.is_set():
                raise FleetShardCrashed(
                    f"verifier shard {self.spec.index} is down")
            req_id = self._next_req
            self._next_req += 1
            self.pending[req_id] = pending
        sock, lock = ((self.ctrl_sock, self.ctrl_lock) if control
                      else (self.data_sock, self.data_lock))
        try:
            _send_frame(sock, lock, opcode, req_id, body)
        except OSError:
            with self.pending_lock:
                self.pending.pop(req_id, None)
            self.mark_down()
            raise FleetShardCrashed(
                f"verifier shard {self.spec.index} channel is down")
        if not pending.event.wait(timeout):
            with self.pending_lock:
                self.pending.pop(req_id, None)
            raise FleetShardCrashed(
                f"verifier shard {self.spec.index} did not answer "
                f"within {timeout:.1f}s")
        if pending.failure is not None:
            raise pending.failure
        return pending.response

    def mark_down(self) -> None:
        """Fail every outstanding request; idempotent."""
        with self.pending_lock:
            if self.down.is_set():
                drained = []
            else:
                self.down.set()
                drained = list(self.pending.values())
                self.pending.clear()
        for pending in drained:
            pending.failure = FleetShardCrashed(
                f"verifier shard {self.spec.index} died mid-request")
            pending.event.set()

    def busy(self) -> bool:
        with self.pending_lock:
            return bool(self.pending)

    def kill(self) -> None:
        """Tear this generation down: detach from the reactor, reap."""
        for sock in (self.data_sock, self.ctrl_sock):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        # Blocking unregister: once it returns the reactor no longer
        # touches these fds, so closing them below cannot race the loop.
        for sock in (self.data_sock, self.ctrl_sock):
            self.reactor.unregister(sock)
        self.mark_down()
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        else:
            process.join(timeout=0.5)
        for sock in (self.data_sock, self.ctrl_sock):
            try:
                sock.close()
            except OSError:
                pass


class _ShardHandle:
    """Stable per-shard slot; survives respawns (channels do not)."""

    def __init__(self, index: int, queue_depth: int) -> None:
        self.index = index
        self.channel: Optional[_ShardChannel] = None
        self.policy_fp: Optional[bytes] = None
        self.policy_lock = threading.Lock()
        self.respawns = 0
        self._queue = threading.BoundedSemaphore(queue_depth)

    def try_enter(self) -> bool:
        return self._queue.acquire(blocking=False)

    def leave(self) -> None:
        self._queue.release()


class _EvictCoalescer:
    """Batches session-evict fan-out into one ``OP_EVICT`` per shard.

    With a zero window (the default) every eviction ships inline as the
    legacy single-conn frame — byte-identical cadence to the pre-fabric
    gateway. A positive window queues victims per shard and a background
    flusher sends one batched frame per shard per window, so a
    1000-device revocation storm costs O(shards) frames, not O(devices).
    """

    def __init__(self, gateway: "ShardedGateway", window_s: float) -> None:
        self._gateway = gateway
        self._window_s = window_s
        self._lock = threading.Lock()
        self._pending: Dict[int, List[int]] = {}
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if window_s > 0:
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="fleet-evict-coalescer")
            self._thread.start()

    @property
    def batching(self) -> bool:
        return self._window_s > 0

    def enqueue(self, lane: int, conn_id: int) -> None:
        if not self.batching:
            self._gateway._send_evict(lane, [conn_id])
            return
        with self._lock:
            self._pending.setdefault(lane, []).append(conn_id)
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._stop.is_set():
                return
            self._wake.clear()
            # The coalescing window: everything evicted while we sleep
            # joins the flush that follows.
            time.sleep(self._window_s)
            self.flush()

    def flush(self) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for lane, conns in sorted(pending.items()):
            self._gateway._send_evict(lane, conns)

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.flush()


class ShardedGateway:
    """Session-affinity router in front of a pool of verifier shards.

    Same observable surface as :class:`AttestationGateway` — ``start`` /
    ``stop`` / ``snapshot`` / ``drain_records`` / ``metrics`` /
    ``sessions`` — but verifier work runs in ``config.shards`` worker
    processes, so aggregate throughput scales with host cores instead of
    pinning on the GIL.
    """

    #: Event-loop backend of the shard cores and the router's reactor,
    #: recorded in benchmark artifacts next to the host metadata.
    loop_backend = LOOP_BACKEND

    def __init__(self, network: Network, host: str, port: int,
                 vendor_key: ecdsa.KeyPair, identity: ecdsa.KeyPair,
                 policy: VerifierPolicy, secret_provider: SecretProvider,
                 config: FleetConfig, recorder=None, tracer=None,
                 time_source=time.monotonic_ns, engine=None) -> None:
        if config.shards < 1:
            raise ValueError("sharded gateway needs at least one shard")
        if recorder is not None or tracer is not None:
            raise ValueError(
                "cost recording and tracing are in-process facilities; "
                "use the thread-pool gateway (config.shards = 0) to trace")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise RuntimeError(
                "process shards require the fork start method") from exc
        self.network = network
        self.host = host
        self.port = port
        self.vendor_key = vendor_key
        self.identity = identity
        self.policy = policy
        self.secret_provider = secret_provider
        self.config = config
        #: Router-side appraisal engine: the single source of truth for
        #: the declarative policy. Shards hold decoded *replicas*, synced
        #: lazily whenever the combined fingerprint moves (exactly the
        #: legacy policy-sync discipline); its audit log records only
        #: router-side decisions — per-shard logs live in the workers and
        #: surface through :meth:`snapshot`.
        self.engine = engine
        self.metrics = FleetMetrics()
        bucket = None
        if config.rate_per_s is not None:
            bucket = TokenBucket(config.rate_per_s, config.rate_burst,
                                 time_source=time_source)
        self._admission = AdmissionController(config.max_in_flight, bucket)
        self.sessions = SessionTable(capacity=config.max_sessions,
                                     ttl_s=config.session_ttl_s,
                                     time_source=time_source,
                                     on_evict=self._session_evicted)
        self.records: List[MessageRecord] = []
        self._records_lock = threading.Lock()
        self._conn_counter = 0
        self._conn_lock = threading.Lock()
        self._time_source = time_source
        #: The replicated resumption-ticket authority; armed by
        #: :meth:`start` when ``config.fabric`` and the cache are on.
        self.fabric: Optional[FabricStore] = None
        self._coalescer: Optional[_EvictCoalescer] = None
        self._shards: List[_ShardHandle] = []
        #: The single selector thread demultiplexing every shard
        #: channel's responses (see :mod:`repro.fleet.asynccore`).
        self._reactor: Optional[Reactor] = None
        self._respawn_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "ShardedGateway":
        """Fork the shard pool, start supervision, listen."""
        if self._running:
            raise RuntimeError("gateway already started")
        depth = self.config.shard_queue_depth or self.config.max_in_flight
        if self.config.fabric and self.config.enable_cache:
            self.fabric = FabricStore(
                range(self.config.shards),
                capacity=self.config.fabric_capacity,
                ttl_s=self.config.cache_ttl_s,
                vnodes=self.config.fabric_vnodes,
                time_source=self._time_source)
        self._coalescer = _EvictCoalescer(self, self.config.evict_coalesce_s)
        self._reactor = Reactor()
        self._shards = [_ShardHandle(index, depth)
                        for index in range(self.config.shards)]
        for handle in self._shards:
            self._spawn(handle)
        self._stop_event.clear()
        self._running = True
        self._supervisor = threading.Thread(target=self._supervise,
                                            daemon=True,
                                            name="fleet-shard-supervisor")
        self._supervisor.start()
        self.network.listen(self.host, self.port, self._new_connection)
        return self

    def stop(self) -> None:
        """Stop listening, drain connections, shut the shard pool down."""
        if not self._running:
            return
        self._running = False
        self._stop_event.set()
        self.network.shutdown(self.host, self.port)
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        if self._coalescer is not None:
            self._coalescer.stop()
        for handle in self._shards:
            channel = handle.channel
            if channel is None:
                continue
            try:
                channel.request(OP_SHUTDOWN, b"", timeout=2.0)
            except FleetShardCrashed:
                pass
            channel.kill()
            handle.channel = None
        if self._reactor is not None:
            self._reactor.stop()
            self._reactor = None

    def _combined_fingerprint(self) -> bytes:
        """What shard policy replicas are versioned by.

        Folds the declarative policy's fingerprint (epoch included) into
        the legacy one, so a revocation on the router's engine is a
        policy change to every shard — synced lazily, ahead of the next
        message each shard serves.
        """
        fingerprint = policy_fingerprint(self.policy)
        if self.engine is not None:
            from repro.crypto.hashing import sha256

            fingerprint = sha256(fingerprint + self.engine.fingerprint())
        return fingerprint

    def _spawn(self, handle: _ShardHandle) -> None:
        # Fingerprint *before* encoding: if the policy mutates between
        # the two, the stale fingerprint forces a (redundant but safe)
        # resync on the next message instead of missing one.
        fingerprint = self._combined_fingerprint()
        spec = ShardSpec(
            index=handle.index,
            serial=self.config.shard_base_serial + handle.index,
            vendor_private=self.vendor_key.private,
            identity_private=self.identity.private,
            policy_blob=encode_policy(self.policy),
            secret_provider=self.secret_provider,
            config=self.config,
            deterministic_rng=self.config.shard_deterministic_rng,
            appraisal_blob=(self.engine.policy.encode()
                            if self.engine is not None else b""),
        )
        siblings = [sock for other in self._shards
                    if other.channel is not None
                    for sock in (other.channel.data_sock,
                                 other.channel.ctrl_sock)]
        handle.channel = _ShardChannel(spec, self._context, siblings,
                                       self._reactor)
        handle.policy_fp = fingerprint

    # -- supervision ------------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop_event.wait(self.config.heartbeat_interval_s):
            for handle in self._shards:
                if self._stop_event.is_set():
                    return
                channel = handle.channel
                if channel is None:
                    continue
                reason = self._probe(channel)
                if reason is not None and self._running:
                    self._respawn(handle, reason)

    def _probe(self, channel: _ShardChannel) -> Optional[str]:
        """Classify a shard's health; a non-None reason demands respawn."""
        if channel.down.is_set() or not channel.process.is_alive():
            return "death"
        try:
            _opcode, body = channel.request(
                OP_PING, b"", timeout=self.config.heartbeat_timeout_s,
                control=True)
        except FleetShardCrashed:
            # A closed channel is death even while the corpse awaits
            # reaping (is_alive can lag a SIGKILL); a ping *timeout*
            # leaves the channel up, which is the wedged signature.
            if channel.down.is_set() or not channel.process.is_alive():
                return "death"
            return "wedged"
        (frames,) = _PONG.unpack_from(body)
        if channel.busy() and frames == channel.progress_frames:
            # Requests outstanding, yet the data loop read nothing new
            # since the last probe: the worker is stuck inside one frame.
            now = time.monotonic()
            if channel.progress_stalled_since is None:
                channel.progress_stalled_since = now
            elif now - channel.progress_stalled_since > \
                    self.config.shard_request_timeout_s:
                return "stuck"
        else:
            channel.progress_frames = frames
            channel.progress_stalled_since = None
        return None

    def _respawn(self, handle: _ShardHandle, reason: str) -> None:
        """Replace a dead/wedged worker and invalidate its sessions."""
        with self._respawn_lock:
            if not self._running:
                return
            channel = handle.channel
            if channel is not None:
                channel.kill()
            # The shard's protocol state died with it: every session it
            # owned is evicted (distinct reason), and the attesters'
            # retries start from msg0 on the fresh worker.
            self.sessions.evict_lane(handle.index, CRASH_EVICT_REASON)
            if self.fabric is not None:
                # Replay the death into fabric membership: the ring
                # shrinks, and every ticket the dead member owned is
                # eagerly pushed to its deterministic new owner.
                moves = self.fabric.member_down(handle.index)
                self.metrics.increment("fabric_member_down")
                self.metrics.increment(f"fabric_member_down_{reason}")
                for key, new_owner in moves:
                    self._replicate_to(new_owner, key,
                                       "fabric_rebalance_pushes")
            self._spawn(handle)
            handle.respawns += 1
            self.metrics.increment("shard_respawns")
            self.metrics.increment(f"shard_respawns_{reason}")
            if self.fabric is not None:
                # The respawned member rejoins the ring and is bulk-seeded
                # with the slice it now owns, so devices resuming against
                # it hit without waiting for lazy pushes.
                keys = self.fabric.member_up(handle.index)
                self.metrics.increment("fabric_member_up")
                self._sync_member(handle, keys)

    # -- connection plumbing -----------------------------------------------------

    def _new_connection(self) -> _GatewayConnection:
        with self._conn_lock:
            self._conn_counter += 1
            conn_id = self._conn_counter
        # Session affinity: the shard owns this connection's protocol
        # state for the whole handshake.
        shard = conn_id % self.config.shards
        self.sessions.open(conn_id, shard)
        self.metrics.increment("connections")
        return _GatewayConnection(self, conn_id)

    def _connection_closed(self, conn_id: int) -> None:
        entry = self.sessions.discard(conn_id)
        if entry is not None:
            self._evict_shard_state(entry)

    def _session_evicted(self, entry: SessionEntry, reason: str) -> None:
        self.metrics.increment(f"sessions_evicted_{reason}")
        if reason != CRASH_EVICT_REASON:
            # On a crash the TA state is already gone — never ask the
            # fresh worker to evict connections it has never seen.
            self._evict_shard_state(entry)

    def _evict_shard_state(self, entry: SessionEntry) -> None:
        if not self._running or entry.lane >= len(self._shards):
            return
        coalescer = self._coalescer
        if coalescer is None:
            self._send_evict(entry.lane, [entry.conn_id])
        else:
            coalescer.enqueue(entry.lane, entry.conn_id)

    def _send_evict(self, lane: int, conn_ids: List[int]) -> None:
        if not self._running or lane >= len(self._shards) or not conn_ids:
            return
        handle = self._shards[lane]
        coalescer = self._coalescer
        if len(conn_ids) == 1 and (coalescer is None
                                   or not coalescer.batching):
            # Inline mode: the exact legacy frame and TA invoke cadence.
            body = _CONN_ID.pack(conn_ids[0])
        else:
            body = encode_evict_batch(sorted(conn_ids))
            self.metrics.increment("evict_batched")
            self.metrics.increment("evict_coalesced", len(conn_ids))
        try:
            self._request(handle, OP_EVICT, body, timeout=5.0)
        except FleetShardCrashed:
            pass  # the supervisor owns the respawn; state died anyway

    # -- the message path --------------------------------------------------------

    def _request(self, handle: _ShardHandle, opcode: int, body: bytes,
                 timeout: float, control: bool = False) -> Tuple[int, bytes]:
        channel = handle.channel
        if channel is None or channel.down.is_set():
            raise FleetShardCrashed(
                f"verifier shard {handle.index} is down")
        return channel.request(opcode, body, timeout, control=control)

    def _sync_policy(self, handle: _ShardHandle) -> bytes:
        """Lazily mirror parent-side policy mutations into the shard.

        The policy fingerprint (the same one that scopes the appraisal
        cache) is compared per message; only a change ships the policy
        over the channel, ordered on the data stream ahead of the
        message that needed it. Returns the combined fingerprint so the
        fabric can adopt the same scope without recomputing it.
        """
        fingerprint = self._combined_fingerprint()
        if handle.policy_fp == fingerprint:
            return fingerprint
        with handle.policy_lock:
            if handle.policy_fp == fingerprint:
                return fingerprint
            appraisal_blob = (self.engine.policy.encode()
                              if self.engine is not None else b"")
            self._request(handle, OP_POLICY,
                          encode_policy_bundle(self.policy, appraisal_blob),
                          timeout=self.config.shard_request_timeout_s)
            handle.policy_fp = fingerprint
            self.metrics.increment("shard_policy_syncs")
        return fingerprint

    def _dispatch(self, conn_id: int, data: bytes) -> Optional[bytes]:
        try:
            self._admission.admit()
        except FleetOverloaded as rejection:
            self.metrics.increment(f"rejected_{rejection.reason}")
            raise
        self.metrics.increment("accepted")
        self.metrics.enter_flight()
        try:
            return self._serve(conn_id, data)
        finally:
            self.metrics.exit_flight()
            self._admission.release()

    def _serve(self, conn_id: int, data: bytes) -> Optional[bytes]:
        entry = self.sessions.touch(conn_id)
        kind = AttestationGateway._kind(data)
        handle = self._shards[entry.lane]
        if not handle.try_enter():
            self.metrics.increment("rejected_queue")
            self.metrics.increment("rejected_shard_queue")
            raise FleetOverloaded(reason="queue")
        fabric_key: Optional[CacheKey] = None
        try:
            fingerprint = self._sync_policy(handle)
            if self.fabric is not None and kind == "msg2":
                # Scope the store to the fingerprint the shard serves
                # under (a change bumps the epoch, voiding every ticket),
                # then lazily push the replicated ticket — if any — ahead
                # of the message on the same ordered data stream.
                self.fabric.refresh(fingerprint)
                fabric_key = ticket_key_from_message(data)
                if fabric_key is not None:
                    self._replicate_to(handle.index, fabric_key,
                                       "fabric_lazy_pushes")
            opcode, body = self._request(
                handle, OP_MESSAGE, _CONN_ID.pack(conn_id) + data,
                timeout=self.config.shard_request_timeout_s)
        except FleetShardCrashed:
            self.metrics.increment("failed_messages")
            self.sessions.discard(conn_id)
            raise
        finally:
            handle.leave()
        if opcode == OP_ERR:
            name, message = _decode_error(body)
            self.metrics.increment("failed_messages")
            self.sessions.discard(conn_id)
            raise _resolve_error(name, message)
        if self.fabric is not None:
            done, cache_hit, sim_ns, service_s, reply, mints = \
                _decode_message_response_fabric(body)
            if mints:
                self._ingest_mints(entry.lane, mints)
            if cache_hit and fabric_key is not None:
                ticket = self.fabric.lookup(fabric_key)
                if ticket is not None and ticket.origin != entry.lane:
                    self.metrics.increment("fabric_cross_shard_hits")
        else:
            done, cache_hit, sim_ns, service_s, reply = \
                _decode_message_response(body)
        if done:
            self.metrics.increment("handshakes_completed")
            self.sessions.discard(conn_id)
        with self._records_lock:
            self.records.append(MessageRecord(
                conn_id=conn_id, kind=kind, service_s=service_s,
                sim_transition_ns=sim_ns, cache_hit=cache_hit,
            ))
        return reply

    # -- the replication bus -----------------------------------------------------

    def _replicate_to(self, member: int, key: CacheKey,
                      metric: str) -> bool:
        """Push the store's live ticket for ``key`` into one member.

        A no-op when the member already holds the current version (the
        common case on the lazy path). The shard's :class:`ReplicaState`
        re-checks the version on arrival, so even a racing duplicate
        push is harmless.
        """
        fabric = self.fabric
        if fabric is None or member >= len(self._shards):
            return False
        push = fabric.pending_push(key, member)
        if push is None:
            return False
        epoch, seq, age_ns, resumption_key = push
        body = encode_ticket_put(epoch, seq, age_ns, fabric.fingerprint,
                                 key, resumption_key)
        try:
            opcode, resp = self._request(
                self._shards[member], OP_TICKET_PUT, body,
                timeout=self.config.shard_request_timeout_s)
        except FleetShardCrashed:
            return False
        if opcode == OP_OK and resp == b"\x01":
            fabric.mark_replicated(key, member)
            self.metrics.increment(metric)
            return True
        return False

    def _ingest_mints(self, lane: int, mints: List[bytes]) -> None:
        """Record tickets a shard minted; eagerly push to ring owners."""
        fabric = self.fabric
        for blob in mints:
            fingerprint, age_ns, key, resumption_key = \
                decode_ticket_mint(blob)
            # Re-adopt the current scope first: a mint that raced a
            # revocation carries the old fingerprint and must drop.
            fabric.refresh(self._combined_fingerprint())
            ticket = fabric.record_mint(lane, fingerprint, key,
                                        resumption_key, age_ns=age_ns)
            if ticket is None:
                self.metrics.increment("fabric_stale_mints")
                continue
            self.metrics.increment("fabric_mints")
            owner = fabric.owner(key)
            if owner is not None and owner != lane:
                self._replicate_to(owner, key, "fabric_eager_pushes")

    def _sync_member(self, handle: _ShardHandle,
                     keys: List[CacheKey]) -> int:
        """Bulk-seed one member with every listed key it lacks."""
        fabric = self.fabric
        puts: List[Tuple[CacheKey, bytes]] = []
        for key in keys:
            push = fabric.pending_push(key, handle.index)
            if push is None:
                continue
            epoch, seq, age_ns, resumption_key = push
            puts.append((key, encode_ticket_put(
                epoch, seq, age_ns, fabric.fingerprint, key,
                resumption_key)))
        if not puts:
            return 0
        body = struct.pack(">I", len(puts)) + b"".join(
            struct.pack(">I", len(put)) + put for _, put in puts)
        try:
            opcode, _resp = self._request(
                handle, OP_TICKET_SYNC, body,
                timeout=self.config.shard_request_timeout_s)
        except FleetShardCrashed:
            return 0
        if opcode != OP_OK:
            return 0
        for key, _ in puts:
            fabric.mark_replicated(key, handle.index)
        self.metrics.increment("fabric_syncs")
        return len(puts)

    def fabric_evict_identity(self, identity: bytes) -> int:
        """Purge every replicated ticket of one device, fabric-wide.

        Tombstones land on every member holding a replica with a
        sequence newer than any outstanding ``TICKET_PUT``, so a late or
        replayed replication frame can never resurrect the ticket.
        Returns the number of tickets purged from the authority.
        """
        fabric = self.fabric
        if fabric is None:
            raise ValueError("the fabric is not enabled")
        purged = 0
        for key, epoch, seq, replicas in fabric.evict_identity(identity):
            body = encode_ticket_evict(epoch, seq, key)
            for member in replicas:
                if member >= len(self._shards):
                    continue
                try:
                    self._request(self._shards[member], OP_TICKET_EVICT,
                                  body,
                                  timeout=self.config.shard_request_timeout_s)
                except FleetShardCrashed:
                    continue
            purged += 1
            self.metrics.increment("fabric_ticket_evictions")
        return purged

    # -- the hierarchy surface ---------------------------------------------------

    def shard_audit(self, index: int, since: int = 0) -> List[AuditEntry]:
        """One shard's retained audit entries from ``since`` onwards."""
        handle = self._shards[index]
        channel = handle.channel
        if channel is None or channel.down.is_set():
            return []
        try:
            opcode, body = channel.request(OP_AUDIT, _CONN_ID.pack(since),
                                           timeout=5.0, control=True)
        except FleetShardCrashed:
            return []
        if opcode != OP_OK:
            return []
        return [entry_from_dict(item)
                for item in json.loads(body.decode())]

    def shard_flame(self, index: int) -> Optional[dict]:
        """Drain one shard's tracer (``FleetConfig.shard_trace``).

        Returns ``{"folded_wall": [...], "folded_sim": [...],
        "summary": str, "spans": int}`` — folded flamegraph lines on
        both clocks plus the per-name aggregate — or ``None`` when the
        shard is unreachable. With tracing off the lists are empty.
        """
        handle = self._shards[index]
        channel = handle.channel
        if channel is None or channel.down.is_set():
            return None
        try:
            opcode, body = channel.request(OP_FLAME, b"", timeout=5.0,
                                           control=True)
        except FleetShardCrashed:
            return None
        if opcode != OP_OK:
            return None
        return json.loads(body.decode())

    def flame_report(self) -> str:
        """Every live shard's flame summary, concatenated for artifacts."""
        sections = []
        for handle in self._shards:
            flame = self.shard_flame(handle.index)
            if flame is None:
                continue
            sections.append(f"-- shard {handle.index} "
                            f"({flame['spans']} spans) --\n"
                            f"{flame['summary']}")
        return "\n\n".join(sections)

    def shard_generations(self) -> List[Tuple[int, int]]:
        """``(index, generation)`` per shard; a respawn bumps the
        generation, telling the audit relay the shard's log restarted."""
        return [(handle.index, handle.respawns)
                for handle in self._shards]

    # -- introspection -----------------------------------------------------------

    def drain_records(self) -> List[MessageRecord]:
        """Return and clear the accumulated per-message records."""
        with self._records_lock:
            records, self.records = self.records, []
        return records

    def shard_snapshots(self) -> List[Optional[dict]]:
        """Fetch each live shard's state over its control channel."""
        snapshots: List[Optional[dict]] = []
        for handle in self._shards:
            channel = handle.channel
            state = None
            if channel is not None and not channel.down.is_set():
                try:
                    opcode, body = channel.request(OP_SNAPSHOT, b"",
                                                   timeout=5.0,
                                                   control=True)
                    if opcode == OP_OK:
                        state = json.loads(body.decode())
                except FleetShardCrashed:
                    pass
            snapshots.append(state)
        return snapshots

    def snapshot(self) -> Dict[str, object]:
        """One aggregate dict across the router and every live shard.

        Shaped like the threaded gateway's snapshot (counters /
        in_flight / latency / sessions / admission / cache) plus a
        ``shards`` section. Metrics of a shard that died since the last
        respawn are gone with it — the respawn counter records that.
        """
        shard_states = self.shard_snapshots()
        merged = FleetMetrics.from_states(
            [self.metrics.state()]
            + [state["metrics"] for state in shard_states if state])
        snapshot = merged.snapshot()
        snapshot["sessions"] = self.sessions.snapshot()
        snapshot["admission"] = self._admission.snapshot()
        snapshot["cache"] = self._merge_cache(
            [state.get("cache") for state in shard_states if state])
        snapshot["shards"] = {
            "count": len(self._shards),
            "respawns": sum(handle.respawns for handle in self._shards),
            "per_shard": [
                {
                    "index": handle.index,
                    "respawns": handle.respawns,
                    "alive": bool(state),
                    "live_states": (state.get("live_states")
                                    if state else None),
                }
                for handle, state in zip(self._shards, shard_states)
            ],
        }
        snapshot["audit"] = self._merge_audit(
            [state.get("audit") for state in shard_states if state])
        if self.fabric is not None:
            snapshot["fabric"] = {
                "store": self.fabric.snapshot(),
                "replicas": [state.get("fabric") if state else None
                             for state in shard_states],
            }
        return snapshot

    @staticmethod
    def _merge_audit(states: List[Optional[dict]]) -> Optional[dict]:
        states = [state for state in states if state]
        if not states:
            return None
        merged: Dict[str, int] = {}
        for state in states:
            for reason, count in state.items():
                merged[reason] = merged.get(reason, 0) + int(count)
        return merged

    # -- revocation killswitch ---------------------------------------------------

    def revoke_measurement(self, claim: bytes) -> None:
        """Blocklist a code measurement fleet-wide, effective lazily.

        The revocation bumps the engine's policy epoch, which moves the
        combined fingerprint; every shard picks the new policy replica up
        ahead of the *next* message it serves, and the fingerprint shift
        also evicts the shards' appraisal-cache entries and outstanding
        resumption tickets.
        """
        self._require_engine().revoke_measurement(claim)
        self.metrics.increment("revocations")

    def revoke_identity(self, identity: bytes) -> None:
        """Blocklist a device attestation key fleet-wide (see above)."""
        self._require_engine().revoke_identity(identity)
        self.metrics.increment("revocations")

    def _require_engine(self):
        if self.engine is None:
            raise ValueError(
                "the revocation killswitch needs an appraisal engine")
        return self.engine

    @staticmethod
    def _merge_cache(states: List[Optional[dict]]) -> Optional[dict]:
        states = [state for state in states if state]
        if not states:
            return None
        merged = {key: sum(state.get(key, 0) for state in states)
                  for key in ("entries", "hits", "misses", "bad_tickets",
                              "invalidations", "expirations", "seeds")}
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / total if total else 0.0
        return merged


def start_sharded_gateway(network: Network, host: str, port: int,
                          vendor_key: ecdsa.KeyPair,
                          identity: ecdsa.KeyPair, policy: VerifierPolicy,
                          secret_provider: SecretProvider,
                          config: FleetConfig,
                          engine=None) -> ShardedGateway:
    """Convenience mirror of :func:`repro.fleet.gateway.start_fleet_gateway`."""
    gateway = ShardedGateway(network, host, port, vendor_key, identity,
                             policy, secret_provider, config, engine=engine)
    return gateway.start()
