"""Session table for the fleet gateway.

Each inbound attester connection gets one entry, pinned to a verifier TA
lane for its whole handshake (the lane's TA instance holds the
:class:`~repro.core.server.VerifierProtocolState` keyed by connection
id). Entries expire on a TTL — an attester that stalls mid-handshake must
not pin verifier state forever — and the table carries an LRU cap so a
burst of half-open handshakes cannot grow verifier memory without bound.
Evictions are reported through ``on_evict`` so the gateway can drop the
TA-side protocol state as well.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ProtocolError


@dataclass
class SessionEntry:
    """Gateway-side bookkeeping for one live attester connection."""

    conn_id: int
    lane: int
    created_ns: int
    last_seen_ns: int
    messages: int = 0


EvictCallback = Callable[[SessionEntry, str], None]


class SessionTable:
    """TTL-expiring, LRU-capped registry of live gateway sessions."""

    def __init__(self, capacity: int, ttl_s: float,
                 time_source=time.monotonic_ns,
                 on_evict: Optional[EvictCallback] = None) -> None:
        if capacity < 1:
            raise ValueError("session capacity must be positive")
        self._capacity = capacity
        self._ttl_ns = int(ttl_s * 1e9)
        self._now = time_source
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, SessionEntry]" = OrderedDict()
        self.expired = 0
        self.evicted_lru = 0

    def open(self, conn_id: int, lane: int) -> SessionEntry:
        """Register a new connection, evicting to stay under the cap."""
        evicted = []
        with self._lock:
            evicted += self._sweep_expired()
            now = self._now()
            entry = SessionEntry(conn_id=conn_id, lane=lane,
                                 created_ns=now, last_seen_ns=now)
            self._entries[conn_id] = entry
            while len(self._entries) > self._capacity:
                _, victim = self._entries.popitem(last=False)
                self.evicted_lru += 1
                evicted.append((victim, "lru"))
        self._notify(evicted)
        return entry

    def touch(self, conn_id: int) -> SessionEntry:
        """Refresh a live entry; raises if it expired or was evicted."""
        evicted = []
        try:
            with self._lock:
                evicted += self._sweep_expired()
                entry = self._entries.get(conn_id)
                if entry is None:
                    raise ProtocolError(
                        f"attestation session {conn_id} has expired or was "
                        "evicted"
                    )
                entry.last_seen_ns = self._now()
                entry.messages += 1
                self._entries.move_to_end(conn_id)
                return entry
        finally:
            self._notify(evicted)

    def discard(self, conn_id: int) -> Optional[SessionEntry]:
        """Explicit teardown (connection closed); no evict callback."""
        with self._lock:
            return self._entries.pop(conn_id, None)

    def sweep(self) -> int:
        """Expire stale entries; returns how many were evicted."""
        with self._lock:
            evicted = self._sweep_expired()
        self._notify(evicted)
        return len(evicted)

    def evict_lane(self, lane: int, reason: str) -> int:
        """Evict every entry pinned to ``lane``; returns how many.

        The sharded gateway calls this when a verifier shard dies: the
        protocol state of every handshake the shard owned died with it,
        so the sessions are invalidated (with a distinct ``reason``) and
        their attesters must restart from msg0 on the respawned worker.
        """
        with self._lock:
            victims = [conn_id for conn_id, entry in self._entries.items()
                       if entry.lane == lane]
            evicted = [(self._entries.pop(conn_id), reason)
                       for conn_id in victims]
        self._notify(evicted)
        return len(evicted)

    def _sweep_expired(self):
        # Called with the lock held; returns (entry, reason) pairs so the
        # callbacks run after the lock is released (they may invoke the
        # verifier TA to drop its side of the state).
        evicted = []
        deadline = self._now() - self._ttl_ns
        stale = [conn_id for conn_id, entry in self._entries.items()
                 if entry.last_seen_ns <= deadline]
        for conn_id in stale:
            entry = self._entries.pop(conn_id)
            self.expired += 1
            evicted.append((entry, "ttl"))
        return evicted

    def _notify(self, evicted) -> None:
        if self._on_evict is None:
            return
        for entry, reason in evicted:
            self._on_evict(entry, reason)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, conn_id: int) -> bool:
        with self._lock:
            return conn_id in self._entries

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live": len(self._entries),
                "capacity": self._capacity,
                "expired": self.expired,
                "evicted_lru": self.evicted_lru,
            }
