"""Appraisal cache: memoise the expensive half of evidence appraisal.

Table III shows the verifier's msg2 cost is dominated by asymmetric
crypto — one ECDSA verify over the evidence body. The evidence signature
covers the session anchor, so its *bytes* are fresh every handshake and a
byte-level cache would never hit; what can legitimately be memoised is
the *appraisal decision* — but only for a sender who can prove it is the
same party that passed the full appraisal. Every field of the evidence is
public (the endorsement key, the measurement, the boot claim), and every
session-bound check (MAC, anchor) is computable by anyone running their
own key exchange, so a cache keyed on those values alone would let a
network attacker replay a genuine device's claims with a forged
signature.

The proof of continuity is a **resumption key**: after a fully verified
appraisal (evidence signature included), the verifier draws a fresh
16-byte secret, stores it in the cache entry and returns it to the
attester *inside* msg3's AES-GCM envelope — readable only by the peer
that completed this session's key exchange, i.e. the very party whose
signature just verified. On re-attestation the attester includes a
*ticket* in msg2: an AES-CMAC under the resumption key over the fresh
evidence body (which contains the new session's anchor, so captured
tickets cannot be transplanted). :meth:`AppraisalCache.redeem` releases a
hit — and thereby the ECDSA skip — only when the ticket verifies against
the entry's key; a msg2 built purely from public values always takes the
full-verify path.

Entries are bounded by TTL (counted from the last real verify), a
capacity cap in store order, and a fingerprint of the verifier policy:
endorsing a new device, trusting a new measurement, or any other policy
change invalidates the whole cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.protocol import RESUMPTION_KEY_SIZE
from repro.crypto.cmac import AesCmac
from repro.crypto.hashing import constant_time_equal, sha256

CacheKey = Tuple[int, bytes, bytes, bytes]


def policy_fingerprint(policy) -> bytes:
    """A digest of everything the appraisal outcome depends on."""
    hasher_input = bytearray()
    for endorsement in sorted(policy.endorsements):
        hasher_input += endorsement
    hasher_input += b"|refs|"
    for reference in sorted(policy.reference_values):
        hasher_input += reference
    hasher_input += b"|boot|"
    for accumulated in sorted(policy.trusted_boot_measurements):
        hasher_input += accumulated
    hasher_input += b"|ver|"
    hasher_input += bytes(policy.minimum_version)
    return sha256(bytes(hasher_input))


class AppraisalCache:
    """TTL + capacity-bounded cache of appraisals, policy-fingerprinted.

    Entries are kept in store order (no recency reordering): the TTL
    counts from the last full verify, so eviction order and expiry order
    agree, and :meth:`_expire` can stop at the first live entry.
    """

    def __init__(self, capacity: int = 1024,
                 ttl_s: Optional[float] = None,
                 time_source=time.monotonic_ns) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._ttl_ns = None if ttl_s is None else int(ttl_s * 1e9)
        self._now = time_source
        self._lock = threading.Lock()
        # key -> (stored_at_ns, resumption_key), ordered by store time.
        self._entries: "OrderedDict[CacheKey, Tuple[int, bytes]]" = \
            OrderedDict()
        self._fingerprint: Optional[bytes] = None
        #: Optional fabric hook, called *outside* the lock after every
        #: :meth:`store` as ``listener(fingerprint, key, resumption_key,
        #: stored_at_ns)`` — how a shard reports freshly minted tickets.
        #: Seeded entries never notify (no replication echo).
        self._store_listener = None
        self.hits = 0
        self.misses = 0
        self.bad_tickets = 0
        self.invalidations = 0
        self.expirations = 0
        self.seeds = 0

    @staticmethod
    def _key(evidence) -> CacheKey:
        # The key binds the evidence *backend* alongside every appraised
        # field: ``tee_type`` plus ``cache_extra`` (boot chain for
        # TrustZone, MRSIGNER/SVN/debug for SGX, RTMRs for TDX) keep an
        # entry minted for one backend or configuration from ever being
        # redeemed under another.
        return (int(evidence.tee_type), bytes(evidence.identity),
                bytes(evidence.claim), bytes(evidence.cache_extra))

    @staticmethod
    def _ticket_body(evidence) -> bytes:
        # Multi-TEE views MAC their full envelope — the tee_type tag sits
        # inside the MAC'd header, so a ticket cannot cross backends.
        # Legacy Evidence keeps MACing its bare body: the attester-side
        # bytes are unchanged from the seed protocol.
        if hasattr(evidence, "envelope"):
            return evidence.envelope()
        return evidence.encode()

    def _refresh_policy(self, policy) -> None:
        # ``policy`` is either a legacy ``VerifierPolicy`` or an already
        # combined fingerprint (bytes) from a verifier that also holds an
        # appraisal engine — see ``Verifier._policy_scope``.
        if isinstance(policy, (bytes, bytearray)):
            fingerprint = bytes(policy)
        else:
            fingerprint = policy_fingerprint(policy)
        if fingerprint != self._fingerprint:
            if self._fingerprint is not None and self._entries:
                self.invalidations += len(self._entries)
            self._entries.clear()
            self._fingerprint = fingerprint

    def _expire(self) -> None:
        if self._ttl_ns is None:
            return
        deadline = self._now() - self._ttl_ns
        while self._entries:
            oldest_key = next(iter(self._entries))
            if self._entries[oldest_key][0] > deadline:
                break
            del self._entries[oldest_key]
            self.expirations += 1

    def redeem(self, policy, evidence, ticket: bytes) -> Optional[bytes]:
        """Release the entry's resumption key iff ``ticket`` proves it.

        A hit requires a live entry for the evidence triple AND a valid
        CMAC over the evidence body under the entry's resumption key —
        the body contains this session's anchor, so neither a replayed
        ticket nor a fabricated msg2 without the key can redeem. Anything
        else counts a miss (an existing entry with a wrong ticket also
        counts ``bad_tickets``) and the caller must run the full verify.
        """
        with self._lock:
            self._refresh_policy(policy)
            self._expire()
            key = self._key(evidence)
            entry = self._entries.get(key)
            if entry is not None and self._ttl_ns is not None and \
                    entry[0] <= self._now() - self._ttl_ns:
                # TTL counts from the last *store* (the last real
                # verify): a constantly re-attesting device must still
                # re-prove key possession every TTL.
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            resumption_key = entry[1]
            if not ticket or not constant_time_equal(
                    AesCmac(resumption_key).mac(self._ticket_body(evidence)),
                    ticket):
                if ticket:
                    self.bad_tickets += 1
                self.misses += 1
                return None
            self.hits += 1
            return resumption_key

    def store(self, policy, evidence, resumption_key: bytes) -> None:
        """Record a fully successful appraisal and its resumption key."""
        if len(resumption_key) != RESUMPTION_KEY_SIZE:
            raise ValueError("resumption key must be "
                             f"{RESUMPTION_KEY_SIZE} bytes")
        with self._lock:
            self._refresh_policy(policy)
            key = self._key(evidence)
            self._entries.pop(key, None)  # re-store resets the store order
            stored_at = self._now()
            self._entries[key] = (stored_at, bytes(resumption_key))
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            listener = self._store_listener
            fingerprint = self._fingerprint
        if listener is not None:
            # Outside the lock: the listener may consult other locked
            # structures (the fabric store) without ordering hazards.
            listener(fingerprint, key, bytes(resumption_key), stored_at)

    # -- fabric surface ----------------------------------------------------------

    def set_store_listener(self, listener) -> None:
        """Register the fabric's mint hook (see ``_store_listener``)."""
        self._store_listener = listener

    def seed(self, fingerprint: bytes, key: CacheKey,
             resumption_key: bytes, age_ns: int = 0) -> bool:
        """Install a *replicated* entry under an explicit scope.

        The entry was minted by a full verify elsewhere; ``age_ns`` is
        its age on the authority's clock, so the local TTL continues
        rather than restarts. A fresh cache adopts the pushed
        fingerprint; a mismatch with the live fingerprint means the
        push raced a policy change and is refused. Seeded entries may
        land out of store order — :meth:`redeem` checks TTL per entry,
        so a stale seed can never hit; it merely expires lazily.
        """
        if len(resumption_key) != RESUMPTION_KEY_SIZE:
            raise ValueError("resumption key must be "
                             f"{RESUMPTION_KEY_SIZE} bytes")
        fingerprint = bytes(fingerprint)
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = fingerprint
            elif fingerprint != self._fingerprint:
                return False
            self._entries.pop(key, None)
            self._entries[key] = (self._now() - age_ns,
                                  bytes(resumption_key))
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            self.seeds += 1
            return True

    def evict_key(self, key: CacheKey) -> bool:
        """Drop one entry by raw key (a fabric tombstone landing)."""
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict counters for metrics export."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "bad_tickets": self.bad_tickets,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
                "seeds": self.seeds,
            }
