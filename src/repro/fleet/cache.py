"""Appraisal cache: memoise the expensive half of evidence appraisal.

Table III shows the verifier's msg2 cost is dominated by asymmetric
crypto — one ECDSA verify over the evidence body. The evidence signature
covers the session anchor, so its *bytes* are fresh every handshake and a
byte-level cache would never hit; what can legitimately be memoised is
the *appraisal decision*: once a device has proved possession of its
attestation key by producing one valid signature over a given
(measurement claim, boot claim) pair, re-attestations by the same device
with the same claims skip the ECDSA verify while the cache entry is live.

This is an explicit verifier-side policy relaxation (trust-on-first-proof
per triple, bounded by TTL, LRU capacity and the policy fingerprint) —
every session-specific check (session MAC under K_m, anchor binding,
endorsement lookup, reference values, boot appraisal) still runs on every
handshake, so a cache hit never weakens freshness or session binding,
only the re-proof of key possession. Entries are keyed under a
fingerprint of the verifier policy: endorsing a new device, trusting a
new measurement, or any other policy change invalidates the whole cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.crypto.hashing import sha256

CacheKey = Tuple[bytes, bytes, bytes]


def policy_fingerprint(policy) -> bytes:
    """A digest of everything the appraisal outcome depends on."""
    hasher_input = bytearray()
    for endorsement in sorted(policy.endorsements):
        hasher_input += endorsement
    hasher_input += b"|refs|"
    for reference in sorted(policy.reference_values):
        hasher_input += reference
    hasher_input += b"|boot|"
    for accumulated in sorted(policy.trusted_boot_measurements):
        hasher_input += accumulated
    hasher_input += b"|ver|"
    hasher_input += bytes(policy.minimum_version)
    return sha256(bytes(hasher_input))


class AppraisalCache:
    """TTL + LRU cache of successful appraisals, policy-fingerprinted."""

    def __init__(self, capacity: int = 1024,
                 ttl_s: Optional[float] = None,
                 time_source=time.monotonic_ns) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._ttl_ns = None if ttl_s is None else int(ttl_s * 1e9)
        self._now = time_source
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, int]" = OrderedDict()
        self._fingerprint: Optional[bytes] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0

    @staticmethod
    def _key(evidence) -> CacheKey:
        return (bytes(evidence.attestation_public_key),
                bytes(evidence.claim), bytes(evidence.boot_claim))

    def _refresh_policy(self, policy) -> None:
        fingerprint = policy_fingerprint(policy)
        if fingerprint != self._fingerprint:
            if self._fingerprint is not None and self._entries:
                self.invalidations += len(self._entries)
            self._entries.clear()
            self._fingerprint = fingerprint

    def _expire(self) -> None:
        if self._ttl_ns is None:
            return
        deadline = self._now() - self._ttl_ns
        while self._entries:
            oldest_key = next(iter(self._entries))
            if self._entries[oldest_key] > deadline:
                break
            del self._entries[oldest_key]
            self.expirations += 1

    def contains(self, policy, evidence) -> bool:
        """Look up an appraisal; counts a hit or a miss."""
        with self._lock:
            self._refresh_policy(policy)
            self._expire()
            key = self._key(evidence)
            stored_at = self._entries.get(key)
            if stored_at is None:
                self.misses += 1
                return False
            # TTL counts from the last *store* (the last real verify), not
            # the last hit: a constantly re-attesting device must still
            # re-prove key possession every TTL.
            if self._ttl_ns is not None and \
                    stored_at <= self._now() - self._ttl_ns:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False
            self._entries.move_to_end(key)
            self.hits += 1
            return True

    def store(self, policy, evidence) -> None:
        """Record a fully successful appraisal."""
        with self._lock:
            self._refresh_policy(policy)
            self._entries[self._key(evidence)] = self._now()
            self._entries.move_to_end(self._key(evidence))
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict counters for metrics export."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
            }
