"""repro.fleet: a concurrent attestation gateway in front of the verifier.

The paper evaluates one attester against one verifier (§VI-F); this
subsystem grows that into a service: many concurrent attester connections
multiplexed onto a pool of verifier TA sessions, with session lifecycle
management, an appraisal cache for the hot path, explicit backpressure,
and observable metrics. See DESIGN.md, "Fleet gateway".
"""

from repro.fleet.asynccore import (
    LOOP_BACKEND,
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    FrameWriter,
    Reactor,
    encode_frame,
)
from repro.fleet.backpressure import AdmissionController, TokenBucket
from repro.fleet.cache import AppraisalCache
from repro.fleet.fabric import (
    AuditRelay,
    ChurnProfile,
    FabricStore,
    HashRing,
    ReplicaState,
    RootAuditor,
    model_churn,
    model_revocation_storm,
    run_churn,
    zipf_sequence,
)
from repro.fleet.gateway import (
    CMD_FLEET_EVICT,
    CMD_FLEET_MESSAGE,
    FLEET_VERIFIER_UUID,
    AttestationGateway,
    FleetConfig,
    make_fleet_verifier_ta,
    start_fleet_gateway,
)
from repro.fleet.loadgen import (
    AttesterStack,
    FleetModel,
    HandshakeResult,
    LoadProfile,
    LoadReport,
    ModelResult,
    MultiTeeStack,
    build_attester_stacks,
    build_mixed_stacks,
    model_fleet,
    run_load,
    run_one_handshake,
    run_one_handshake_multi,
)
from repro.fleet.metrics import FleetMetrics, LatencyHistogram
from repro.fleet.sessions import SessionEntry, SessionTable
from repro.fleet.shards import (
    CRASH_EVICT_REASON,
    ShardedGateway,
    ShardSpec,
    start_sharded_gateway,
)

__all__ = [
    "LOOP_BACKEND",
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameReader",
    "FrameWriter",
    "Reactor",
    "encode_frame",
    "AdmissionController",
    "TokenBucket",
    "AppraisalCache",
    "AttestationGateway",
    "FleetConfig",
    "FLEET_VERIFIER_UUID",
    "CMD_FLEET_MESSAGE",
    "CMD_FLEET_EVICT",
    "make_fleet_verifier_ta",
    "start_fleet_gateway",
    "AttesterStack",
    "LoadProfile",
    "LoadReport",
    "HandshakeResult",
    "FleetModel",
    "ModelResult",
    "MultiTeeStack",
    "build_attester_stacks",
    "build_mixed_stacks",
    "model_fleet",
    "run_load",
    "run_one_handshake",
    "run_one_handshake_multi",
    "FleetMetrics",
    "LatencyHistogram",
    "SessionEntry",
    "SessionTable",
    "CRASH_EVICT_REASON",
    "ShardedGateway",
    "ShardSpec",
    "start_sharded_gateway",
    "AuditRelay",
    "ChurnProfile",
    "FabricStore",
    "HashRing",
    "ReplicaState",
    "RootAuditor",
    "model_churn",
    "model_revocation_storm",
    "run_churn",
    "zipf_sequence",
]
