"""The concurrent attestation gateway.

The paper's verifier (§V) is a single normal-world listener forwarding
one connection's messages to one verifier TA session. This gateway turns
that into a service: many concurrent attester connections are multiplexed
onto a *pool* of verifier TA sessions (lanes), with

* per-connection protocol state kept in the lane's TA keyed by a
  connection id, so interleaved msg0/msg2 streams from different
  attesters can never cross;
* a session table (TTL + LRU) so a stalled attester cannot pin verifier
  state forever;
* an appraisal cache on the msg2 hot path (Table III: the asymmetric
  verify dominates);
* admission control (token bucket + bounded in-flight window) that sheds
  overload with :class:`~repro.errors.FleetOverloaded`;
* metrics for everything above.

Clock discipline: every forwarded message still pays the Fig. 3b
world-transition costs on the device's ``SimClock`` exactly as the
single-session server does — the costs *compose* out of
``TaSession.invoke``; nothing here hardcodes them. Queueing and service
time are measured in real ``perf_counter`` seconds. Per-message records
(real service seconds + simulated transition nanoseconds, kept separate)
feed the capacity model in :mod:`repro.fleet.loadgen`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import protocol
from repro.core.server import SecretProvider, VerifierProtocolState
from repro.core.transport import Network, Service
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ec, ecdsa
from repro.errors import FleetOverloaded, TeeBadParameters
from repro.fleet.backpressure import AdmissionController, TokenBucket
from repro.fleet.cache import AppraisalCache
from repro.fleet.metrics import FleetMetrics
from repro.fleet.sessions import SessionEntry, SessionTable
from repro.optee.gp_api import OpTeeClient, TaSession
from repro.optee.ta import TaManifest, TrustedApplication, sign_ta

CMD_FLEET_MESSAGE = 1
CMD_FLEET_EVICT = 2

FLEET_VERIFIER_UUID = "watz-fleet-verifier"


#: Lazily built codec registry for prewarming multi-TEE msg2s; decoding
#: here is advisory (pure math over public bytes), so one shared default
#: registry is fine even when the verifier runs a restricted one.
_prewarm_registry = None


def prewarm_msg2_tables(data: bytes) -> bool:
    """Precompute the evidence key's EC tables for a plain msg2.

    Pure, idempotent math over *public* bytes, safe to run outside any
    device lock (threaded gateway) or before the TA invoke (shard
    worker). Plain msg2 and the multi-TEE envelope variant both carry
    the attestation public key in the clear; malformed input is ignored
    here — the protocol path reports the real error. Returns True when
    tables were (re)warmed.
    """
    global _prewarm_registry
    if not data:
        return False
    try:
        if data[0] == protocol.MSG2:
            message = protocol.decode_msg2(data)
            public_bytes = \
                message.signed_evidence.evidence.attestation_public_key
        elif data[0] == protocol.MSG2_MULTI:
            if _prewarm_registry is None:
                from repro.appraisal.envelope import default_registry

                _prewarm_registry = default_registry()
            multi = protocol.decode_msg2_multi(data)
            public_bytes = _prewarm_registry.decode(multi.envelope).identity
        else:
            return False
        ec.precompute_public_key(ec.decode_point(public_bytes))
    except Exception:
        return False
    return True


#: One batchable verification: (public key point, message, signature) —
#: exactly the triple :meth:`SignedEvidence.verify_signature` checks.
BatchCandidate = Tuple[ec.Point, bytes, bytes]


def batch_candidate_from_message(data: bytes) -> Optional[BatchCandidate]:
    """Extract the ECDSA triple a *plain, ticketless* msg2 will verify.

    Only those messages are admitted to a batch: a resumption ticket may
    satisfy the appraisal cache instead of the signature check, and the
    encrypted/multi-TEE variants verify through backend codecs. Like
    :func:`prewarm_msg2_tables` this is advisory math over public bytes:
    malformed input yields ``None`` and takes the normal path, where the
    protocol reports the real error.
    """
    if not data or data[0] != protocol.MSG2:
        return None
    try:
        message = protocol.decode_msg2(data)
    except Exception:
        return None
    if message.ticket:
        return None
    signed = message.signed_evidence
    try:
        public = ec.decode_point(signed.evidence.attestation_public_key)
    except Exception:
        return None
    return public, signed.evidence.encode(), signed.signature


class _Msg2Batcher:
    """Stage concurrently in-flight msg2 verifies and check them jointly.

    Worker threads stage their message's ECDSA triple on entry and call
    :meth:`drain` right after acquiring the device lock. The first
    drainer to find two or more staged items runs ONE randomised batch
    verification (:func:`repro.crypto.batch.verify_batch`) and seeds the
    consume-once memo, so every covered lane's in-lock TA invoke settles
    its signature check with a dict lookup. Because drains serialise on
    the device lock, a thread reaching its own drain either still holds
    its item (batch or solo) or finds the share an earlier drainer left
    for it — there is no window where a message's verify work can be
    double-counted or lost.

    Accounting is honest: the batch's elapsed wall time is split evenly
    across the covered messages and added to each one's ``service_s``,
    so the capacity model sees the amortised cost, not a fictitious
    zero-cost verify.
    """

    def __init__(self, metrics: FleetMetrics) -> None:
        self._metrics = metrics
        self._lock = threading.Lock()
        self._staged: Dict[int, BatchCandidate] = {}
        self._shares: Dict[int, float] = {}
        self._next_token = 0

    def stage(self, data: bytes) -> Optional[int]:
        item = batch_candidate_from_message(data)
        if item is None:
            return None
        with self._lock:
            self._next_token += 1
            token = self._next_token
            self._staged[token] = item
        return token

    def should_prewarm(self, token: int) -> bool:
        """Solo so far: keep the legacy prewarm-outside-the-lock path.

        A second stager arriving later still batches this item — with
        warm tables then, which is a wash — while a message that stays
        alone behaves byte-for-byte like the unbatched gateway.
        """
        with self._lock:
            return token in self._staged and len(self._staged) == 1

    def drain(self, token: int) -> float:
        """Settle ``token`` under the device lock; returns its share.

        Exactly one of three things happens: an earlier drainer already
        covered us (collect the share), we are alone (withdraw — the TA
        verifies as usual), or we batch-verify everything staged.
        """
        from repro.crypto.batch import verify_batch

        with self._lock:
            if token not in self._staged:
                return self._shares.pop(token, 0.0)
            if len(self._staged) < 2:
                del self._staged[token]
                return 0.0
            staged, self._staged = self._staged, {}
        started = time.perf_counter()
        verify_batch(list(staged.values()), seed_memo=True)
        share = (time.perf_counter() - started) / len(staged)
        with self._lock:
            for other in staged:
                if other != token:
                    self._shares[other] = share
        self._metrics.increment("batch_drains")
        self._metrics.increment("batch_verified", len(staged))
        self._metrics.observe("batch.drain", share * len(staged))
        return share


@dataclass(frozen=True)
class FleetConfig:
    """Gateway sizing knobs."""

    #: Verifier TA lanes == worker threads.
    workers: int = 4
    #: LRU cap on live (half-open) attester sessions.
    max_sessions: int = 256
    #: An attester silent for this long forfeits its verifier state.
    session_ttl_s: float = 30.0
    #: Bounded accept queue: admitted-but-unfinished messages.
    max_in_flight: int = 64
    #: Sustained message rate cap; ``None`` disables the token bucket.
    rate_per_s: Optional[float] = None
    rate_burst: int = 32
    #: Appraisal cache on the msg2 hot path.
    enable_cache: bool = True
    cache_capacity: int = 1024
    cache_ttl_s: Optional[float] = 300.0
    #: Declared heap of each verifier TA lane. Lanes hold only protocol
    #: state, so they stay far under the paper's 10 MB single verifier.
    lane_heap_size: int = 256 * 1024
    #: Build the evidence key's EC tables in the worker thread *before*
    #: taking the secure-monitor lock, so concurrent lanes overlap the
    #: table construction and the in-lock ECDSA verify runs on warm
    #: tables (the critical-section shrink of the perf tentpole).
    prewarm_crypto: bool = True
    #: Process shards (:mod:`repro.fleet.shards`). ``0`` keeps the
    #: in-process thread-pool gateway above; ``n >= 1`` runs ``n``
    #: verifier shard *processes*, each booting its own simulated board
    #: and owning a slice of the session space, so verifier work scales
    #: with host cores instead of serialising on the GIL.
    shards: int = 0
    #: Bounded per-shard in-flight window; a message that finds its
    #: shard's queue full is shed with ``FleetOverloaded("queue")``.
    #: ``None`` sizes it as ``max_in_flight`` (the global window then
    #: bounds first).
    shard_queue_depth: Optional[int] = None
    #: Supervisor cadence: how often each shard is liveness-checked.
    heartbeat_interval_s: float = 0.25
    #: A shard that cannot answer a heartbeat within this window is
    #: declared wedged, killed and respawned.
    heartbeat_timeout_s: float = 2.0
    #: Upper bound a router thread waits for a shard's reply before the
    #: message fails with ``FleetShardCrashed``.
    shard_request_timeout_s: float = 30.0
    #: Board serial of shard 0 (shard ``i`` gets ``base + i``). With
    #: ``shard_deterministic_rng`` this pins the shard board's entropy
    #: stream — the lever the behaviour-invariance tests use to make a
    #: sharded gateway draw the very bytes the threaded one would.
    shard_base_serial: int = 1
    shard_deterministic_rng: bool = False
    #: Replicated resumption-ticket fabric (:mod:`repro.fleet.fabric`):
    #: any shard resumes any device. Off by default — disabled, the
    #: gateways are byte-identical in transcript and SimClock behaviour
    #: to the pre-fabric code.
    fabric: bool = False
    #: Capacity of the router-side replicated ticket store.
    fabric_capacity: int = 65_536
    #: Virtual nodes per member on the fabric's consistent-hash ring.
    fabric_vnodes: int = 64
    #: Coalescing window for shard-state evict fan-out: evicts arriving
    #: within the window ride one batched ``OP_EVICT`` frame per shard
    #: (O(shards) frames for a mass eviction instead of O(devices)).
    #: ``0`` flushes inline, one frame per evict — the pre-batching
    #: cadence.
    evict_coalesce_s: float = 0.0
    #: Batched ECDSA verification (:mod:`repro.crypto.batch`): when a
    #: loop tick (sharded) or a device-lock convoy (threaded) holds two
    #: or more independent plain msg2s, their signature checks ride one
    #: randomised multi-scalar chain and seed the consume-once memo the
    #: verifier TA then hits. Accept/reject behaviour, transcripts and
    #: SimClock ns are identical either way — the knob exists for A/B
    #: measurement, and the batch disarms itself automatically wherever
    #: it could perturb observation (cost recorder or tracer attached).
    batch_verify: bool = True
    #: Arm a per-shard :class:`repro.obs.Tracer` inside each worker
    #: process and export folded flame stacks over the control channel
    #: (:meth:`ShardedGateway.shard_flame`). In-process tracing stays a
    #: threaded-gateway facility; this is its cross-process counterpart
    #: for proving where the async core's time goes.
    shard_trace: bool = False


def make_fleet_verifier_ta(identity: ecdsa.KeyPair, policy: VerifierPolicy,
                           secret_provider: SecretProvider,
                           recorder: Optional[protocol.CostRecorder] = None,
                           appraisal_cache: Optional[AppraisalCache] = None,
                           engine=None) -> type:
    """A verifier TA that serves many connections from one session.

    Unlike the single-session TA of :mod:`repro.core.server`, protocol
    state lives in a per-connection table so one TA session (one lane of
    the gateway pool) can interleave many attesters' handshakes.
    """

    class FleetVerifierTa(TrustedApplication):
        def open_session(self, api) -> None:
            super().open_session(api)
            self.verifier = Verifier(
                identity, policy, api.generate_random, recorder,
                appraisal_cache=appraisal_cache, engine=engine,
            )
            self._states: Dict[int, VerifierProtocolState] = {}

        def _handle(self, state: VerifierProtocolState,
                    data: bytes) -> bytes:
            tracer = self.api.tracer
            if tracer is None:
                return state.handle(data)
            kind = AttestationGateway._kind(data)
            with tracer.span(f"core.protocol.{kind}", world="secure"):
                return state.handle(data)

        def invoke(self, command: int, params: dict) -> dict:
            if command == CMD_FLEET_MESSAGE:
                conn_id = params["conn"]
                data = params["data"]
                state = self._states.get(conn_id)
                if state is None:
                    state = VerifierProtocolState(self.verifier,
                                                  secret_provider)
                    self._states[conn_id] = state
                try:
                    reply = self._handle(state, data)
                except Exception:
                    # A protocol violation burns the connection's state;
                    # the attester must reconnect and start over.
                    self._states.pop(conn_id, None)
                    raise
                done = state.done
                if done:
                    del self._states[conn_id]
                return {"reply": reply, "done": done}
            if command == CMD_FLEET_EVICT:
                # One invoke may carry a whole batch ("conns", the
                # coalesced fan-out) or a single connection ("conn",
                # the original form — unchanged on the wire).
                evicted = 0
                for conn in params.get("conns", ()):
                    if self._states.pop(conn, None) is not None:
                        evicted += 1
                if "conn" in params and \
                        self._states.pop(params["conn"], None) is not None:
                    evicted += 1
                return {"evicted": evicted}
            raise TeeBadParameters(f"unknown fleet command {command}")

        def close_session(self) -> None:
            self._states.clear()

        @property
        def live_states(self) -> int:
            return len(self._states)

    return FleetVerifierTa


@dataclass
class _Lane:
    """One verifier TA session of the pool."""

    index: int
    session: TaSession


@dataclass
class MessageRecord:
    """One forwarded message, for the capacity model and the benchmark."""

    conn_id: int
    kind: str
    service_s: float
    sim_transition_ns: int
    cache_hit: bool


class _GatewayConnection(Service):
    """Transport-facing adapter: one per inbound attester connection."""

    def __init__(self, gateway: "AttestationGateway", conn_id: int) -> None:
        self._gateway = gateway
        self._conn_id = conn_id

    def on_message(self, data: bytes) -> Optional[bytes]:
        return self._gateway._dispatch(self._conn_id, data)

    def on_close(self) -> None:
        self._gateway._connection_closed(self._conn_id)


class AttestationGateway:
    """Front the verifier TA pool with a concurrent, bounded service."""

    def __init__(self, network: Network, host: str, port: int,
                 client: OpTeeClient, vendor_key: ecdsa.KeyPair,
                 identity: ecdsa.KeyPair, policy: VerifierPolicy,
                 secret_provider: SecretProvider,
                 config: FleetConfig = FleetConfig(),
                 recorder: Optional[protocol.CostRecorder] = None,
                 time_source=time.monotonic_ns,
                 tracer=None, engine=None) -> None:
        if config.workers < 1:
            raise ValueError("fleet gateway needs at least one worker lane")
        self.network = network
        self.host = host
        self.port = port
        self.client = client
        self.vendor_key = vendor_key
        self.identity = identity
        self.policy = policy
        self.secret_provider = secret_provider
        self.config = config
        self.recorder = recorder
        #: Optional repro.obs.Tracer; request lifecycles, protocol phases
        #: and the device's world transitions all emit spans into it.
        self.tracer = tracer
        #: Optional repro.appraisal.AppraisalEngine, shared by every lane
        #: verifier: enables the multi-TEE envelope handshake, audits all
        #: appraisals, and is the handle the revocation killswitch
        #: mutates (the combined policy fingerprint then invalidates the
        #: appraisal cache and every outstanding resumption ticket).
        self.engine = engine
        if engine is not None and tracer is not None and \
                engine.tracer is None:
            engine.tracer = tracer
        self.metrics = FleetMetrics()
        self.cache: Optional[AppraisalCache] = None
        if config.enable_cache:
            self.cache = AppraisalCache(capacity=config.cache_capacity,
                                        ttl_s=config.cache_ttl_s,
                                        time_source=time_source)
        #: In-process fabric mirror: the threaded gateway's single cache
        #: is already fleet-wide, so the fabric here is the *authority
        #: bookkeeping* (versioned store, hierarchy hooks, metrics) with
        #: one member — the same observable surface the sharded fabric
        #: exposes, minus the replication RPCs it does not need.
        self.fabric = None
        if config.fabric and self.cache is not None:
            from repro.fleet.fabric.store import FabricStore

            self.fabric = FabricStore([0], capacity=config.fabric_capacity,
                                      ttl_s=config.cache_ttl_s,
                                      vnodes=config.fabric_vnodes,
                                      time_source=time_source)
            self.cache.set_store_listener(self._fabric_mint)
        bucket = None
        if config.rate_per_s is not None:
            bucket = TokenBucket(config.rate_per_s, config.rate_burst,
                                 time_source=time_source)
        self._admission = AdmissionController(config.max_in_flight, bucket)
        self.sessions = SessionTable(capacity=config.max_sessions,
                                     ttl_s=config.session_ttl_s,
                                     time_source=time_source,
                                     on_evict=self._session_evicted)
        self.records: List[MessageRecord] = []
        self._records_lock = threading.Lock()
        # One secure monitor: TA invocations across all lanes serialise on
        # the board's single world-transition path.
        self._device_lock = threading.Lock()
        #: Joint msg2 verification across lanes convoyed on that lock.
        #: Disarmed whenever observation hooks are live: a cost recorder
        #: pins per-phase costs and a tracer pins span shapes, and the
        #: memo fast path would shift both.
        self._batcher: Optional[_Msg2Batcher] = None
        if config.batch_verify and recorder is None and tracer is None:
            self._batcher = _Msg2Batcher(self.metrics)
        self._conn_counter = 0
        self._conn_lock = threading.Lock()
        self._lanes: List[_Lane] = []
        self._pool = None
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "AttestationGateway":
        """Install the fleet verifier TA, open the lanes, listen."""
        if self._running:
            raise RuntimeError("gateway already started")
        manifest = TaManifest(uuid=FLEET_VERIFIER_UUID,
                              name="watz-fleet-verifier",
                              heap_size=self.config.lane_heap_size)
        ta_class = make_fleet_verifier_ta(
            self.identity, self.policy, self.secret_provider,
            self.recorder, appraisal_cache=self.cache, engine=self.engine,
        )
        image = sign_ta(manifest, b"watz fleet verifier ta", ta_class,
                        self.vendor_key)
        self.client.kernel.install_ta(image)
        if self.tracer is not None and self.client.kernel.soc.tracer is None:
            # One tracer observes the whole gateway board: the device's
            # world transitions land next to the request lifecycles.
            self.client.kernel.soc.attach_tracer(self.tracer)
        self._lanes = [
            _Lane(index, self.client.open_session(FLEET_VERIFIER_UUID))
            for index in range(self.config.workers)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="fleet-worker",
        )
        self.network.listen(self.host, self.port, self._new_connection)
        self._running = True
        return self

    def stop(self) -> None:
        """Stop listening, close live connections and the lane pool."""
        if not self._running:
            return
        self._running = False
        self.network.shutdown(self.host, self.port)
        self._pool.shutdown(wait=True)
        with self._device_lock:
            for lane in self._lanes:
                lane.session.close()
        self._lanes = []

    # -- connection plumbing -----------------------------------------------------

    def _new_connection(self) -> Service:
        with self._conn_lock:
            self._conn_counter += 1
            conn_id = self._conn_counter
        # Sticky lane assignment: the lane's TA holds this connection's
        # protocol state for the whole handshake.
        lane = conn_id % self.config.workers
        self.sessions.open(conn_id, lane)
        self.metrics.increment("connections")
        if self.tracer is not None:
            self.tracer.instant("fleet.conn.open", conn=conn_id, lane=lane)
        return _GatewayConnection(self, conn_id)

    def _connection_closed(self, conn_id: int) -> None:
        entry = self.sessions.discard(conn_id)
        if self.tracer is not None:
            self.tracer.instant("fleet.conn.close", conn=conn_id)
        if entry is not None:
            self._evict_ta_state(entry)

    def _session_evicted(self, entry: SessionEntry, reason: str) -> None:
        self.metrics.increment(f"sessions_evicted_{reason}")
        self._evict_ta_state(entry)

    def _evict_ta_state(self, entry: SessionEntry) -> None:
        if not self._lanes:
            return
        lane = self._lanes[entry.lane]
        with self._device_lock:
            lane.session.invoke(CMD_FLEET_EVICT, {"conn": entry.conn_id})

    # -- the message path --------------------------------------------------------

    def _dispatch(self, conn_id: int, data: bytes) -> Optional[bytes]:
        try:
            self._admission.admit()
        except FleetOverloaded as rejection:
            self.metrics.increment(f"rejected_{rejection.reason}")
            raise
        self.metrics.increment("accepted")
        self.metrics.enter_flight()
        try:
            future = self._pool.submit(self._serve, conn_id, data)
            return future.result()
        finally:
            self.metrics.exit_flight()
            self._admission.release()

    def _serve(self, conn_id: int, data: bytes) -> Optional[bytes]:
        entry = self.sessions.touch(conn_id)
        kind = self._kind(data)
        lane = self._lanes[entry.lane]
        clock = self.client.kernel.soc.clock
        service_s = 0.0
        batch_token = None
        if kind == "msg2" and self._batcher is not None:
            batch_token = self._batcher.stage(data)
        if self.config.prewarm_crypto and kind == "msg2" and \
                (batch_token is None
                 or self._batcher.should_prewarm(batch_token)):
            # Critical-section shrink: the appraisal's expensive EC table
            # construction happens here, in the worker thread, before the
            # single secure-monitor lock serialises us. It is pure,
            # idempotent math over *public* bytes, so the simulation
            # contract (every world transition under the lock) is intact.
            # A message already convoyed into a batch skips it — its
            # verify settles from the memo, never touching the tables.
            self._prewarm_crypto(data)
        try:
            with self._device_lock:
                # Batched verification first: if other lanes staged msg2s
                # while we waited for the lock, ONE multi-scalar chain
                # settles all of them and seeds the memo the invokes
                # below consume. Our share of its wall time joins this
                # message's service_s — honest amortised accounting.
                batch_share = (self._batcher.drain(batch_token)
                               if batch_token is not None else 0.0)
                # Read inside the lock: invokes serialise here, so the
                # hits delta is unambiguously this message's.
                hits_before = (self.cache.hits
                               if self.cache is not None else 0)
                sim_before = clock.now_ns()
                started = time.perf_counter()
                try:
                    if self.tracer is None:
                        result = lane.session.invoke(
                            CMD_FLEET_MESSAGE,
                            {"conn": conn_id, "data": data})
                    else:
                        with self.tracer.span(
                                "fleet.request", lane=entry.lane,
                                conn=conn_id, kind=kind) as span:
                            result = lane.session.invoke(
                                CMD_FLEET_MESSAGE,
                                {"conn": conn_id, "data": data})
                            span.attrs["done"] = bool(result.get("done"))
                finally:
                    service_s = time.perf_counter() - started + batch_share
                    sim_delta = clock.now_ns() - sim_before
                cache_hit = (self.cache is not None
                             and self.cache.hits > hits_before)
        except Exception:
            # Outside the device lock: discard may one day notify an
            # evict callback that re-enters _evict_ta_state, which takes
            # the (non-reentrant) device lock.
            self.metrics.increment("failed_messages")
            self.metrics.observe(f"service.{kind}", service_s)
            self.sessions.discard(conn_id)
            raise
        self.metrics.observe(f"service.{kind}", service_s)
        if kind == "msg2":
            suffix = "hit" if cache_hit else "miss"
            self.metrics.observe(f"service.msg2_{suffix}", service_s)
        if result.get("done"):
            self.metrics.increment("handshakes_completed")
            self.sessions.discard(conn_id)
        with self._records_lock:
            self.records.append(MessageRecord(
                conn_id=conn_id, kind=kind, service_s=service_s,
                sim_transition_ns=sim_delta, cache_hit=cache_hit,
            ))
        return result.get("reply")

    def _prewarm_crypto(self, data: bytes) -> None:
        """Precompute the evidence key's EC tables outside the device lock.

        Only plain (unsealed) msg2 carries the attestation public key in
        the clear; encrypted evidence is prewarmed implicitly by earlier
        plain handshakes from the same attester.
        """
        if prewarm_msg2_tables(data):
            self.metrics.increment("crypto_prewarms")

    def _fabric_mint(self, fingerprint: bytes, key, resumption_key: bytes,
                     stored_at_ns: int) -> None:
        """Cache store listener: mirror a fresh ticket into the fabric.

        Runs outside the cache lock, in whichever worker thread just
        completed the full verify. The fingerprint travels with the
        mint, so a mint racing a policy change is recognisably stale
        and dropped by the store's refresh-then-record discipline.
        """
        self.fabric.refresh(fingerprint)
        if self.fabric.record_mint(0, fingerprint, key,
                                   resumption_key) is not None:
            self.metrics.increment("fabric_mints")
            if self.tracer is not None:
                self.tracer.instant("fleet.fabric.mint", member=0)

    @staticmethod
    def _kind(data: bytes) -> str:
        if not data:
            return "empty"
        if data[0] in (protocol.MSG0, protocol.MSG0_MULTI):
            return "msg0"
        if data[0] in (protocol.MSG2, protocol.MSG2_ENC,
                       protocol.MSG2_MULTI):
            return "msg2"
        return f"kind_{data[0]:#x}"

    # -- the revocation killswitch ------------------------------------------------

    def revoke_measurement(self, digest: bytes) -> None:
        """Deny a measurement fleet-wide, effective from the next message.

        The engine's policy epoch bumps, so the combined fingerprint
        scoping the appraisal cache changes: cached appraisals clear and
        every outstanding resumption ticket is dead (its entry is gone),
        without touching per-lane state eagerly.
        """
        self._require_engine().revoke_measurement(digest)
        self.metrics.increment("revocations")

    def revoke_identity(self, identity_key: bytes) -> None:
        """Deny an attestation identity fleet-wide; see above."""
        self._require_engine().revoke_identity(identity_key)
        self.metrics.increment("revocations")

    def _require_engine(self):
        if self.engine is None:
            raise ValueError(
                "the revocation killswitch needs an appraisal engine")
        return self.engine

    # -- introspection -----------------------------------------------------------

    def drain_records(self) -> List[MessageRecord]:
        """Return and clear the accumulated per-message records."""
        with self._records_lock:
            records, self.records = self.records, []
        return records

    def snapshot(self) -> Dict[str, object]:
        """One observable dict: metrics + sessions + cache + admission."""
        snapshot = self.metrics.snapshot()
        snapshot["sessions"] = self.sessions.snapshot()
        snapshot["admission"] = self._admission.snapshot()
        snapshot["cache"] = (self.cache.snapshot()
                             if self.cache is not None else None)
        snapshot["audit"] = (self.engine.audit.counts_by_reason()
                             if self.engine is not None else None)
        if self.fabric is not None:
            snapshot["fabric"] = self.fabric.snapshot()
        return snapshot


def start_fleet_gateway(network: Network, host: str, port: int,
                        client: OpTeeClient, vendor_key: ecdsa.KeyPair,
                        identity: ecdsa.KeyPair, policy: VerifierPolicy,
                        secret_provider: SecretProvider,
                        config: FleetConfig = FleetConfig(),
                        recorder: Optional[protocol.CostRecorder] = None,
                        tracer=None, engine=None):
    """Convenience mirror of :func:`repro.core.server.start_verifier`.

    With ``config.shards >= 1`` this starts the process-sharded gateway
    (:mod:`repro.fleet.shards`) instead of the in-process thread pool;
    ``client`` is then unused — every shard boots its own board.
    ``engine`` (a :class:`repro.appraisal.AppraisalEngine`) arms the
    multi-TEE envelope path and the revocation killswitch on either
    gateway flavour.
    """
    if config.shards:
        from repro.fleet.shards import ShardedGateway

        sharded = ShardedGateway(network, host, port, vendor_key, identity,
                                 policy, secret_provider, config,
                                 recorder=recorder, tracer=tracer,
                                 engine=engine)
        return sharded.start()
    gateway = AttestationGateway(network, host, port, client, vendor_key,
                                 identity, policy, secret_provider,
                                 config, recorder, tracer=tracer,
                                 engine=engine)
    return gateway.start()
