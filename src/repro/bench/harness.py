"""Measurement harness shared by the benchmark suite.

The paper reports medians and standard deviations over multiple runs
(§VI); this module provides the same summary over both time sources —
real ``perf_counter`` seconds for genuine computation, and virtual
nanoseconds from the :class:`~repro.hw.clock.SimClock` for architectural
latencies (see DESIGN.md, "Clock discipline").
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Callable, List, Optional


def percentile(samples: List[float], fraction: float) -> float:
    """Linearly interpolated percentile; ``fraction`` in [0, 1].

    Matches numpy's default ("linear") rule so tail latencies reported by
    the fleet benchmark agree with common tooling.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * fraction
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class Summary:
    """Median and spread of a series of measurements.

    The tail percentiles (p50/p95/p99) serve the fleet throughput
    benchmark; :meth:`of` always fills them. Hand-built instances leave
    them ``None`` so an absent percentile can never be mistaken for a
    measured zero.
    """

    median: float
    mean: float
    stdev: float
    minimum: float
    maximum: float
    runs: int
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None

    @classmethod
    def of(cls, samples: List[float]) -> "Summary":
        if not samples:
            raise ValueError("no samples")
        return cls(
            median=statistics.median(samples),
            mean=statistics.fmean(samples),
            stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
            minimum=min(samples),
            maximum=max(samples),
            runs=len(samples),
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
            p99=percentile(samples, 0.99),
        )


def measure_real(operation: Callable[[], object], runs: int = 5,
                 warmup: int = 1) -> Summary:
    """Median wall-clock seconds of ``operation`` over ``runs`` runs."""
    for _ in range(warmup):
        operation()
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - started)
    return Summary.of(samples)


def measure_simulated(clock, operation: Callable[[], object],
                      runs: int = 5) -> Summary:
    """Median simulated nanoseconds of ``operation``."""
    samples = []
    for _ in range(runs):
        started = clock.now_ns()
        operation()
        samples.append(float(clock.now_ns() - started))
    return Summary.of(samples)


def ratio(numerator: Summary, denominator: Summary) -> float:
    """Median-over-median slowdown factor."""
    if denominator.median == 0:
        return math.inf
    return numerator.median / denominator.median


def geometric_mean(values: List[float]) -> float:
    if not values:
        raise ValueError("no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
