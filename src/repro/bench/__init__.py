"""Benchmark harness: paper-style medians and report formatting."""

from repro.bench.harness import (
    Summary,
    geometric_mean,
    measure_real,
    measure_simulated,
    percentile,
    ratio,
)
from repro.bench.reporting import (
    format_duration,
    format_table,
    host_metadata,
    paper_comparison,
    print_block,
    save_json,
    save_report,
    save_trace,
)

__all__ = [
    "Summary",
    "percentile",
    "measure_real",
    "measure_simulated",
    "ratio",
    "geometric_mean",
    "format_table",
    "format_duration",
    "paper_comparison",
    "print_block",
    "host_metadata",
    "save_json",
    "save_report",
    "save_trace",
]
