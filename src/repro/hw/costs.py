"""Architectural latency model of the simulated i.MX 8MQ platform.

The platform latencies of the paper (Fig. 3) cannot be measured on a
laptop, so they are *simulated*: every cross-world interaction charges a
composition of the primitive costs below onto the virtual clock.

The primitives are calibrated so the paper's measured end-to-end numbers
emerge from composition — they are never reported directly:

* normal->secure invocation = ``smc + optee_driver + session_dispatch``
  = 86 us (paper Fig. 3b);
* secure->normal return = ``smc + return_path`` = 20 us (Fig. 3b);
* secure-world time fetch, native TA = ``kernel_rpc + clock_read``
  ~= 10 us (Fig. 3a);
* secure-world time fetch from Wasm adds ``wasi_dispatch`` ~= 13 us
  (Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Primitive latencies, in nanoseconds."""

    # One direction of a secure monitor call (EL3 transit).
    smc_ns: int = 4_000
    # Linux OP-TEE driver path: ioctl, parameter marshalling, scheduling.
    optee_driver_ns: int = 60_000
    # Trusted-OS side of an invocation: session lookup, TA entry thunk.
    session_dispatch_ns: int = 22_000
    # Secure->normal return handling in driver + trusted OS.
    return_path_ns: int = 16_000
    # Lightweight OP-TEE kernel RPC to the normal world (no session).
    kernel_rpc_ns: int = 9_200
    # Reading the REE monotonic clock.
    clock_read_ns: int = 800
    # WASI shim: argument translation between Wasm and the GP API.
    wasi_dispatch_ns: int = 3_000
    # Copying through a world-shared buffer, per KiB.
    shared_copy_ns_per_kib: int = 400
    # Normal-world loopback socket round trip (supplicant path).
    socket_roundtrip_ns: int = 120_000

    # -- composed quantities ---------------------------------------------------

    @property
    def world_enter_ns(self) -> int:
        """Normal world -> secure world function invocation."""
        return self.smc_ns + self.optee_driver_ns + self.session_dispatch_ns

    @property
    def world_return_ns(self) -> int:
        """Secure world -> normal world return."""
        return self.smc_ns + self.return_path_ns

    @property
    def secure_time_fetch_ns(self) -> int:
        """Monotonic clock read from a native TA (via kernel RPC)."""
        return self.kernel_rpc_ns + self.clock_read_ns

    @property
    def wasm_time_fetch_ns(self) -> int:
        """Monotonic clock read from a hosted Wasm application."""
        return self.secure_time_fetch_ns + self.wasi_dispatch_ns

    def shared_copy_ns(self, size_bytes: int) -> int:
        """Cost of copying ``size_bytes`` through a shared buffer."""
        return (size_bytes * self.shared_copy_ns_per_kib) // 1024


DEFAULT_COSTS = CostModel()
