"""Cryptographic accelerator and assurance module (CAAM).

On the i.MX 8MQ, the CAAM derives the *master key verification blob*
(MKVB) from the fused OTPMK, returning a **different** hash depending on
whether the requesting thread runs in the normal or the secure world
(paper §V). The secure-world MKVB seeds OP-TEE's hardware unique key; the
normal world can never observe it.
"""

from __future__ import annotations

import enum

from repro.crypto.hashing import hmac_sha256
from repro.errors import WorldError


class World(enum.Enum):
    """The two TrustZone security states."""

    NORMAL = "normal"
    SECURE = "secure"


_WORLD_TAGS = {
    World.NORMAL: b"mkvb/non-secure",
    World.SECURE: b"mkvb/secure",
}


class Caam:
    """The master-key derivation front end of the simulated SoC."""

    MKVB_SIZE = 32

    def __init__(self, fuses) -> None:
        self._fuses = fuses

    def master_key_verification_blob(self, world: World) -> bytes:
        """Return the world-specific MKVB.

        Both worlds can call this, but they observe unrelated values — a
        PRF of the OTPMK keyed by the security state — so nothing learned
        in the normal world helps predict secure-world key material.
        """
        if world not in _WORLD_TAGS:
            raise WorldError(f"unknown security state {world!r}")
        otpmk = self._fuses.read_otpmk_from_caam(self)
        return hmac_sha256(otpmk, _WORLD_TAGS[world])
