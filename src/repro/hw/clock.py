"""Virtual time for the simulated platform.

The paper extends OP-TEE so the secure world can read the *same* monotonic
clock as the normal world with nanosecond resolution (§VI-A). In the
simulation there is one :class:`SimClock` per SoC; software charges
latencies onto it, and both worlds read it — the secure world paying the
cross-world fetch costs from the :class:`~repro.hw.costs.CostModel`.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing virtual nanosecond counter."""

    def __init__(self) -> None:
        self._now_ns = 0

    def now_ns(self) -> int:
        return self._now_ns

    def advance(self, delta_ns: int) -> None:
        if delta_ns < 0:
            raise ValueError("the simulated clock cannot go backwards")
        self._now_ns += delta_ns


class StopWatch:
    """Measures elapsed virtual time across a region of simulated work."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "StopWatch":
        self._start_ns = self._clock.now_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_ns = self._clock.now_ns() - self._start_ns
