"""Secure boot: the chain of trust from ROM to the trusted OS.

The paper (§IV, "Secure boot") requires: the first-stage ROM verifies the
second-stage bootloader against the public key whose hash is fused in the
eFuses, and every stage recursively verifies the next, so only genuine
software reaches the root of trust. §VII analyses the consequence: a
tampered trusted-OS image aborts the boot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import SecureBootError


@dataclass(frozen=True)
class StageImage:
    """A signed boot-stage image (SPL, ATF, trusted OS...)."""

    name: str
    payload: bytes
    signature: bytes

    @property
    def measurement(self) -> bytes:
        """SHA-256 of the payload; used by the measured-boot extension."""
        return sha256(self.payload)


def sign_stage(name: str, payload: bytes, vendor_key: ecdsa.KeyPair) -> StageImage:
    """Produce a stage image signed by the platform vendor."""
    return StageImage(name, payload, ecdsa.sign(vendor_key.private, payload))


@dataclass
class BootReport:
    """Outcome of a successful secure boot."""

    stages: List[str] = field(default_factory=list)
    # Per-stage code measurements, in boot order. With a TPM these would be
    # accumulated into PCRs (measured boot, discussed in §VII).
    measurements: List[bytes] = field(default_factory=list)

    def accumulated_measurement(self) -> bytes:
        """PCR-extend accumulation of the boot chain (measured boot).

        TPM semantics: ``pcr = H(pcr || stage_measurement)`` starting from
        zero — the system-wide claim §VII proposes to embed in evidence.
        """
        register = b"\x00" * 32
        for measurement in self.measurements:
            register = sha256(register + measurement)
        return register


class BootRom:
    """The immutable first-stage boot loader."""

    def __init__(self, fuses) -> None:
        self._fuses = fuses

    def boot(self, vendor_public_key_bytes: bytes,
             stages: List[StageImage]) -> BootReport:
        """Verify and "execute" the boot chain.

        ``vendor_public_key_bytes`` ships alongside the images (it is
        public); the ROM only trusts it after checking its hash against
        the fused value, exactly like the i.MX SRK scheme.
        """
        if not stages:
            raise SecureBootError("empty boot chain")
        fused_hash = self._fuses.boot_key_hash.read()
        if sha256(vendor_public_key_bytes) != fused_hash:
            raise SecureBootError("vendor key does not match the fused hash")
        from repro.crypto import ec

        vendor_public = ec.decode_point(vendor_public_key_bytes)
        report = BootReport()
        for stage in stages:
            try:
                ecdsa.verify(vendor_public, stage.payload, stage.signature)
            except Exception as exc:
                raise SecureBootError(
                    f"stage {stage.name!r} failed signature verification"
                ) from exc
            report.stages.append(stage.name)
            report.measurements.append(stage.measurement)
        return report
