"""Hardware monotonic counters.

§VII: storage rollback "can be locally mitigated using monotonic counters
bound to the hardware" (the paper cites ADAM-CS). The simulated SoC
provides named counters that only ever increase and are readable and
incrementable from the secure world only — software (or an attacker
restoring a storage snapshot) cannot wind them back.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import WorldError


class MonotonicCounters:
    """Named, strictly increasing hardware counters."""

    def __init__(self, soc) -> None:
        self._soc = soc
        self._values: Dict[str, int] = {}

    def _require_secure(self) -> None:
        from repro.hw.caam import World

        if self._soc.current_world != World.SECURE:
            raise WorldError(
                "monotonic counters are wired to the secure world only"
            )

    def increment(self, label: str) -> int:
        """Advance a counter and return its new value."""
        self._require_secure()
        value = self._values.get(label, 0) + 1
        self._values[label] = value
        return value

    def read(self, label: str) -> int:
        """Current value; 0 for a counter that was never incremented."""
        self._require_secure()
        return self._values.get(label, 0)
