"""The simulated system-on-chip.

Binds together the fuses, the CAAM, the boot ROM, the virtual clock and
the TrustZone security-state machine. Software layers (OP-TEE, WaTZ)
receive a :class:`SoC` and interact with hardware only through it, which
is what lets the test suite model the paper's threat scenarios (tampered
boot images, normal-world probing of secure resources).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.errors import SecureBootError, WorldError
from repro.hw.bootrom import BootReport, BootRom, StageImage
from repro.hw.caam import Caam, World
from repro.hw.clock import SimClock
from repro.hw.counters import MonotonicCounters
from repro.hw.costs import DEFAULT_COSTS, CostModel
from repro.hw.fuses import EFuses


class SoC:
    """An i.MX-8MQ-like SoC with TrustZone, a root of trust and secure boot."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self.clock = SimClock()
        self.fuses = EFuses()
        self.caam = Caam(self.fuses)
        self.boot_rom = BootRom(self.fuses)
        self.monotonic = MonotonicCounters(self)
        self.current_world = World.NORMAL
        self.boot_report: Optional[BootReport] = None
        # Optional repro.obs.Tracer; every transition hook below is a
        # no-op (one attribute test) while this stays None.
        self.tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` to this board's hooks.

        The tracer should read *this* board's virtual clock
        (``Tracer(sim_now=soc.clock.now_ns)``) or the sim timestamps of
        its spans are meaningless.
        """
        self.tracer = tracer

    # -- manufacturing -----------------------------------------------------------

    def provision(self, otpmk: bytes, boot_key_hash: bytes) -> None:
        """Manufacturing step: fuse the master key and the boot key hash."""
        self.fuses.program_otpmk(otpmk)
        self.fuses.boot_key_hash.program(boot_key_hash)

    # -- boot --------------------------------------------------------------------

    def secure_boot(self, vendor_public_key_bytes: bytes,
                    stages: List[StageImage]) -> BootReport:
        """Run the chain of trust; leaves the CPU in the secure world."""
        report = self.boot_rom.boot(vendor_public_key_bytes, stages)
        self.boot_report = report
        # The boot chain hands control to the trusted OS in the secure world.
        self.current_world = World.SECURE
        return report

    @property
    def securely_booted(self) -> bool:
        return self.boot_report is not None

    # -- world transitions ----------------------------------------------------------

    def require_world(self, world: World) -> None:
        if self.current_world != world:
            raise WorldError(
                f"operation requires the {world.value} world, CPU is in the "
                f"{self.current_world.value} world"
            )

    @contextmanager
    def enter_secure_world(self) -> Iterator[None]:
        """A full normal->secure invocation (GP client API path)."""
        self.require_world(World.NORMAL)
        if not self.securely_booted:
            raise SecureBootError("secure world is not booted")
        tracer = self.tracer
        if tracer is None:
            self.clock.advance(self.costs.world_enter_ns)
        else:
            # Traced: the same composition, charged step by step so the
            # Fig. 3b decomposition emerges from the spans. The sums are
            # identical to the untraced path by construction.
            with tracer.span("hw.optee_driver", world="normal"):
                self.clock.advance(self.costs.optee_driver_ns)
            with tracer.span("hw.smc.enter", world="normal"):
                self.clock.advance(self.costs.smc_ns)
            with tracer.span("hw.session_dispatch", world="secure"):
                self.clock.advance(self.costs.session_dispatch_ns)
        self.current_world = World.SECURE
        try:
            yield
        finally:
            tracer = self.tracer
            if tracer is None:
                self.clock.advance(self.costs.world_return_ns)
            else:
                with tracer.span("hw.smc.exit", world="secure"):
                    self.clock.advance(self.costs.smc_ns)
                with tracer.span("hw.return_path", world="normal"):
                    self.clock.advance(self.costs.return_path_ns)
            self.current_world = World.NORMAL

    @contextmanager
    def rpc_to_normal_world(self) -> Iterator[None]:
        """A lightweight kernel RPC from the secure world (no session)."""
        self.require_world(World.SECURE)
        tracer = self.tracer
        if tracer is None:
            self.clock.advance(self.costs.kernel_rpc_ns)
        else:
            with tracer.span("hw.kernel_rpc", world="secure"):
                self.clock.advance(self.costs.kernel_rpc_ns)
        self.current_world = World.NORMAL
        try:
            yield
        finally:
            self.current_world = World.SECURE

    # -- clock access -----------------------------------------------------------------

    def read_monotonic_ns(self) -> int:
        """Read the REE monotonic clock from the *current* world.

        From the normal world this is a cheap syscall; from the secure
        world it pays the kernel-RPC path the paper added to OP-TEE.
        """
        tracer = self.tracer
        if self.current_world == World.NORMAL:
            if tracer is None:
                self.clock.advance(self.costs.clock_read_ns)
            else:
                with tracer.span("hw.clock_read", world="normal"):
                    self.clock.advance(self.costs.clock_read_ns)
            return self.clock.now_ns()
        with self.rpc_to_normal_world():
            if tracer is None:
                self.clock.advance(self.costs.clock_read_ns)
            else:
                with tracer.span("hw.clock_read", world="normal"):
                    self.clock.advance(self.costs.clock_read_ns)
            now = self.clock.now_ns()
        return now

    # -- root of trust -------------------------------------------------------------------

    def master_key_blob(self) -> bytes:
        """The world-specific MKVB for the current security state."""
        return self.caam.master_key_verification_blob(self.current_world)
