"""The simulated system-on-chip.

Binds together the fuses, the CAAM, the boot ROM, the virtual clock and
the TrustZone security-state machine. Software layers (OP-TEE, WaTZ)
receive a :class:`SoC` and interact with hardware only through it, which
is what lets the test suite model the paper's threat scenarios (tampered
boot images, normal-world probing of secure resources).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.errors import SecureBootError, WorldError
from repro.hw.bootrom import BootReport, BootRom, StageImage
from repro.hw.caam import Caam, World
from repro.hw.clock import SimClock
from repro.hw.counters import MonotonicCounters
from repro.hw.costs import DEFAULT_COSTS, CostModel
from repro.hw.fuses import EFuses


class SoC:
    """An i.MX-8MQ-like SoC with TrustZone, a root of trust and secure boot."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self.clock = SimClock()
        self.fuses = EFuses()
        self.caam = Caam(self.fuses)
        self.boot_rom = BootRom(self.fuses)
        self.monotonic = MonotonicCounters(self)
        self.current_world = World.NORMAL
        self.boot_report: Optional[BootReport] = None

    # -- manufacturing -----------------------------------------------------------

    def provision(self, otpmk: bytes, boot_key_hash: bytes) -> None:
        """Manufacturing step: fuse the master key and the boot key hash."""
        self.fuses.program_otpmk(otpmk)
        self.fuses.boot_key_hash.program(boot_key_hash)

    # -- boot --------------------------------------------------------------------

    def secure_boot(self, vendor_public_key_bytes: bytes,
                    stages: List[StageImage]) -> BootReport:
        """Run the chain of trust; leaves the CPU in the secure world."""
        report = self.boot_rom.boot(vendor_public_key_bytes, stages)
        self.boot_report = report
        # The boot chain hands control to the trusted OS in the secure world.
        self.current_world = World.SECURE
        return report

    @property
    def securely_booted(self) -> bool:
        return self.boot_report is not None

    # -- world transitions ----------------------------------------------------------

    def require_world(self, world: World) -> None:
        if self.current_world != world:
            raise WorldError(
                f"operation requires the {world.value} world, CPU is in the "
                f"{self.current_world.value} world"
            )

    @contextmanager
    def enter_secure_world(self) -> Iterator[None]:
        """A full normal->secure invocation (GP client API path)."""
        self.require_world(World.NORMAL)
        if not self.securely_booted:
            raise SecureBootError("secure world is not booted")
        self.clock.advance(self.costs.world_enter_ns)
        self.current_world = World.SECURE
        try:
            yield
        finally:
            self.clock.advance(self.costs.world_return_ns)
            self.current_world = World.NORMAL

    @contextmanager
    def rpc_to_normal_world(self) -> Iterator[None]:
        """A lightweight kernel RPC from the secure world (no session)."""
        self.require_world(World.SECURE)
        self.clock.advance(self.costs.kernel_rpc_ns)
        self.current_world = World.NORMAL
        try:
            yield
        finally:
            self.current_world = World.SECURE

    # -- clock access -----------------------------------------------------------------

    def read_monotonic_ns(self) -> int:
        """Read the REE monotonic clock from the *current* world.

        From the normal world this is a cheap syscall; from the secure
        world it pays the kernel-RPC path the paper added to OP-TEE.
        """
        if self.current_world == World.NORMAL:
            self.clock.advance(self.costs.clock_read_ns)
            return self.clock.now_ns()
        with self.rpc_to_normal_world():
            self.clock.advance(self.costs.clock_read_ns)
            now = self.clock.now_ns()
        return now

    # -- root of trust -------------------------------------------------------------------

    def master_key_blob(self) -> bytes:
        """The world-specific MKVB for the current security state."""
        return self.caam.master_key_verification_blob(self.current_world)
