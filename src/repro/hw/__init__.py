"""Simulated hardware substrate: SoC, TrustZone worlds, root of trust.

Replaces the NXP MCIMX8M evaluation board of the paper. Architectural
latencies live on a virtual clock (see :mod:`repro.hw.costs` for the
calibration discipline); security state is enforced so that tests can
exercise the paper's threat scenarios.
"""

from repro.hw.bootrom import BootReport, BootRom, StageImage, sign_stage
from repro.hw.caam import Caam, World
from repro.hw.clock import SimClock, StopWatch
from repro.hw.costs import DEFAULT_COSTS, CostModel
from repro.hw.counters import MonotonicCounters
from repro.hw.fuses import EFuses, FuseBank
from repro.hw.soc import SoC

__all__ = [
    "SoC",
    "World",
    "Caam",
    "EFuses",
    "FuseBank",
    "BootRom",
    "BootReport",
    "StageImage",
    "sign_stage",
    "SimClock",
    "MonotonicCounters",
    "StopWatch",
    "CostModel",
    "DEFAULT_COSTS",
]
