"""One-time-programmable eFuses.

Two banks matter to WaTZ (paper §IV): the *secure-boot bank*, holding the
hash of the vendor's public key that the boot ROM uses to verify the
second-stage bootloader; and the *OTPMK bank*, the 256-bit one-time
programmable master key fused at manufacturing time, readable only by the
CAAM (never by software).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FuseError


class FuseBank:
    """A write-once fuse bank."""

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size
        self._value: Optional[bytes] = None

    @property
    def programmed(self) -> bool:
        return self._value is not None

    def program(self, value: bytes) -> None:
        """Blow the fuses; a second attempt is a hardware fault."""
        if self._value is not None:
            raise FuseError(f"fuse bank {self.name!r} is already programmed")
        if len(value) != self.size:
            raise FuseError(
                f"fuse bank {self.name!r} takes {self.size} bytes, "
                f"got {len(value)}"
            )
        self._value = bytes(value)

    def read(self) -> bytes:
        if self._value is None:
            raise FuseError(f"fuse bank {self.name!r} is not programmed")
        return self._value


class EFuses:
    """The fuse map of the simulated SoC."""

    OTPMK_SIZE = 32
    BOOT_KEY_HASH_SIZE = 32

    def __init__(self) -> None:
        # Readable only by the CAAM; software access raises.
        self._otpmk = FuseBank("OTPMK", self.OTPMK_SIZE)
        self.boot_key_hash = FuseBank("SRK_HASH", self.BOOT_KEY_HASH_SIZE)

    def program_otpmk(self, value: bytes) -> None:
        """Fuse the master key (manufacturing step)."""
        self._otpmk.program(value)

    def read_otpmk_from_caam(self, caam_token: object) -> bytes:
        """Hardware-internal OTPMK read path, reserved for the CAAM.

        The token handshake models the i.MX design where the OTPMK bus is
        wired to the CAAM only; any software caller lacks the token.
        """
        from repro.hw.caam import Caam  # local import to avoid a cycle

        if not isinstance(caam_token, Caam):
            raise FuseError("OTPMK is hardware-readable by the CAAM only")
        return self._otpmk.read()
