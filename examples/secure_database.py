#!/usr/bin/env python3
"""The SQLite scenario (§VI-D): a database engine inside the TEE.

Runs the mini SQL database (the SQLite stand-in) in the normal world and
the walc storage-engine core (the Wasm build) both outside and inside
WaTZ, on the same workload — a taste of the Fig. 6 comparison, on a
handful of Speedtest1 tests.
"""

import time

from repro.core.runtime import NormalWorldRuntime
from repro.testbed import Testbed
from repro.workloads.minidb.engine import connect
from repro.workloads.minidb.speedtest import ALL_TESTS
from repro.workloads.minidb.wasmcore import compile_dbcore

SCALE = 400
SHOWN = (100, 120, 130, 160, 260, 320)


def run_sql(test):
    db = connect()
    test.sql_setup(db, SCALE)
    started = time.perf_counter()
    test.sql_run(db, SCALE)
    return time.perf_counter() - started


def run_wasm(test, instance):
    for fn, args in test.wasm_setup(SCALE):
        instance.invoke(fn, *args)
    started = time.perf_counter()
    for fn, args in test.wasm_run(SCALE):
        instance.invoke(fn, *args)
    return time.perf_counter() - started


def main() -> None:
    testbed = Testbed()
    device = testbed.create_device()

    binary = compile_dbcore()
    print(f"database core: {len(binary)} bytes of Wasm")

    wamr = NormalWorldRuntime().load(binary)
    session = device.open_watz(heap_size=25 * 1024 * 1024)
    loaded = device.load_wasm(session, binary)
    watz = session.ta._apps[loaded["app"]]
    print(f"measured in the TEE as {loaded['measurement'][:32]}…\n")

    header = f"{'test':>4}  {'name':32}  {'native':>9}  {'WAMR':>9}  {'WaTZ':>9}"
    print(header)
    print("-" * len(header))
    for test in ALL_TESTS:
        if test.number not in SHOWN:
            continue
        native_s = run_sql(test)
        wamr_s = run_wasm(test, wamr.instance)
        watz_s = run_wasm(test, watz.instance)
        print(f"{test.number:>4}  {test.name:32}  "
              f"{native_s * 1000:7.1f}ms  {wamr_s * 1000:7.1f}ms  "
              f"{watz_s * 1000:7.1f}ms")

    print("\nWaTZ tracks WAMR: the TEE adds transition latency at the "
          "boundary, not compute cost inside.")
    session.close()


if __name__ == "__main__":
    main()
