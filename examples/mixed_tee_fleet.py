#!/usr/bin/env python3
"""One Wasm module, one fleet, three kinds of TEE (DESIGN.md §12).

A single sharded attestation gateway — armed with one declarative
appraisal policy — serves TrustZone boards alongside SGX- and
TDX-shaped devices, all attesting the same Wasm application. The demo
then fires the revocation killswitch and shows the fleet-wide effect:
the outstanding resumption ticket is stranded, fresh handshakes are
denied with a stable reason code, and every verdict sits in the
tamper-evident audit chain.
"""

from repro.appraisal import AppraisalEngine, AppraisalPolicy
from repro.appraisal.envelope import TEE_SGX, TEE_TDX, TEE_TRUSTZONE, tee_name
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.fleet import (
    FleetConfig,
    LoadProfile,
    build_mixed_stacks,
    run_load,
    run_one_handshake_multi,
    start_fleet_gateway,
)
from repro.testbed import Testbed

HOST = "fleet.verifier"
PORT = 7980
SECRET = b"mixed-fleet application secret blob"


def main() -> None:
    testbed = Testbed(first_serial=40)
    identity = ecdsa.keypair_from_private(0x5EED + 12)

    # One declarative policy for the whole fleet; the engine wraps it
    # with the compiled evaluator, the audit chain and the killswitch.
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = start_fleet_gateway(
        testbed.network, HOST, PORT, None, testbed.vendor_key,
        identity, VerifierPolicy(), lambda: SECRET,
        FleetConfig(shards=2, heartbeat_interval_s=0.05), engine=engine)

    try:
        # Heterogeneous attesters for the *same* Wasm module:
        # build_mixed_stacks provisions the policy per backend
        # (measurement + endorsement, plus boot chain / MRSIGNER where
        # the backend has one).
        population = [TEE_TRUSTZONE, TEE_SGX, TEE_TDX, TEE_SGX]
        stacks = build_mixed_stacks(testbed, appraisal, population)
        print("population:",
              ", ".join(tee_name(s.tee_type) for s in stacks))

        report = run_load(testbed.network, HOST, PORT,
                          identity.public_bytes(), stacks,
                          LoadProfile(concurrency=4,
                                      handshakes_per_attester=2))
        assert len(report.completed) == len(stacks) * 2
        print(f"handshakes: {len(report.completed)}/{len(report.results)}"
              f" ok, {report.throughput_hz:.1f}/s")
        print("audit (merged across shards):",
              gateway.snapshot()["audit"])

        # --- the killswitch -------------------------------------------------
        sgx = stacks[1]
        print(f"\nrevoking the fleet's application measurement"
              f" (first seen from {tee_name(sgx.tee_type)})…")
        gateway.revoke_measurement(sgx.claim)

        # The SGX device's resumption ticket is stranded (the epoch
        # bump moved the policy fingerprint and with it the cache
        # scope), and a fresh TrustZone handshake presenting the same
        # logical measurement is denied outright.
        for stack, label in [(sgx, "ticket resumption"),
                             (stacks[0], "fresh handshake")]:
            result = run_one_handshake_multi(
                testbed.network, HOST, PORT, identity.public_bytes(),
                stack, attempt=3)
            verdict = "denied" if not result.ok else "ACCEPTED?!"
            print(f"  {tee_name(stack.tee_type):9} {label}: {verdict}"
                  f" ({result.error})")
            assert not result.ok and result.error == "PolicyDenied"

        snapshot = gateway.snapshot()
        print("audit after the killswitch:", snapshot["audit"])
        assert snapshot["audit"]["measurement-revoked"] == 2
        print("policy syncs shipped to shards:",
              snapshot["counters"]["shard_policy_syncs"])
    finally:
        gateway.stop()
    print("\ndone: one policy, three TEE shapes, one audited killswitch.")


if __name__ == "__main__":
    main()
