#!/usr/bin/env python3
"""The paper's end-to-end scenario (§VI-F): attested machine learning.

An IoT device hosts a Genann neural network as a Wasm application inside
WaTZ. The training dataset is confidential: a relying party (the
verifier) will only release it to a device it can attest. The flow:

1. deploy the verifier with the device's endorsement and the measured
   fingerprint of the expected application;
2. the Wasm application runs the WASI-RA protocol: handshake, evidence,
   secret-blob delivery over the derived session key;
3. the application trains on the delivered records and reports accuracy;
4. a tampered variant of the application is refused the dataset.
"""

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.crypto import ecdsa
from repro.testbed import Testbed
from repro.workloads.datasets import RECORD_SIZE, dataset_of_size
from repro.workloads.genann.wasm_impl import build_attested_ann

HOST, PORT = "ml.verifier.example", 9000


def main() -> None:
    testbed = Testbed()
    device = testbed.create_device()
    verifier_identity = ecdsa.keypair_from_private(0xA77E57ED)

    dataset = dataset_of_size(100 * 1024)  # ~100 kB of Iris-like records
    records = len(dataset) // RECORD_SIZE

    # The application embeds the verifier's public key — part of its
    # measurement, so it cannot be redirected to a rogue service.
    app = build_attested_ann(verifier_identity.public_bytes(), HOST, PORT,
                             data_capacity=len(dataset) + 4096)
    fingerprint = measure_bytes(app)
    print(f"application: {len(app)} bytes, "
          f"fingerprint {fingerprint.hex[:32]}…")

    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)       # known device
    policy.trust_measurement(fingerprint.digest)        # known software
    start_verifier(testbed.network, HOST, PORT, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: dataset)

    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    handle = loaded["app"]

    received = device.run_wasm(session, handle, "attest")
    assert received == len(dataset), f"attestation failed: {received}"
    print(f"attestation OK — {received} bytes of confidential data "
          f"delivered over the session channel")

    device.run_wasm(session, handle, "ann_init", 1)
    device.run_wasm(session, handle, "ann_train", records, 40, 0.5)
    correct = device.run_wasm(session, handle, "ann_accuracy", records)
    print(f"trained 40 epochs on {records} records; "
          f"accuracy {correct / records * 100:.1f}%")

    # A tampered application — one extra function — has a different
    # fingerprint, so the verifier refuses it the dataset.
    from repro.workloads.attested import attested_app_source
    from repro.walc import compile_source
    from repro.workloads.genann.wasm_impl import ann_functions, SECRET_ADDR

    evil = compile_source(attested_app_source(
        verifier_identity.public_bytes(), HOST, PORT, len(dataset) + 4096,
        extra_functions=ann_functions(SECRET_ADDR, len(dataset) + 4096)
        + "\nexport fn exfiltrate() -> i32 { return load_i32(4096); }\n"))
    loaded_evil = device.load_wasm(session, evil)
    rc = device.run_wasm(session, loaded_evil["app"], "attest")
    print(f"tampered application refused by the verifier (errno {rc})")
    assert rc < 0
    session.close()


if __name__ == "__main__":
    main()
