#!/usr/bin/env python3
"""Formal audit of the remote-attestation protocol (paper §VII).

Verifies the shipped protocol against the paper's claim set under a
Dolev–Yao intruder, then demonstrates the checker's sensitivity by
disabling each verifier/attester check and printing the attack each
mutation enables — including the WaTZ-specific one, where a malicious
Wasm application co-hosted on the same device holds *genuine*
device-signed evidence for its own code measurement.
"""

from repro.formal import (
    MUTATION_EXPECTATIONS,
    ProtocolVariant,
    verify_protocol,
)


def main() -> None:
    print("verifying the shipped protocol (bounded Dolev-Yao search)…")
    report = verify_protocol()
    for claim in report.claims:
        print(f"  {claim.describe()}")
    assert report.all_hold
    print("all claims hold, as the paper's Scyther analysis found.\n")

    for mutation in sorted(MUTATION_EXPECTATIONS):
        variant = ProtocolVariant().mutate(**{mutation: False})
        broken = verify_protocol(variant)
        failed = broken.failed_claims()
        print(f"without {mutation}:")
        print(f"  violated: {', '.join(sorted(failed))}")
        for claim in broken.claims:
            if not claim.holds and claim.attack is not None:
                print("  attack trace:")
                for event in claim.attack.events:
                    kind, role, message, _payload = event
                    print(f"    {role:3} {kind:4} {message}")
                break
        print()


if __name__ == "__main__":
    main()
