#!/usr/bin/env python3
"""Quickstart: boot a device, load a Wasm application into WaTZ, run it.

Walks the minimal path through the public API:

1. manufacture and securely boot a simulated TrustZone device;
2. compile a small program to WebAssembly with walc;
3. load it into the WaTZ runtime TA (it is measured on the way in);
4. invoke its exports and read its WASI stdout.
"""

from repro.testbed import Testbed
from repro.walc import compile_source

SOURCE = """
memory 1;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
data 256 (104, 101, 108, 108, 111, 32, 102, 114, 111, 109, 32, 116, 104,
          101, 32, 115, 101, 99, 117, 114, 101, 32, 119, 111, 114, 108,
          100, 33, 10);

export fn greet() -> i32 {
  store_i32(0, 256);   // iovec base
  store_i32(4, 29);    // iovec length
  return fd_write(1, 0, 1, 16);
}

export fn fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
"""


def main() -> None:
    # One call sets up the whole platform: fused OTPMK, secure boot,
    # OP-TEE with the attestation service, a tee-supplicant.
    testbed = Testbed()
    device = testbed.create_device()
    print(f"device #{device.serial} booted; boot chain: "
          f"{', '.join(device.soc.boot_report.stages)}")

    binary = compile_source(SOURCE)
    print(f"compiled {len(binary)} bytes of Wasm")

    # The WaTZ TA declares its heap at compile time (paper §VI-A).
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary)
    print(f"loaded; code measurement = {loaded['measurement'][:32]}…")

    breakdown = loaded["breakdown"].fractions()
    print("startup breakdown:",
          ", ".join(f"{name} {fraction * 100:.1f}%"
                    for name, fraction in breakdown.items()
                    if fraction > 0.005))

    app = loaded["app"]
    device.run_wasm(session, app, "greet")
    print("Wasm app wrote:", device.read_stdout(session, app).strip())
    print("fib(20) =", device.run_wasm(session, app, "fib", 20))

    print(f"simulated platform time consumed: "
          f"{device.soc.clock.now_ns() / 1e6:.2f} ms")
    session.close()


if __name__ == "__main__":
    main()
