#!/usr/bin/env python3
"""The §VII extensions working together: files, rollback, measured boot.

A Wasm application inside WaTZ persists a counter file through the
WASI-FS extension (backed by GP Trusted Storage). The demo then plays the
§VII storage-rollback attack — restoring an old snapshot of the storage
medium — and shows the hardware monotonic counters catching it. Finally
it shows a verifier pinning the device's *measured-boot* claim.
"""

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.crypto import ecdsa
from repro.errors import TeeSecurityViolation
from repro.testbed import Testbed
from repro.walc import compile_source
from repro.workloads.attested import build_attested_app

COUNTER_APP = """
memory 1;
data 512 (99, 111, 117, 110, 116);  // "count"
import fn wasi_snapshot_preview1.path_open(a: i32, b: i32, c: i32, d: i32,
                                           e: i32, f: i64, g: i64, h: i32,
                                           i: i32) -> i32;
import fn wasi_snapshot_preview1.fd_read(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_seek(a: i32, b: i64, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_close(a: i32) -> i32;

// Reads the persisted counter, increments it, writes it back.
export fn bump() -> i32 {
  path_open(3, 0, 512, 5, 1, 0L, 0L, 0, 64);  // O_CREAT
  var fd: i32 = load_i32(64);
  store_i32(0, 128);
  store_i32(4, 4);
  fd_read(fd, 0, 1, 16);
  var value: i32 = 0;
  if (load_i32(16) == 4) { value = load_i32(128); }
  value = value + 1;
  store_i32(128, value);
  fd_seek(fd, 0L, 0, 32);
  fd_write(fd, 0, 1, 16);
  fd_close(fd);
  return value;
}
"""


def main() -> None:
    testbed = Testbed()
    device = testbed.create_device()
    binary = compile_source(COUNTER_APP)

    # --- persistence across sessions -------------------------------------
    for expected in (1, 2):
        session = device.open_watz(heap_size=4 * 1024 * 1024)
        loaded = device.load_wasm(session, binary, filesystem=True)
        value = device.run_wasm(session, loaded["app"], "bump")
        print(f"session {expected}: counter file now holds {value}")
        assert value == expected
        session.close()

    # --- the rollback attack ----------------------------------------------
    storage = device.kernel.trusted_storage
    with device.soc.enter_secure_world():
        stolen_snapshot = storage.snapshot()
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary, filesystem=True)
    device.run_wasm(session, loaded["app"], "bump")  # counter -> 3
    session.close()
    storage.restore_snapshot(stolen_snapshot)        # attacker restores
    print("attacker restored an old image of the storage medium…")
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    try:
        device.load_wasm(session, binary, filesystem=True)
        print("UNDETECTED — this should not happen")
    except TeeSecurityViolation as violation:
        print(f"hardware monotonic counter caught it: {violation}")
    session.close()

    # --- measured-boot pinning ----------------------------------------------
    identity = ecdsa.keypair_from_private(0xB007)
    app = build_attested_app(identity.public_bytes(), "files.verifier",
                             7600, secret_capacity=4096)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    policy.trust_boot_measurement(device.kernel.boot_measurement)
    start_verifier(testbed.network, "files.verifier", 7600, device.client,
                   testbed.vendor_key, identity, policy, lambda: b"pinned")
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    received = device.run_wasm(session, loaded["app"], "attest")
    print(f"verifier pinned to this firmware's measured boot: "
          f"{'accepted' if received > 0 else 'rejected'} "
          f"({device.kernel.boot_measurement.hex()[:16]}…)")
    session.close()


if __name__ == "__main__":
    main()
