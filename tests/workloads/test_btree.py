"""The B-tree index structure."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SqlError
from repro.workloads.minidb.btree import BTree, key_rank


def test_insert_and_scan_ordered():
    tree = BTree()
    for key in [5, 1, 9, 3, 7]:
        tree.insert(key, key * 10)
    assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]


def test_duplicates_kept_in_rowid_order():
    tree = BTree()
    tree.insert(4, 2)
    tree.insert(4, 1)
    tree.insert(4, 3)
    assert list(tree.scan_key(4)) == [1, 2, 3]


def test_unique_constraint():
    tree = BTree(unique=True)
    tree.insert(1, 10)
    with pytest.raises(SqlError, match="UNIQUE"):
        tree.insert(1, 11)


def test_delete_specific_entry():
    tree = BTree()
    tree.insert(4, 1)
    tree.insert(4, 2)
    assert tree.delete(4, 1)
    assert list(tree.scan_key(4)) == [2]
    assert not tree.delete(4, 99)


def test_range_scan_bounds():
    tree = BTree()
    for key in range(20):
        tree.insert(key, key)
    assert [k for k, _ in tree.scan_range(5, 8)] == [5, 6, 7, 8]
    assert [k for k, _ in tree.scan_range(5, 8, include_low=False)] == [6, 7, 8]
    assert [k for k, _ in tree.scan_range(5, 8, include_high=False)] == [5, 6, 7]
    assert [k for k, _ in tree.scan_range(None, 2)] == [0, 1, 2]
    assert [k for k, _ in tree.scan_range(17, None)] == [17, 18, 19]


def test_min_max():
    tree = BTree()
    assert tree.min_key() is None
    assert tree.max_key() is None
    for key in [5, 1, 9]:
        tree.insert(key, key)
    assert tree.min_key() == 1
    assert tree.max_key() == 9


def test_mixed_type_ordering():
    tree = BTree()
    tree.insert("text", 1)
    tree.insert(5, 2)
    tree.insert(None, 3)
    tree.insert(2.5, 4)
    assert [k for k, _ in tree.items()] == [None, 2.5, 5, "text"]


def test_key_rank_rejects_unorderable():
    with pytest.raises(SqlError):
        key_rank([1, 2])


def test_size_tracks_mutations():
    tree = BTree()
    for key in range(50):
        tree.insert(key, key)
    assert tree.size == 50
    for key in range(0, 50, 2):
        tree.delete(key, key)
    assert tree.size == 25


def test_large_sequential_and_reverse_inserts():
    forward = BTree()
    backward = BTree()
    for key in range(1000):
        forward.insert(key, key)
        backward.insert(999 - key, 999 - key)
    assert [k for k, _ in forward.items()] == list(range(1000))
    assert [k for k, _ in backward.items()] == list(range(1000))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.booleans()), max_size=300))
def test_matches_reference_under_random_ops(operations):
    tree = BTree()
    reference = []
    rowid = 0
    for key, is_insert in operations:
        if is_insert or not reference:
            tree.insert(key, rowid)
            reference.append((key, rowid))
            rowid += 1
        else:
            victim = reference[key % len(reference)]
            assert tree.delete(*victim)
            reference.remove(victim)
    expected = sorted(reference)
    assert [(k, r) for k, r in tree.items()] == expected
    assert tree.size == len(expected)
