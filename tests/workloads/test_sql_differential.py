"""Differential testing of the SQL engine against a Python oracle.

Hypothesis generates WHERE clauses, UPDATE/DELETE mutations and ORDER BY
specs over a known table; the engine's answers are compared with a plain
Python evaluation over the same rows. The indexed and unindexed plans are
also compared against each other (planner equivalence).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.minidb.engine import connect

_ROWS = [(i, (i * 13) % 50, (i * 7) % 30, f"name-{i % 10}")
         for i in range(120)]


def _fresh(indexed: bool):
    db = connect()
    db.execute("CREATE TABLE t(a INTEGER, b INTEGER, c INTEGER, d TEXT)")
    if indexed:
        db.execute("CREATE INDEX tb ON t(b)")
    db.execute("BEGIN")
    for row in _ROWS:
        db.execute("INSERT INTO t VALUES (?, ?, ?, ?)", row)
    db.execute("COMMIT")
    return db


# A predicate is (sql fragment, python lambda over (a, b, c, d)).
@st.composite
def predicates(draw):
    column = draw(st.sampled_from(["a", "b", "c"]))
    index = {"a": 0, "b": 1, "c": 2}[column]
    kind = draw(st.integers(0, 4))
    if kind == 0:
        value = draw(st.integers(0, 120))
        return (f"{column} = {value}", lambda r: r[index] == value)
    if kind == 1:
        low = draw(st.integers(0, 60))
        high = low + draw(st.integers(0, 60))
        return (f"{column} BETWEEN {low} AND {high}",
                lambda r: low <= r[index] <= high)
    if kind == 2:
        value = draw(st.integers(0, 120))
        return (f"{column} < {value}", lambda r: r[index] < value)
    if kind == 3:
        value = draw(st.integers(0, 120))
        return (f"{column} >= {value}", lambda r: r[index] >= value)
    suffix = draw(st.integers(0, 9))
    return (f"d LIKE 'name-{suffix}'", lambda r: r[3] == f"name-{suffix}")


@st.composite
def where_clauses(draw):
    first_sql, first_fn = draw(predicates())
    if draw(st.booleans()):
        second_sql, second_fn = draw(predicates())
        connective = draw(st.sampled_from(["AND", "OR"]))
        if connective == "AND":
            return (f"{first_sql} {connective} {second_sql}",
                    lambda r: first_fn(r) and second_fn(r))
        return (f"{first_sql} {connective} {second_sql}",
                lambda r: first_fn(r) or second_fn(r))
    return first_sql, first_fn


@settings(max_examples=60, deadline=None)
@given(clause=where_clauses())
def test_select_count_matches_oracle(clause):
    sql, oracle = clause
    db = _fresh(indexed=False)
    got = db.execute(f"SELECT COUNT(*) FROM t WHERE {sql}")[0][0]
    assert got == sum(1 for row in _ROWS if oracle(row))


@settings(max_examples=40, deadline=None)
@given(clause=where_clauses())
def test_indexed_plan_matches_scan_plan(clause):
    sql, _oracle = clause
    plain = _fresh(indexed=False)
    indexed = _fresh(indexed=True)
    query = f"SELECT a FROM t WHERE {sql} ORDER BY a"
    assert plain.execute(query) == indexed.execute(query)


@settings(max_examples=30, deadline=None)
@given(clause=where_clauses(), delta=st.integers(1, 5))
def test_update_matches_oracle(clause, delta):
    sql, oracle = clause
    db = _fresh(indexed=True)
    db.execute(f"UPDATE t SET a = a + {delta} WHERE {sql}")
    expected = sorted((row[0] + delta if oracle(row) else row[0])
                      for row in _ROWS)
    got = sorted(value for (value,) in db.execute("SELECT a FROM t"))
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(clause=where_clauses())
def test_delete_matches_oracle(clause):
    sql, oracle = clause
    db = _fresh(indexed=True)
    db.execute(f"DELETE FROM t WHERE {sql}")
    expected = sum(1 for row in _ROWS if not oracle(row))
    assert db.execute("SELECT COUNT(*) FROM t")[0][0] == expected


@settings(max_examples=25, deadline=None)
@given(column=st.sampled_from(["a", "b", "c"]),
       descending=st.booleans(), limit=st.integers(1, 30))
def test_order_by_matches_oracle(column, descending, limit):
    db = _fresh(indexed=False)
    index = {"a": 0, "b": 1, "c": 2}[column]
    direction = "DESC" if descending else "ASC"
    got = db.execute(
        f"SELECT a FROM t ORDER BY {column} {direction}, a LIMIT {limit}")
    decorated = sorted(
        _ROWS,
        key=lambda r: ((-r[index] if descending else r[index]), r[0]))
    assert got == [(row[0],) for row in decorated[:limit]]
