"""The mini SQL database: parsing, execution, planning, transactions."""

import pytest

from repro.errors import SqlError
from repro.workloads.minidb.engine import connect
from repro.workloads.minidb.sql import parse


@pytest.fixture
def db():
    connection = connect()
    connection.execute(
        "CREATE TABLE items(id INTEGER PRIMARY KEY, qty INTEGER, name TEXT)")
    connection.execute("BEGIN")
    for i in range(50):
        connection.execute("INSERT INTO items VALUES (?, ?, ?)",
                           (i, (i * 7) % 20, f"item-{i:03d}"))
    connection.execute("COMMIT")
    return connection


# -- parsing ------------------------------------------------------------------


def test_parse_rejects_garbage():
    with pytest.raises(SqlError):
        parse("FROBNICATE THE DATABASE")


def test_parse_rejects_trailing_tokens():
    with pytest.raises(SqlError):
        parse("SELECT 1 SELECT 2")


def test_string_literal_escaping(db):
    db.execute("INSERT INTO items VALUES (100, 1, 'it''s quoted')")
    rows = db.execute("SELECT name FROM items WHERE id = 100")
    assert rows == [("it's quoted",)]


def test_comments_allowed(db):
    assert db.execute("SELECT COUNT(*) FROM items -- trailing comment") \
        == [(50,)]


# -- basic queries -----------------------------------------------------------------


def test_select_star(db):
    rows = db.execute("SELECT * FROM items WHERE id = 3")
    assert rows == [(3, 1, "item-003")]


def test_select_expressions(db):
    rows = db.execute("SELECT id * 2 + 1 FROM items WHERE id = 10")
    assert rows == [(21,)]


def test_select_without_from():
    db = connect()
    assert db.execute("SELECT 1 + 2 * 3") == [(7,)]


def test_where_combinations(db):
    rows = db.execute(
        "SELECT COUNT(*) FROM items WHERE qty > 5 AND qty <= 10 AND id < 40")
    expected = sum(1 for i in range(40) if 5 < (i * 7) % 20 <= 10)
    assert rows == [(expected,)]


def test_like(db):
    assert db.execute("SELECT COUNT(*) FROM items WHERE name LIKE 'item-00%'") \
        == [(10,)]
    assert db.execute("SELECT COUNT(*) FROM items WHERE name LIKE 'item-0_0'") \
        == [(5,)]


def test_in_and_between(db):
    assert db.execute("SELECT COUNT(*) FROM items WHERE id IN (1, 2, 3)") \
        == [(3,)]
    assert db.execute("SELECT COUNT(*) FROM items WHERE id BETWEEN 10 AND 12") \
        == [(3,)]
    assert db.execute(
        "SELECT COUNT(*) FROM items WHERE id NOT BETWEEN 10 AND 49") == [(10,)]


def test_is_null():
    db = connect()
    db.execute("CREATE TABLE t(a INTEGER, b INTEGER)")
    db.execute("INSERT INTO t VALUES (1, NULL), (2, 5)")
    assert db.execute("SELECT a FROM t WHERE b IS NULL") == [(1,)]
    assert db.execute("SELECT a FROM t WHERE b IS NOT NULL") == [(2,)]


def test_null_propagation():
    db = connect()
    db.execute("CREATE TABLE t(a INTEGER)")
    db.execute("INSERT INTO t VALUES (NULL)")
    assert db.execute("SELECT a + 1 FROM t") == [(None,)]


def test_order_by_asc_desc(db):
    rows = db.execute("SELECT id FROM items ORDER BY qty, id DESC LIMIT 5")
    decorated = sorted(((i * 7) % 20, -i) for i in range(50))
    expected = [(-d[1],) for d in decorated[:5]]
    assert rows == expected


def test_limit(db):
    assert len(db.execute("SELECT id FROM items LIMIT 7")) == 7


def test_group_by_aggregates(db):
    rows = db.execute(
        "SELECT qty, COUNT(*), SUM(id) FROM items GROUP BY qty ORDER BY qty")
    reference = {}
    for i in range(50):
        reference.setdefault((i * 7) % 20, []).append(i)
    assert len(rows) == len(reference)
    for qty, count, total in rows:
        assert count == len(reference[qty])
        assert total == sum(reference[qty])


def test_aggregates_without_group(db):
    rows = db.execute("SELECT COUNT(*), MIN(id), MAX(id), AVG(id) FROM items")
    assert rows == [(50, 0, 49, 24.5)]


def test_count_distinct(db):
    rows = db.execute("SELECT COUNT(DISTINCT qty) FROM items")
    assert rows == [(len({(i * 7) % 20 for i in range(50)}),)]


def test_join_with_index(db):
    db.execute("CREATE TABLE labels(qty INTEGER PRIMARY KEY, tag TEXT)")
    for q in range(0, 20):
        db.execute("INSERT INTO labels VALUES (?, ?)", (q, f"tag{q}"))
    rows = db.execute(
        "SELECT items.id, labels.tag FROM items JOIN labels "
        "ON labels.qty = items.qty WHERE items.id < 3 ORDER BY items.id")
    assert rows == [(0, "tag0"), (1, "tag7"), (2, "tag14")]


def test_join_aliases(db):
    db.execute("CREATE TABLE pair(x INTEGER, y INTEGER)")
    db.execute("INSERT INTO pair VALUES (1, 2)")
    rows = db.execute(
        "SELECT a.x, b.y FROM pair a JOIN pair b ON a.x = b.x")
    assert rows == [(1, 2)]


# -- mutation -----------------------------------------------------------------------


def test_update_with_where(db):
    count = db.execute("UPDATE items SET qty = 99 WHERE id < 5")
    assert count == [(5,)]
    assert db.execute("SELECT COUNT(*) FROM items WHERE qty = 99") == [(5,)]


def test_update_maintains_index(db):
    db.execute("CREATE INDEX qty_idx ON items(qty)")
    db.execute("UPDATE items SET qty = 999 WHERE id = 0")
    assert db.execute("SELECT id FROM items WHERE qty = 999") == [(0,)]


def test_delete_with_where(db):
    db.execute("DELETE FROM items WHERE id >= 40")
    assert db.execute("SELECT COUNT(*) FROM items") == [(40,)]


def test_primary_key_unique_enforced(db):
    with pytest.raises(SqlError, match="UNIQUE"):
        db.execute("INSERT INTO items VALUES (3, 0, 'dup')")


def test_insert_column_subset(db):
    db.execute("INSERT INTO items (id, name) VALUES (200, 'partial')")
    assert db.execute("SELECT qty, name FROM items WHERE id = 200") \
        == [(None, "partial")]


def test_type_coercion_on_insert():
    db = connect()
    db.execute("CREATE TABLE t(a INTEGER, b REAL, c TEXT)")
    db.execute("INSERT INTO t VALUES (1.9, 2, 3)")
    assert db.execute("SELECT * FROM t") == [(1, 2.0, "3")]


# -- transactions ----------------------------------------------------------------------


def test_rollback_undoes_insert_update_delete(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO items VALUES (300, 1, 'tx')")
    db.execute("UPDATE items SET qty = 7777 WHERE id = 1")
    db.execute("DELETE FROM items WHERE id = 2")
    db.execute("ROLLBACK")
    assert db.execute("SELECT COUNT(*) FROM items") == [(50,)]
    assert db.execute("SELECT qty FROM items WHERE id = 1") == [((7) % 20,)]
    assert db.execute("SELECT COUNT(*) FROM items WHERE id = 2") == [(1,)]


def test_rollback_restores_indices(db):
    db.execute("CREATE INDEX qty_idx ON items(qty)")
    db.execute("BEGIN")
    db.execute("UPDATE items SET qty = 555 WHERE id < 10")
    db.execute("ROLLBACK")
    assert db.execute("SELECT COUNT(*) FROM items WHERE qty = 555") == [(0,)]


def test_commit_is_durable(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO items VALUES (301, 1, 'kept')")
    db.execute("COMMIT")
    assert db.execute("SELECT name FROM items WHERE id = 301") == [("kept",)]


def test_nested_transaction_rejected(db):
    db.execute("BEGIN")
    with pytest.raises(SqlError):
        db.execute("BEGIN")
    db.execute("ROLLBACK")


def test_commit_without_begin_rejected(db):
    with pytest.raises(SqlError):
        db.execute("COMMIT")


# -- planner ---------------------------------------------------------------------------


def test_index_and_scan_agree(db):
    """The planner's indexed path returns the same rows as a full scan."""
    scan = db.execute("SELECT COUNT(*) FROM items WHERE qty BETWEEN 3 AND 9")
    db.execute("CREATE INDEX qty_idx ON items(qty)")
    indexed = db.execute(
        "SELECT COUNT(*) FROM items WHERE qty BETWEEN 3 AND 9")
    assert scan == indexed


def test_parameter_constraints_use_index(db):
    direct = db.execute("SELECT COUNT(*) FROM items WHERE id = 7")
    bound = db.execute("SELECT COUNT(*) FROM items WHERE id = ?", (7,))
    assert direct == bound == [(1,)]


def test_min_max_fast_path_matches_scan(db):
    assert db.execute("SELECT MIN(id), MAX(id) FROM items") == [(0, 49)]
    db.execute("DELETE FROM items WHERE id = 0")
    assert db.execute("SELECT MIN(id) FROM items") == [(1,)]


def test_drop_table(db):
    db.execute("DROP TABLE items")
    with pytest.raises(SqlError, match="no table"):
        db.execute("SELECT * FROM items")


def test_drop_index(db):
    db.execute("CREATE INDEX qty_idx ON items(qty)")
    db.execute("DROP INDEX qty_idx")
    with pytest.raises(SqlError, match="no index"):
        db.execute("DROP INDEX qty_idx")


def test_statement_cache_reused(db):
    before = len(db._statement_cache)
    for i in range(5):
        db.execute("SELECT qty FROM items WHERE id = ?", (i,))
    assert len(db._statement_cache) == before + 1
