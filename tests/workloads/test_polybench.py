"""PolyBench suite: registry completeness and Wasm/native equivalence."""

import pytest

from repro.walc import compile_source
from repro.wasm import AotCompiler, Interpreter
from repro.workloads.polybench import (
    EXPECTED_KERNEL_COUNT,
    REGISTRY,
    all_kernels,
    get_kernel,
)

_CATEGORIES = {
    "datamining": 2,
    "blas": 9,
    "kernels": 4,
    "solvers": 6,
    "medley": 3,
    "stencils": 6,
}


def test_all_30_kernels_registered():
    assert len(REGISTRY) == EXPECTED_KERNEL_COUNT == 30


def test_category_breakdown_matches_polybench():
    counts = {}
    for kernel in all_kernels():
        counts[kernel.category] = counts.get(kernel.category, 0) + 1
    assert counts == _CATEGORIES


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_wasm_matches_native_bit_for_bit(name, aot_engine):
    """Identical IEEE-754 operation order => identical checksums."""
    kernel = get_kernel(name)
    size = max(6, kernel.default_size // 3)
    instance = aot_engine.instantiate(compile_source(kernel.walc_source(size)))
    assert instance.invoke("run") == kernel.native(size)


@pytest.mark.parametrize("name", ["gemm", "jacobi-1d", "nussinov"])
def test_interpreter_agrees_with_aot(name):
    kernel = get_kernel(name)
    size = max(6, kernel.default_size // 6)
    binary = compile_source(kernel.walc_source(size))
    aot = AotCompiler().instantiate(binary).invoke("run")
    interp = Interpreter().instantiate(binary).invoke("run")
    assert aot == interp


@pytest.mark.parametrize("name", ["gemm", "atax"])
def test_kernels_scale_with_size(name):
    kernel = get_kernel(name)
    small = kernel.native(8)
    large = kernel.native(16)
    assert small != large  # the checksum actually depends on the size


def test_default_sizes_positive():
    for kernel in all_kernels():
        assert kernel.default_size >= 6
