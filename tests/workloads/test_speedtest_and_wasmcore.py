"""The Speedtest1-like suite and the walc storage-engine core."""

import pytest

from repro.wasm import AotCompiler
from repro.workloads.minidb.engine import connect
from repro.workloads.minidb.speedtest import (
    ALL_TESTS,
    READ_TESTS,
    WRITE_TESTS,
)
from repro.workloads.minidb.wasmcore import compile_dbcore

_PAPER_READ = {130, 140, 145, 160, 161, 170, 260, 310, 320, 410, 510, 520}
_PAPER_WRITE = {100, 110, 120, 180, 190, 210, 290, 300, 400, 500}

_SCALE = 120


@pytest.fixture(scope="module")
def dbcore():
    return AotCompiler().instantiate(compile_dbcore(capacity=2048))


def test_suite_covers_papers_test_numbers():
    numbers = {t.number for t in ALL_TESTS}
    assert _PAPER_READ <= numbers
    assert _PAPER_WRITE <= numbers


def test_read_write_classification_matches_paper():
    assert set(READ_TESTS) == _PAPER_READ
    assert set(WRITE_TESTS) == _PAPER_WRITE


@pytest.mark.parametrize("number", sorted(t.number for t in ALL_TESTS))
def test_sql_side_runs(number):
    test = next(t for t in ALL_TESTS if t.number == number)
    db = connect()
    test.sql_setup(db, _SCALE)
    test.sql_run(db, _SCALE)
    assert db.statements_executed > 0


@pytest.mark.parametrize("number", sorted(t.number for t in ALL_TESTS))
def test_wasm_side_runs(number, dbcore):
    test = next(t for t in ALL_TESTS if t.number == number)
    for fn, args in test.wasm_setup(_SCALE):
        dbcore.invoke(fn, *args)
    for fn, args in test.wasm_run(_SCALE):
        dbcore.invoke(fn, *args)


# -- cross-checking the two implementations ------------------------------------


def _fresh(dbcore, n, indexed):
    dbcore.invoke("reset")
    dbcore.invoke("set_indexed", 1 if indexed else 0)
    dbcore.invoke("insert_many", n, n * 2)


def _reference_rows(n):
    """Mirror of insert_many's deterministic key stream."""
    def prng(seed):
        return ((seed * 1103515245 + 12345) >> 8) & 0x7FFFFF

    rows = []
    for i in range(n):
        key = prng(i) % (n * 2)
        rows.append((key, (key * 3 + 7) % 1000, prng(key)))
    return rows


def test_insert_count(dbcore):
    _fresh(dbcore, 200, indexed=False)
    assert dbcore.invoke("row_count") == 200
    assert dbcore.invoke("count_alive") == 200


def test_scan_count_matches_reference(dbcore):
    _fresh(dbcore, 200, indexed=False)
    rows = _reference_rows(200)
    expected = sum(1 for _k, v, _p in rows if 100 <= v <= 300)
    assert dbcore.invoke("scan_count", 100, 300) == expected


def test_indexed_lookup_matches_scan(dbcore):
    _fresh(dbcore, 300, indexed=True)
    rows = _reference_rows(300)
    for lo, hi in [(0, 50), (100, 200), (0, 10_000_000)]:
        expected = sum(1 for k, _v, _p in rows if lo <= k <= hi)
        assert dbcore.invoke("lookup_count", lo, hi) == expected


def test_build_index_equals_incremental(dbcore):
    _fresh(dbcore, 250, indexed=True)
    incremental = dbcore.invoke("lookup_count", 0, 1 << 30)
    dbcore.invoke("build_index")
    assert dbcore.invoke("lookup_count", 0, 1 << 30) == incremental == 250


def test_delete_range_updates_counts(dbcore):
    _fresh(dbcore, 200, indexed=True)
    rows = _reference_rows(200)
    victims = sum(1 for k, _v, _p in rows if 0 <= k <= 100)
    assert dbcore.invoke("delete_range", 0, 100) == victims
    assert dbcore.invoke("count_alive") == 200 - victims
    assert dbcore.invoke("lookup_count", 0, 100) == 0


def test_update_indexed_moves_keys(dbcore):
    _fresh(dbcore, 150, indexed=True)
    rows = _reference_rows(150)
    in_range = sum(1 for k, _v, _p in rows if 0 <= k <= 50)
    moved = dbcore.invoke("update_indexed", 0, 50, 10_000)
    assert moved == in_range
    assert dbcore.invoke("lookup_count", 0, 50) == 0
    assert dbcore.invoke("lookup_count", 10_000, 10_050) == in_range


def test_update_scan_changes_values(dbcore):
    _fresh(dbcore, 150, indexed=False)
    before = dbcore.invoke("scan_count", 0, 499)
    moved = dbcore.invoke("update_scan", 0, 499, 1000)
    assert moved == before
    assert dbcore.invoke("scan_count", 0, 499) == 0


def test_order_by_checksum_stable(dbcore):
    _fresh(dbcore, 180, indexed=False)
    first = dbcore.invoke("order_by_checksum")
    second = dbcore.invoke("order_by_checksum")
    assert first == second


def test_group_sum_partitions_everything(dbcore):
    _fresh(dbcore, 120, indexed=False)
    rows = _reference_rows(120)
    buckets = [0] * 16
    for _k, v, _p in rows:
        buckets[v % 16] += v
    expected = 0
    for value in buckets:
        expected = (expected * 31 + value) & 0xFFFFFF
    assert dbcore.invoke("group_sum", 16) == expected


def test_join_sum_matches_reference(dbcore):
    _fresh(dbcore, 100, indexed=False)
    dbcore.invoke("fill_join_table", 100)
    rows = _reference_rows(100)
    t2 = {i * 2: (i * 11 + 5) % 997 for i in range(100)}
    expected = 0
    for k, _v, _p in rows:
        if k in t2:
            expected = (expected + t2[k]) % 1000000
    assert dbcore.invoke("join_sum") == expected


def test_min_max_through_index(dbcore):
    _fresh(dbcore, 150, indexed=True)
    rows = _reference_rows(150)
    keys = [k for k, _v, _p in rows]
    expected = (min(keys) + max(keys)) % 1000000
    assert dbcore.invoke("min_max_sum", 1) == expected


def test_scan_like_residue_filter(dbcore):
    _fresh(dbcore, 130, indexed=False)
    rows = _reference_rows(130)
    expected = sum(1 for _k, _v, p in rows if p % 10 == 3)
    assert dbcore.invoke("scan_like", 10, 3) == expected
