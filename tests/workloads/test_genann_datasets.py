"""The Genann workload and the synthetic Iris dataset."""

import pytest

from repro.wasm import AotCompiler
from repro.workloads.datasets import (
    RECORD_SIZE,
    dataset_of_size,
    decode_records,
    encode_records,
    iris_like_records,
)
from repro.workloads.genann.python_impl import (
    Genann,
    accuracy,
    train_classifier,
)
from repro.workloads.genann.wasm_impl import (
    SECRET_ADDR,
    TOTAL_WEIGHTS,
    build_standalone_ann,
)


# -- datasets ------------------------------------------------------------------


def test_iris_like_shape():
    records = iris_like_records()
    assert len(records) == 150
    labels = [label for _f, label in records]
    assert labels.count(0) == labels.count(1) == labels.count(2) == 50
    for features, _label in records:
        assert len(features) == 4
        assert all(value > 0 for value in features)


def test_dataset_deterministic_per_seed():
    assert iris_like_records(7) == iris_like_records(7)
    assert iris_like_records(7) != iris_like_records(8)


def test_classes_are_separated():
    records = iris_like_records()
    means = {}
    for features, label in records:
        means.setdefault(label, []).append(features[2])  # petal length
    avg = {label: sum(v) / len(v) for label, v in means.items()}
    assert avg[0] < avg[1] < avg[2]


def test_encode_decode_roundtrip():
    records = iris_like_records()
    assert decode_records(encode_records(records)) == records


def test_record_size():
    assert RECORD_SIZE == 36
    assert len(encode_records(iris_like_records())) == 150 * 36


def test_dataset_of_size_replication():
    blob = dataset_of_size(100_000)
    assert 95_000 <= len(blob) <= 100_000
    assert len(blob) % RECORD_SIZE == 0
    records = decode_records(blob)
    assert records[:150] == iris_like_records()
    assert records[150:300] == iris_like_records()


def test_decode_rejects_partial_records():
    with pytest.raises(ValueError):
        decode_records(b"\x00" * 37)


# -- Python ANN ----------------------------------------------------------------------


def test_weight_count_matches_genann_formula():
    network = Genann(4, 4, 3)
    assert network.total_weights == (4 + 1) * 4 + (4 + 1) * 3 == 35


def test_run_outputs_are_probabilities():
    network = Genann(4, 4, 3)
    output = network.run((5.0, 3.0, 1.5, 0.2))
    assert len(output) == 3
    assert all(0.0 <= value <= 1.0 for value in output)


def test_xor_learnable():
    network = Genann(2, 2, 1, seed=1)
    data = [((0.0, 0.0), 0.0), ((0.0, 1.0), 1.0),
            ((1.0, 0.0), 1.0), ((1.0, 1.0), 0.0)]
    for _ in range(2000):
        for inputs, desired in data:
            network.train(inputs, [desired], 3.0)
    for inputs, desired in data:
        assert abs(network.run(inputs)[0] - desired) < 0.1


def test_training_improves_accuracy():
    records = iris_like_records()
    untrained = Genann(4, 4, 3, seed=1)
    base = accuracy(untrained, records)
    trained = train_classifier(records, epochs=500)
    assert accuracy(trained, records) > max(base, 0.9)


def test_training_deterministic():
    records = iris_like_records()
    one = train_classifier(records, epochs=3)
    two = train_classifier(records, epochs=3)
    assert one.weights == two.weights


# -- Wasm ANN -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wasm_ann():
    from repro.wasi import WasiEnvironment, build_wasi_imports

    instance = AotCompiler().instantiate(
        build_standalone_ann(1 << 16),
        build_wasi_imports(WasiEnvironment()),
    )
    return instance


def test_wasm_weights_match_python_init(wasm_ann):
    wasm_ann.invoke("ann_init", 1)
    python = Genann(4, 4, 3, seed=1)
    assert wasm_ann.invoke("ann_weight_checksum") == sum(python.weights)


def test_wasm_training_bit_equivalent(wasm_ann):
    records = iris_like_records()
    wasm_ann.memory.write(SECRET_ADDR, encode_records(records))
    wasm_ann.invoke("ann_init", 1)
    trained = wasm_ann.invoke("ann_train", len(records), 5, 0.5)
    assert trained == len(records) * 5
    python = train_classifier(records, epochs=5)
    assert wasm_ann.invoke("ann_weight_checksum") == sum(python.weights)


def test_wasm_accuracy_matches_python(wasm_ann):
    records = iris_like_records()
    wasm_ann.memory.write(SECRET_ADDR, encode_records(records))
    wasm_ann.invoke("ann_init", 1)
    wasm_ann.invoke("ann_train", len(records), 40, 0.5)
    correct = wasm_ann.invoke("ann_accuracy", len(records))
    python = train_classifier(records, epochs=40)
    assert correct == round(accuracy(python, records) * len(records))


def test_total_weights_constant():
    assert TOTAL_WEIGHTS == 35
