"""walc end-to-end: compiled programs behave correctly on both engines."""

import pytest

from repro.errors import TrapError
from repro.walc import compile_source


def run(engine, source, function, *args):
    instance = engine.instantiate(compile_source(source))
    return instance.invoke(function, *args)


def test_arithmetic(engine):
    source = "export fn f(a: i32, b: i32) -> i32 { return (a + b) * 2 - 1; }"
    assert run(engine, source, "f", 3, 4) == 13


def test_float_math(engine):
    source = ("export fn f(x: f64) -> f64 "
              "{ return sqrt(x) + fabs(0.0 - 1.5); }")
    assert run(engine, source, "f", 9.0) == 4.5


def test_while_loop(engine):
    source = """
export fn fib(n: i32) -> i32 {
  var a: i32 = 0;
  var b: i32 = 1;
  while (n > 0) {
    var t: i32 = a + b;
    a = b;
    b = t;
    n = n - 1;
  }
  return a;
}
"""
    assert run(engine, source, "fib", 10) == 55


def test_recursion(engine):
    source = """
export fn fact(n: i32) -> i32 {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
"""
    assert run(engine, source, "fact", 6) == 720


def test_break_continue(engine):
    source = """
export fn f(n: i32) -> i32 {
  var total: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 10) { break; }
    total = total + i;
  }
  return total;
}
"""
    assert run(engine, source, "f", 100) == 1 + 3 + 5 + 7 + 9


def test_continue_runs_for_step(engine):
    # If `continue` skipped the step this would loop forever (trapped by
    # the call-stack guard or hang); the result proves the step ran.
    source = """
export fn f() -> i32 {
  var count: i32 = 0;
  for (var i: i32 = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    count = count + 1;
  }
  return count;
}
"""
    assert run(engine, source, "f") == 5


def test_nested_loops(engine):
    source = """
export fn f(n: i32) -> i32 {
  var total: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {
    for (var j: i32 = 0; j < n; j = j + 1) {
      if (j > i) { break; }
      total = total + 1;
    }
  }
  return total;
}
"""
    assert run(engine, source, "f", 4) == 10


def test_globals_persist(engine):
    source = """
var counter: i32 = 100;
export fn bump(by: i32) -> i32 {
  counter = counter + by;
  return counter;
}
"""
    instance = engine.instantiate(compile_source(source))
    assert instance.invoke("bump", 1) == 101
    assert instance.invoke("bump", 10) == 111


def test_memory_intrinsics(engine):
    source = """
memory 1;
export fn f(v: i64) -> i64 {
  store_i64(32, v);
  store_u8(100, 255);
  store_u16(102, 0xabcd);
  store_f32(104, 1.5f);
  return load_i64(32) + (load_u8(100) as i64) + (load_u16(102) as i64)
       + (load_f32(104) as i64);
}
"""
    assert run(engine, source, "f", 1000) == 1000 + 255 + 0xABCD + 1


def test_signed_byte_loads(engine):
    source = """
memory 1;
export fn f() -> i32 {
  store_u8(0, 0x80);
  return load_s8(0);
}
"""
    assert run(engine, source, "f") == 0xFFFFFF80


def test_memory_size_grow(engine):
    source = """
memory 1 max 3;
export fn f() -> i32 {
  var old: i32 = memory_grow(1);
  return old * 100 + memory_size();
}
"""
    assert run(engine, source, "f") == 102


def test_unsigned_intrinsics(engine):
    source = """
export fn f() -> i32 {
  var big: i32 = 0 - 2;  // 0xFFFFFFFE unsigned
  return divu(big, 2) + ltu(1, big);
}
"""
    assert run(engine, source, "f") == 0x7FFFFFFF + 1


def test_bit_intrinsics(engine):
    source = ("export fn f(x: i32) -> i32 "
              "{ return clz(x) * 10000 + ctz(x) * 100 + popcnt(x); }")
    assert run(engine, source, "f", 0x00F0) == 24 * 10000 + 4 * 100 + 4


def test_cast_semantics(engine):
    source = """
export fn f(x: f64) -> i64 {
  return (x as i32) as i64 + (x as i64);
}
"""
    assert run(engine, source, "f", -3.9) == -6 & 0xFFFFFFFFFFFFFFFF


def test_data_segment(engine):
    source = """
memory 1;
data 10 (1, 2, 3, 4);
export fn f(i: i32) -> i32 { return load_u8(10 + i); }
"""
    assert run(engine, source, "f", 2) == 3


def test_imports_link(engine):
    from repro.wasm import HostFunction
    from repro.wasm.types import FuncType, ValType

    source = """
import fn env.triple(x: i32) -> i32;
export fn f(x: i32) -> i32 { return triple(x) + 1; }
"""
    imports = {"env": {"triple": HostFunction(
        FuncType((ValType.I32,), (ValType.I32,)),
        lambda _inst, x: (x * 3) & 0xFFFFFFFF)}}
    instance = engine.instantiate(compile_source(source), imports)
    assert instance.invoke("f", 5) == 16


def test_unreachable_intrinsic(engine):
    source = "export fn f() { unreachable(); }"
    with pytest.raises(TrapError):
        run(engine, source, "f")


def test_division_semantics(engine):
    source = "export fn f(a: i32, b: i32) -> i32 { return a / b + a % b; }"
    assert run(engine, source, "f", 7, 2) == 4
    with pytest.raises(TrapError):
        run(engine, source, "f", 1, 0)


def test_short_circuit_does_not_evaluate_rhs(engine):
    # The RHS would trap (division by zero) if evaluated.
    source = """
export fn f(a: i32) -> i32 {
  if (a != 0 && 10 / a > 1) { return 1; }
  return 0;
}
"""
    assert run(engine, source, "f", 0) == 0
    assert run(engine, source, "f", 4) == 1


def test_deep_expression_nesting(engine):
    expression = "1" + " + 1" * 100
    source = f"export fn f() -> i32 {{ return {expression}; }}"
    assert run(engine, source, "f") == 101


def test_exported_memory_visible():
    from repro.wasm import AotCompiler

    instance = AotCompiler().instantiate(compile_source(
        "memory 2;\nexport fn f() -> i32 { return 0; }"))
    assert instance.memory is not None
    assert instance.memory.size_pages == 2
