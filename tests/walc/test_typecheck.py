"""walc type checking: literal adaptation and rejection cases."""

import pytest

from repro.errors import TypeCheckError
from repro.walc import compile_source
from repro.walc.parser import parse
from repro.walc.typecheck import check_program


def check(source):
    program = parse(source)
    check_program(program)
    return program


def test_literal_adapts_to_i64():
    check("fn f(x: i64) -> i64 { return x + 1; }")


def test_literal_adapts_to_f64():
    check("fn f(x: f64) -> f64 { return x * 2; }")


def test_literal_adapts_on_left():
    check("fn f(x: f64) -> f64 { return 2 * x; }")


def test_forced_suffix_respected():
    with pytest.raises(TypeCheckError):
        check("fn f(x: i32) -> i32 { return x + 1L; }")


def test_mixed_types_rejected():
    with pytest.raises(TypeCheckError, match="differ|expected"):
        check("fn f(x: i32, y: f64) -> f64 { return x + y; }")


def test_cast_fixes_mixed_types():
    check("fn f(x: i32, y: f64) -> f64 { return (x as f64) + y; }")


def test_condition_must_be_i32():
    with pytest.raises(TypeCheckError):
        check("fn f(x: f64) { if (x) { } }")


def test_comparison_gives_i32_condition():
    check("fn f(x: f64) -> i32 { if (x > 1.0) { return 1; } return 0; }")


def test_unknown_variable_rejected():
    with pytest.raises(TypeCheckError, match="unknown variable"):
        check("fn f() -> i32 { return nope; }")


def test_unknown_function_rejected():
    with pytest.raises(TypeCheckError, match="unknown function"):
        check("fn f() { nope(); }")


def test_duplicate_function_rejected():
    with pytest.raises(TypeCheckError, match="duplicate"):
        check("fn f() { } fn f() { }")


def test_intrinsic_name_collision_rejected():
    with pytest.raises(TypeCheckError, match="duplicate"):
        check("fn sqrt(x: f64) -> f64 { return x; }")


def test_wrong_argument_count():
    with pytest.raises(TypeCheckError, match="arguments"):
        check("fn g(x: i32) { } fn f() { g(); }")


def test_argument_type_checked():
    with pytest.raises(TypeCheckError):
        check("fn g(x: i32) { } fn f(y: f64) { g(y); }")


def test_void_call_as_value_rejected():
    with pytest.raises(TypeCheckError):
        check("fn g() { } fn f() -> i32 { return g(); }")


def test_missing_return_rejected():
    with pytest.raises(TypeCheckError, match="return"):
        check("fn f(x: i32) -> i32 { if (x) { return 1; } }")


def test_return_on_both_branches_accepted():
    check("fn f(x: i32) -> i32 { if (x) { return 1; } else { return 2; } }")


def test_void_return_with_value_rejected():
    with pytest.raises(TypeCheckError):
        check("fn f() { return 1; }")


def test_block_scoping():
    with pytest.raises(TypeCheckError, match="unknown variable"):
        check("fn f() -> i32 { if (1) { var x: i32 = 1; } return x; }")


def test_shadowing_in_nested_scope():
    check("fn f() -> i32 { var x: i32 = 1;"
          " if (1) { var y: i32 = 2; x = y; } return x; }")


def test_duplicate_variable_same_scope():
    with pytest.raises(TypeCheckError, match="duplicate"):
        check("fn f() { var x: i32 = 1; var x: i32 = 2; }")


def test_for_loop_variable_reuse_across_loops():
    check("""
fn f() -> i32 {
  var total: i32 = 0;
  for (var i: i32 = 0; i < 3; i = i + 1) { total = total + i; }
  for (var i: i32 = 0; i < 3; i = i + 1) { total = total + i; }
  return total;
}
""")


def test_bitwise_requires_integers():
    with pytest.raises(TypeCheckError):
        check("fn f(x: f64) -> f64 { return x & x; }")


def test_modulo_requires_integers():
    with pytest.raises(TypeCheckError):
        check("fn f(x: f64) -> f64 { return x % x; }")


def test_global_types_enforced():
    with pytest.raises(TypeCheckError):
        check("var g: i32 = 0; fn f(x: f64) { g = x; }")
