"""walc front end: tokens and syntax."""

import pytest

from repro.errors import LexError, ParseError
from repro.walc.lexer import tokenize
from repro.walc.parser import parse
from repro.walc import ast_nodes as ast
from repro.wasm.types import ValType


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_tokenize_keywords_and_names():
    assert kinds("fn foo") == [("keyword", "fn"), ("name", "foo")]


def test_tokenize_numbers():
    tokens = tokenize("1 42 0x1F 3.5 1e3 2L 1.5f")
    texts = [(t.kind, t.text) for t in tokens[:-1]]
    assert texts == [
        ("int", "1"), ("int", "42"), ("int", "0x1F"), ("float", "3.5"),
        ("float", "1e3"), ("int", "2L"), ("float", "1.5f"),
    ]


def test_tokenize_operators_longest_match():
    assert kinds("<= << < ->") == [
        ("op", "<="), ("op", "<<"), ("op", "<"), ("op", "->")]


def test_comments_skipped():
    assert kinds("1 // comment\n 2 /* block\nstill */ 3") == [
        ("int", "1"), ("int", "2"), ("int", "3")]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_unknown_character():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_parse_function_signature():
    program = parse("fn f(a: i32, b: f64) -> i64 { return 0; }")
    function = program.functions[0]
    assert function.name == "f"
    assert [p.valtype for p in function.params] == [ValType.I32, ValType.F64]
    assert function.result == ValType.I64
    assert not function.exported


def test_parse_export_and_void():
    program = parse("export fn go() { }")
    assert program.functions[0].exported
    assert program.functions[0].result is None


def test_parse_import():
    program = parse("import fn wasi_snapshot_preview1.clock_time_get"
                    "(a: i32, b: i64, c: i32) -> i32;")
    imported = program.imports[0]
    assert imported.module == "wasi_snapshot_preview1"
    assert imported.name == "clock_time_get"
    assert imported.params == [ValType.I32, ValType.I64, ValType.I32]
    assert imported.result == ValType.I32


def test_parse_memory_and_globals():
    program = parse("memory 4 max 16;\nvar g: f64 = -2.5;\nvar h: i32 = 7;")
    assert program.memory.min_pages == 4
    assert program.memory.max_pages == 16
    assert program.globals[0].init == -2.5
    assert program.globals[1].init == 7


def test_parse_data_segment():
    program = parse("data 64 (1, 2, 0xff);")
    assert program.data[0].offset == 64
    assert program.data[0].payload == b"\x01\x02\xff"


def test_data_byte_out_of_range():
    with pytest.raises(ParseError):
        parse("data 0 (300);")


def test_parse_precedence():
    program = parse("fn f() -> i32 { return 1 + 2 * 3; }")
    expr = program.functions[0].body[0].value
    assert isinstance(expr, ast.Binary) and expr.operator == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.operator == "*"


def test_parse_cast_precedence():
    program = parse("fn f(x: i32) -> f64 { return (x as f64) / 2.0; }")
    expr = program.functions[0].body[0].value
    assert expr.operator == "/"
    assert isinstance(expr.left, ast.Cast)


def test_parse_for_desugars_to_while():
    program = parse("fn f() { for (var i: i32 = 0; i < 3; i = i + 1) { } }")
    wrapper = program.functions[0].body[0]
    assert isinstance(wrapper, ast.If)
    loop = wrapper.then_body[1]
    assert isinstance(loop, ast.While)
    assert loop.step is not None


def test_parse_else_if_chain():
    program = parse(
        "fn f(x: i32) -> i32 {"
        " if (x == 1) { return 1; } else if (x == 2) { return 2; }"
        " else { return 3; } }"
    )
    outer = program.functions[0].body[0]
    assert isinstance(outer.else_body[0], ast.If)


def test_parse_logical_operators():
    program = parse("fn f(a: i32, b: i32) -> i32 { return a && b || !a; }")
    expr = program.functions[0].body[0].value
    assert expr.operator == "||"


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse("fn f() { var x: i32 = 1 }")


def test_unbalanced_braces_rejected():
    with pytest.raises(ParseError):
        parse("fn f() { if (1) { }")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse("fn f() { } 42")
