"""TraceAnalyzer: span-only decompositions that sum exactly."""

import ast
import inspect

import repro.obs.analysis as analysis_module
from repro.hw import SimClock
from repro.obs import Tracer, TraceAnalyzer, UNATTRIBUTED


def _trace():
    clock = SimClock()
    tracer = Tracer(sim_now=clock.now_ns)
    for _ in range(2):
        with tracer.span("fleet.request", world="normal"):
            with tracer.span("hw.smc.enter", world="normal"):
                clock.advance(4000)
            with tracer.span("core.protocol.msg0", world="secure"):
                with tracer.span("wasi.clock_time_get", world="secure"):
                    clock.advance(3000)
                clock.advance(2000)  # msg0 self time, outside any child
            clock.advance(500)  # request self time
    return clock, tracer.drain()


def test_breakdown_rows_sum_exactly_to_root_totals():
    _, spans = _trace()
    analyzer = TraceAnalyzer(spans)
    rows = analyzer.breakdown("fleet.request")
    total_sim = sum(row.sim_ns for row in rows)
    roots = analyzer.named("fleet.request")
    assert total_sim == sum(root.sim_ns for root in roots)
    by_name = {row.name: row for row in rows}
    assert by_name["hw.smc.enter"].sim_ns == 8000
    assert by_name["core.protocol.msg0"].sim_ns == 4000  # self, not 10000
    assert by_name["wasi.clock_time_get"].sim_ns == 6000
    assert by_name[UNATTRIBUTED].sim_ns == 1000  # the roots' own self time
    assert by_name[UNATTRIBUTED] is rows[-1]  # sorted last


def test_total_sim_equals_clock_movement():
    clock, spans = _trace()
    # Every advance happened inside some span, so summed self time equals
    # wall-to-wall virtual clock movement — the acceptance property.
    assert TraceAnalyzer(spans).total_sim_ns() == clock.now_ns()


def test_phase_totals_order_and_counts():
    _, spans = _trace()
    rows = TraceAnalyzer(spans).phase_totals()
    assert rows[0].name == "hw.smc.enter"  # largest self sim time first
    by_name = {row.name: row for row in rows}
    assert by_name["fleet.request"].count == 2
    assert by_name["fleet.request"].sim_ns == 1000


def test_prefixed_matches_dotted_components_only():
    _, spans = _trace()
    analyzer = TraceAnalyzer(spans)
    assert {s.name for s in analyzer.prefixed("hw")} == {"hw.smc.enter"}
    assert analyzer.prefixed("fle") == []  # no partial-component match


def test_wasi_indirection_sums_wasi_self_time():
    _, spans = _trace()
    row = TraceAnalyzer(spans).wasi_indirection()
    assert row.count == 2
    assert row.sim_ns == 6000


def test_format_breakdown_reports_full_share():
    _, spans = _trace()
    text = TraceAnalyzer(spans).format_breakdown("fleet.request")
    assert "100.0%" in text
    assert UNATTRIBUTED in text


def test_orphaned_children_do_not_crash_or_double_count():
    _, spans = _trace()
    # Simulate the ring dropping the roots: children become orphans.
    orphans = [s for s in spans if s.name != "fleet.request"]
    analyzer = TraceAnalyzer(orphans)
    # Everything except the roots' own 2 x 500 ns self time survives.
    assert analyzer.total_sim_ns() == 18000


def test_analyzer_never_reads_the_cost_model():
    """Acceptance criterion: breakdowns must *emerge* from the spans; the
    analyzer must not import or reference the hw cost constants."""
    tree = ast.parse(inspect.getsource(analysis_module))
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            imported.add(node.module or "")
            imported.update(alias.name for alias in node.names)
    assert not any(name.startswith("repro.hw") for name in imported)
    assert "CostModel" not in imported
    assert "DEFAULT_COSTS" not in imported
    # And no attribute chain reaches the cost model either.
    names = {node.attr for node in ast.walk(tree)
             if isinstance(node, ast.Attribute)}
    assert "costs" not in names


def test_empty_trace_yields_empty_rows():
    analyzer = TraceAnalyzer([])
    assert analyzer.phase_totals() == []
    assert analyzer.breakdown("anything") == []
    assert analyzer.total_sim_ns() == 0
    assert analyzer.wasi_indirection().count == 0
