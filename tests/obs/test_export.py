"""Chrome trace export, the Perfetto schema gate, and flame views."""

import json

import pytest

from repro.hw import SimClock
from repro.obs import (Tracer, flame_summary, folded_stacks, to_chrome_trace,
                       validate_chrome_trace, write_chrome_trace)


def _sample_spans():
    clock = SimClock()
    tracer = Tracer(sim_now=clock.now_ns)
    with tracer.span("fleet.request", world="normal", lane=0):
        with tracer.span("hw.smc.enter", world="normal"):
            clock.advance(4000)
        with tracer.span("core.protocol.msg0", world="secure"):
            clock.advance(1000)
    return tracer.drain()


def test_chrome_trace_is_valid_on_both_clocks():
    spans = _sample_spans()
    for clock in ("wall", "sim"):
        trace = to_chrome_trace(spans, clock=clock)
        validate_chrome_trace(trace)  # must not raise
        assert trace["otherData"]["clock"] == clock


def test_chrome_trace_events_are_complete_events():
    spans = _sample_spans()
    trace = to_chrome_trace(spans, clock="sim", process_name="unit")
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] == "X"]
    assert any(e["name"] == "process_name"
               and e["args"]["name"] == "unit" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    assert {e["name"] for e in timed} == {
        "fleet.request", "hw.smc.enter", "core.protocol.msg0"}
    by_name = {e["name"]: e for e in timed}
    # Sim timestamps are µs from the trace origin.
    assert by_name["hw.smc.enter"]["dur"] == pytest.approx(4.0)
    assert by_name["core.protocol.msg0"]["ts"] == pytest.approx(4.0)
    assert by_name["fleet.request"]["dur"] == pytest.approx(5.0)
    # The other clock rides along in args; category is the name prefix.
    assert by_name["hw.smc.enter"]["args"]["wall_us"] >= 0.0
    assert by_name["hw.smc.enter"]["cat"] == "hw"
    assert by_name["fleet.request"]["args"]["lane"] == 0


def test_wall_trace_preserves_sim_in_args():
    spans = _sample_spans()
    trace = to_chrome_trace(spans, clock="wall")
    by_name = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert by_name["hw.smc.enter"]["args"]["sim_ns"] == 4000


def test_unknown_clock_rejected():
    with pytest.raises(ValueError):
        to_chrome_trace([], clock="cpu")


@pytest.mark.parametrize("trace, message", [
    ([], "JSON object"),
    ({"traceEvents": {}}, "must be a list"),
    ({"traceEvents": ["nope"]}, "not an object"),
    ({"traceEvents": [{"ph": "X", "ts": 0, "dur": 0}]}, "name"),
    ({"traceEvents": [{"name": "x", "ph": "Z", "ts": 0}]}, "phase"),
    ({"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "dur": 0}]}, "ts"),
    ({"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}, "dur"),
    ({"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                       "dur": float("nan")}]}, "dur"),
    ({"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 0,
                       "pid": "one"}]}, "pid"),
])
def test_validator_rejects_malformed_traces(trace, message):
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(trace)


def test_validator_accepts_metadata_without_timestamps():
    validate_chrome_trace({"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "p"}},
    ]})


def test_write_chrome_trace_roundtrips_through_json(tmp_path):
    spans = _sample_spans()
    path = write_chrome_trace(str(tmp_path / "t.json"), spans, clock="sim")
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    validate_chrome_trace(loaded)
    assert len([e for e in loaded["traceEvents"] if e["ph"] == "X"]) == 3


def test_folded_stacks_use_self_time():
    spans = _sample_spans()
    lines = dict(line.rsplit(" ", 1) for line in folded_stacks(spans,
                                                               clock="sim"))
    assert lines["fleet.request;hw.smc.enter"] == "4000"
    assert lines["fleet.request;core.protocol.msg0"] == "1000"
    # The root's self time excludes both children entirely.
    assert lines["fleet.request"] == "0"


def test_flame_summary_lists_every_span_name():
    text = flame_summary(_sample_spans())
    for name in ("fleet.request", "hw.smc.enter", "core.protocol.msg0"):
        assert name in text
    assert "sim self us" in text
