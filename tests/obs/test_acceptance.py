"""End-to-end acceptance: traced gateway handshakes add up exactly.

ISSUE 2's acceptance criterion: running a gateway-driven handshake with
tracing on yields a trace in which the per-phase virtual-ns spans sum to
the end-to-end measured total. Because every ``clock.advance`` on the
gateway board lands inside some leaf span while traced, the analyzer's
summed self time must equal the board clock's wall-to-wall movement —
no constant from the cost model is consulted anywhere on that path.
"""

import pytest

from repro.core.verifier import VerifierPolicy
from repro.fleet import (FleetConfig, LoadProfile, build_attester_stacks,
                         run_load, start_fleet_gateway)
from repro.hw import DEFAULT_COSTS
from repro.obs import TraceAnalyzer, Tracer, to_chrome_trace, \
    validate_chrome_trace

HOST, PORT = "obs.acceptance", 7960


@pytest.fixture
def traced_gateway_run(testbed, verifier_identity):
    policy = VerifierPolicy()
    gateway_device = testbed.create_device()
    clock = gateway_device.soc.clock
    tracer = Tracer(sim_now=clock.now_ns)
    gateway_device.soc.attach_tracer(tracer)
    sim_before = clock.now_ns()
    gateway = start_fleet_gateway(
        testbed.network, HOST, PORT, gateway_device.client,
        testbed.vendor_key, verifier_identity, policy, lambda: b"\x5e" * 32,
        FleetConfig(workers=1), recorder=tracer.recorder(), tracer=tracer)
    try:
        stacks = build_attester_stacks(testbed, policy, 1)
        report = run_load(testbed.network, HOST, PORT,
                          verifier_identity.public_bytes(), stacks,
                          LoadProfile(concurrency=1,
                                      handshakes_per_attester=2))
    finally:
        gateway.stop()
    assert len(report.completed) == 2, [r.error for r in report.results]
    sim_after = clock.now_ns()
    return tracer.drain(), sim_after - sim_before


def test_span_self_times_sum_to_end_to_end_total(traced_gateway_run):
    spans, clock_delta = traced_gateway_run
    analyzer = TraceAnalyzer(spans)
    assert clock_delta > 0
    assert analyzer.total_sim_ns() == clock_delta


def test_breakdown_recovers_the_transition_decomposition(traced_gateway_run):
    spans, _ = traced_gateway_run
    analyzer = TraceAnalyzer(spans)
    rows = {row.name: row for row in analyzer.breakdown("fleet.request")}
    # Two handshakes x two messages, each paying one full world
    # round-trip: the Fig. 3b decomposition emerges from the spans.
    assert rows["hw.optee_driver"].sim_ns == \
        4 * DEFAULT_COSTS.optee_driver_ns
    assert rows["hw.session_dispatch"].sim_ns == \
        4 * DEFAULT_COSTS.session_dispatch_ns
    assert rows["hw.smc.enter"].sim_ns + rows["hw.smc.exit"].sim_ns == \
        8 * DEFAULT_COSTS.smc_ns
    assert rows["hw.return_path"].sim_ns == 4 * DEFAULT_COSTS.return_path_ns
    # Protocol phases appear under the request spans on the secure side.
    assert "core.protocol.msg0" in rows
    assert "core.protocol.msg2" in rows


def test_crypto_phases_show_up_via_the_tracing_recorder(traced_gateway_run):
    spans, _ = traced_gateway_run
    names = {span.name for span in spans}
    assert any(name.startswith("crypto.") for name in names)


def test_gateway_trace_exports_and_validates(traced_gateway_run):
    spans, _ = traced_gateway_run
    for clock in ("wall", "sim"):
        validate_chrome_trace(to_chrome_trace(spans, clock=clock))


def test_fleet_request_spans_carry_lane_and_kind(traced_gateway_run):
    spans, _ = traced_gateway_run
    requests = [span for span in spans if span.name == "fleet.request"]
    assert len(requests) == 4  # 2 handshakes x (msg0 + msg2)
    assert all(span.lane == 0 for span in requests)
    assert {span.attrs.get("kind") for span in requests} == {"msg0", "msg2"}
