"""The dual-clock tracer: nesting, ring buffer, thread safety."""

import threading

import pytest

from repro.hw import SimClock
from repro.obs import Span, Tracer, TracingRecorder


def _tracer(capacity=65536):
    clock = SimClock()
    wall = [0.0]

    def wall_now():
        wall[0] += 0.25
        return wall[0]

    return clock, Tracer(sim_now=clock.now_ns, capacity=capacity,
                         wall_now=wall_now)


def test_span_records_both_clocks_separately():
    clock, tracer = _tracer()
    with tracer.span("work") as span:
        clock.advance(5000)
    assert span.sim_ns == 5000
    # The fake wall clock ticks 0.25 s per read: one read at open, one at
    # close, independent of the virtual clock.
    assert span.wall_s == pytest.approx(0.25)


def test_spans_nest_per_thread():
    clock, tracer = _tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            clock.advance(10)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    # Inner completes first: the ring holds spans in completion order.
    assert [s.name for s in tracer.spans()] == ["inner", "outer"]


def test_world_lane_and_attrs_recorded():
    _, tracer = _tracer()
    with tracer.span("req", world="secure", lane=3, conn=7) as span:
        pass
    assert span.world == "secure"
    assert span.lane == 3
    assert span.attrs == {"conn": 7}


def test_ring_buffer_is_bounded():
    _, tracer = _tracer(capacity=4)
    for index in range(10):
        tracer.instant(f"s{index}")
    assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]
    assert tracer.emitted == 10
    assert tracer.dropped == 6


def test_drain_clears_the_ring():
    _, tracer = _tracer()
    tracer.instant("one")
    assert [s.name for s in tracer.drain()] == ["one"]
    assert tracer.spans() == []


def test_instant_has_zero_sim_duration():
    clock, tracer = _tracer()
    clock.advance(100)
    span = tracer.instant("marker")
    assert span.sim_ns == 0
    assert span.start_sim_ns == 100


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_concurrent_emit_is_safe_and_ids_unique():
    _, tracer = _tracer()
    per_thread = 200

    def worker():
        for _ in range(per_thread):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    spans = tracer.spans()
    assert tracer.emitted == 8 * per_thread * 2
    assert len({s.span_id for s in spans}) == len(spans)
    # Parenting never crosses threads: every inner's parent is an outer
    # recorded by the same thread.
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.name == "inner" and span.parent_id in by_id:
            parent = by_id[span.parent_id]
            assert parent.name == "outer"
            assert parent.thread_id == span.thread_id


def test_exception_still_closes_the_span():
    clock, tracer = _tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            clock.advance(7)
            raise RuntimeError("x")
    (span,) = tracer.spans()
    assert span.sim_ns == 7


def test_tracing_recorder_mirrors_phases_as_spans():
    _, tracer = _tracer()
    recorder = tracer.recorder()
    assert isinstance(recorder, TracingRecorder)
    with recorder.phase("msg2", "ecdsa-verify"):
        pass
    (span,) = tracer.spans()
    assert span.name == "crypto.ecdsa-verify"
    assert span.attrs["message"] == "msg2"
    # The CostRecorder contract (Table III accumulation) still holds.
    assert recorder.get("msg2", "ecdsa-verify") >= 0.0
    assert ("msg2", "ecdsa-verify") in recorder.seconds


def test_span_dataclass_duration_properties():
    span = Span(span_id=1, parent_id=None, name="x", world="", lane=None,
                start_wall_s=1.0, end_wall_s=1.5,
                start_sim_ns=100, end_sim_ns=350,
                thread_id=1, thread_name="t")
    assert span.wall_s == 0.5
    assert span.sim_ns == 250
