"""Host-call record/replay: deterministic standalone Wasm benchmarks."""

import pytest

from repro.core.runtime import CMD_HOSTCALLS
from repro.errors import TeeBadParameters
from repro.obs import (HostCallLog, ReplayMismatch, record_host_calls,
                       replay_imports, replay_run)
from repro.walc import compile_source
from repro.wasi import WasiEnvironment, build_wasi_imports
from repro.wasm import AotCompiler, Interpreter

_APP = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
import fn wasi_snapshot_preview1.random_get(a: i32, b: i32) -> i32;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
data 100 (104, 105);  // "hi"

export fn run() -> i64 {
  clock_time_get(1, 1L, 64);       // host writes the time at 64
  random_get(80, 4);               // host writes 4 random bytes at 80
  store_i32(0, 100);               // iov: base=100 len=2
  store_i32(4, 2);
  fd_write(1, 0, 1, 16);
  return load_i64(64) + load_i64(80);
}
"""


def _nondeterministic_env():
    ticks = [1000]

    def clock_ns():
        ticks[0] += 777
        return ticks[0]

    draws = [b"\x2a\x00\x00\x01", b"\x09\x08\x07\x06"]
    return WasiEnvironment(clock_ns=clock_ns,
                           random_bytes=lambda n: draws.pop(0)[:n])


def _record(binary):
    env = _nondeterministic_env()
    imports, log = record_host_calls(build_wasi_imports(env))
    instance = AotCompiler().instantiate(binary, imports)
    result = instance.invoke("run")
    return env, log, result


def test_recording_does_not_change_behaviour():
    binary = compile_source(_APP)
    env, log, result = _record(binary)
    assert env.stdout_text() == "hi"
    # clock, random and fd_write each crossed the boundary once.
    assert [call.name for call in log.calls] == [
        "clock_time_get", "random_get", "fd_write"]
    # The host's memory writes were captured (time at 64, random at 80,
    # plus fd_write's nwritten).
    assert any(address == 64 for address, _ in log.calls[0].writes)
    assert any(address == 80 for address, _ in log.calls[1].writes)


def test_replay_reproduces_the_run_without_a_host():
    binary = compile_source(_APP)
    _, log, original = _record(binary)
    # Replay twice: the log makes the run fully deterministic.
    assert replay_run(binary, log, "run") == original
    assert replay_run(binary, log, "run") == original


def test_replay_survives_json_roundtrip():
    binary = compile_source(_APP)
    _, log, original = _record(binary)
    revived = HostCallLog.from_json(log.to_json())
    assert len(revived) == len(log)
    assert replay_run(binary, revived, "run") == original


def test_replay_detects_argument_divergence():
    binary = compile_source(_APP)
    _, log, _ = _record(binary)
    log.calls[0].args = (99, 1, 64)  # pretend a different clock id ran
    with pytest.raises(ReplayMismatch, match="recorded args"):
        replay_run(binary, log, "run")


def test_replay_detects_call_order_divergence():
    binary = compile_source(_APP)
    _, log, _ = _record(binary)
    log.calls[0], log.calls[1] = log.calls[1], log.calls[0]
    with pytest.raises(ReplayMismatch, match="replay invoked"):
        replay_run(binary, log, "run")


def test_replay_exhausted_log_is_a_mismatch():
    binary = compile_source(_APP)
    _, log, _ = _record(binary)
    log.calls = log.calls[:1]
    with pytest.raises(ReplayMismatch, match="exhausted"):
        replay_run(binary, log, "run")


def test_recorded_proc_exit_replays_as_exit_code():
    source = """
memory 1;
import fn wasi_snapshot_preview1.proc_exit(a: i32);
export fn run() -> i32 { proc_exit(7); return 0; }
"""
    binary = compile_source(source)
    env = WasiEnvironment()
    imports, log = record_host_calls(build_wasi_imports(env))
    instance = Interpreter().instantiate(binary, imports)
    from repro.wasi import ProcExit

    with pytest.raises(ProcExit):
        instance.invoke("run")
    assert log.calls[-1].raised == ("ProcExit", 7)
    assert replay_run(binary, log, "run") == 7


def test_runtime_ta_records_and_exports_hostcalls(device):
    """CMD_HOSTCALLS: the WaTZ TA hands out a replayable log."""
    binary = compile_source(_APP)
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary, record_hostcalls=True)
    in_tee = device.run_wasm(session, loaded["app"], "run")
    exported = session.invoke(CMD_HOSTCALLS, {"app": loaded["app"]})["log"]
    log = HostCallLog.from_json(exported)
    # Standalone replay — no device, no TEE — reproduces the TEE run.
    assert replay_run(binary, log, "run") == in_tee


def test_runtime_ta_rejects_hostcalls_without_recording(device):
    binary = compile_source(_APP)
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary)
    with pytest.raises(TeeBadParameters):
        session.invoke(CMD_HOSTCALLS, {"app": loaded["app"]})


def test_replay_namespace_satisfies_the_declared_surface():
    binary = compile_source(_APP)
    _, log, _ = _record(binary)
    namespace = replay_imports(log)
    declared = log.declared["wasi_snapshot_preview1"]
    assert set(namespace["wasi_snapshot_preview1"]) == set(declared)
