"""The hash-chained audit log: append-only, tamper-evident, bounded."""

import dataclasses
import threading

from repro.appraisal.audit import AuditLog, verify_chain
from repro.appraisal.envelope import TEE_SGX, TEE_TRUSTZONE
from repro.appraisal.policy import Reason

FP = b"\xAB" * 32


def _filled(count, capacity=4096):
    log = AuditLog(capacity=capacity)
    for i in range(count):
        log.record(TEE_SGX if i % 2 else TEE_TRUSTZONE, i % 3 != 0,
                   Reason.OK if i % 3 != 0 else Reason.MEASUREMENT_UNKNOWN,
                   FP, detail=f"event {i}")
    return log


def test_entries_chain_from_genesis():
    log = _filled(8)
    entries = log.entries()
    assert [e.sequence for e in entries] == list(range(8))
    assert verify_chain(entries)
    assert log.head == entries[-1].digest
    assert len(log) == 8


def test_chain_starts_anywhere_given_the_predecessor():
    log = _filled(8)
    entries = log.entries()
    assert verify_chain(entries[3:], previous=entries[2].digest)
    # Wrong predecessor: the run no longer verifies.
    assert not verify_chain(entries[3:], previous=entries[1].digest)


def test_tampering_any_field_breaks_the_chain():
    log = _filled(5)
    entries = log.entries()
    # Entry 3 is a denial (i % 3 == 0): every change below really
    # differs from the recorded value.
    for index, changes in [
        (3, {"accepted": True}),
        (3, {"reason": Reason.OK}),
        (3, {"detail": "scrubbed"}),
        (3, {"policy_fingerprint": b"\xCD" * 32}),
        (4, {"sequence": 9}),
    ]:
        tampered = list(entries)
        tampered[index] = dataclasses.replace(tampered[index], **changes)
        assert not verify_chain(tampered)


def test_dropping_a_middle_entry_breaks_the_chain():
    entries = _filled(6).entries()
    assert not verify_chain(entries[:2] + entries[3:])


def test_reordering_breaks_the_chain():
    entries = _filled(4).entries()
    swapped = [entries[0], entries[2], entries[1], entries[3]]
    assert not verify_chain(swapped)


def test_bounded_ring_keeps_the_global_head():
    log = _filled(10, capacity=4)
    window = log.entries()
    assert len(window) == 4
    assert [e.sequence for e in window] == [6, 7, 8, 9]
    assert len(log) == 10  # total history, not the window
    # The retained window still verifies against its predecessor — which
    # fell off the ring, so only the head pins the full history.
    assert verify_chain(window, previous=window[0].digest) is False
    assert log.head == window[-1].digest


def test_denials_and_counts():
    log = _filled(9)
    assert all(not e.accepted for e in log.denials())
    counts = log.counts_by_reason()
    assert counts[Reason.MEASUREMENT_UNKNOWN] == len(log.denials()) == 3
    assert counts[Reason.OK] == 6
    assert log.tail(2) == log.entries()[-2:]


def test_export_is_plain_dicts():
    log = _filled(2)
    export = log.export()
    assert export[0]["tee"] == "trustzone"
    assert export[1]["tee"] == "sgx"
    assert export[0]["policy_fingerprint"] == FP.hex()
    assert all(isinstance(row["digest"], str) for row in export)


def test_concurrent_appends_keep_one_consistent_chain():
    log = AuditLog()
    barrier = threading.Barrier(4)

    def append():
        barrier.wait()
        for _ in range(50):
            log.record(TEE_SGX, True, Reason.OK, FP)

    threads = [threading.Thread(target=append) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    entries = log.entries()
    assert len(entries) == 200
    assert [e.sequence for e in entries] == list(range(200))
    assert verify_chain(entries)
