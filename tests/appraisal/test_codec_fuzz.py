"""Property tests over the three evidence codecs.

Two properties per backend: (1) encode/decode is the identity over the
generated evidence space, end to end through the envelope; (2) *no*
malformed input — truncation, extension, or a byte flip anywhere in the
wire image — ever escapes as anything but a typed repro error
(``EnvelopeError``/``EvidenceError`` from parsing, ``SignatureError``
when the flip lands in the signed region and only the crypto check can
see it). A bare ``struct.error`` or ``IndexError`` reaching the protocol
layer would be a crash an attacker controls.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.appraisal.codecs import sgx, tdx
from repro.appraisal.codecs.trustzone import TrustZoneView
from repro.appraisal.envelope import (
    TEE_SGX,
    TEE_TDX,
    TEE_TRUSTZONE,
    default_registry,
    encode_envelope,
)
from repro.core.evidence import Evidence, SignedEvidence
from repro.crypto import ecdsa
from repro.errors import CryptoError, EvidenceError

KEY = ecdsa.keypair_from_private(0xF00D)
PUBKEY = KEY.public_bytes()

digest32 = st.binary(min_size=32, max_size=32)
digest48 = st.binary(min_size=48, max_size=48)
signature = st.binary(min_size=64, max_size=64)


@st.composite
def sgx_evidence(draw):
    return sgx.SgxEvidence(
        anchor=draw(digest32),
        mrenclave=draw(digest32),
        mrsigner=draw(digest32),
        isv_svn=draw(st.integers(min_value=0, max_value=0xFFFF)),
        debug=draw(st.booleans()),
        attestation_public_key=PUBKEY,
        signature=draw(signature),
    )


@st.composite
def tdx_evidence(draw):
    return tdx.TdxEvidence(
        anchor=draw(digest32),
        mrtd=draw(digest48),
        rtmrs=tuple(draw(digest48) for _ in range(tdx.RTMR_COUNT)),
        attestation_public_key=PUBKEY,
        signature=draw(signature),
    )


@st.composite
def trustzone_evidence(draw):
    evidence = Evidence(
        anchor=draw(digest32),
        claim=draw(digest32),
        attestation_public_key=PUBKEY,
        boot_claim=draw(digest32),
    )
    return TrustZoneView(SignedEvidence(evidence=evidence,
                                        signature=draw(signature)))


VIEWS = {
    TEE_SGX: sgx_evidence(),
    TEE_TDX: tdx_evidence(),
    TEE_TRUSTZONE: trustzone_evidence(),
}


@pytest.mark.parametrize("tee_type", sorted(VIEWS))
def test_round_trip_through_the_registry(tee_type):
    registry = default_registry()

    @settings(max_examples=50, deadline=None)
    @given(VIEWS[tee_type])
    def check(view):
        wire = view.envelope()
        decoded = registry.decode(wire)
        assert decoded == view
        assert registry.encode(decoded) == wire
        assert decoded.tee_type == tee_type
        # The uniform appraisal surface is intact after the round trip.
        assert decoded.claim == view.claim
        assert decoded.identity == view.identity
        assert decoded.cache_extra == view.cache_extra

    check()


@pytest.mark.parametrize("tee_type", sorted(VIEWS))
def test_truncation_and_extension_never_crash(tee_type):
    registry = default_registry()

    @settings(max_examples=25, deadline=None)
    @given(VIEWS[tee_type], st.data())
    def check(view, data):
        wire = view.envelope()
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        with pytest.raises(EvidenceError):
            registry.decode(wire[:cut])
        pad = data.draw(st.binary(min_size=1, max_size=16))
        with pytest.raises(EvidenceError):
            registry.decode(wire + pad)

    check()


@pytest.mark.parametrize("tee_type", sorted(VIEWS))
def test_byte_flips_fail_typed_or_change_content(tee_type):
    registry = default_registry()

    @settings(max_examples=50, deadline=None)
    @given(VIEWS[tee_type], st.data())
    def check(view, data):
        wire = bytearray(view.envelope())
        index = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=0xFF))
        wire[index] ^= flip
        try:
            decoded = registry.decode(bytes(wire))
        except EvidenceError:
            return  # typed rejection at the parsing layer
        # The flip landed in a content field the parser cannot judge:
        # it must have changed the decoded view (no silently-ignored
        # bytes anywhere in the format), and the signature check is the
        # layer that catches it.
        assert decoded != view
        with pytest.raises((CryptoError, EvidenceError)):
            decoded.verify_signature()

    check()


def test_garbage_never_crashes_the_registry():
    registry = default_registry()

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=600))
    def check(blob):
        try:
            registry.decode(blob)
        except EvidenceError:
            pass

    check()


def test_envelope_with_wrong_body_codec_is_rejected():
    # A valid SGX body under the TDX tag: self-description is binding.
    registry = default_registry()
    view = sgx.build(anchor=b"\x01" * 32, mrenclave=b"\x02" * 32,
                     mrsigner=b"\x03" * 32, isv_svn=1, debug=False,
                     attestation_public_key=PUBKEY,
                     sign=lambda body: ecdsa.sign(KEY.private, body))
    with pytest.raises(EvidenceError):
        registry.decode(encode_envelope(TEE_TDX, view.encode()))
