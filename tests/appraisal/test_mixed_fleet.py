"""One fleet, one policy, heterogeneous attesters (the PR's acceptance run).

A single sharded gateway — armed with one appraisal engine — serves
TrustZone boards and SGX/TDX-shaped devices attesting the same Wasm
module in the same run. The revocation killswitch then denies subsequent
handshakes *and* outstanding ticket resumptions fleet-wide, with the
denial's stable reason code in the merged audit counts.
"""

from repro.appraisal import AppraisalEngine, AppraisalPolicy
from repro.appraisal.envelope import TEE_SGX, TEE_TDX, TEE_TRUSTZONE
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.fleet import (
    FleetConfig,
    LoadProfile,
    build_mixed_stacks,
    run_load,
    run_one_handshake_multi,
    start_fleet_gateway,
)
from repro.testbed import Testbed

HOST = "fleet.verifier"
SECRET = b"mixed fleet secret blob " * 4
IDENTITY = ecdsa.keypair_from_private(0xB00B1E5 + 606)


def _start(testbed, engine, port, **overrides):
    defaults = dict(shards=2, heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=1.0)
    defaults.update(overrides)
    return start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key,
        IDENTITY, VerifierPolicy(), lambda: SECRET,
        FleetConfig(**defaults), engine=engine,
    )


def test_mixed_population_attests_under_one_policy():
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = _start(testbed, engine, 7930)
    try:
        stacks = build_mixed_stacks(
            testbed, appraisal,
            [TEE_TRUSTZONE, TEE_SGX, TEE_TDX, TEE_SGX])
        report = run_load(testbed.network, HOST, 7930,
                          IDENTITY.public_bytes(), stacks,
                          LoadProfile(concurrency=4,
                                      handshakes_per_attester=2))
        assert len(report.completed) == 8, \
            [(r.attester, r.error) for r in report.results]
        assert all(r.secret_len == len(SECRET) for r in report.completed)
        snapshot = gateway.snapshot()
        assert snapshot["audit"] == {"ok": 8}
        assert snapshot["counters"]["handshakes_completed"] == 8
        # All three backends really crossed the wire as envelopes.
        kinds = {record.kind for record in gateway.drain_records()}
        assert kinds == {"msg0", "msg2"}
    finally:
        gateway.stop()


def test_untrusted_mixed_stacks_are_denied_with_reasons():
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = _start(testbed, engine, 7931, shards=1)
    try:
        trusted = build_mixed_stacks(testbed, appraisal, [TEE_SGX])
        rogue = build_mixed_stacks(testbed, appraisal, [TEE_TDX],
                                   trusted=False)[0]
        rogue.index = 1
        ok = run_one_handshake_multi(testbed.network, HOST, 7931,
                                     IDENTITY.public_bytes(), trusted[0])
        assert ok.ok, ok.error
        denied = run_one_handshake_multi(testbed.network, HOST, 7931,
                                         IDENTITY.public_bytes(), rogue)
        assert not denied.ok and denied.error == "PolicyDenied"
        audit = gateway.snapshot()["audit"]
        # The TDX slot was never accepted at all for the rogue claim.
        assert audit["ok"] == 1
        assert audit["tee-not-accepted"] == 1
    finally:
        gateway.stop()


def test_killswitch_denies_handshakes_and_ticket_resumptions():
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    # One shard: affinity makes the ticket's cache hit deterministic.
    gateway = _start(testbed, engine, 7932, shards=1)
    try:
        sgx, tz = build_mixed_stacks(testbed, appraisal,
                                     [TEE_SGX, TEE_TRUSTZONE])
        for attempt in range(2):
            result = run_one_handshake_multi(
                testbed.network, HOST, 7932, IDENTITY.public_bytes(),
                sgx, attempt)
            assert result.ok, result.error
        assert gateway.snapshot()["cache"]["hits"] == 1

        gateway.revoke_measurement(sgx.claim)

        # The outstanding ticket does not resume...
        resumed = run_one_handshake_multi(testbed.network, HOST, 7932,
                                          IDENTITY.public_bytes(), sgx, 2)
        assert not resumed.ok and resumed.error == "PolicyDenied"
        # ...and a fresh handshake from the *other* backend presenting
        # the same (revoked) logical measurement is denied too.
        fresh = run_one_handshake_multi(testbed.network, HOST, 7932,
                                        IDENTITY.public_bytes(), tz, 0)
        assert not fresh.ok and fresh.error == "PolicyDenied"

        snapshot = gateway.snapshot()
        assert snapshot["audit"]["ok"] == 2
        assert snapshot["audit"]["measurement-revoked"] == 2
        assert snapshot["counters"]["revocations"] == 1
        # The killswitch reached the shard replica through the lazy
        # fingerprint-gated sync: exactly one extra policy ship.
        assert snapshot["counters"]["shard_policy_syncs"] == 2
        # No further hits: the epoch bump stranded the ticket.
        assert snapshot["cache"]["hits"] == 1
    finally:
        gateway.stop()


def test_threaded_gateway_serves_the_same_mixed_population():
    # The in-process (non-sharded) gateway flavour: same engine contract,
    # same snapshot/audit/killswitch surface.
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    device = testbed.create_device()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7933, device.client, testbed.vendor_key,
        IDENTITY, VerifierPolicy(), lambda: SECRET,
        FleetConfig(workers=2), engine=engine,
    )
    try:
        stacks = build_mixed_stacks(testbed, appraisal,
                                    [TEE_SGX, TEE_TDX])
        report = run_load(testbed.network, HOST, 7933,
                          IDENTITY.public_bytes(), stacks,
                          LoadProfile(concurrency=2,
                                      handshakes_per_attester=1))
        assert len(report.completed) == 2, \
            [(r.attester, r.error) for r in report.results]
        assert gateway.snapshot()["audit"] == {"ok": 2}
        gateway.revoke_measurement(stacks[0].claim)
        denied = run_one_handshake_multi(testbed.network, HOST, 7933,
                                         IDENTITY.public_bytes(),
                                         stacks[0], 1)
        assert not denied.ok and denied.error == "PolicyDenied"
        assert gateway.snapshot()["audit"]["measurement-revoked"] == 1
    finally:
        gateway.stop()
