"""The multi-TEE handshake end to end, one backend at a time.

Each backend runs the full msg0/1/2/3 exchange against a real verifier
armed with an appraisal engine; negotiation failures (undeclared or
switched backends, engine-less verifiers, unbound anchors) are exercised
from both sides of the wire.
"""

import os

import pytest

from repro.appraisal import AppraisalEngine, AppraisalPolicy, synthetic
from repro.appraisal.codecs.trustzone import TrustZoneView
from repro.appraisal.envelope import (
    TEE_SGX,
    TEE_TDX,
    TEE_TRUSTZONE,
    encode_envelope,
)
from repro.appraisal.policy import Reason
from repro.core.attester import Attester
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import (
    EnvelopeError,
    PolicyDenied,
    ProtocolError,
    SignatureError,
)

IDENTITY = ecdsa.keypair_from_private(424242)
DEVICE = ecdsa.keypair_from_private(434343)
CLAIM = measure_bytes(b"multi-tee app").digest
SECRET = b"the provisioned secret blob!"
BOOT = b"\x0B" * 32


class TrustZoneDevice:
    """A native WaTZ board presenting its evidence through the envelope."""

    tee_type = TEE_TRUSTZONE

    def __init__(self, attester):
        self._attester = attester

    @property
    def attestation_public_key(self):
        return DEVICE.public_bytes()

    def collect_evidence(self, anchor):
        signed = self._attester.collect_evidence(
            anchor, CLAIM, DEVICE.public_bytes(),
            lambda body: ecdsa.sign(DEVICE.private, body),
            boot_claim=BOOT)
        return TrustZoneView(signed)


def _provisioned_policy(device):
    policy = AppraisalPolicy()
    tee = policy.accept_tee(device.tee_type)
    tee.endorse(device.attestation_public_key)
    if device.tee_type == TEE_TRUSTZONE:
        tee.trust_measurement(CLAIM)
        tee.trust_boot_measurement(BOOT)
    elif device.tee_type == TEE_SGX:
        tee.trust_measurement(device.mrenclave)
        tee.trust_signer(device.mrsigner)
    else:
        tee.trust_measurement(device.mrtd)
    return policy


def _device(tee_type, attester):
    if tee_type == TEE_TRUSTZONE:
        return TrustZoneDevice(attester)
    if tee_type == TEE_SGX:
        return synthetic.sgx_enclave(0, CLAIM)
    return synthetic.tdx_domain(0, CLAIM)


def _handshake(attester, verifier, device):
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, device.tee_type))
    attester.handle_msg1(session, msg1)
    view = device.collect_evidence(session.anchor)
    msg3 = verifier.handle_msg2_multi(
        vsession, attester.make_msg2_multi(session, view), SECRET)
    return attester.handle_msg3(session, msg3)


@pytest.mark.parametrize("tee_type", [TEE_TRUSTZONE, TEE_SGX, TEE_TDX],
                         ids=["trustzone", "sgx", "tdx"])
def test_full_handshake_provisions_the_secret(tee_type):
    attester = Attester(os.urandom)
    device = _device(tee_type, attester)
    engine = AppraisalEngine(_provisioned_policy(device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    assert _handshake(attester, verifier, device) == SECRET
    entries = engine.audit.entries()
    assert len(entries) == 1
    assert entries[0].accepted and entries[0].reason == Reason.OK
    assert entries[0].tee_type == tee_type


def test_unknown_backend_is_refused_at_msg0():
    engine = AppraisalEngine(AppraisalPolicy())
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    attester = Attester(os.urandom)
    session = attester.start_session(IDENTITY.public_bytes())
    msg0 = attester.make_msg0_multi(session, 0x7F)
    with pytest.raises(EnvelopeError, match="no codec registered"):
        verifier.handle_msg0_multi(msg0)
    (entry,) = engine.audit.entries()
    assert entry.reason == Reason.TEE_NOT_ACCEPTED and not entry.accepted


def test_multi_handshake_needs_an_engine():
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom)
    attester = Attester(os.urandom)
    session = attester.start_session(IDENTITY.public_bytes())
    with pytest.raises(ProtocolError, match="appraisal engine"):
        verifier.handle_msg0_multi(attester.make_msg0_multi(session,
                                                            TEE_SGX))


def test_msg1_echo_must_match_the_declared_backend():
    attester = Attester(os.urandom)
    device = _device(TEE_SGX, attester)
    engine = AppraisalEngine(_provisioned_policy(device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    _, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, TEE_SGX))
    session.tee_type = TEE_TDX  # a confused (or tampered-with) client
    with pytest.raises(ProtocolError, match="did not declare"):
        attester.handle_msg1(session, msg1)


def test_attester_refuses_to_send_a_switched_backend():
    attester = Attester(os.urandom)
    sgx_device = _device(TEE_SGX, attester)
    engine = AppraisalEngine(_provisioned_policy(sgx_device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    _, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, TEE_SGX))
    attester.handle_msg1(session, msg1)
    tdx_view = _device(TEE_TDX, attester).collect_evidence(session.anchor)
    with pytest.raises(ProtocolError, match="backend differs"):
        attester.make_msg2_multi(session, tdx_view)


def test_verifier_rejects_a_switched_backend():
    # A malicious client that skips the attester-side guard: negotiate
    # SGX, then deliver a (valid, trusted) TDX envelope.
    attester = Attester(os.urandom)
    sgx_device = _device(TEE_SGX, attester)
    tdx_device = _device(TEE_TDX, attester)
    policy = _provisioned_policy(sgx_device)
    tdx = policy.accept_tee(TEE_TDX)
    tdx.trust_measurement(tdx_device.mrtd)
    tdx.endorse(tdx_device.attestation_public_key)
    engine = AppraisalEngine(policy)
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, TEE_SGX))
    attester.handle_msg1(session, msg1)
    tdx_view = tdx_device.collect_evidence(session.anchor)
    session.tee_type = TEE_TDX  # defeat the client-side guard
    msg2 = attester.make_msg2_multi(session, tdx_view)
    with pytest.raises(ProtocolError, match="differs from the negotiated"):
        verifier.handle_msg2_multi(vsession, msg2, SECRET)
    assert engine.audit.entries()[-1].reason == Reason.TEE_NOT_ACCEPTED


def test_msg2_multi_without_negotiation_is_refused():
    # Legacy msg0 (no tee_type) followed by a multi msg2.
    attester = Attester(os.urandom)
    device = _device(TEE_SGX, attester)
    engine = AppraisalEngine(_provisioned_policy(device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    view = device.collect_evidence(session.anchor)
    session.tee_type = TEE_SGX  # client pretends it negotiated
    msg2 = attester.make_msg2_multi(session, view)
    with pytest.raises(ProtocolError, match="did not negotiate"):
        verifier.handle_msg2_multi(vsession, msg2, SECRET)


def test_evidence_must_be_anchored_to_the_session():
    attester = Attester(os.urandom)
    device = _device(TEE_SGX, attester)
    engine = AppraisalEngine(_provisioned_policy(device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, TEE_SGX))
    attester.handle_msg1(session, msg1)
    stale = device.collect_evidence(b"\x5A" * 32)  # some other session
    with pytest.raises(ProtocolError, match="anchor"):
        attester.make_msg2_multi(session, stale)


def test_forged_signature_is_rejected_and_audited():
    attester = Attester(os.urandom)
    device = _device(TEE_SGX, attester)
    engine = AppraisalEngine(_provisioned_policy(device))
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, TEE_SGX))
    attester.handle_msg1(session, msg1)
    view = device.collect_evidence(session.anchor)
    forged = bytearray(view.signature)
    forged[0] ^= 0x01
    import dataclasses

    bad = dataclasses.replace(view, signature=bytes(forged))
    msg2 = attester.make_msg2_multi(session, bad)
    with pytest.raises(SignatureError):
        verifier.handle_msg2_multi(vsession, msg2, SECRET)
    assert engine.audit.entries()[-1].reason == Reason.SIGNATURE_INVALID


def test_policy_denial_carries_the_reason_code():
    attester = Attester(os.urandom)
    device = _device(TEE_SGX, attester)
    policy = _provisioned_policy(device)
    policy.accept_tee(TEE_SGX).minimum_svn = 99
    engine = AppraisalEngine(policy)
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        engine=engine)
    with pytest.raises(PolicyDenied) as excinfo:
        _handshake(attester, verifier, device)
    assert excinfo.value.reason_code == Reason.SVN_BELOW_MINIMUM
    assert engine.audit.entries()[-1].reason == Reason.SVN_BELOW_MINIMUM


def test_malformed_envelope_is_audited_before_raising():
    engine = AppraisalEngine(AppraisalPolicy())
    with pytest.raises(EnvelopeError):
        engine.decode(b"garbage that is not an envelope at all")
    (entry,) = engine.audit.entries()
    assert entry.reason == Reason.ENVELOPE_MALFORMED
    assert entry.tee_type == 0x00  # unidentifiable backend

    with pytest.raises(EnvelopeError):
        engine.decode(encode_envelope(TEE_SGX, b"short body"))
    assert engine.audit.entries()[-1].tee_type == TEE_SGX
