"""The multi-TEE appraisal subsystem: codecs, policy engine, audit."""
