"""The refactored TrustZone path is observably identical to the seed.

PR 6 moved the verifier's inline appraisal checks into
``repro.appraisal.codecs.trustzone`` and threaded an optional engine
through the verifier. None of that may change the legacy single-TEE
deployment: with the same RNG stream, every wire byte of the handshake
is identical with and without an engine attached, and every rejection
raises the seed's exact exception type and message.
"""

import hashlib
import os

import pytest

from repro.appraisal import AppraisalEngine, AppraisalPolicy
from repro.core import protocol
from repro.core.attester import Attester
from repro.core.evidence import EVIDENCE_SIZE, Evidence, SignedEvidence
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import EndorsementError, MeasurementMismatch
from repro.fleet.cache import AppraisalCache

IDENTITY = ecdsa.keypair_from_private(525252)
DEVICE = ecdsa.keypair_from_private(535353)
CLAIM = measure_bytes(b"invariance app").digest
SECRET = b"invariant secret blob"
BOOT = b"\x0B" * 32


def _drbg(label: bytes):
    """A deterministic byte source: replayable RNG for both actors."""
    state = {"counter": 0, "pool": b""}

    def read(n: int) -> bytes:
        while len(state["pool"]) < n:
            block = hashlib.sha256(
                label + state["counter"].to_bytes(8, "big")).digest()
            state["pool"] += block
            state["counter"] += 1
        out, state["pool"] = state["pool"][:n], state["pool"][n:]
        return out

    return read


def _policy():
    policy = VerifierPolicy()
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    policy.trust_boot_measurement(BOOT)
    return policy


def _transcript(engine, cache=None, rerun=0):
    """All legacy handshake bytes, under a fixed RNG stream."""
    attester = Attester(_drbg(b"attester"))
    verifier = Verifier(IDENTITY, _policy(), _drbg(b"verifier"),
                        appraisal_cache=cache, engine=engine)
    wire = []
    for _ in range(1 + rerun):
        session = attester.start_session(IDENTITY.public_bytes())
        msg0 = attester.make_msg0(session)
        vsession, msg1 = verifier.handle_msg0(msg0)
        attester.handle_msg1(session, msg1)
        signed = attester.collect_evidence(
            session.anchor, CLAIM, DEVICE.public_bytes(),
            lambda body: ecdsa.sign(DEVICE.private, body), boot_claim=BOOT)
        msg2 = attester.make_msg2(session, signed)
        msg3 = verifier.handle_msg2(vsession, msg2, SECRET)
        secret = attester.handle_msg3(session, msg3)
        assert secret == SECRET
        wire += [msg0, msg1, msg2, msg3]
    return wire


def _engine():
    return AppraisalEngine(AppraisalPolicy.from_verifier_policy(_policy()))


def test_legacy_wire_bytes_are_engine_invariant():
    assert _transcript(engine=None) == _transcript(engine=_engine())


def test_legacy_ticket_path_is_engine_invariant():
    # With a cache, the second handshake rides a resumption ticket whose
    # MAC covers the *bare* evidence bytes — the seed's ticket body, not
    # the new envelope (that one is only MAC'd on the multi path). The
    # whole two-handshake transcript must still match byte for byte.
    plain = _transcript(engine=None, cache=AppraisalCache(), rerun=1)
    armed = _transcript(engine=_engine(), cache=AppraisalCache(), rerun=1)
    assert plain == armed
    # and the ticket actually rode along (msg2 of the re-attestation is
    # TICKET_SIZE longer than the first one)
    assert len(plain[6]) == len(plain[2]) + protocol.TICKET_SIZE


def _failing_handshake(mutate_policy=None, claim=CLAIM, boot=BOOT,
                       engine=None):
    attester = Attester(os.urandom)
    policy = _policy()
    if mutate_policy:
        mutate_policy(policy)
    verifier = Verifier(IDENTITY, policy, os.urandom, engine=engine)
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(
        session.anchor, claim, DEVICE.public_bytes(),
        lambda body: ecdsa.sign(DEVICE.private, body), boot_claim=boot)
    verifier.handle_msg2(vsession, attester.make_msg2(session, signed),
                         SECRET)


SEED_FAILURES = [
    (
        "version",
        dict(mutate_policy=lambda p: setattr(p, "minimum_version", (9, 9))),
        EndorsementError,
        r"runtime version \(1, 0\) is below the accepted minimum \(9, 9\)",
    ),
    (
        "endorsement",
        dict(mutate_policy=lambda p: p.endorsements.clear()),
        EndorsementError,
        r"device attestation key is not endorsed",
    ),
    (
        "claim",
        dict(claim=b"\xEE" * 32),
        MeasurementMismatch,
        r"code measurement " + b"\xEE".hex() * 8 +
        r"\.\.\. matches no reference value",
    ),
    (
        "boot",
        dict(boot=b"\xEF" * 32),
        MeasurementMismatch,
        r"boot-chain measurement matches no trusted value "
        r"\(possibly hijacked secure boot\)",
    ),
]


@pytest.mark.parametrize("name,kwargs,exc_type,message",
                         SEED_FAILURES, ids=[f[0] for f in SEED_FAILURES])
def test_rejections_raise_the_seed_exact_exceptions(name, kwargs, exc_type,
                                                    message):
    # Without an engine (the seed configuration)...
    with pytest.raises(exc_type, match=f"^{message}$"):
        _failing_handshake(**kwargs)
    # ...and with one: same type, same message, plus an audit record.
    engine = _engine()
    with pytest.raises(exc_type, match=f"^{message}$"):
        _failing_handshake(engine=engine, **kwargs)
    (entry,) = engine.audit.entries()
    assert not entry.accepted


def test_native_evidence_bytes_are_unchanged():
    # The codec body IS the seed serialisation: anchor || claim ||
    # pubkey || boot_claim || version, then the signature.
    evidence = Evidence(anchor=b"\x01" * 32, claim=b"\x02" * 32,
                        attestation_public_key=DEVICE.public_bytes(),
                        boot_claim=b"\x03" * 32)
    encoded = evidence.encode()
    signed = SignedEvidence(evidence=evidence, signature=b"\x04" * 64)
    assert signed.encode() == encoded + b"\x04" * 64
    assert len(signed.encode()) == EVIDENCE_SIZE

    from repro.appraisal.codecs.trustzone import TrustZoneCodec

    codec = TrustZoneCodec()
    view = codec.decode(signed.encode())
    assert view.encode() == signed.encode()
    assert codec.body_size == EVIDENCE_SIZE
