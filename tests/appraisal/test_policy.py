"""The declarative policy: pinned reason codes, table-driven verdicts.

The reason-code strings are an API — the audit log persists them, the
shards ship them across the IPC hop, operators alert on them — so every
value is pinned here verbatim. The verdict table drives one evidence
sample through policies that each fail exactly one rule, checking both
the decision and *which* rule reported it (the evaluator's check order
is part of the contract).
"""

import dataclasses

import pytest

from repro.appraisal import synthetic
from repro.appraisal.envelope import TEE_SGX, TEE_TDX, TEE_TRUSTZONE
from repro.appraisal.policy import (
    AppraisalPolicy,
    Reason,
    TeePolicy,
    Verdict,
)
from repro.core.verifier import VerifierPolicy
from repro.errors import PolicyDenied

CLAIM = b"\x11" * 32
ANCHOR = b"\x22" * 32


# -- pinned reason codes ------------------------------------------------------


def test_reason_codes_are_pinned():
    assert Reason.OK == "ok"
    assert Reason.TEE_NOT_ACCEPTED == "tee-not-accepted"
    assert Reason.MEASUREMENT_UNKNOWN == "measurement-unknown"
    assert Reason.MEASUREMENT_REVOKED == "measurement-revoked"
    assert Reason.IDENTITY_UNKNOWN == "identity-unknown"
    assert Reason.IDENTITY_REVOKED == "identity-revoked"
    assert Reason.SIGNER_UNKNOWN == "signer-unknown"
    assert Reason.DEBUG_REJECTED == "debug-rejected"
    assert Reason.SVN_BELOW_MINIMUM == "svn-below-minimum"
    assert Reason.VERSION_BELOW_MINIMUM == "version-below-minimum"
    assert Reason.BOOT_UNKNOWN == "boot-unknown"
    assert Reason.POLICY_EXPIRED == "policy-expired"
    assert Reason.SIGNATURE_INVALID == "signature-invalid"
    assert Reason.ENVELOPE_MALFORMED == "envelope-malformed"


# -- table-driven verdicts ----------------------------------------------------


def _enclave(**kwargs):
    return synthetic.sgx_enclave(7, CLAIM, **kwargs)


def _view(enclave=None):
    return (enclave or _enclave()).collect_evidence(ANCHOR)


def _accepting_policy(enclave=None):
    enclave = enclave or _enclave()
    policy = AppraisalPolicy()
    tee = policy.accept_tee(TEE_SGX)
    tee.trust_measurement(enclave.mrenclave)
    tee.endorse(enclave.attestation_public_key)
    tee.trust_signer(enclave.mrsigner)
    return policy


def test_the_accepting_baseline():
    verdict = _accepting_policy().compile().evaluate(_view())
    assert verdict == Verdict(True, Reason.OK, TEE_SGX)
    assert verdict.raise_if_denied() is verdict


def _deny_tee_not_accepted(policy, view):
    policy.tee.pop(TEE_SGX)
    return view


def _deny_measurement_revoked(policy, view):
    policy.revoke_measurement(view.mrenclave)
    # Revocation outranks the (still present) accept entry.
    return view


def _deny_identity_revoked(policy, view):
    policy.revoke_identity(view.attestation_public_key)
    return view


def _deny_measurement_unknown(policy, view):
    policy.tee[TEE_SGX].accepted_measurements.clear()
    return view


def _deny_identity_unknown(policy, view):
    policy.tee[TEE_SGX].accepted_identities.clear()
    return view


def _deny_signer_unknown(policy, view):
    return _view(_enclave(mrsigner=b"\x66" * 32))


def _deny_debug(policy, view):
    debug = _view(_enclave(debug=True))
    policy.tee[TEE_SGX].trust_measurement(debug.mrenclave)
    return debug


def _deny_svn(policy, view):
    policy.tee[TEE_SGX].minimum_svn = 5
    return _view(_enclave(isv_svn=4))


def _deny_version(policy, view):
    policy.tee[TEE_SGX].minimum_version = (2, 0)
    return view


def _deny_expired(policy, view):
    policy.not_after_ns = 10
    return view


DENIALS = [
    (Reason.TEE_NOT_ACCEPTED, _deny_tee_not_accepted),
    (Reason.MEASUREMENT_REVOKED, _deny_measurement_revoked),
    (Reason.IDENTITY_REVOKED, _deny_identity_revoked),
    (Reason.MEASUREMENT_UNKNOWN, _deny_measurement_unknown),
    (Reason.IDENTITY_UNKNOWN, _deny_identity_unknown),
    (Reason.SIGNER_UNKNOWN, _deny_signer_unknown),
    (Reason.DEBUG_REJECTED, _deny_debug),
    (Reason.SVN_BELOW_MINIMUM, _deny_svn),
    (Reason.VERSION_BELOW_MINIMUM, _deny_version),
    (Reason.POLICY_EXPIRED, _deny_expired),
]


@pytest.mark.parametrize("reason,arrange",
                         DENIALS, ids=[r for r, _ in DENIALS])
def test_each_rule_reports_its_own_reason(reason, arrange):
    enclave = _enclave()
    policy = _accepting_policy(enclave)
    # Every arranged view reuses enclave 7's keypair, so the baseline
    # endorsement covers it and only the rule under test can fire.
    view = arrange(policy, _view(enclave))
    verdict = policy.compile().evaluate(view, now_ns=100)
    assert not verdict.accepted
    assert verdict.reason == reason
    with pytest.raises(PolicyDenied) as excinfo:
        verdict.raise_if_denied()
    assert excinfo.value.reason_code == reason


def test_boot_unknown_for_trustzone_shape():
    policy = AppraisalPolicy.from_verifier_policy(VerifierPolicy())
    tz = policy.tee[TEE_TRUSTZONE]

    @dataclasses.dataclass
    class FakeTzView:
        tee_type = TEE_TRUSTZONE
        claim: bytes = CLAIM
        identity: bytes = b"\x04" + b"\x33" * 64
        boot_claim: bytes = b"\x44" * 32
        version = (1, 0)
        svn = None
        debug = False
        signer = None

    view = FakeTzView()
    tz.trust_measurement(view.claim)
    tz.endorse(view.identity)
    tz.trust_boot_measurement(b"\x55" * 32)  # not the view's boot claim
    verdict = policy.compile().evaluate(view)
    assert verdict.reason == Reason.BOOT_UNKNOWN


def test_check_order_revocation_outranks_everything_but_expiry():
    # A sample failing many rules reports the *first* failing one.
    enclave = _enclave(debug=True, isv_svn=0)
    policy = AppraisalPolicy()
    policy.accept_tee(TEE_SGX).minimum_svn = 3
    view = _view(enclave)
    policy.revoke_measurement(view.mrenclave)
    assert policy.compile().evaluate(view).reason == \
        Reason.MEASUREMENT_REVOKED
    policy.not_after_ns = 10
    assert policy.compile().evaluate(view, now_ns=100).reason == \
        Reason.POLICY_EXPIRED


# -- rules with no counterpart in a backend stay inert ------------------------


def test_svn_and_boot_rules_are_inert_for_backends_without_the_field():
    domain = synthetic.tdx_domain(0, CLAIM)
    view = domain.collect_evidence(ANCHOR)
    policy = AppraisalPolicy()
    tee = policy.accept_tee(TEE_TDX)
    tee.trust_measurement(domain.mrtd)
    tee.endorse(domain.attestation_public_key)
    assert policy.compile().evaluate(view).accepted
    # But an explicit minimum SVN *denies* svn-less evidence (fail
    # closed): the rule only stays inert while unset.
    tee.minimum_svn = 1
    assert policy.compile().evaluate(view).reason == \
        Reason.SVN_BELOW_MINIMUM


# -- serialisation, fingerprint, epoch ----------------------------------------


def _rich_policy():
    policy = AppraisalPolicy(epoch=3, not_after_ns=12345)
    policy.tee[TEE_SGX] = TeePolicy(
        accepted_measurements={b"\x01" * 32, b"\x02" * 32},
        accepted_identities={b"\x04" + b"\x05" * 64},
        accepted_signers={b"\x06" * 32},
        minimum_svn=2,
        allow_debug=True,
        minimum_version=(1, 2),
    )
    policy.tee[TEE_TRUSTZONE] = TeePolicy(
        accepted_measurements={b"\x07" * 32},
        accepted_boot_measurements={b"\x08" * 32},
    )
    policy.revoked_measurements.add(b"\x09" * 32)
    policy.revoked_identities.add(b"\x0A" * 65)
    return policy


def test_encode_decode_round_trip():
    policy = _rich_policy()
    clone = AppraisalPolicy.decode(policy.encode())
    assert clone == policy
    assert clone.fingerprint() == policy.fingerprint()


def test_encoding_is_deterministic_across_insertion_order():
    a = AppraisalPolicy()
    a.accept_tee(TEE_SGX).trust_measurement(b"\x01" * 32)
    a.accept_tee(TEE_SGX).trust_measurement(b"\x02" * 32)
    b = AppraisalPolicy()
    b.accept_tee(TEE_SGX).trust_measurement(b"\x02" * 32)
    b.accept_tee(TEE_SGX).trust_measurement(b"\x01" * 32)
    assert a.encode() == b.encode()


def test_revocation_bumps_the_epoch_and_moves_the_fingerprint():
    policy = _accepting_policy()
    before = policy.fingerprint()
    policy.revoke_measurement(CLAIM)
    assert policy.epoch == 1
    after = policy.fingerprint()
    assert after != before
    # Un-revoking does NOT restore the old fingerprint: the epoch stays
    # bumped, so tickets minted before the revocation never resurrect.
    policy.revoked_measurements.clear()
    assert policy.fingerprint() not in (before, after)


def test_from_verifier_policy_lifts_the_legacy_rules():
    legacy = VerifierPolicy(minimum_version=(1, 1))
    legacy.trust_measurement(CLAIM)
    legacy.endorse(b"\x04" + b"\x0B" * 64)
    legacy.trust_boot_measurement(b"\x0C" * 32)
    lifted = AppraisalPolicy.from_verifier_policy(legacy)
    tz = lifted.tee[TEE_TRUSTZONE]
    assert tz.accepted_measurements == {CLAIM}
    assert tz.minimum_version == (1, 1)
    assert tz.accepted_boot_measurements == {b"\x0C" * 32}
