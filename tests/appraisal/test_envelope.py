"""The self-describing evidence envelope and the codec registry."""

import pytest

from repro.appraisal.envelope import (
    ENVELOPE_HEADER_SIZE,
    ENVELOPE_MAGIC,
    TEE_SGX,
    TEE_TDX,
    TEE_TRUSTZONE,
    CodecRegistry,
    decode_envelope,
    default_registry,
    encode_envelope,
    tee_name,
)
from repro.core.evidence import TEE_TYPE_TRUSTZONE
from repro.errors import EnvelopeError, EvidenceError


def test_round_trip():
    body = b"some opaque codec body"
    data = encode_envelope(TEE_SGX, body)
    assert data[:4] == ENVELOPE_MAGIC
    assert decode_envelope(data) == (TEE_SGX, body)


def test_empty_body_round_trips():
    assert decode_envelope(encode_envelope(TEE_TDX, b"")) == (TEE_TDX, b"")


def test_tee_type_must_fit_the_tag_byte():
    with pytest.raises(EnvelopeError):
        encode_envelope(0x100, b"")
    with pytest.raises(EnvelopeError):
        encode_envelope(-1, b"")


def test_trustzone_tag_matches_the_core_mirror():
    # The core layer cannot import this package; the constant is mirrored
    # and must never drift.
    assert TEE_TRUSTZONE == TEE_TYPE_TRUSTZONE


def test_short_header_rejected():
    good = encode_envelope(TEE_SGX, b"x")
    for cut in range(ENVELOPE_HEADER_SIZE):
        with pytest.raises(EnvelopeError):
            decode_envelope(good[:cut])


def test_bad_magic_rejected():
    data = bytearray(encode_envelope(TEE_SGX, b"x"))
    data[0] ^= 0xFF
    with pytest.raises(EnvelopeError, match="magic"):
        decode_envelope(bytes(data))


def test_unsupported_version_rejected():
    data = bytearray(encode_envelope(TEE_SGX, b"x"))
    data[4] = 9
    with pytest.raises(EnvelopeError, match="version"):
        decode_envelope(bytes(data))


def test_reserved_bits_rejected():
    data = bytearray(encode_envelope(TEE_SGX, b"x"))
    data[6] = 1
    with pytest.raises(EnvelopeError, match="reserved"):
        decode_envelope(bytes(data))


def test_body_length_mismatch_rejected():
    data = encode_envelope(TEE_SGX, b"abcd")
    with pytest.raises(EnvelopeError, match="body"):
        decode_envelope(data + b"Z")  # trailing garbage
    with pytest.raises(EnvelopeError, match="body"):
        decode_envelope(data[:-1])  # truncated body


def test_envelope_error_is_a_typed_evidence_error():
    # The protocol layer catches EvidenceError; envelopes slot under it.
    assert issubclass(EnvelopeError, EvidenceError)


def test_default_registry_has_all_three_backends():
    registry = default_registry()
    assert registry.tee_types() == (TEE_TRUSTZONE, TEE_SGX, TEE_TDX)
    assert [codec.name for codec in registry.codecs()] == \
        ["trustzone", "sgx", "tdx"]
    assert TEE_SGX in registry and 0x7F not in registry


def test_registry_rejects_duplicate_registration():
    registry = default_registry()
    with pytest.raises(ValueError, match="already registered"):
        registry.register(registry.get(TEE_SGX).__class__())


def test_registry_lookup_of_unknown_tag_is_typed():
    with pytest.raises(EnvelopeError, match="no codec registered"):
        CodecRegistry().get(TEE_SGX)


def test_registry_decode_dispatches_to_the_right_codec():
    from repro.appraisal import synthetic

    enclave = synthetic.sgx_enclave(0, b"\x11" * 32)
    view = enclave.collect_evidence(b"\x22" * 32)
    registry = default_registry()
    decoded = registry.decode(view.envelope())
    assert decoded == view
    assert registry.encode(decoded) == view.envelope()


def test_tee_name_labels():
    assert tee_name(TEE_TRUSTZONE) == "trustzone"
    assert tee_name(0xEE) == "tee_0xee"
