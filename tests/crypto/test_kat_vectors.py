"""Known-answer vectors for the P-256 stack, run on BOTH crypto paths.

Scalar multiplication vectors are the classic NIST point-multiplication
test values; ECDSA vectors are RFC 6979 appendix A.2.5 (P-256, SHA-256);
ECDH vectors are RFC 5903 section 8.1. Every vector is exercised against
the fast (wNAF/comb/Shamir) path and the retained naive reference, so a
regression in either — or any divergence between them — fails here
against *external* ground truth, not just self-consistency.
"""

import pytest

from repro.crypto import ec, ecdh, ecdsa
from repro.errors import SignatureError


@pytest.fixture(params=["fast", "naive"])
def crypto_path(request):
    previous = ec.use_fast_paths(request.param == "fast")
    yield request.param
    ec.use_fast_paths(previous)


# -- NIST P-256 point multiplication: k * G -----------------------------------

_SCALAR_MULT_VECTORS = [
    (1,
     0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
     0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5),
    (2,
     0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978,
     0x07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1),
    (3,
     0x5ECBE4D1A6330A44C8F7EF951D4BF165E6C6B721EFADA985FB41661BC6E7FD6C,
     0x8734640C4998FF7E374B06CE1A64A2ECD82AB036384FB83D9A79B127A27D5032),
    (4,
     0xE2534A3532D08FBBA02DDE659EE62BD0031FE2DB785596EF509302446B030852,
     0xE0F1575A4C633CC719DFEE5FDA862D764EFC96C3F30EE0055C42C23F184ED8C6),
    (5,
     0x51590B7A515140D2D784C85608668FDFEF8C82FD1F5BE52421554A0DC3D033ED,
     0xE0C17DA8904A727D8AE1BF36BF8A79260D012F00D4D80888D1D0BB44FDA16DA4),
    (112233445566778899,
     0x339150844EC15234807FE862A86BE77977DBFB3AE3D96F4C22795513AEAAB82F,
     0xB1C14DDFDC8EC1B2583F51E85A5EB3A155840F2034730E9B5ADA38B674336A21),
]


@pytest.mark.parametrize("k, x, y", _SCALAR_MULT_VECTORS)
def test_scalar_base_mult_known_answers(crypto_path, k, x, y):
    assert ec.scalar_base_mult(k) == ec.Point(x, y)


@pytest.mark.parametrize("k, x, y", _SCALAR_MULT_VECTORS)
def test_scalar_mult_of_generator_known_answers(crypto_path, k, x, y):
    assert ec.scalar_mult(k, ec.GENERATOR) == ec.Point(x, y)


@pytest.mark.parametrize("k, x, y", _SCALAR_MULT_VECTORS)
def test_scalar_mult_cached_key_known_answers(crypto_path, k, x, y):
    # Precomputing 2G installs the split table; (k * 2) * G == k * (2G)
    # cross-checks the cached-table code path against the same vectors.
    two_g = ec.scalar_base_mult(2)
    ec.precompute_public_key(two_g)
    assert ec.scalar_mult(k, two_g) == ec.scalar_base_mult(2 * k)


def test_order_times_generator_is_infinity(crypto_path):
    assert ec.scalar_mult(ec.N, ec.GENERATOR).is_infinity
    assert ec.scalar_base_mult(ec.N).is_infinity


# -- RFC 6979 A.2.5: deterministic ECDSA on P-256 with SHA-256 ----------------

_RFC6979_PRIVATE = \
    0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
_RFC6979_PUB_X = \
    0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6
_RFC6979_PUB_Y = \
    0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299

_RFC6979_VECTORS = [
    (b"sample",
     0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716,
     0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8),
    (b"test",
     0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367,
     0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083),
]


def test_rfc6979_public_key(crypto_path):
    pair = ecdsa.keypair_from_private(_RFC6979_PRIVATE)
    assert pair.public == ec.Point(_RFC6979_PUB_X, _RFC6979_PUB_Y)


@pytest.mark.parametrize("message, r, s", _RFC6979_VECTORS)
def test_rfc6979_deterministic_signatures(crypto_path, message, r, s):
    pair = ecdsa.keypair_from_private(_RFC6979_PRIVATE)
    signature = ecdsa.sign(pair.private, message)
    got_r = int.from_bytes(signature[:32], "big")
    got_s = int.from_bytes(signature[32:], "big")
    assert got_r == r
    # Our sign() applies low-s normalisation (malleability defence); the
    # RFC's s may be the high representative of the same signature class.
    assert got_s == min(s, ec.N - s)


@pytest.mark.parametrize("message, r, s", _RFC6979_VECTORS)
def test_rfc6979_signatures_verify(crypto_path, message, r, s):
    public = ec.Point(_RFC6979_PUB_X, _RFC6979_PUB_Y)
    # The RFC's exact (r, s) — including a high s — must verify.
    signature = r.to_bytes(32, "big") + s.to_bytes(32, "big")
    ecdsa.verify(public, message, signature)
    with pytest.raises(SignatureError):
        ecdsa.verify(public, message + b"?", signature)


def test_rfc6979_verify_with_precomputed_key(crypto_path):
    public = ec.Point(_RFC6979_PUB_X, _RFC6979_PUB_Y)
    ec.precompute_public_key(public)
    message, r, s = _RFC6979_VECTORS[0]
    signature = r.to_bytes(32, "big") + s.to_bytes(32, "big")
    ecdsa.verify(public, message, signature)


# -- RFC 5903 section 8.1: ECDH on P-256 --------------------------------------

_IKE_I_PRIV = \
    0xC88F01F510D9AC3F70A292DAA2316DE544E9AAB8AFE84049C62A9C57862D1433
_IKE_GI_X = \
    0xDAD0B65394221CF9B051E1FECA5787D098DFE637FC90B9EF945D0C3772581180
_IKE_GI_Y = \
    0x5271A0461CDB8252D61F1C456FA3E59AB1F45B33ACCF5F58389E0577B8990BB3
_IKE_R_PRIV = \
    0xC6EF9C5D78AE012A011164ACB397CE2088685D8F06BF9BE0B283AB46476BEE53
_IKE_GR_X = \
    0xD12DFB5289C8D4F81208B70270398C342296970A0BCCB74C736FC7554494BF63
_IKE_GR_Y = \
    0x56FBF3CA366CC23E8157854C13C58D6AAC23F046ADA30F8353E74F33039872AB
_IKE_SHARED = \
    0xD6840F6B42F6EDAFD13116E0E12565202FEF8E9ECE7DCE03812464D04B9442DE


def test_rfc5903_public_values(crypto_path):
    assert ec.scalar_base_mult(_IKE_I_PRIV) == ec.Point(_IKE_GI_X, _IKE_GI_Y)
    assert ec.scalar_base_mult(_IKE_R_PRIV) == ec.Point(_IKE_GR_X, _IKE_GR_Y)


def test_rfc5903_shared_secret(crypto_path):
    expected = _IKE_SHARED.to_bytes(32, "big")
    gi = ec.Point(_IKE_GI_X, _IKE_GI_Y)
    gr = ec.Point(_IKE_GR_X, _IKE_GR_Y)
    assert ecdh.shared_secret(_IKE_I_PRIV, gr) == expected
    assert ecdh.shared_secret(_IKE_R_PRIV, gi) == expected


def test_rfc5903_shared_secret_with_precomputed_peer(crypto_path):
    gr = ec.Point(_IKE_GR_X, _IKE_GR_Y)
    ec.precompute_public_key(gr)
    expected = _IKE_SHARED.to_bytes(32, "big")
    assert ecdh.shared_secret(_IKE_I_PRIV, gr) == expected
