"""Differential tests pinning the fast EC paths to the naive reference.

The wNAF / comb / Shamir / split-table implementations and the retained
double-and-add reference must compute the *same group function* for every
input — including boundary scalars around 0, 1, N-1, N, chunk boundaries
of the split representation, and points with and without a cached
precomputed table. Hypothesis drives randomised scalars; edge scalars are
enumerated exhaustively.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec, ecdsa

_scalars = st.integers(0, ec.N + 3)

_EDGE_SCALARS = [
    0, 1, 2, 3,
    ec.N - 2, ec.N - 1, ec.N, ec.N + 1,
    1 << 32, (1 << 32) - 1, (1 << 32) + 1,       # split-chunk boundaries
    (1 << 224) + 5, (1 << 255) + 17,
    int.from_bytes(b"\xff" * 32, "big") % ec.N,
]


def _reference_point(seed: int) -> ec.Point:
    return ec.scalar_mult_naive(seed, ec.GENERATOR)


@settings(max_examples=25, deadline=None)
@given(_scalars)
def test_scalar_base_mult_matches_reference(k):
    assert ec.scalar_base_mult(k) == ec.scalar_mult_naive(k, ec.GENERATOR)


@settings(max_examples=20, deadline=None)
@given(_scalars, st.integers(1, ec.N - 1))
def test_scalar_mult_matches_reference(k, point_seed):
    point = _reference_point(point_seed)
    assert ec.scalar_mult(k, point) == ec.scalar_mult_naive(k, point)


@settings(max_examples=15, deadline=None)
@given(_scalars, st.integers(1, ec.N - 1))
def test_cached_scalar_mult_matches_reference(k, point_seed):
    point = _reference_point(point_seed)
    ec.precompute_public_key(point)
    assert ec.scalar_mult(k, point) == ec.scalar_mult_naive(k, point)


@settings(max_examples=15, deadline=None)
@given(_scalars, _scalars, st.integers(1, ec.N - 1))
def test_shamir_matches_reference(u1, u2, point_seed):
    point = _reference_point(point_seed)
    expected = ec.add(ec.scalar_mult_naive(u1, ec.GENERATOR),
                      ec.scalar_mult_naive(u2, point))
    assert ec.double_scalar_base_mult(u1, u2, point) == expected
    ec.precompute_public_key(point)
    assert ec.double_scalar_base_mult(u1, u2, point) == expected


@pytest.mark.parametrize("k", _EDGE_SCALARS)
def test_edge_scalars_match_reference(k):
    point = _reference_point(12345)
    assert ec.scalar_base_mult(k) == ec.scalar_mult_naive(k, ec.GENERATOR)
    assert ec.scalar_mult(k, point) == ec.scalar_mult_naive(k, point)
    ec.precompute_public_key(point)
    assert ec.scalar_mult(k, point) == ec.scalar_mult_naive(k, point)


@pytest.mark.parametrize("u1", [0, 1, ec.N - 1, ec.N, 1 << 128])
@pytest.mark.parametrize("u2", [0, 1, ec.N - 1, ec.N])
def test_shamir_edge_scalars(u1, u2):
    point = _reference_point(999)
    expected = ec.add(ec.scalar_mult_naive(u1, ec.GENERATOR),
                      ec.scalar_mult_naive(u2, point))
    assert ec.double_scalar_base_mult(u1, u2, point) == expected


def test_shamir_cancellation_hits_infinity():
    # u1*G + u2*Q == infinity when Q = d*G and u1 == -u2*d: the joint
    # chain must survive intermediate/final infinity results.
    d = 0xDEADBEEF
    point = ec.scalar_base_mult(d)
    u2 = 7
    u1 = (-u2 * d) % ec.N
    assert ec.double_scalar_base_mult(u1, u2, point).is_infinity


@settings(max_examples=10, deadline=None)
@given(st.integers(1, ec.N - 1), st.binary(min_size=0, max_size=64))
def test_sign_identical_on_both_paths(private, message):
    with ec.reference_paths():
        reference = ecdsa.sign(private, message)
    assert ecdsa.sign(private, message) == reference


def test_use_fast_paths_switch_roundtrip():
    assert ec.fast_paths_enabled()
    previous = ec.use_fast_paths(False)
    assert previous is True
    assert not ec.fast_paths_enabled()
    with ec.reference_paths():
        assert not ec.fast_paths_enabled()
    ec.use_fast_paths(True)
    assert ec.fast_paths_enabled()
