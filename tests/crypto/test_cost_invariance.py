"""The fast crypto paths must be invisible to the cost model.

The wNAF/comb/Shamir EC fast paths and the vectorised GCM pipeline change
*wall-clock* time only. Everything the simulation observes — the protocol
transcript, the CostRecorder phase sequence (Table III), the
TracingRecorder span stream, and the SimClock totals of a full on-device
attestation — must be byte-for-byte identical between the fast paths and
the retained scalar references.
"""

import hashlib
from contextlib import contextmanager

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.core import protocol
from repro.core.attester import Attester
from repro.core.verifier import Verifier
from repro.crypto import ec, ecdsa, gcm
from repro.obs import Tracer
from repro.testbed import Testbed
from repro.workloads.attested import build_attested_app

_SECRET = b"the attested payload" * 10
#: Big enough that the striped GHASH and chunked pipeline actually engage
#: (>= gcm._VECTOR_MIN_BLOCKS blocks) while the reference stays quick.
_BULK_SECRET = bytes(range(256)) * 16 * 75  # 300 KiB
_ATTESTATION_PRIVATE = 0xA77E57 + 99
_VERIFIER_PRIVATE = 0x5EC2E7 + 7


def _deterministic_random(label: str):
    state = {"n": 0}

    def random_bytes(size: int) -> bytes:
        state["n"] += 1
        out = b""
        while len(out) < size:
            out += hashlib.sha256(
                f"{label}/{state['n']}/{len(out)}".encode()).digest()
        return out[:size]

    return random_bytes


class _SequenceRecorder(protocol.CostRecorder):
    """Records the exact order of phases, not just their accumulated time."""

    def __init__(self) -> None:
        super().__init__()
        self.sequence = []

    @contextmanager
    def phase(self, message, category):
        self.sequence.append((message, category))
        with super().phase(message, category):
            yield


def _run_handshake(recorder_a, recorder_v, secret=_SECRET):
    """Full msg0..msg3 exchange; returns the transcript and the secret."""
    attestation_pair = ecdsa.keypair_from_private(_ATTESTATION_PRIVATE)
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    claim = hashlib.sha256(b"trusted module").digest()

    policy = VerifierPolicy()
    policy.endorse(attestation_pair.public_bytes())
    policy.trust_measurement(claim)

    attester = Attester(_deterministic_random("attester"), recorder_a)
    verifier = Verifier(identity, policy,
                        _deterministic_random("verifier"), recorder_v)

    session = attester.start_session(identity.public_bytes())
    msg0 = attester.make_msg0(session)
    vsession, msg1 = verifier.handle_msg0(msg0)
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(
        session.anchor, claim, attestation_pair.public_bytes(),
        lambda body: ecdsa.sign(attestation_pair.private, body))
    msg2 = attester.make_msg2(session, signed)
    msg3 = verifier.handle_msg2(vsession, msg2, secret)
    received = attester.handle_msg3(session, msg3)
    return (msg0, msg1, msg2, msg3), received


def test_transcript_and_phase_sequence_identical_on_both_paths():
    recorder_fast_a, recorder_fast_v = _SequenceRecorder(), _SequenceRecorder()
    transcript_fast, secret_fast = _run_handshake(recorder_fast_a,
                                                  recorder_fast_v)

    with ec.reference_paths():
        recorder_ref_a, recorder_ref_v = (_SequenceRecorder(),
                                          _SequenceRecorder())
        transcript_ref, secret_ref = _run_handshake(recorder_ref_a,
                                                    recorder_ref_v)

    assert secret_fast == secret_ref == _SECRET
    # Deterministic randomness + RFC 6979 signing: the wire bytes must not
    # depend on which scalar-multiplication algorithm produced them.
    assert transcript_fast == transcript_ref
    # The recorders saw the same phases in the same order on both sides.
    assert recorder_fast_a.sequence == recorder_ref_a.sequence
    assert recorder_fast_v.sequence == recorder_ref_v.sequence
    assert set(recorder_fast_a.seconds) == set(recorder_ref_a.seconds)
    assert set(recorder_fast_v.seconds) == set(recorder_ref_v.seconds)
    # Every Table III (message, category) cell the bench prints is present.
    assert ("msg1", protocol.ASYMMETRIC) in recorder_fast_a.sequence
    assert ("msg2", protocol.ASYMMETRIC) in recorder_fast_v.sequence


def test_tracing_recorder_spans_identical_on_both_paths():
    tracer_fast = Tracer()
    _run_handshake(tracer_fast.recorder(), tracer_fast.recorder())

    tracer_ref = Tracer()
    with ec.reference_paths():
        _run_handshake(tracer_ref.recorder(), tracer_ref.recorder())

    def shape(tracer):
        return [(s.name, s.attrs.get("message")) for s in tracer.spans()]

    fast_shape = shape(tracer_fast)
    assert fast_shape == shape(tracer_ref)
    assert ("crypto.asymmetric", "msg2") in fast_shape


def _attested_device_clock_ns(secret=_SECRET,
                              secret_capacity: int = 1 << 12) -> int:
    """Run a full on-device attestation; return the final SimClock time."""
    host, port = "invariance.local", 7100
    testbed = Testbed(deterministic_rng=True)
    device = testbed.create_device()
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    app = build_attested_app(identity.public_bytes(), host, port,
                             secret_capacity=secret_capacity)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, host, port, device.client,
                   testbed.vendor_key, identity, policy, lambda: secret)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") == len(secret)
    return device.soc.clock.now_ns()


def test_simclock_totals_identical_on_both_paths():
    fast_ns = _attested_device_clock_ns()
    with ec.reference_paths():
        reference_ns = _attested_device_clock_ns()
    assert fast_ns == reference_ns


# --- GCM fast path (vectorised streaming AEAD pipeline) ------------------------


def test_msg3_wire_bytes_identical_on_gcm_paths():
    """A bulk msg3 is byte-identical whichever GCM path sealed it."""
    recorder_fast_a, recorder_fast_v = _SequenceRecorder(), _SequenceRecorder()
    transcript_fast, secret_fast = _run_handshake(
        recorder_fast_a, recorder_fast_v, secret=_BULK_SECRET)

    with gcm.reference_paths():
        recorder_ref_a, recorder_ref_v = (_SequenceRecorder(),
                                          _SequenceRecorder())
        transcript_ref, secret_ref = _run_handshake(
            recorder_ref_a, recorder_ref_v, secret=_BULK_SECRET)

    assert secret_fast == secret_ref == _BULK_SECRET
    assert transcript_fast == transcript_ref
    assert recorder_fast_a.sequence == recorder_ref_a.sequence
    assert recorder_fast_v.sequence == recorder_ref_v.sequence
    assert ("msg3", protocol.SYMMETRIC) in recorder_fast_a.sequence
    assert ("msg3", protocol.SYMMETRIC) in recorder_fast_v.sequence


def test_tracing_recorder_spans_identical_on_gcm_paths():
    tracer_fast = Tracer()
    _run_handshake(tracer_fast.recorder(), tracer_fast.recorder(),
                   secret=_BULK_SECRET)

    tracer_ref = Tracer()
    with gcm.reference_paths():
        _run_handshake(tracer_ref.recorder(), tracer_ref.recorder(),
                       secret=_BULK_SECRET)

    def shape(tracer):
        return [(s.name, s.attrs.get("message")) for s in tracer.spans()]

    fast_shape = shape(tracer_fast)
    assert fast_shape == shape(tracer_ref)
    assert ("crypto.symmetric", "msg3") in fast_shape


def test_simclock_totals_identical_on_gcm_paths():
    fast_ns = _attested_device_clock_ns(secret=b"\xc3" * 4000)
    with gcm.reference_paths():
        reference_ns = _attested_device_clock_ns(secret=b"\xc3" * 4000)
    assert fast_ns == reference_ns


def test_chunked_shared_copy_charge_telescopes_exactly():
    """The chunkwise SimClock charge sums to the one-shot charge, byte for
    byte, despite the cost model's integer division."""
    from repro.optee.gp_api import _charge_shared_copy

    class _Clock:
        def __init__(self):
            self.total = 0

        def advance(self, ns):
            self.total += ns

    class _Soc:
        def __init__(self, costs):
            self.costs = costs
            self.clock = _Clock()

    testbed = Testbed(deterministic_rng=True)
    costs = testbed.create_device().soc.costs
    for size in (0, 1, 1023, 1024, 1025, 128 * 1024 - 1, 128 * 1024 + 1,
                 1 << 20, (1 << 20) + 777):
        soc = _Soc(costs)
        _charge_shared_copy(soc, size)
        assert soc.clock.total == costs.shared_copy_ns(size), size
