"""The fast crypto paths must be invisible to the cost model.

The wNAF/comb/Shamir fast paths change *wall-clock* time only. Everything
the simulation observes — the protocol transcript, the CostRecorder phase
sequence (Table III), the TracingRecorder span stream, and the SimClock
totals of a full on-device attestation — must be byte-for-byte identical
between the fast paths and the retained naive reference.
"""

import hashlib
from contextlib import contextmanager

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.core import protocol
from repro.core.attester import Attester
from repro.core.verifier import Verifier
from repro.crypto import ec, ecdsa
from repro.obs import Tracer
from repro.testbed import Testbed
from repro.workloads.attested import build_attested_app

_SECRET = b"the attested payload" * 10
_ATTESTATION_PRIVATE = 0xA77E57 + 99
_VERIFIER_PRIVATE = 0x5EC2E7 + 7


def _deterministic_random(label: str):
    state = {"n": 0}

    def random_bytes(size: int) -> bytes:
        state["n"] += 1
        out = b""
        while len(out) < size:
            out += hashlib.sha256(
                f"{label}/{state['n']}/{len(out)}".encode()).digest()
        return out[:size]

    return random_bytes


class _SequenceRecorder(protocol.CostRecorder):
    """Records the exact order of phases, not just their accumulated time."""

    def __init__(self) -> None:
        super().__init__()
        self.sequence = []

    @contextmanager
    def phase(self, message, category):
        self.sequence.append((message, category))
        with super().phase(message, category):
            yield


def _run_handshake(recorder_a, recorder_v):
    """Full msg0..msg3 exchange; returns the transcript and the secret."""
    attestation_pair = ecdsa.keypair_from_private(_ATTESTATION_PRIVATE)
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    claim = hashlib.sha256(b"trusted module").digest()

    policy = VerifierPolicy()
    policy.endorse(attestation_pair.public_bytes())
    policy.trust_measurement(claim)

    attester = Attester(_deterministic_random("attester"), recorder_a)
    verifier = Verifier(identity, policy,
                        _deterministic_random("verifier"), recorder_v)

    session = attester.start_session(identity.public_bytes())
    msg0 = attester.make_msg0(session)
    vsession, msg1 = verifier.handle_msg0(msg0)
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(
        session.anchor, claim, attestation_pair.public_bytes(),
        lambda body: ecdsa.sign(attestation_pair.private, body))
    msg2 = attester.make_msg2(session, signed)
    msg3 = verifier.handle_msg2(vsession, msg2, _SECRET)
    secret = attester.handle_msg3(session, msg3)
    return (msg0, msg1, msg2, msg3), secret


def test_transcript_and_phase_sequence_identical_on_both_paths():
    recorder_fast_a, recorder_fast_v = _SequenceRecorder(), _SequenceRecorder()
    transcript_fast, secret_fast = _run_handshake(recorder_fast_a,
                                                  recorder_fast_v)

    with ec.reference_paths():
        recorder_ref_a, recorder_ref_v = (_SequenceRecorder(),
                                          _SequenceRecorder())
        transcript_ref, secret_ref = _run_handshake(recorder_ref_a,
                                                    recorder_ref_v)

    assert secret_fast == secret_ref == _SECRET
    # Deterministic randomness + RFC 6979 signing: the wire bytes must not
    # depend on which scalar-multiplication algorithm produced them.
    assert transcript_fast == transcript_ref
    # The recorders saw the same phases in the same order on both sides.
    assert recorder_fast_a.sequence == recorder_ref_a.sequence
    assert recorder_fast_v.sequence == recorder_ref_v.sequence
    assert set(recorder_fast_a.seconds) == set(recorder_ref_a.seconds)
    assert set(recorder_fast_v.seconds) == set(recorder_ref_v.seconds)
    # Every Table III (message, category) cell the bench prints is present.
    assert ("msg1", protocol.ASYMMETRIC) in recorder_fast_a.sequence
    assert ("msg2", protocol.ASYMMETRIC) in recorder_fast_v.sequence


def test_tracing_recorder_spans_identical_on_both_paths():
    tracer_fast = Tracer()
    _run_handshake(tracer_fast.recorder(), tracer_fast.recorder())

    tracer_ref = Tracer()
    with ec.reference_paths():
        _run_handshake(tracer_ref.recorder(), tracer_ref.recorder())

    def shape(tracer):
        return [(s.name, s.attrs.get("message")) for s in tracer.spans()]

    fast_shape = shape(tracer_fast)
    assert fast_shape == shape(tracer_ref)
    assert ("crypto.asymmetric", "msg2") in fast_shape


def _attested_device_clock_ns() -> int:
    """Run a full on-device attestation; return the final SimClock time."""
    host, port = "invariance.local", 7100
    testbed = Testbed(deterministic_rng=True)
    device = testbed.create_device()
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    app = build_attested_app(identity.public_bytes(), host, port,
                             secret_capacity=1 << 12)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, host, port, device.client,
                   testbed.vendor_key, identity, policy, lambda: _SECRET)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") == len(_SECRET)
    return device.soc.clock.now_ns()


def test_simclock_totals_identical_on_both_paths():
    fast_ns = _attested_device_clock_ns()
    with ec.reference_paths():
        reference_ns = _attested_device_clock_ns()
    assert fast_ns == reference_ns
