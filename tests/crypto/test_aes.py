"""AES-128 against FIPS-197 / SP 800-38A vectors and structural checks."""

import binascii

import numpy as np
import pytest

from repro.crypto.aes import Aes128, _SBOX
from repro.errors import CryptoError

h = binascii.unhexlify


def test_fips197_vector():
    cipher = Aes128(h("000102030405060708090a0b0c0d0e0f"))
    out = cipher.encrypt_block(h("00112233445566778899aabbccddeeff"))
    assert out == h("69c4e0d86a7b0430d8cdb78070b4c55a")


@pytest.mark.parametrize("key,plain,expected", [
    # SP 800-38A F.1.1 ECB-AES128 blocks.
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "6bc1bee22e409f96e93d7e117393172a",
     "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "ae2d8a571e03ac9c9eb76fac45af8e51",
     "f5d3d58503b9699de785895a96fdbaaf"),
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "30c81c46a35ce411e5fbc1191a0a52ef",
     "43b1cd7f598ece23881b00e3ed030688"),
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "f69f2445df4f9b17ad2b417be66c3710",
     "7b0c785e27e8ad3f8223207104725dd4"),
])
def test_sp800_38a_ecb_vectors(key, plain, expected):
    assert Aes128(h(key)).encrypt_block(h(plain)) == h(expected)


def test_sbox_is_a_permutation():
    assert sorted(_SBOX) == list(range(256))


def test_sbox_known_entries():
    assert _SBOX[0x00] == 0x63
    assert _SBOX[0x01] == 0x7C
    assert _SBOX[0x53] == 0xED
    assert _SBOX[0xFF] == 0x16


def test_wrong_key_size_rejected():
    with pytest.raises(CryptoError):
        Aes128(b"short")


def test_wrong_block_size_rejected():
    with pytest.raises(CryptoError):
        Aes128(b"\x00" * 16).encrypt_block(b"tiny")


def test_vectorised_blocks_match_scalar():
    cipher = Aes128(h("000102030405060708090a0b0c0d0e0f"))
    keystream = cipher.ctr_keystream(b"\xaa" * 12, 7, 9)
    assert len(keystream) == 9 * 16
    for index in range(9):
        block = b"\xaa" * 12 + (7 + index).to_bytes(4, "big")
        expected = cipher.encrypt_block(block)
        assert keystream[index * 16 : (index + 1) * 16] == expected


def test_ctr_counter_wraps_32_bits():
    cipher = Aes128(b"\x01" * 16)
    keystream = cipher.ctr_keystream(b"\x00" * 12, 0xFFFFFFFF, 2)
    expected_first = cipher.encrypt_block(b"\x00" * 12 + b"\xff\xff\xff\xff")
    expected_second = cipher.encrypt_block(b"\x00" * 12 + b"\x00\x00\x00\x00")
    assert keystream[:16] == expected_first
    assert keystream[16:] == expected_second


def test_ctr_rejects_bad_prefix():
    with pytest.raises(CryptoError):
        Aes128(b"\x01" * 16).ctr_keystream(b"short", 0, 1)


def test_empty_keystream():
    assert Aes128(b"\x01" * 16).ctr_keystream(b"\x00" * 12, 0, 0) == b""


def test_different_keys_differ():
    block = b"\x00" * 16
    assert Aes128(b"\x01" * 16).encrypt_block(block) != \
        Aes128(b"\x02" * 16).encrypt_block(block)
