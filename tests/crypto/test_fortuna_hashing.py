"""Fortuna generator and the hashing helpers."""

import pytest

from repro.crypto.fortuna import Fortuna, seeded_fortuna
from repro.crypto.hashing import (
    IncrementalHash,
    constant_time_equal,
    hmac_sha256,
    sha256,
    sha256_hex,
)
from repro.errors import CryptoError


def test_fortuna_requires_seeding():
    with pytest.raises(CryptoError):
        Fortuna().random_bytes(16)


def test_fortuna_deterministic_per_seed():
    assert seeded_fortuna(b"seed").random_bytes(64) == \
        seeded_fortuna(b"seed").random_bytes(64)


def test_fortuna_different_seeds_differ():
    assert seeded_fortuna(b"a").random_bytes(32) != \
        seeded_fortuna(b"b").random_bytes(32)


def test_fortuna_rekeys_between_requests():
    generator = seeded_fortuna(b"seed")
    assert generator.random_bytes(32) != generator.random_bytes(32)


def test_fortuna_request_sizes():
    generator = seeded_fortuna(b"seed")
    assert generator.random_bytes(0) == b""
    assert len(generator.random_bytes(1)) == 1
    assert len(generator.random_bytes(33)) == 33
    with pytest.raises(CryptoError):
        generator.random_bytes((1 << 20) + 1)
    with pytest.raises(CryptoError):
        generator.random_bytes(-1)


def test_fortuna_reseed_changes_stream():
    generator = seeded_fortuna(b"seed")
    fork = seeded_fortuna(b"seed")
    fork.reseed(b"more entropy")
    assert generator.random_bytes(32) != fork.random_bytes(32)


def test_sha256_known_value():
    assert sha256_hex(b"abc") == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_incremental_hash_matches_one_shot():
    ctx = IncrementalHash()
    ctx.update(b"hello ")
    ctx.update(b"world")
    assert ctx.digest() == sha256(b"hello world")
    assert ctx.length == 11


def test_incremental_hash_empty():
    assert IncrementalHash().digest() == sha256(b"")


def test_hmac_sha256_rfc4231_case_1():
    key = b"\x0b" * 20
    assert hmac_sha256(key, b"Hi There").hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"diff")
    assert not constant_time_equal(b"same", b"samelonger")
