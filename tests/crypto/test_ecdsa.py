"""ECDSA: RFC 6979 determinism, verification, malleability, failures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec, ecdsa
from repro.errors import CryptoError, SignatureError

_D = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
_KEYPAIR = ecdsa.keypair_from_private(_D)


def test_rfc6979_sample_r():
    signature = ecdsa.sign(_D, b"sample")
    r = int.from_bytes(signature[:32], "big")
    assert r == 0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716


def test_rfc6979_sample_s_up_to_negation():
    signature = ecdsa.sign(_D, b"sample")
    s = int.from_bytes(signature[32:], "big")
    expected = 0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8
    assert s in (expected, ec.N - expected)  # low-s normalisation


def test_rfc6979_test_vector():
    signature = ecdsa.sign(_D, b"test")
    r = int.from_bytes(signature[:32], "big")
    assert r == 0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367


def test_signing_is_deterministic():
    assert ecdsa.sign(_D, b"message") == ecdsa.sign(_D, b"message")


def test_sign_verify_roundtrip():
    signature = ecdsa.sign(_D, b"evidence body")
    ecdsa.verify(_KEYPAIR.public, b"evidence body", signature)


def test_low_s_normalisation():
    for message in (b"a", b"b", b"c", b"d"):
        s = int.from_bytes(ecdsa.sign(_D, message)[32:], "big")
        assert s <= ec.N // 2


def test_verify_rejects_wrong_message():
    signature = ecdsa.sign(_D, b"original")
    with pytest.raises(SignatureError):
        ecdsa.verify(_KEYPAIR.public, b"tampered", signature)


def test_verify_rejects_wrong_key():
    signature = ecdsa.sign(_D, b"original")
    other = ecdsa.keypair_from_private(777)
    with pytest.raises(SignatureError):
        ecdsa.verify(other.public, b"original", signature)


def test_verify_rejects_bit_flipped_signature():
    signature = bytearray(ecdsa.sign(_D, b"original"))
    signature[10] ^= 0x04
    with pytest.raises(SignatureError):
        ecdsa.verify(_KEYPAIR.public, b"original", bytes(signature))


def test_verify_rejects_bad_length():
    with pytest.raises(SignatureError):
        ecdsa.verify(_KEYPAIR.public, b"m", b"\x01" * 63)


def test_verify_rejects_zero_scalars():
    with pytest.raises(SignatureError):
        ecdsa.verify(_KEYPAIR.public, b"m", b"\x00" * 64)


def test_is_valid_boolean_wrapper():
    signature = ecdsa.sign(_D, b"m")
    assert ecdsa.is_valid(_KEYPAIR.public, b"m", signature)
    assert not ecdsa.is_valid(_KEYPAIR.public, b"other", signature)


def test_keypair_from_private_validates_range():
    with pytest.raises(CryptoError):
        ecdsa.keypair_from_private(0)


def test_keypair_from_seed_stream_rejection_sampling():
    # A stream that first yields an out-of-range scalar, then a valid one.
    chunks = [(ec.N + 5).to_bytes(32, "big"), (12345).to_bytes(32, "big")]

    def read(n):
        return chunks.pop(0)

    keypair = ecdsa.keypair_from_seed_stream(read)
    assert keypair.private == 12345


@settings(max_examples=8, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_sign_verify_property(message):
    signature = ecdsa.sign(_D, message)
    ecdsa.verify(_KEYPAIR.public, message, signature)
