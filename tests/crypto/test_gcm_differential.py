"""Differential tests pinning the fast GCM paths to the scalar reference.

The vectorised CTR/GHASH pipeline and the retained per-block reference
must compute the *same function* for every input: identical ciphertext,
identical tag, identical accept/reject decision — across sizes spanning
the scalar/striped threshold and the stripe width, every chunking of the
streaming API, and every tamper position. Hypothesis drives randomised
cases; boundary sizes are enumerated exhaustively.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import gcm
from repro.crypto.gcm import (
    STRIPE_WIDTH,
    TAG_SIZE,
    AesGcm,
    _VECTOR_MIN_BLOCKS,
)
from repro.errors import AuthenticationError

_BLOCK = 16
_KEY = b"\x9a" * 16
_IV = b"\x5b" * 12

# Sizes around every algorithmic boundary: empty, sub-block, block edges,
# the scalar->striped threshold (_VECTOR_MIN_BLOCKS blocks), one and two
# stripe widths, the threading threshold, and megabyte scale (3 MB is the
# largest point of Fig. 7).
_EDGE_SIZES = [
    0, 1, 15, 16, 17,
    _VECTOR_MIN_BLOCKS * _BLOCK - 1,
    _VECTOR_MIN_BLOCKS * _BLOCK,
    _VECTOR_MIN_BLOCKS * _BLOCK + 1,
    STRIPE_WIDTH * _BLOCK * 2 + 7,
    4096,
]
_BULK_SIZES = [1 << 20, 3 << 20]


def _material(size: int, label: bytes = b"") -> bytes:
    """Deterministic pseudo-random bytes (sha256 counter stream)."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(hashlib.sha256(label + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:size])


def _both_paths(fn):
    result = fn()
    with gcm.reference_paths():
        reference = fn()
    return result, reference


@pytest.mark.parametrize("size", _EDGE_SIZES)
def test_seal_matches_reference_at_boundaries(size):
    cipher = AesGcm(_KEY)
    plaintext = _material(size)
    aad = _material(29, b"aad")
    fast, reference = _both_paths(lambda: cipher.seal(_IV, plaintext, aad))
    assert fast == reference
    opened, opened_ref = _both_paths(lambda: cipher.open(_IV, fast, aad))
    assert opened == plaintext
    assert opened_ref == plaintext


@pytest.mark.parametrize("size", _BULK_SIZES)
def test_seal_matches_reference_at_bulk_scale(size):
    cipher = AesGcm(_KEY)
    plaintext = _material(size)
    fast, reference = _both_paths(lambda: cipher.seal(_IV, plaintext))
    assert fast == reference
    assert cipher.open(_IV, fast) == plaintext


def test_all_tamper_positions_rejected_on_both_paths():
    cipher = AesGcm(_KEY)
    plaintext = _material(48)
    aad = b"header"
    sealed = cipher.seal(_IV, plaintext, aad)
    for position in range(len(sealed)):  # every ciphertext and tag byte
        tampered = bytearray(sealed)
        tampered[position] ^= 0x01
        tampered = bytes(tampered)
        with pytest.raises(AuthenticationError):
            cipher.open(_IV, tampered, aad)
        with gcm.reference_paths():
            with pytest.raises(AuthenticationError):
                cipher.open(_IV, tampered, aad)
        stream = cipher.stream_open(_IV, aad)
        stream.update(tampered)
        with pytest.raises(AuthenticationError):
            stream.final()


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(0, 6 * STRIPE_WIDTH * _BLOCK),
    aad_size=st.integers(0, 64),
    seed=st.integers(0, 2**32 - 1),
)
def test_seal_differential(size, aad_size, seed):
    cipher = AesGcm(_KEY)
    label = seed.to_bytes(4, "big")
    plaintext = _material(size, label)
    aad = _material(aad_size, label + b"aad")
    fast, reference = _both_paths(lambda: cipher.seal(_IV, plaintext, aad))
    assert fast == reference
    assert cipher.open(_IV, fast, aad) == plaintext


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(0, 3 * STRIPE_WIDTH * _BLOCK),
    widths=st.lists(st.integers(1, 700), min_size=1, max_size=6),
    seed=st.integers(0, 2**32 - 1),
)
def test_stream_chunking_differential(size, widths, seed):
    """Any chunking of seal/open streams equals the one-shot result."""
    cipher = AesGcm(_KEY)
    plaintext = _material(size, seed.to_bytes(4, "big"))
    sealed = cipher.seal(_IV, plaintext)

    def run_streams():
        stream = cipher.stream_seal(_IV)
        produced = bytearray()
        offset = 0
        index = 0
        while offset < len(plaintext):
            width = widths[index % len(widths)]
            produced.extend(stream.update(plaintext[offset : offset + width]))
            offset += width
            index += 1
        produced.extend(stream.final())

        opener = cipher.stream_open(_IV)
        offset = 0
        index = 0
        while offset < len(sealed):
            width = widths[index % len(widths)]
            opener.update(sealed[offset : offset + width])
            offset += width
            index += 1
        return bytes(produced), opener.final()

    fast_sealed, fast_opened = run_streams()
    assert fast_sealed == sealed
    assert fast_opened == plaintext
    with gcm.reference_paths():
        ref_sealed, ref_opened = run_streams()
    assert ref_sealed == sealed
    assert ref_opened == plaintext


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(1, 2 * STRIPE_WIDTH * _BLOCK),
    tamper=st.integers(0, 2**32 - 1),
    seed=st.integers(0, 2**32 - 1),
)
def test_tamper_differential(size, tamper, seed):
    """Fast and reference agree on rejecting any tampered byte."""
    cipher = AesGcm(_KEY)
    plaintext = _material(size, seed.to_bytes(4, "big"))
    sealed = bytearray(cipher.seal(_IV, plaintext))
    sealed[tamper % len(sealed)] ^= 1 + (tamper >> 8) % 255
    sealed = bytes(sealed)
    for run in (lambda: cipher.open(_IV, sealed),):
        with pytest.raises(AuthenticationError):
            run()
        with gcm.reference_paths():
            with pytest.raises(AuthenticationError):
                run()
