"""Streaming AEAD: NIST KATs at adversarial chunk splits, no-release-before-tag.

The streaming API must be byte-identical to one-shot ``seal``/``open`` for
*every* way of cutting the data into chunks — including 1-byte drips,
just-under/just-over block splits (15/17), and splits that straddle the
trailing tag on the open path — on both the fast and reference paths.
The open stream must never generate a byte of keystream before the tag
verifies.
"""

import binascii

import pytest

from repro.crypto import gcm
from repro.crypto.gcm import AesGcm, TAG_SIZE
from repro.errors import AuthenticationError, CryptoError

h = binascii.unhexlify

# NIST SP 800-38D / McGrew–Viega AES-128 test cases 1, 2, and 4.
_KATS = [
    (b"\x00" * 16, b"\x00" * 12, b"", b"",
     h("58e2fccefa7e3061367f1d57a4e7455a")),
    (b"\x00" * 16, b"\x00" * 12, b"\x00" * 16, b"",
     h("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")),
    (h("feffe9928665731c6d6a8f9467308308"),
     h("cafebabefacedbaddecaf888"),
     h("d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
       "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"),
     h("feedfacedeadbeeffeedfacedeadbeefabaddad2"),
     h("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
       "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
       "5bc94fbc3221a5db94fae95ae7121a47")),
]

# Adversarial chunk widths: 1-byte drip, one-under/one-over a block, a
# block, and widths chosen so a boundary lands inside the trailing tag.
_SPLITS = [1, 15, 16, 17, 5, 23]


def _chunks(data, width):
    return [data[i : i + width] for i in range(0, len(data), width)]


def _tag_straddling_chunks(sealed):
    """Split so one chunk boundary falls strictly inside the final tag."""
    if len(sealed) < TAG_SIZE + 1:
        return [sealed[: len(sealed) - 7], sealed[len(sealed) - 7 :]]
    return [
        sealed[: len(sealed) - TAG_SIZE - 3],
        sealed[len(sealed) - TAG_SIZE - 3 : len(sealed) - 7],
        sealed[len(sealed) - 7 :],
    ]


@pytest.fixture(params=["fast", "reference"])
def path(request):
    previous = gcm.use_fast_paths(request.param == "fast")
    yield request.param
    gcm.use_fast_paths(previous)


@pytest.mark.parametrize("kat", _KATS, ids=["case1", "case2", "case4"])
@pytest.mark.parametrize("width", _SPLITS)
def test_stream_seal_matches_kat(path, kat, width):
    key, iv, plaintext, aad, expected = kat
    cipher = AesGcm(key)
    stream = cipher.stream_seal(iv, aad)
    sealed = b"".join(stream.update(c) for c in _chunks(plaintext, width))
    sealed += stream.final()
    assert sealed == expected
    assert sealed == cipher.seal(iv, plaintext, aad)


@pytest.mark.parametrize("kat", _KATS, ids=["case1", "case2", "case4"])
@pytest.mark.parametrize("width", _SPLITS)
def test_stream_open_matches_kat(path, kat, width):
    key, iv, plaintext, aad, expected = kat
    cipher = AesGcm(key)
    stream = cipher.stream_open(iv, aad)
    for chunk in _chunks(expected, width):
        stream.update(chunk)
    assert stream.final() == plaintext
    assert cipher.open(iv, expected, aad) == plaintext


@pytest.mark.parametrize("kat", _KATS, ids=["case1", "case2", "case4"])
def test_stream_open_tag_straddling_split(path, kat):
    key, iv, plaintext, aad, expected = kat
    cipher = AesGcm(key)
    stream = cipher.stream_open(iv, aad)
    for chunk in _tag_straddling_chunks(expected):
        stream.update(chunk)
    assert stream.final() == plaintext


def test_stream_update_into_writes_in_place(path):
    cipher = AesGcm(b"k" * 16)
    plaintext = bytes(range(256)) * 5
    out = bytearray(len(plaintext) + TAG_SIZE)
    view = memoryview(out)
    stream = cipher.stream_seal(b"i" * 12)
    offset = 0
    for chunk in _chunks(plaintext, 100):
        offset += stream.update_into(chunk, view[offset:])
    view[offset:] = stream.final()
    assert bytes(out) == cipher.seal(b"i" * 12, plaintext)


def test_tampered_mid_stream_releases_no_plaintext(path, monkeypatch):
    """A tampered stream raises from final() before any keystream exists."""
    cipher = AesGcm(b"k" * 16)
    sealed = bytearray(cipher.seal(b"i" * 12, b"bulk secret material" * 40))
    sealed[200] ^= 0x10  # flip a ciphertext bit mid-stream

    def forbidden(self, src, out):
        raise AssertionError("keystream generated before tag verification")

    monkeypatch.setattr(gcm._CtrFast, "xor_into", forbidden)
    monkeypatch.setattr(gcm._CtrReference, "xor_into", forbidden)
    stream = cipher.stream_open(b"i" * 12)
    for offset in range(0, len(sealed), 64):
        stream.update(bytes(sealed[offset : offset + 64]))
    with pytest.raises(AuthenticationError):
        stream.final()


def test_stream_open_too_short_rejected(path):
    stream = AesGcm(b"k" * 16).stream_open(b"i" * 12)
    stream.update(b"short")
    with pytest.raises(AuthenticationError):
        stream.final()


def test_stream_reuse_after_final_rejected(path):
    cipher = AesGcm(b"k" * 16)
    stream = cipher.stream_seal(b"i" * 12)
    stream.update(b"data")
    stream.final()
    with pytest.raises(CryptoError):
        stream.update(b"more")
    with pytest.raises(CryptoError):
        stream.final()


def test_stream_bad_iv_size(path):
    cipher = AesGcm(b"k" * 16)
    with pytest.raises(CryptoError):
        cipher.stream_seal(b"short")
    with pytest.raises(CryptoError):
        cipher.stream_open(b"short")
