"""ECDHE agreement and the SGX-style key-derivation chain."""

import pytest

from repro.crypto import ec, ecdh
from repro.crypto.fortuna import seeded_fortuna
from repro.crypto.kdf import derive_kdk, derive_key, derive_session_keys
from repro.errors import CryptoError


def _pair(seed: bytes):
    return ecdh.generate(seeded_fortuna(seed).random_bytes)


def test_shared_secret_agreement():
    alice = _pair(b"alice")
    bob = _pair(b"bob")
    assert ecdh.shared_secret(alice.private, bob.public) == \
        ecdh.shared_secret(bob.private, alice.public)


def test_shared_secret_is_32_bytes():
    alice = _pair(b"a")
    bob = _pair(b"b")
    assert len(ecdh.shared_secret(alice.private, bob.public)) == 32


def test_distinct_sessions_distinct_secrets():
    alice = _pair(b"alice")
    bob = _pair(b"bob")
    carol = _pair(b"carol")
    assert ecdh.shared_secret(alice.private, bob.public) != \
        ecdh.shared_secret(alice.private, carol.public)


def test_generation_is_deterministic_per_seed():
    assert _pair(b"same").private == _pair(b"same").private
    assert _pair(b"one").private != _pair(b"two").private


def test_invalid_peer_point_rejected():
    alice = _pair(b"alice")
    with pytest.raises(CryptoError):
        ecdh.shared_secret(alice.private, ec.Point(1, 1))


def test_infinity_peer_rejected():
    alice = _pair(b"alice")
    with pytest.raises(CryptoError):
        ecdh.shared_secret(alice.private, ec.INFINITY)


def test_public_bytes_is_sec1():
    alice = _pair(b"alice")
    encoded = alice.public_bytes()
    assert len(encoded) == 65 and encoded[0] == 0x04


def test_kdk_requires_32_bytes():
    with pytest.raises(CryptoError):
        derive_kdk(b"short")


def test_kdk_uses_little_endian_secret():
    secret = bytes(range(32))
    assert derive_kdk(secret) != derive_kdk(secret[::-1]) or secret == secret[::-1]


def test_derived_keys_differ_by_label():
    kdk = derive_kdk(b"\x11" * 32)
    assert derive_key(kdk, b"SMK") != derive_key(kdk, b"SK")


def test_derive_key_requires_kdk_size():
    with pytest.raises(CryptoError):
        derive_key(b"short", b"SMK")


def test_session_keys_deterministic():
    secret = b"\xab" * 32
    first = derive_session_keys(secret)
    second = derive_session_keys(secret)
    assert first.mac_key == second.mac_key
    assert first.enc_key == second.enc_key
    assert first.mac_key != first.enc_key


def test_session_keys_bind_to_secret():
    assert derive_session_keys(b"\x01" * 32).mac_key != \
        derive_session_keys(b"\x02" * 32).mac_key


def test_end_to_end_key_agreement_chain():
    """The full msg0/msg1 key path: ECDHE -> KDK -> (K_m, K_e)."""
    attester = _pair(b"attester")
    verifier = _pair(b"verifier")
    keys_attester = derive_session_keys(
        ecdh.shared_secret(attester.private, verifier.public))
    keys_verifier = derive_session_keys(
        ecdh.shared_secret(verifier.private, attester.public))
    assert keys_attester == keys_verifier
