"""AES-CMAC against RFC 4493 vectors."""

import binascii

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cmac import AesCmac, aes_cmac
from repro.errors import AuthenticationError

h = binascii.unhexlify

_KEY = h("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.mark.parametrize("message,expected", [
    ("", "bb1d6929e95937287fa37d129b756746"),
    ("6bc1bee22e409f96e93d7e117393172a",
     "070a16b46b4d4144f79bdd9dd04a287c"),
    ("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
     "30c81c46a35ce411",
     "dfa66747de9ae63030ca32611497c827"),
    ("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
     "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
     "51f0bebf7e3b9d92fc49741779363cfe"),
])
def test_rfc4493_vectors(message, expected):
    assert aes_cmac(_KEY, h(message)) == h(expected)


def test_verify_accepts_valid():
    mac = aes_cmac(_KEY, b"message")
    AesCmac(_KEY).verify(b"message", mac)


def test_verify_rejects_tampered_message():
    mac = aes_cmac(_KEY, b"message")
    with pytest.raises(AuthenticationError):
        AesCmac(_KEY).verify(b"messagX", mac)


def test_verify_rejects_tampered_mac():
    mac = bytearray(aes_cmac(_KEY, b"message"))
    mac[0] ^= 1
    with pytest.raises(AuthenticationError):
        AesCmac(_KEY).verify(b"message", bytes(mac))


def test_different_keys_different_macs():
    assert aes_cmac(b"a" * 16, b"m") != aes_cmac(b"b" * 16, b"m")


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=200))
def test_mac_deterministic_and_16_bytes(message):
    first = aes_cmac(_KEY, message)
    assert len(first) == 16
    assert first == aes_cmac(_KEY, message)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=120), st.integers(0, 119))
def test_single_bit_flip_changes_mac(message, position):
    position %= len(message)
    mutated = bytearray(message)
    mutated[position] ^= 0x40
    assert aes_cmac(_KEY, message) != aes_cmac(_KEY, bytes(mutated))
