"""Batch ECDSA verification: batch == per-signature, always.

The randomised-linear-combination batch (:mod:`repro.crypto.batch`) is
an algorithmic substitution, not a protocol change, so the pin here is
*differential*: for every input — valid, forged, malformed, adversarial
cancellation pairs — ``verify_batch`` must return exactly the verdict
per-signature :func:`repro.crypto.ecdsa.verify` returns for each item.
KATs reuse the RFC 6979 A.2.5 vectors so the batch path is also checked
against external ground truth, on both the fast and reference EC paths.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec, ecdsa
from repro.crypto.batch import BATCH_MAX, verify_batch
from repro.errors import SignatureError

_RFC6979_PRIVATE = \
    0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
_RFC6979_PUB = ec.Point(
    0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6,
    0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299)

_RFC6979_VECTORS = [
    (b"sample",
     0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716,
     0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8),
    (b"test",
     0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367,
     0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083),
]


@pytest.fixture(params=["fast", "naive"])
def crypto_path(request):
    previous = ec.use_fast_paths(request.param == "fast")
    yield request.param
    ec.use_fast_paths(previous)


@pytest.fixture(autouse=True)
def _clean_memo():
    ecdsa.clear_verified_memo()
    yield
    ecdsa.clear_verified_memo()


def _keypair(seed: int) -> ecdsa.KeyPair:
    return ecdsa.keypair_from_private(1 + seed % (ec.N - 1))


def _signed(seed: int, message: bytes):
    pair = _keypair(seed)
    return pair.public, message, ecdsa.sign(pair.private, message)


def _reference(items):
    """The ground truth: n independent per-signature verifications."""
    verdicts = []
    for public, message, signature in items:
        try:
            ecdsa.verify(public, message, signature)
            verdicts.append(None)
        except SignatureError as exc:
            verdicts.append(exc)
    ecdsa.clear_verified_memo()  # the reference must not seed the batch
    return verdicts


def _assert_matches(items):
    expected = _reference(items)
    got = verify_batch(items)
    assert len(got) == len(expected)
    for want, have in zip(expected, got):
        if want is None:
            assert have is None
        else:
            assert isinstance(have, SignatureError)
            assert str(have) == str(want)


# -- known-answer vectors ------------------------------------------------------

def test_rfc6979_vectors_batch_verify(crypto_path):
    items = [(_RFC6979_PUB, message,
              r.to_bytes(32, "big") + s.to_bytes(32, "big"))
             for message, r, s in _RFC6979_VECTORS]
    # Both RFC vectors in one batch — including the high-s one.
    assert verify_batch(items) == [None, None]


def test_rfc6979_vectors_with_one_flipped_message(crypto_path):
    items = [(_RFC6979_PUB, message,
              r.to_bytes(32, "big") + s.to_bytes(32, "big"))
             for message, r, s in _RFC6979_VECTORS]
    items[1] = (items[1][0], items[1][1] + b"?", items[1][2])
    verdicts = verify_batch(items)
    assert verdicts[0] is None
    assert isinstance(verdicts[1], SignatureError)
    _assert_matches(items)


# -- differential suite --------------------------------------------------------

def test_all_valid_full_batch(crypto_path):
    items = [_signed(i + 1, b"msg %d" % i) for i in range(BATCH_MAX)]
    assert verify_batch(items) == [None] * BATCH_MAX
    _assert_matches(items)


def test_forged_item_attribution_is_exact(crypto_path):
    # One forgery in each possible slot: the batch must name THAT slot,
    # and only that slot, with the per-signature error text.
    for bad in range(4):
        items = [_signed(i + 1, b"attr %d" % i) for i in range(4)]
        public, message, signature = items[bad]
        items[bad] = (public, message + b" tampered", signature)
        verdicts = verify_batch(items)
        for index, verdict in enumerate(verdicts):
            if index == bad:
                assert isinstance(verdict, SignatureError)
                assert str(verdict) == "signature does not verify"
            else:
                assert verdict is None


def test_cancellation_pair_is_rejected(crypto_path):
    # The classic attack on UNrandomised batch verification: submit a
    # signature twice as (r, s) and (r, n - s). Their R points negate,
    # so with lambda_1 == lambda_2 the equation errors could cancel.
    # Random lambdas (and the per-item fallback) must reject the forged
    # high-s twin whenever it is individually invalid — and here both
    # verify individually (ECDSA is s-malleable), so BOTH must pass,
    # matching the per-signature oracle exactly.
    public, message, signature = _signed(7, b"cancellation")
    r = signature[:32]
    s = int.from_bytes(signature[32:], "big")
    twin = r + (ec.N - s).to_bytes(32, "big")
    items = [(public, message, signature), (public, message, twin)]
    _assert_matches(items)


def test_crafted_invalid_pair_never_accepted_by_cancellation(crypto_path):
    # Two items that are each individually invalid. No batch may ever
    # report either as valid, no matter how the equation errors relate.
    public, message, signature = _signed(9, b"forgery base")
    bad1 = (public, message + b"!", signature)
    bad2 = (public, message + b"!!", signature)
    good = _signed(10, b"innocent bystander")
    items = [bad1, good, bad2]
    verdicts = verify_batch(items)
    assert isinstance(verdicts[0], SignatureError)
    assert verdicts[1] is None
    assert isinstance(verdicts[2], SignatureError)


def test_malformed_items_get_per_signature_errors(crypto_path):
    good = _signed(3, b"ok")
    wrong_len = (good[0], b"ok", b"\x00" * 63)
    zero_r = (good[0], b"ok", b"\x00" * 32 + good[2][32:])
    big_s = (good[0], b"ok", good[2][:32] + ec.N.to_bytes(32, "big"))
    off_curve = (ec.Point(5, 5), b"ok", good[2])
    items = [good, wrong_len, zero_r, big_s, off_curve]
    _assert_matches(items)


def test_wraparound_r_falls_back_per_item(crypto_path):
    # r with r + n < p is the x-wraparound ambiguity: the batch must
    # step it out to the per-item path rather than guess the lift.
    good = _signed(4, b"wrap")
    tiny_r = (b"\x00" * 28 + b"\x00\x00\x00\x2a") + good[2][32:]
    assert int.from_bytes(tiny_r[:32], "big") + ec.N < ec.P
    items = [good, (good[0], b"wrap", tiny_r), _signed(5, b"wrap2")]
    _assert_matches(items)


def test_unliftable_r_rejected_like_reference(crypto_path):
    # An r that is no curve point's x: direct rejection, same error.
    good = _signed(6, b"lift")
    r = ec.N - 1
    while ec.lift_x(r) is not None or r + ec.N < ec.P:
        r -= 1
    forged = good[2][:0] + r.to_bytes(32, "big") + good[2][32:]
    items = [good, (good[0], b"lift", forged)]
    _assert_matches(items)


def test_empty_and_singleton_batches(crypto_path):
    assert verify_batch([]) == []
    items = [_signed(8, b"solo")]
    assert verify_batch(items) == [None]
    _assert_matches(items)


def test_oversized_input_chunks_beyond_batch_max(crypto_path):
    count = BATCH_MAX + 3
    items = [_signed(i + 20, b"chunk %d" % i) for i in range(count)]
    items[BATCH_MAX] = (items[BATCH_MAX][0],
                        items[BATCH_MAX][1] + b"X",
                        items[BATCH_MAX][2])
    verdicts = verify_batch(items)
    for index, verdict in enumerate(verdicts):
        if index == BATCH_MAX:
            assert isinstance(verdict, SignatureError)
        else:
            assert verdict is None


def test_parameter_validation():
    with pytest.raises(ValueError):
        verify_batch([], max_batch=1)
    with pytest.raises(ValueError):
        verify_batch([], randomizer_bits=4)
    with pytest.raises(ValueError):
        verify_batch([], randomizer_bits=256)


def test_adversarial_rng_cannot_force_acceptance():
    # Even an rng an attacker fully controls cannot make a forgery pass:
    # a failed combination falls back to the per-item oracle, and a
    # "passing" combination forced by rng still only seeds acceptance
    # for the batch check, never skips the fallback on mismatch. Feed a
    # constant rng (worst case: all lambdas equal) with the crafted
    # cancellation-style pair; the forged item must still be rejected.
    public, message, signature = _signed(11, b"rng attack")
    forged = (public, message + b"x", signature)
    items = [(public, message, signature), forged]
    verdicts = verify_batch(items, rng=lambda n: b"\x01" * n)
    assert verdicts[0] is None
    assert isinstance(verdicts[1], SignatureError)


# -- memo seeding --------------------------------------------------------------

def test_seed_memo_makes_next_verify_a_lookup(crypto_path):
    items = [_signed(i + 30, b"memo %d" % i) for i in range(3)]
    assert verify_batch(items, seed_memo=True) == [None, None, None]
    assert ecdsa.verified_memo_size() == 3
    for public, message, signature in items:
        ecdsa.verify(public, message, signature)  # consumes the memo
    assert ecdsa.verified_memo_size() == 0
    for public, message, signature in items:
        ecdsa.verify(public, message, signature)  # full equation again


def test_memo_is_consume_once_and_exact():
    public, message, signature = _signed(40, b"once")
    verify_batch([(public, message, signature),
                  _signed(41, b"other")], seed_memo=True)
    # A different message must not hit the seeded entry.
    with pytest.raises(SignatureError):
        ecdsa.verify(public, message + b"?", signature)
    ecdsa.verify(public, message, signature)
    assert not ecdsa.is_valid(public, message + b"?", signature)


def test_failed_items_are_never_seeded(crypto_path):
    public, message, signature = _signed(42, b"never seed")
    verify_batch([(public, message + b"!", signature),
                  _signed(43, b"fine")], seed_memo=True)
    assert ecdsa.verified_memo_size() == 1  # only the valid one
    with pytest.raises(SignatureError):
        ecdsa.verify(public, message + b"!", signature)


# -- property-based differential ----------------------------------------------

@st.composite
def _batch_items(draw):
    n = draw(st.integers(2, 6))
    items = []
    for index in range(n):
        seed = draw(st.integers(1, 2**64))
        message = draw(st.binary(min_size=0, max_size=40))
        public, _, signature = _signed(seed, message)
        mutation = draw(st.sampled_from(
            ["valid", "flip_message", "flip_sig", "high_s", "swap_key"]))
        if mutation == "flip_message":
            message += b"\x00"
        elif mutation == "flip_sig":
            byte = draw(st.integers(0, 63))
            signature = (signature[:byte]
                         + bytes([signature[byte] ^ 0x55])
                         + signature[byte + 1:])
        elif mutation == "high_s":
            s = int.from_bytes(signature[32:], "big")
            signature = signature[:32] + (ec.N - s).to_bytes(32, "big")
        elif mutation == "swap_key":
            public = _keypair(seed + 1).public
        items.append((public, message, signature))
    return items


@settings(max_examples=20, deadline=None)
@given(_batch_items())
def test_batch_matches_per_signature_verify(items):
    expected = _reference(items)
    got = verify_batch(items)
    for want, have in zip(expected, got):
        assert (want is None) == (have is None)
        if want is not None:
            assert str(have) == str(want)


@settings(max_examples=10, deadline=None)
@given(_batch_items())
def test_batch_matches_on_reference_ec_path(items):
    previous = ec.use_fast_paths(False)
    try:
        expected = _reference(items)
        got = verify_batch(items)
    finally:
        ec.use_fast_paths(previous)
    for want, have in zip(expected, got):
        assert (want is None) == (have is None)
