"""P-256 group arithmetic: structure, known multiples, encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec
from repro.errors import CryptoError


def test_generator_on_curve():
    assert ec.is_on_curve(ec.GENERATOR)


def test_generator_has_group_order():
    assert ec.scalar_mult(ec.N, ec.GENERATOR).is_infinity


def test_known_scalar_multiple_2g():
    # 2G for P-256 (public test vector).
    point = ec.scalar_base_mult(2)
    assert point.x == int(
        "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16)
    assert point.y == int(
        "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16)


def test_known_scalar_multiple_5g():
    point = ec.scalar_base_mult(5)
    assert point.x == int(
        "51590B7A515140D2D784C85608668FDFEF8C82FD1F5BE52421554A0DC3D033ED", 16)


def test_add_commutes():
    p = ec.scalar_base_mult(11)
    q = ec.scalar_base_mult(23)
    assert ec.add(p, q) == ec.add(q, p)


def test_add_matches_scalar_sum():
    p = ec.scalar_base_mult(11)
    q = ec.scalar_base_mult(23)
    assert ec.add(p, q) == ec.scalar_base_mult(34)


def test_double_via_add():
    p = ec.scalar_base_mult(7)
    assert ec.add(p, p) == ec.scalar_base_mult(14)


def test_infinity_is_identity():
    p = ec.scalar_base_mult(99)
    assert ec.add(p, ec.INFINITY) == p
    assert ec.add(ec.INFINITY, p) == p


def test_inverse_sums_to_infinity():
    p = ec.scalar_base_mult(7)
    negated = ec.Point(p.x, (-p.y) % ec.P)
    assert ec.add(p, negated).is_infinity


def test_encode_decode_roundtrip():
    p = ec.scalar_base_mult(1234567)
    assert ec.decode_point(p.encode()) == p


def test_decode_rejects_off_curve_point():
    p = ec.scalar_base_mult(3)
    bad = b"\x04" + p.x.to_bytes(32, "big") + ((p.y + 1) % ec.P).to_bytes(32, "big")
    with pytest.raises(CryptoError):
        ec.decode_point(bad)


def test_decode_rejects_bad_prefix():
    p = ec.scalar_base_mult(3)
    with pytest.raises(CryptoError):
        ec.decode_point(b"\x02" + p.encode()[1:])


def test_encode_infinity_rejected():
    with pytest.raises(CryptoError):
        ec.INFINITY.encode()


def test_private_key_validation():
    ec.validate_private_key(1)
    ec.validate_private_key(ec.N - 1)
    for bad in (0, ec.N, ec.N + 5, -3):
        with pytest.raises(CryptoError):
            ec.validate_private_key(bad)


def test_public_key_validation_rejects_infinity():
    with pytest.raises(CryptoError):
        ec.validate_public_key(ec.INFINITY)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, ec.N - 1), st.integers(1, ec.N - 1))
def test_scalar_mult_distributes(a, b):
    left = ec.add(ec.scalar_base_mult(a), ec.scalar_base_mult(b))
    right = ec.scalar_base_mult((a + b) % ec.N)
    assert left == right


@settings(max_examples=10, deadline=None)
@given(st.integers(1, ec.N - 1))
def test_dh_commutativity(scalar):
    other = (scalar * 31 + 17) % ec.N or 1
    shared_one = ec.scalar_mult(scalar, ec.scalar_base_mult(other))
    shared_two = ec.scalar_mult(other, ec.scalar_base_mult(scalar))
    assert shared_one == shared_two


# -- dedicated rejection messages (decode_point / validate_public_key) --------


def test_decode_rejects_infinity_encoding_with_dedicated_error():
    with pytest.raises(CryptoError, match="point at infinity"):
        ec.decode_point(b"\x00")


def test_decode_rejects_off_curve_with_dedicated_error():
    p = ec.scalar_base_mult(3)
    bad = b"\x04" + p.x.to_bytes(32, "big") \
        + ((p.y + 1) % ec.P).to_bytes(32, "big")
    with pytest.raises(CryptoError, match="not on secp256r1"):
        ec.decode_point(bad)


def test_decode_rejects_non_canonical_coordinate():
    # x == P is a non-canonical field element even though x mod P would
    # put the point on the curve.
    y = ec.GENERATOR.y
    bad = b"\x04" + ec.P.to_bytes(32, "big") + y.to_bytes(32, "big")
    with pytest.raises(CryptoError, match="canonical field element"):
        ec.decode_point(bad)


def test_decode_rejects_malformed_length():
    with pytest.raises(CryptoError, match="malformed uncompressed point"):
        ec.decode_point(b"\x04" + b"\x01" * 63)


@pytest.mark.parametrize("fast", [True, False])
def test_validate_public_key_rejections_on_both_paths(fast):
    previous = ec.use_fast_paths(fast)
    try:
        with pytest.raises(CryptoError, match="point at infinity"):
            ec.validate_public_key(ec.INFINITY)
        off_curve = ec.Point(ec.GENERATOR.x, (ec.GENERATOR.y + 1) % ec.P)
        with pytest.raises(CryptoError, match="not on secp256r1"):
            ec.validate_public_key(off_curve)
        # Same accept set: every on-curve non-infinity point passes
        # (secp256r1 has cofactor 1, so there is no small subgroup).
        ec.validate_public_key(ec.scalar_base_mult(42))
    finally:
        ec.use_fast_paths(previous)


def test_precompute_rejects_infinity():
    with pytest.raises(CryptoError, match="point at infinity"):
        ec.precompute_public_key(ec.INFINITY)


def test_key_table_cache_is_bounded():
    ec.clear_key_table_cache()
    capacity = ec.key_table_cache_info()["capacity"]
    for seed in range(1, capacity + 10):
        ec.precompute_public_key(ec.scalar_base_mult(seed))
    info = ec.key_table_cache_info()
    assert info["entries"] == capacity
    ec.clear_key_table_cache()
    assert ec.key_table_cache_info()["entries"] == 0
