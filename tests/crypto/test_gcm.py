"""AES-GCM: McGrew–Viega vectors, tamper detection, property tests."""

import binascii

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.gcm import AesGcm
from repro.errors import AuthenticationError, CryptoError

h = binascii.unhexlify

_KEY = h("feffe9928665731c6d6a8f9467308308")
_IV = h("cafebabefacedbaddecaf888")
_PT = h(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
_AAD = h("feedfacedeadbeeffeedfacedeadbeefabaddad2")


def test_gcm_test_case_4():
    sealed = AesGcm(_KEY).seal(_IV, _PT, _AAD)
    assert sealed[:-16] == h(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
    )
    assert sealed[-16:] == h("5bc94fbc3221a5db94fae95ae7121a47")


def test_gcm_test_case_1_empty():
    gcm = AesGcm(b"\x00" * 16)
    sealed = gcm.seal(b"\x00" * 12, b"")
    assert sealed == h("58e2fccefa7e3061367f1d57a4e7455a")


def test_gcm_test_case_2_single_block():
    gcm = AesGcm(b"\x00" * 16)
    sealed = gcm.seal(b"\x00" * 12, b"\x00" * 16)
    assert sealed[:16] == h("0388dace60b6a392f328c2b971b2fe78")
    assert sealed[16:] == h("ab6e47d42cec13bdf53a67b21257bddf")


def test_roundtrip_with_aad():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"i" * 12, b"hello watz", b"header")
    assert gcm.open(b"i" * 12, sealed, b"header") == b"hello watz"


def test_ciphertext_tamper_detected():
    gcm = AesGcm(b"k" * 16)
    sealed = bytearray(gcm.seal(b"i" * 12, b"secret blob content"))
    sealed[3] ^= 0x01
    with pytest.raises(AuthenticationError):
        gcm.open(b"i" * 12, bytes(sealed))


def test_tag_tamper_detected():
    gcm = AesGcm(b"k" * 16)
    sealed = bytearray(gcm.seal(b"i" * 12, b"secret"))
    sealed[-1] ^= 0x80
    with pytest.raises(AuthenticationError):
        gcm.open(b"i" * 12, bytes(sealed))


def test_wrong_aad_detected():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"i" * 12, b"secret", b"aad-1")
    with pytest.raises(AuthenticationError):
        gcm.open(b"i" * 12, sealed, b"aad-2")


def test_wrong_iv_detected():
    gcm = AesGcm(b"k" * 16)
    sealed = gcm.seal(b"i" * 12, b"secret")
    with pytest.raises(AuthenticationError):
        gcm.open(b"j" * 12, sealed)


def test_wrong_key_detected():
    sealed = AesGcm(b"k" * 16).seal(b"i" * 12, b"secret")
    with pytest.raises(AuthenticationError):
        AesGcm(b"x" * 16).open(b"i" * 12, sealed)


def test_bad_iv_size():
    with pytest.raises(CryptoError):
        AesGcm(b"k" * 16).seal(b"short", b"data")


def test_truncated_message_rejected():
    with pytest.raises(AuthenticationError):
        AesGcm(b"k" * 16).open(b"i" * 12, b"tooshort")


@settings(max_examples=25, deadline=None)
@given(plaintext=st.binary(max_size=300), aad=st.binary(max_size=64))
def test_roundtrip_property(plaintext, aad):
    gcm = AesGcm(b"p" * 16)
    sealed = gcm.seal(b"v" * 12, plaintext, aad)
    assert len(sealed) == len(plaintext) + 16
    assert gcm.open(b"v" * 12, sealed, aad) == plaintext
