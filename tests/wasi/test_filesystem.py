"""The WASI-FS extension (paper future work): files over Trusted Storage."""

import pytest

from repro.walc import compile_source
from repro.wasi import WasiEnvironment, WasiFilesystem, build_wasi_imports
from repro.wasi.filesystem import O_CREAT, O_EXCL, O_TRUNC, PREOPEN_FD
from repro.wasm import AotCompiler

# A Wasm application exercising the file API end to end: create a file,
# write, seek back, read, report.
_FS_APP = """
memory 2;
data 512 (110, 111, 116, 101, 115, 46, 116, 120, 116);  // "notes.txt"
data 600 (104, 105, 32, 116, 101, 101);                  // "hi tee"

import fn wasi_snapshot_preview1.path_open(a: i32, b: i32, c: i32, d: i32,
                                           e: i32, f: i64, g: i64, h: i32,
                                           i: i32) -> i32;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_read(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_seek(a: i32, b: i64, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_close(a: i32) -> i32;
import fn wasi_snapshot_preview1.fd_filestat_get(a: i32, b: i32) -> i32;

fn open_notes(oflags: i32) -> i32 {
  // dirfd=3, path at 512 len 9, rights/flags zero, result at 64
  var rc: i32 = path_open(3, 0, 512, 9, oflags, 0L, 0L, 0, 64);
  if (rc != 0) { return 0 - rc; }
  return load_i32(64);
}

export fn write_file() -> i32 {
  var fd: i32 = open_notes(1);  // O_CREAT
  if (fd < 0) { return fd; }
  store_i32(0, 600);  // iov base
  store_i32(4, 6);    // iov len
  var rc: i32 = fd_write(fd, 0, 1, 16);
  if (rc != 0) { return 0 - rc; }
  fd_close(fd);
  return load_i32(16);  // bytes written
}

export fn read_file() -> i32 {
  var fd: i32 = open_notes(0);
  if (fd < 0) { return fd; }
  fd_seek(fd, 3L, 0, 32);
  store_i32(0, 800);  // read buffer
  store_i32(4, 16);
  var rc: i32 = fd_read(fd, 0, 1, 16);
  if (rc != 0) { return 0 - rc; }
  fd_close(fd);
  // bytes read * 256 + first byte
  return load_i32(16) * 256 + load_u8(800);
}

export fn file_size() -> i64 {
  var fd: i32 = open_notes(0);
  if (fd < 0) { return -1L; }
  fd_filestat_get(fd, 128);
  fd_close(fd);
  return load_i64(128 + 32);  // filestat.size
}
"""


def _instantiate(filesystem):
    env = WasiEnvironment(filesystem=filesystem)
    binary = compile_source(_FS_APP)
    return AotCompiler().instantiate(binary, build_wasi_imports(env)), env


# -- the WasiFilesystem object itself -------------------------------------------


def test_open_create_write_read_roundtrip():
    fs = WasiFilesystem()
    fd = fs.open("f.txt", O_CREAT)
    assert fd > PREOPEN_FD
    assert fs.write(fd, b"hello") == 5
    fs.seek(fd, 0, 0)
    assert fs.read(fd, 10) == b"hello"
    assert fs.close(fd)


def test_open_missing_without_create():
    fs = WasiFilesystem()
    assert fs.open("missing", 0) < 0


def test_excl_rejects_existing():
    fs = WasiFilesystem()
    fs.write_file("f", b"x")
    assert fs.open("f", O_CREAT | O_EXCL) < 0


def test_trunc_empties_file():
    fs = WasiFilesystem()
    fs.write_file("f", b"content")
    fd = fs.open("f", O_TRUNC)
    assert fs.read(fd, 100) == b""


def test_sparse_write_zero_fills():
    fs = WasiFilesystem()
    fd = fs.open("f", O_CREAT)
    fs.seek(fd, 4, 0)
    fs.write(fd, b"x")
    assert fs.read_file("f") == b"\x00\x00\x00\x00x"


def test_unlink():
    fs = WasiFilesystem()
    fs.write_file("f", b"x")
    assert fs.unlink("f")
    assert not fs.unlink("f")
    assert not fs.exists("f")


def test_listdir_sorted():
    fs = WasiFilesystem()
    for name in ("b", "a", "c"):
        fs.write_file(name, b"")
    assert fs.listdir() == ["a", "b", "c"]


# -- through Wasm ------------------------------------------------------------------


def test_wasm_app_reads_and_writes_files():
    instance, _env = _instantiate(WasiFilesystem())
    assert instance.invoke("write_file") == 6
    # Read from offset 3: "tee", first byte 't' = 116.
    assert instance.invoke("read_file") == 3 * 256 + ord("t")
    assert instance.invoke("file_size") == 6


def test_host_sees_wasm_written_file():
    fs = WasiFilesystem()
    instance, _env = _instantiate(fs)
    instance.invoke("write_file")
    assert fs.read_file("notes.txt") == b"hi tee"


def test_without_extension_file_calls_trap():
    from repro.errors import TrapError

    instance, _env = _instantiate(None)
    with pytest.raises(TrapError, match="not implemented"):
        instance.invoke("write_file")


# -- inside WaTZ, backed by Trusted Storage ----------------------------------------


def test_files_persist_across_watz_sessions(device):
    binary = compile_source(_FS_APP)
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary, filesystem=True)
    assert device.run_wasm(session, loaded["app"], "write_file") == 6
    session.close()

    # A new session, a fresh Wasm instance: the file is still there,
    # because it lives in the TA's trusted storage.
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary, filesystem=True)
    assert device.run_wasm(session, loaded["app"], "file_size") == 6
    assert device.run_wasm(session, loaded["app"], "read_file") \
        == 3 * 256 + ord("t")
    session.close()


def test_storage_is_isolated_per_ta_uuid(device):
    """§VII's concern: another TA must not see these files."""
    binary = compile_source(_FS_APP)
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, binary, filesystem=True)
    device.run_wasm(session, loaded["app"], "write_file")
    session.close()

    watz_objects = device.kernel.trusted_storage.list_ids(
        "watz-runtime-4194304-aot")
    assert any("notes.txt" in object_id for object_id in watz_objects)
    assert device.kernel.trusted_storage.list_ids("some-other-ta") == []


def test_trusted_storage_api_direct(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    api = session.api
    # Storage writes bump the hardware monotonic counters, which only the
    # secure world can touch — so run as a TA invocation would.
    with device.soc.enter_secure_world():
        api.storage_put("config", b"\x01\x02")
        assert api.storage_exists("config")
        assert api.storage_get("config") == b"\x01\x02"
        assert "config" in api.storage_list()
        api.storage_delete("config")
        assert not api.storage_exists("config")
