"""Every registered WASI entry point charges the dispatch cost (ISSUE 2).

The CostModel's ``wasi_dispatch_ns`` is what separates the native-TA and
Wasm curves of Fig. 3a, so *every* implemented preview1 function must
charge it exactly once per call — a function that forgets the charge
silently deflates the WASI-indirection results. The test is parametrized
over the IMPLEMENTED table so adding a new entry point without the
charge fails here by construction.
"""

import pytest

from repro.hw import DEFAULT_COSTS, SimClock
from repro.walc import compile_source
from repro.wasi import IMPLEMENTED, ProcExit, WasiEnvironment
from repro.wasi.host import WASI_MODULE, build_wasi_imports
from repro.wasm import AotCompiler

# Safe argument vectors: pointers land in scratch linear memory, file
# descriptors stick to the always-present stdio set. Every call must
# return (or raise ProcExit) without trapping so the dispatch charge is
# observable.
_CALL_ARGS = {
    "args_sizes_get": (0, 8),
    "args_get": (0, 64),
    "environ_sizes_get": (0, 8),
    "environ_get": (0, 64),
    "clock_res_get": (1, 8),
    "clock_time_get": (1, 0, 8),
    "fd_write": (1, 0, 0, 16),
    "fd_read": (0, 0, 0, 16),
    "fd_close": (1,),
    "fd_seek": (1, 0, 0, 16),
    "fd_fdstat_get": (1, 32),
    "fd_prestat_get": (3, 0),
    "proc_exit": (0,),
    "sched_yield": (),
    "random_get": (0, 8),
}


def _traced_environment():
    clock = SimClock()
    env = WasiEnvironment(
        clock_ns=clock.now_ns,
        wasi_dispatch=lambda: clock.advance(DEFAULT_COSTS.wasi_dispatch_ns),
    )
    return clock, env


def _instance(env):
    # A minimal module with one memory page: the namespace's registered
    # HostFunctions are invoked against its instance directly.
    binary = compile_source("memory 1;")
    return AotCompiler().instantiate(binary, build_wasi_imports(env))


def test_call_table_covers_every_implemented_function():
    assert sorted(_CALL_ARGS) == sorted(IMPLEMENTED)


@pytest.mark.parametrize("name", IMPLEMENTED)
def test_registered_wasi_call_charges_dispatch_cost(name):
    clock, env = _traced_environment()
    instance = _instance(env)
    host = build_wasi_imports(env)[WASI_MODULE][name]
    before = clock.now_ns()
    try:
        host.fn(instance, *_CALL_ARGS[name])
    except ProcExit:
        assert name == "proc_exit"
    charged = clock.now_ns() - before
    assert charged == DEFAULT_COSTS.wasi_dispatch_ns, (
        f"{name} must charge the dispatch cost exactly once "
        f"(charged {charged} ns)"
    )


@pytest.mark.parametrize("name", IMPLEMENTED)
def test_dispatch_charge_is_identical_under_tracing(name):
    """The traced namespace charges exactly what the untraced one does."""
    from repro.obs import Tracer

    clock, env = _traced_environment()
    env.tracer = Tracer(sim_now=clock.now_ns)
    instance = _instance(env)
    host = build_wasi_imports(env)[WASI_MODULE][name]
    before = clock.now_ns()
    try:
        host.fn(instance, *_CALL_ARGS[name])
    except ProcExit:
        assert name == "proc_exit"
    assert clock.now_ns() - before == DEFAULT_COSTS.wasi_dispatch_ns
    spans = env.tracer.spans()
    assert [s.name for s in spans] == [f"wasi.{name}"]
    assert spans[0].sim_ns == DEFAULT_COSTS.wasi_dispatch_ns
