"""The WASI adaptation layer, exercised from real Wasm modules."""

import pytest

from repro.errors import TrapError
from repro.walc import compile_source
from repro.wasi import (
    IMPLEMENTED,
    UNIMPLEMENTED,
    ProcExit,
    WasiEnvironment,
    build_wasi_imports,
    wasi_function_count,
)
from repro.wasm import AotCompiler


def test_declared_surface_is_45_functions():
    """The paper declares 45 WASI API functions (§V)."""
    assert wasi_function_count() == 45
    assert len(IMPLEMENTED) == 15
    assert len(UNIMPLEMENTED) == 30


def _instantiate(source, env):
    binary = compile_source(source)
    return AotCompiler().instantiate(binary, build_wasi_imports(env))


def test_clock_time_get_returns_injected_time():
    env = WasiEnvironment(clock_ns=lambda: 123456789)
    source = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
export fn f() -> i64 {
  var rc: i32 = clock_time_get(1, 1L, 64);
  if (rc != 0) { return 0 - 1L; }
  return load_i64(64);
}
"""
    assert _instantiate(source, env).invoke("f") == 123456789


def test_clock_time_get_invalid_clock():
    env = WasiEnvironment(clock_ns=lambda: 1)
    source = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
export fn f() -> i32 { return clock_time_get(77, 1L, 64); }
"""
    assert _instantiate(source, env).invoke("f") == 28  # EINVAL


def test_clock_dispatch_charged_once_per_call():
    charges = []
    env = WasiEnvironment(clock_ns=lambda: 5,
                          wasi_dispatch=lambda: charges.append(1))
    source = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
export fn f() -> i32 {
  clock_time_get(1, 1L, 64);
  clock_time_get(1, 1L, 64);
  return 0;
}
"""
    _instantiate(source, env).invoke("f")
    assert len(charges) == 2


def test_fd_write_collects_stdout():
    env = WasiEnvironment()
    source = """
memory 1;
data 100 (104, 105, 33);  // "hi!"
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
export fn f() -> i32 {
  store_i32(0, 100);  // iov base
  store_i32(4, 3);    // iov len
  return fd_write(1, 0, 1, 16);
}
"""
    instance = _instantiate(source, env)
    assert instance.invoke("f") == 0
    assert env.stdout_text() == "hi!"


def test_fd_write_stderr_separate():
    env = WasiEnvironment()
    source = """
memory 1;
data 100 (101);
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
export fn f() -> i32 {
  store_i32(0, 100);
  store_i32(4, 1);
  return fd_write(2, 0, 1, 16);
}
"""
    env2 = WasiEnvironment()
    _instantiate(source, env2).invoke("f")
    assert bytes(env2.stderr) == b"e"
    assert env2.stdout_text() == ""


def test_fd_write_bad_fd():
    env = WasiEnvironment()
    source = """
memory 1;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
export fn f() -> i32 { return fd_write(7, 0, 0, 16); }
"""
    assert _instantiate(source, env).invoke("f") == 8  # EBADF


def test_args_roundtrip():
    env = WasiEnvironment(args=["prog", "--flag", "x"])
    source = """
memory 1;
import fn wasi_snapshot_preview1.args_sizes_get(a: i32, b: i32) -> i32;
import fn wasi_snapshot_preview1.args_get(a: i32, b: i32) -> i32;
export fn f() -> i32 {
  args_sizes_get(0, 4);
  args_get(16, 128);
  // argc * 1000 + total byte size
  return load_i32(0) * 1000 + load_i32(4);
}
"""
    # "prog\0--flag\0x\0" = 5 + 7 + 2 = 14 bytes
    assert _instantiate(source, env).invoke("f") == 3014


def test_environ_roundtrip():
    env = WasiEnvironment(environ=["A=1", "LONGER=value"])
    source = """
memory 1;
import fn wasi_snapshot_preview1.environ_sizes_get(a: i32, b: i32) -> i32;
export fn f() -> i32 {
  environ_sizes_get(0, 4);
  return load_i32(0) * 1000 + load_i32(4);
}
"""
    assert _instantiate(source, env).invoke("f") == 2017


def test_random_get_uses_injected_source():
    env = WasiEnvironment(random_bytes=lambda n: bytes(range(n)))
    source = """
memory 1;
import fn wasi_snapshot_preview1.random_get(a: i32, b: i32) -> i32;
export fn f() -> i32 {
  random_get(32, 4);
  return load_u8(35);
}
"""
    assert _instantiate(source, env).invoke("f") == 3


def test_proc_exit_raises_and_records():
    env = WasiEnvironment()
    source = """
import fn wasi_snapshot_preview1.proc_exit(a: i32);
export fn f() { proc_exit(3); }
"""
    with pytest.raises(ProcExit) as info:
        _instantiate(source, env).invoke("f")
    assert info.value.code == 3
    assert env.exit_code == 3


def test_unimplemented_function_traps_with_message():
    env = WasiEnvironment()
    source = """
import fn wasi_snapshot_preview1.path_open(a: i32, b: i32, c: i32, d: i32,
                                           e: i32, f: i64, g: i64, h: i32,
                                           i: i32) -> i32;
export fn f() -> i32 { return path_open(0,0,0,0,0,0L,0L,0,0); }
"""
    with pytest.raises(TrapError, match="path_open.*not implemented"):
        _instantiate(source, env).invoke("f")


def test_fd_seek_and_close_on_std_streams():
    env = WasiEnvironment()
    source = """
memory 1;
import fn wasi_snapshot_preview1.fd_close(a: i32) -> i32;
import fn wasi_snapshot_preview1.fd_seek(a: i32, b: i64, c: i32, d: i32) -> i32;
export fn f() -> i32 { return fd_close(1) * 100 + fd_seek(9, 0L, 0, 32); }
"""
    assert _instantiate(source, env).invoke("f") == 8  # close ok, seek EBADF


def test_sched_yield_and_clock_res():
    env = WasiEnvironment()
    source = """
memory 1;
import fn wasi_snapshot_preview1.sched_yield() -> i32;
import fn wasi_snapshot_preview1.clock_res_get(a: i32, b: i32) -> i32;
export fn f() -> i64 {
  sched_yield();
  clock_res_get(1, 8);
  return load_i64(8);
}
"""
    assert _instantiate(source, env).invoke("f") == 1  # 1 ns resolution
