"""Linear memory: typed access, bounds, grow, data segments."""

import pytest

from repro.errors import TrapError
from repro.wasm import ModuleBuilder, PAGE_SIZE
from repro.wasm import opcodes as op
from repro.wasm.types import F32, F64, I32, I64
from tests.wasm.helpers import run_single

_MEM = (1, 4)


def _roundtrip(engine, store, load, rtype, value, expected=None):
    def emit(f):
        f.i32_const(64)
        f.emit(rtype_const(rtype), value)
        f.emit(store, 0)
        f.i32_const(64)
        f.emit(load, 0)

    result = run_single(engine, [], [rtype], emit, memory=_MEM)
    assert result == (value if expected is None else expected)


def rtype_const(rtype):
    return {I32: op.I32_CONST, I64: op.I64_CONST,
            F32: op.F32_CONST, F64: op.F64_CONST}[rtype]


def test_i32_store_load(engine):
    _roundtrip(engine, op.I32_STORE, op.I32_LOAD, I32, 0xDEADBEEF)


def test_i64_store_load(engine):
    _roundtrip(engine, op.I64_STORE, op.I64_LOAD, I64, 0x1122334455667788)


def test_f32_store_load(engine):
    _roundtrip(engine, op.F32_STORE, op.F32_LOAD, F32, 1.5)


def test_f64_store_load(engine):
    _roundtrip(engine, op.F64_STORE, op.F64_LOAD, F64, -2.75)


def test_store8_truncates_and_load8_u(engine):
    _roundtrip(engine, op.I32_STORE8, op.I32_LOAD8_U, I32, 0x1FF, 0xFF)


def test_load8_s_sign_extends(engine):
    def emit(f):
        f.i32_const(0)
        f.i32_const(0x80)
        f.emit(op.I32_STORE8, 0)
        f.i32_const(0)
        f.emit(op.I32_LOAD8_S, 0)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 0xFFFFFF80


def test_store16_load16(engine):
    _roundtrip(engine, op.I32_STORE16, op.I32_LOAD16_U, I32, 0x18765, 0x8765)


def test_load16_s_sign_extends(engine):
    def emit(f):
        f.i32_const(0)
        f.i32_const(0x8000)
        f.emit(op.I32_STORE16, 0)
        f.i32_const(0)
        f.emit(op.I32_LOAD16_S, 0)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 0xFFFF8000


def test_i64_partial_loads(engine):
    def emit(f):
        f.i32_const(8)
        f.i64_const(0xFFFFFFFF)
        f.emit(op.I64_STORE32, 0)
        f.i32_const(8)
        f.emit(op.I64_LOAD32_S, 0)

    result = run_single(engine, [], [I64], emit, memory=_MEM)
    assert result == 0xFFFFFFFFFFFFFFFF


def test_static_offset(engine):
    def emit(f):
        f.i32_const(0)
        f.i32_const(77)
        f.emit(op.I32_STORE, 128)
        f.i32_const(128)
        f.emit(op.I32_LOAD, 0)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 77


def test_little_endian_layout(engine):
    def emit(f):
        f.i32_const(0)
        f.i32_const(0x04030201)
        f.emit(op.I32_STORE, 0)
        f.i32_const(0)
        f.emit(op.I32_LOAD8_U, 0)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 0x01


def test_out_of_bounds_load_traps(engine):
    def emit(f):
        f.i32_const(PAGE_SIZE - 3)
        f.emit(op.I32_LOAD, 0)

    with pytest.raises(TrapError, match="out-of-bounds"):
        run_single(engine, [], [I32], emit, memory=_MEM)


def test_out_of_bounds_store_traps(engine):
    def emit(f):
        f.i32_const(PAGE_SIZE)
        f.i32_const(1)
        f.emit(op.I32_STORE, 0)

    with pytest.raises(TrapError, match="out-of-bounds"):
        run_single(engine, [], [], emit, memory=_MEM)


def test_offset_overflow_traps(engine):
    def emit(f):
        f.i32_const(0)
        f.emit(op.I32_LOAD, PAGE_SIZE * 8)

    with pytest.raises(TrapError):
        run_single(engine, [], [I32], emit, memory=_MEM)


def test_memory_size_and_grow(engine):
    def emit(f):
        f.emit(op.MEMORY_SIZE)
        f.i32_const(1)
        f.emit(op.MEMORY_GROW)
        f.emit(op.I32_ADD)

    # size(1) + old size from grow(1) = 2
    assert run_single(engine, [], [I32], emit, memory=_MEM) == 2


def test_grow_beyond_max_fails(engine):
    def emit(f):
        f.i32_const(100)
        f.emit(op.MEMORY_GROW)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 0xFFFFFFFF


def test_grow_makes_new_pages_accessible(engine):
    def emit(f):
        f.i32_const(1)
        f.emit(op.MEMORY_GROW)
        f.emit(op.DROP)
        f.i32_const(PAGE_SIZE + 100)
        f.i32_const(42)
        f.emit(op.I32_STORE, 0)
        f.i32_const(PAGE_SIZE + 100)
        f.emit(op.I32_LOAD, 0)

    assert run_single(engine, [], [I32], emit, memory=_MEM) == 42


def test_data_segment_initialises_memory(engine):
    builder = ModuleBuilder()
    builder.add_memory(1)
    builder.add_data(10, b"\x2a\x00\x00\x00")
    t = builder.add_type([], [I32])
    f = builder.add_function(t)
    f.i32_const(10)
    f.emit(op.I32_LOAD, 0)
    builder.export_function("read", f.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("read") == 42


def test_data_segment_out_of_bounds_traps(engine):
    builder = ModuleBuilder()
    builder.add_memory(1)
    builder.add_data(PAGE_SIZE - 1, b"\x01\x02")
    t = builder.add_type([], [])
    builder.add_function(t)
    with pytest.raises(TrapError):
        engine.instantiate(builder.build())


def test_memory_cap_enforced_at_instantiation(engine):
    builder = ModuleBuilder()
    builder.add_memory(4)
    t = builder.add_type([], [])
    f = builder.add_function(t)
    builder.export_function("noop", f.index)
    with pytest.raises(TrapError, match="heap cap"):
        engine.instantiate(builder.build(), memory_cap_bytes=PAGE_SIZE)


def test_memory_cap_limits_grow(engine):
    builder = ModuleBuilder()
    builder.add_memory(1)
    t = builder.add_type([], [I32])
    f = builder.add_function(t)
    f.i32_const(10)
    f.emit(op.MEMORY_GROW)
    builder.export_function("grow", f.index)
    instance = engine.instantiate(builder.build(),
                                  memory_cap_bytes=2 * PAGE_SIZE)
    assert instance.invoke("grow") == 0xFFFFFFFF
