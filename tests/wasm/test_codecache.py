"""The content-addressed code cache: sharing code, never state.

Covers the cache data structure (keying, LRU bound, stats, invalidation),
both engines' instantiate integration (cache hits skip decode/compile,
bypass forces a recompile), the state-freshness contract (instances built
from cached artifacts share code objects but never memories), and the
cost-model invariance of the runtime TA's ``CMD_LOAD`` (identical SimClock
charges cached vs uncached).
"""

import pytest

from repro.wasm import AotCompiler, Interpreter
from repro.wasm import opcodes as op
from repro.wasm.codecache import DEFAULT, CodeCache, resolve
from repro.wasm.decoder import decode_module
from repro.wasm.types import I32
from tests.wasm.helpers import build_single


def _counter_module() -> bytes:
    """mem[0] += 1; return mem[0] — observable per-instance state."""

    def emit(f):
        f.i32_const(0)
        f.i32_const(0)
        f.emit(op.I32_LOAD, 0)
        f.i32_const(1)
        f.emit(op.I32_ADD)
        f.emit(op.I32_STORE, 0)
        f.i32_const(0)
        f.emit(op.I32_LOAD, 0)

    return build_single([], [I32], emit, memory=(1, 1))


def _count_compiles(engine):
    """Wrap ``engine.compile_function``, returning the call log."""
    calls = []
    original = engine.compile_function

    def counting(module, instance, func_index):
        calls.append(func_index)
        return original(module, instance, func_index)

    engine.compile_function = counting
    return calls


# -- the cache data structure -------------------------------------------------


def test_module_key_is_content_hash():
    import hashlib

    binary = _counter_module()
    assert CodeCache.module_key(binary) == hashlib.sha256(binary).hexdigest()
    assert CodeCache.module_key(binary) == CodeCache.module_key(bytes(binary))
    assert CodeCache.module_key(b"x") != CodeCache.module_key(b"y")


def test_lookup_counts_hits_and_misses_but_peek_does_not():
    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    assert cache.lookup(key, "aot") is None
    module = decode_module(binary)
    entry = cache.store(key, "aot", module)
    assert cache.lookup(key, "aot") is entry
    assert cache.peek(key, "aot") is entry
    assert cache.peek("missing", "aot") is None
    assert cache.stats() == {
        "entries": 1, "capacity": cache.capacity,
        "hits": 1, "misses": 1, "evictions": 0,
    }


def test_store_duplicate_keeps_entry_with_artifacts():
    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    module = decode_module(binary)
    entry = cache.store(key, "aot", module)
    cache.store_artifact(entry, 0, "artifact")
    again = cache.store(key, "aot", decode_module(binary))
    assert again is entry
    assert again.artifacts == {0: "artifact"}


def test_lru_eviction_keeps_cache_bounded():
    cache = CodeCache(capacity=3)
    module = decode_module(_counter_module())
    for i in range(5):
        cache.store(f"key{i}", "aot", module)
    assert len(cache) == 3
    assert cache.evictions == 2
    # Oldest entries went first.
    assert cache.peek("key0", "aot") is None
    assert cache.peek("key1", "aot") is None
    assert cache.peek("key4", "aot") is not None
    # A lookup refreshes recency: key2 survives the next insertion.
    cache.lookup("key2", "aot")
    cache.store("key5", "aot", module)
    assert cache.peek("key2", "aot") is not None
    assert cache.peek("key3", "aot") is None


def test_invalidate_and_clear():
    cache = CodeCache()
    module = decode_module(_counter_module())
    cache.store("k", "aot", module)
    cache.store("k", "interpreter", module)
    assert cache.invalidate("k", "aot") == 1
    assert cache.peek("k", "interpreter") is not None
    assert cache.invalidate("k") == 1
    assert len(cache) == 0
    cache.store("k", "aot", module)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        CodeCache(capacity=0)


def test_resolve_maps_knob_values():
    from repro.wasm.codecache import DEFAULT_CACHE

    cache = CodeCache()
    assert resolve(DEFAULT) is DEFAULT_CACHE
    assert resolve(True) is DEFAULT_CACHE
    assert resolve(None) is None
    assert resolve(False) is None
    assert resolve(cache) is cache
    with pytest.raises(TypeError):
        resolve("yes please")


# -- engine integration -------------------------------------------------------


def test_aot_warm_instantiate_skips_decode_and_compile():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    calls = _count_compiles(engine)

    first = engine.instantiate(binary, code_cache=cache)
    cold_compiles = len(calls)
    assert cold_compiles >= 1
    key = CodeCache.module_key(binary)
    entry = cache.peek(key, engine.cache_identity)
    assert entry is not None
    assert len(entry.artifacts) == cold_compiles

    second = engine.instantiate(binary, code_cache=cache)
    assert len(calls) == cold_compiles  # zero new compiles
    assert cache.stats()["hits"] == 1
    # Cached instantiation links against the same decoded module.
    assert second.module is first.module


def test_cached_instances_have_fresh_state():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    first = engine.instantiate(binary, code_cache=cache)
    second = engine.instantiate(binary, code_cache=cache)
    # Both instances run the shared code objects against their own memory.
    assert first.invoke("f") == 1
    assert first.invoke("f") == 2
    assert second.invoke("f") == 1
    assert first.invoke("f") == 3
    assert second.invoke("f") == 2


def test_bypass_forces_recompile():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    calls = _count_compiles(engine)
    engine.instantiate(binary, code_cache=cache)
    cold_compiles = len(calls)
    engine.instantiate(binary, code_cache=None)
    assert len(calls) == 2 * cold_compiles
    # The bypass never touched the cache.
    assert cache.stats()["hits"] == 0


def test_interpreter_caches_module_but_not_artifacts():
    engine = Interpreter()
    cache = CodeCache()
    binary = _counter_module()
    first = engine.instantiate(binary, code_cache=cache)
    entry = cache.peek(CodeCache.module_key(binary), engine.name)
    assert entry is not None
    assert entry.artifacts == {}  # interpreter has no reusable artifacts
    second = engine.instantiate(binary, code_cache=cache)
    assert second.module is first.module
    assert first.invoke("f") == 1
    assert second.invoke("f") == 1


def test_entries_are_partitioned_by_engine():
    cache = CodeCache()
    binary = _counter_module()
    AotCompiler().instantiate(binary, code_cache=cache)
    Interpreter().instantiate(binary, code_cache=cache)
    key = CodeCache.module_key(binary)
    assert cache.peek(key, "aot") is not cache.peek(key, "interpreter")
    assert len(cache) == 2


def test_decoded_module_with_key_uses_cache():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    module = decode_module(binary)
    calls = _count_compiles(engine)
    engine.instantiate(module, code_cache=cache, cache_key=key)
    cold_compiles = len(calls)
    # Passing a freshly decoded module with the same key adopts the cached
    # one and links against its artifacts.
    engine.instantiate(decode_module(binary), code_cache=cache, cache_key=key)
    assert len(calls) == cold_compiles


# -- CMD_LOAD: warm loads, bypass knob, SimClock invariance -------------------


def _load_counter(device, session, **params):
    binary = _counter_module()
    return device.load_wasm(session, binary, **params)


def test_cmd_load_warm_hits_default_cache(device):
    from repro.wasm.codecache import DEFAULT_CACHE

    session = device.open_watz(heap_size=1 << 20)
    _load_counter(device, session)
    assert DEFAULT_CACHE.stats()["misses"] >= 1
    before_hits = DEFAULT_CACHE.stats()["hits"]
    loaded = _load_counter(device, session)
    assert DEFAULT_CACHE.stats()["hits"] == before_hits + 1
    # The warm instance still runs correctly with fresh state.
    assert device.run_wasm(session, loaded["app"], "f") == 1


def test_cmd_load_bypass_knob_skips_cache(device):
    from repro.wasm.codecache import DEFAULT_CACHE

    session = device.open_watz(heap_size=1 << 20)
    _load_counter(device, session, code_cache=False)
    _load_counter(device, session, code_cache=False)
    stats = DEFAULT_CACHE.stats()
    assert stats["hits"] == 0 and stats["misses"] == 0


def test_cmd_load_simclock_charges_identical_cached_vs_uncached(testbed):
    """The cache saves wall-clock work, never simulated cost: every load
    pays the same SimClock charges (shared-memory copy) whether it hits,
    misses, or bypasses the cache."""
    device = testbed.create_device()
    session = device.open_watz(heap_size=1 << 20)

    def charge(**params):
        before = device.soc.clock.now_ns()
        _load_counter(device, session, **params)
        return device.soc.clock.now_ns() - before

    cold = charge()
    warm = charge()
    bypass = charge(code_cache=False)
    assert cold == warm == bypass


# -- opt-level keying: an artifact is bound to the level that built it --------


def test_opt_levels_never_share_cache_entries():
    """A cached opt_level=2 artifact must not be served to an opt_level=0
    instantiation (and vice versa): the cache keys on the engine's
    cache_identity, which folds in the opt level."""
    cache = CodeCache()
    binary = _counter_module()

    optimised = AotCompiler(opt_level=2)
    reference = AotCompiler(opt_level=0)
    assert optimised.cache_identity != reference.cache_identity

    optimised.instantiate(binary, code_cache=cache)
    # The second engine sees a cold cache under its own identity and
    # compiles from scratch...
    calls = _count_compiles(reference)
    instance = reference.instantiate(binary, code_cache=cache)
    assert calls, "opt_level=0 must not reuse the opt_level=2 artifact"
    assert instance.invoke("f") == 1
    # ...and both levels now hold distinct entries with distinct sources.
    key = CodeCache.module_key(binary)
    entry_o2 = cache.peek(key, optimised.cache_identity)
    entry_o0 = cache.peek(key, reference.cache_identity)
    assert entry_o2 is not None and entry_o0 is not None
    assert entry_o2 is not entry_o0


def test_same_opt_level_still_shares_artifacts():
    cache = CodeCache()
    binary = _counter_module()
    first = AotCompiler(opt_level=2)
    first.instantiate(binary, code_cache=cache)
    second = AotCompiler(opt_level=2)
    calls = _count_compiles(second)
    second.instantiate(binary, code_cache=cache)
    assert not calls, "same identity must reuse the cached artifact"


def test_cmd_load_opt_level_param_selects_tier(device):
    """CMD_LOAD threads opt_level through to the engine, and warm loads
    at a different level never alias the cached module entry."""
    from repro.wasm.codecache import DEFAULT_CACHE

    session = device.open_watz(heap_size=1 << 20)
    loaded_o2 = _load_counter(device, session)
    loaded_o0 = _load_counter(device, session, opt_level=0)
    assert device.run_wasm(session, loaded_o2["app"], "f") == 1
    assert device.run_wasm(session, loaded_o0["app"], "f") == 1
    key = CodeCache.module_key(_counter_module())
    assert DEFAULT_CACHE.peek(key, "aot@o2") is not None
    assert DEFAULT_CACHE.peek(key, "aot@o0") is not None


# -- profile-hash keying: o3 artifacts are bound to their profile -------------


def _profiled_engines(binary):
    """Two o3 engines over the same binary, driven by *distinct* profiles
    (the call counts differ, so the content hashes differ)."""
    from repro.wasm.pgo import Profile

    key = CodeCache.module_key(binary)
    profile_a = Profile(module_key=key, func_calls={0: 1})
    profile_b = Profile(module_key=key, func_calls={0: 1000})
    assert profile_a.profile_hash != profile_b.profile_hash
    return (AotCompiler(opt_level=3, profile=profile_a),
            AotCompiler(opt_level=3, profile=profile_b))


def test_o3_identity_embeds_profile_hash():
    binary = _counter_module()
    engine_a, engine_b = _profiled_engines(binary)
    hash_a = engine_a.profile.profile_hash[:16]
    assert engine_a.cache_identity == f"aot@o3+{hash_a}"
    # A different profile of the same binary gets a different identity —
    # and neither collides with the profile-less tiers.
    identities = {engine_a.cache_identity, engine_b.cache_identity,
                  AotCompiler(opt_level=2).cache_identity,
                  AotCompiler(opt_level=0).cache_identity}
    assert len(identities) == 4


def test_o3_entries_never_collide_across_tiers_or_profiles():
    """One binary, four engines (o0, o2, and o3 under two profiles):
    four distinct cache entries, each compiled under its own identity."""
    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    engine_a, engine_b = _profiled_engines(binary)
    engines = [AotCompiler(opt_level=0), AotCompiler(opt_level=2),
               engine_a, engine_b]
    for engine in engines:
        calls = _count_compiles(engine)
        instance = engine.instantiate(binary, code_cache=cache)
        assert calls, f"{engine.cache_identity} must compile cold"
        assert instance.invoke("f") == 1
    entries = [cache.peek(key, engine.cache_identity)
               for engine in engines]
    assert all(entry is not None for entry in entries)
    assert len({id(entry) for entry in entries}) == 4
    assert len(cache) == 4


def test_same_profile_hash_shares_o3_artifacts():
    """Two engines built from *equal* profiles (same content, distinct
    objects) share one identity and therefore one set of artifacts."""
    from repro.wasm.pgo import Profile

    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    first = AotCompiler(opt_level=3,
                        profile=Profile(module_key=key, func_calls={0: 7}))
    second = AotCompiler(opt_level=3,
                         profile=Profile(module_key=key, func_calls={0: 7}))
    assert first.cache_identity == second.cache_identity
    first.instantiate(binary, code_cache=cache)
    calls = _count_compiles(second)
    instance = second.instantiate(binary, code_cache=cache)
    assert not calls, "equal profile hash must reuse the cached artifact"
    assert instance.invoke("f") == 1


def test_racing_cold_loads_of_two_profiles_stay_isolated():
    """Two profiles of the same binary race their cold loads from eight
    threads: the cache ends up with exactly two entries (one per profile
    hash), no thread observes the other profile's artifacts, and every
    instance still gets private state."""
    import threading

    cache = CodeCache()
    binary = _counter_module()
    key = CodeCache.module_key(binary)
    engine_a, engine_b = _profiled_engines(binary)
    engines = [engine_a, engine_b] * 4
    instances = [None] * len(engines)
    barrier = threading.Barrier(len(engines))
    failures = []

    def load(index):
        barrier.wait()  # maximise overlap: all loads enter together
        try:
            instances[index] = engines[index].instantiate(
                binary, code_cache=cache)
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=load, args=(index,))
               for index in range(len(engines))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    assert len(cache) == 2
    entry_a = cache.peek(key, engine_a.cache_identity)
    entry_b = cache.peek(key, engine_b.cache_identity)
    assert entry_a is not None and entry_b is not None
    assert entry_a is not entry_b
    assert entry_a.artifacts and entry_b.artifacts
    # Shared code within a profile, fresh state everywhere.
    assert all(instance.invoke("f") == 1 for instance in instances)
    assert all(instance.invoke("f") == 2 for instance in instances)


def test_cmd_load_profile_param_selects_o3_tier(device):
    """CMD_LOAD threads opt_level=3 plus a serialized profile through to
    the engine; the cached entry is keyed by the profile hash and never
    aliases the o2 entry for the same binary."""
    from repro.wasm.codecache import DEFAULT_CACHE
    from repro.wasm.pgo import profile_module

    binary = _counter_module()
    profile = profile_module(binary, [("f", ())])
    session = device.open_watz(heap_size=1 << 20)
    loaded_o3 = _load_counter(device, session, opt_level=3,
                              profile=profile.canonical_json())
    loaded_o2 = _load_counter(device, session)
    assert device.run_wasm(session, loaded_o3["app"], "f") == 1
    assert device.run_wasm(session, loaded_o2["app"], "f") == 1
    key = CodeCache.module_key(binary)
    identity = f"aot@o3+{profile.profile_hash[:16]}"
    entry_o3 = DEFAULT_CACHE.peek(key, identity)
    entry_o2 = DEFAULT_CACHE.peek(key, "aot@o2")
    assert entry_o3 is not None and entry_o2 is not None
    assert entry_o3 is not entry_o2
