"""Function calls: direct, indirect, host imports, linking."""

import pytest

from repro.errors import LinkError, TrapError
from repro.wasm import HostFunction, ModuleBuilder
from repro.wasm import opcodes as op
from repro.wasm.types import F64, FuncType, I32


def test_direct_call(engine):
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    callee = builder.add_function(t)
    callee.local_get(0)
    callee.i32_const(1)
    callee.emit(op.I32_ADD)
    caller = builder.add_function(t)
    caller.local_get(0)
    caller.call(callee.index)
    caller.call(callee.index)
    builder.export_function("plus2", caller.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("plus2", 40) == 42


def test_mutual_recursion(engine):
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    is_even = builder.add_function(t)
    is_odd = builder.add_function(t)
    # is_even(n) = n == 0 ? 1 : is_odd(n-1)
    is_even.local_get(0)
    is_even.emit(op.I32_EQZ)
    is_even.if_(I32)
    is_even.i32_const(1)
    is_even.else_()
    is_even.local_get(0)
    is_even.i32_const(1)
    is_even.emit(op.I32_SUB)
    is_even.call(is_odd.index)
    is_even.end()
    # is_odd(n) = n == 0 ? 0 : is_even(n-1)
    is_odd.local_get(0)
    is_odd.emit(op.I32_EQZ)
    is_odd.if_(I32)
    is_odd.i32_const(0)
    is_odd.else_()
    is_odd.local_get(0)
    is_odd.i32_const(1)
    is_odd.emit(op.I32_SUB)
    is_odd.call(is_even.index)
    is_odd.end()
    builder.export_function("is_even", is_even.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("is_even", 10) == 1
    assert instance.invoke("is_even", 7) == 0


def test_void_function_call(engine):
    builder = ModuleBuilder()
    g = builder.add_global(I32, True, 0)
    void_t = builder.add_type([], [])
    setter = builder.add_function(void_t)
    setter.i32_const(99)
    setter.global_set(g)
    reader_t = builder.add_type([], [I32])
    reader = builder.add_function(reader_t)
    reader.call(setter.index)
    reader.global_get(g)
    builder.export_function("go", reader.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("go") == 99


def _table_module():
    builder = ModuleBuilder()
    t_i = builder.add_type([I32], [I32])
    double = builder.add_function(t_i)
    double.local_get(0)
    double.i32_const(2)
    double.emit(op.I32_MUL)
    square = builder.add_function(t_i)
    square.local_get(0)
    square.local_get(0)
    square.emit(op.I32_MUL)
    t_f = builder.add_type([], [F64])
    floaty = builder.add_function(t_f)
    floaty.f64_const(3.5)
    builder.add_table(4, 4)
    builder.add_element(0, [double.index, square.index, floaty.index])
    dispatch = builder.add_function(t_i)
    dispatch.i32_const(9)
    dispatch.local_get(0)
    dispatch.emit(op.CALL_INDIRECT, t_i)
    builder.export_function("dispatch", dispatch.index)
    return builder.build()


def test_call_indirect(engine):
    instance = engine.instantiate(_table_module())
    assert instance.invoke("dispatch", 0) == 18
    assert instance.invoke("dispatch", 1) == 81


def test_call_indirect_signature_mismatch_traps(engine):
    instance = engine.instantiate(_table_module())
    with pytest.raises(TrapError, match="signature"):
        instance.invoke("dispatch", 2)  # element 2 is [] -> [f64]


def test_call_indirect_null_element_traps(engine):
    instance = engine.instantiate(_table_module())
    with pytest.raises(TrapError, match="uninitialised"):
        instance.invoke("dispatch", 3)


def test_call_indirect_out_of_bounds_traps(engine):
    instance = engine.instantiate(_table_module())
    with pytest.raises(TrapError, match="out of bounds"):
        instance.invoke("dispatch", 100)


def _import_module():
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    host_index = builder.import_function("env", "add_ten", t)
    f = builder.add_function(t)
    f.local_get(0)
    f.call(host_index)
    builder.export_function("via_host", f.index)
    return builder.build()


def test_host_import_called(engine):
    def add_ten(_instance, value):
        return (value + 10) & 0xFFFFFFFF

    imports = {"env": {"add_ten": HostFunction(
        FuncType((I32,), (I32,)), add_ten)}}
    instance = engine.instantiate(_import_module(), imports)
    assert instance.invoke("via_host", 5) == 15


def test_host_import_receives_instance(engine):
    seen = {}

    def spy(instance, value):
        seen["instance"] = instance
        return value

    imports = {"env": {"spy": HostFunction(FuncType((I32,), (I32,)), spy)}}
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    host = builder.import_function("env", "spy", t)
    f = builder.add_function(t)
    f.local_get(0)
    f.call(host)
    builder.export_function("go", f.index)
    instance = engine.instantiate(builder.build(), imports)
    instance.invoke("go", 1)
    assert seen["instance"] is instance


def test_unresolved_import_fails(engine):
    with pytest.raises(LinkError, match="unresolved"):
        engine.instantiate(_import_module())


def test_import_signature_mismatch_fails(engine):
    imports = {"env": {"add_ten": HostFunction(
        FuncType((I32, I32), (I32,)), lambda *_: 0)}}
    with pytest.raises(LinkError, match="signature"):
        engine.instantiate(_import_module(), imports)


def test_start_function_runs_at_instantiation(engine):
    builder = ModuleBuilder()
    g = builder.add_global(I32, True, 0)
    void_t = builder.add_type([], [])
    init = builder.add_function(void_t)
    init.i32_const(7)
    init.global_set(g)
    reader_t = builder.add_type([], [I32])
    reader = builder.add_function(reader_t)
    reader.global_get(g)
    builder.set_start(init.index)
    builder.export_function("read", reader.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("read") == 7


def test_wrong_argument_count_rejected(engine):
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    f = builder.add_function(t)
    f.local_get(0)
    builder.export_function("id", f.index)
    instance = engine.instantiate(builder.build())
    with pytest.raises(TrapError, match="arguments"):
        instance.invoke("id")


def test_export_lookup_errors(engine):
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    f = builder.add_function(t)
    builder.export_function("only", f.index)
    instance = engine.instantiate(builder.build())
    with pytest.raises(KeyError):
        instance.invoke("missing")
