"""Spec behaviour of the numeric instruction set, on both engines.

A table-driven sweep: each case pushes constants, applies one operator
and compares against the spec-defined result. These derive from the
WebAssembly core test suite's canonical cases.
"""

import math

import pytest

from repro.wasm import opcodes as op
from repro.wasm.types import F32, F64, I32, I64
from tests.wasm.helpers import run_single

U32 = 0xFFFFFFFF
U64 = 0xFFFFFFFFFFFFFFFF

# (name, result type, const opcode pairs..., operator, expected)
BINARY_CASES = [
    ("i32.add wrap", I32, op.I32_CONST, U32, op.I32_CONST, 1, op.I32_ADD, 0),
    ("i32.add", I32, op.I32_CONST, 5, op.I32_CONST, 7, op.I32_ADD, 12),
    ("i32.sub wrap", I32, op.I32_CONST, 0, op.I32_CONST, 1, op.I32_SUB, U32),
    ("i32.mul wrap", I32, op.I32_CONST, 0x10000, op.I32_CONST, 0x10000,
     op.I32_MUL, 0),
    ("i32.div_s", I32, op.I32_CONST, -7 & U32, op.I32_CONST, 2,
     op.I32_DIV_S, -3 & U32),
    ("i32.div_u", I32, op.I32_CONST, -7 & U32, op.I32_CONST, 2,
     op.I32_DIV_U, 0x7FFFFFFC),
    ("i32.rem_s", I32, op.I32_CONST, -7 & U32, op.I32_CONST, 2,
     op.I32_REM_S, -1 & U32),
    ("i32.rem_u", I32, op.I32_CONST, -7 & U32, op.I32_CONST, 2,
     op.I32_REM_U, 1),
    ("i32.and", I32, op.I32_CONST, 0xF0F0, op.I32_CONST, 0xFF00,
     op.I32_AND, 0xF000),
    ("i32.or", I32, op.I32_CONST, 0xF0F0, op.I32_CONST, 0x0F0F,
     op.I32_OR, 0xFFFF),
    ("i32.xor", I32, op.I32_CONST, 0xFF, op.I32_CONST, 0x0F,
     op.I32_XOR, 0xF0),
    ("i32.shl", I32, op.I32_CONST, 1, op.I32_CONST, 33, op.I32_SHL, 2),
    ("i32.shr_s", I32, op.I32_CONST, 0x80000000, op.I32_CONST, 1,
     op.I32_SHR_S, 0xC0000000),
    ("i32.shr_u", I32, op.I32_CONST, 0x80000000, op.I32_CONST, 1,
     op.I32_SHR_U, 0x40000000),
    ("i32.rotl", I32, op.I32_CONST, 0x80000001, op.I32_CONST, 1,
     op.I32_ROTL, 3),
    ("i32.rotr", I32, op.I32_CONST, 3, op.I32_CONST, 1,
     op.I32_ROTR, 0x80000001),
    ("i64.add wrap", I64, op.I64_CONST, U64, op.I64_CONST, 1, op.I64_ADD, 0),
    ("i64.mul", I64, op.I64_CONST, 1 << 32, op.I64_CONST, 1 << 32,
     op.I64_MUL, 0),
    ("i64.div_s", I64, op.I64_CONST, -9 & U64, op.I64_CONST, 4,
     op.I64_DIV_S, -2 & U64),
    ("i64.shl", I64, op.I64_CONST, 1, op.I64_CONST, 63,
     op.I64_SHL, 1 << 63),
    ("i64.shr_s", I64, op.I64_CONST, 1 << 63, op.I64_CONST, 62,
     op.I64_SHR_S, -2 & U64),
    ("f64.add", F64, op.F64_CONST, 1.5, op.F64_CONST, 2.25,
     op.F64_ADD, 3.75),
    ("f64.sub", F64, op.F64_CONST, 1.0, op.F64_CONST, 0.75,
     op.F64_SUB, 0.25),
    ("f64.mul", F64, op.F64_CONST, 3.0, op.F64_CONST, 0.5,
     op.F64_MUL, 1.5),
    ("f64.div", F64, op.F64_CONST, 1.0, op.F64_CONST, 4.0,
     op.F64_DIV, 0.25),
    ("f64.min", F64, op.F64_CONST, 1.0, op.F64_CONST, 2.0,
     op.F64_MIN, 1.0),
    ("f64.max", F64, op.F64_CONST, 1.0, op.F64_CONST, 2.0,
     op.F64_MAX, 2.0),
    ("f64.copysign", F64, op.F64_CONST, 3.0, op.F64_CONST, -1.0,
     op.F64_COPYSIGN, -3.0),
    ("f32.add rounds", F32, op.F32_CONST, 1.0, op.F32_CONST, 1e-10,
     op.F32_ADD, 1.0),
    ("f32.mul", F32, op.F32_CONST, 2.0, op.F32_CONST, 8.0,
     op.F32_MUL, 16.0),
]

COMPARE_CASES = [
    ("i32.eq true", I32, op.I32_CONST, 3, op.I32_CONST, 3, op.I32_EQ, 1),
    ("i32.eq false", I32, op.I32_CONST, 3, op.I32_CONST, 4, op.I32_EQ, 0),
    ("i32.ne", I32, op.I32_CONST, 3, op.I32_CONST, 4, op.I32_NE, 1),
    ("i32.lt_s neg", I32, op.I32_CONST, -1 & U32, op.I32_CONST, 0,
     op.I32_LT_S, 1),
    ("i32.lt_u neg", I32, op.I32_CONST, -1 & U32, op.I32_CONST, 0,
     op.I32_LT_U, 0),
    ("i32.gt_s", I32, op.I32_CONST, 1, op.I32_CONST, -1 & U32,
     op.I32_GT_S, 1),
    ("i32.gt_u", I32, op.I32_CONST, 1, op.I32_CONST, -1 & U32,
     op.I32_GT_U, 0),
    ("i32.le_s", I32, op.I32_CONST, 5, op.I32_CONST, 5, op.I32_LE_S, 1),
    ("i32.ge_u", I32, op.I32_CONST, 0, op.I32_CONST, -1 & U32,
     op.I32_GE_U, 0),
    ("i64.lt_s", I64, op.I64_CONST, -5 & U64, op.I64_CONST, 3,
     op.I64_LT_S, 1),
    ("i64.eqz-like eq", I64, op.I64_CONST, 0, op.I64_CONST, 0,
     op.I64_EQ, 1),
    ("f64.lt", F64, op.F64_CONST, 1.0, op.F64_CONST, 2.0, op.F64_LT, 1),
    ("f64.ge", F64, op.F64_CONST, 2.0, op.F64_CONST, 2.0, op.F64_GE, 1),
    ("f64.eq nan", F64, op.F64_CONST, math.nan, op.F64_CONST, math.nan,
     op.F64_EQ, 0),
    ("f64.ne nan", F64, op.F64_CONST, math.nan, op.F64_CONST, math.nan,
     op.F64_NE, 1),
    ("f64.lt nan", F64, op.F64_CONST, math.nan, op.F64_CONST, 1.0,
     op.F64_LT, 0),
]


@pytest.mark.parametrize(
    "case", BINARY_CASES, ids=[c[0] for c in BINARY_CASES])
def test_binary_operator(engine, case):
    _name, rtype, c1, v1, c2, v2, operator, expected = case

    def emit(f):
        f.emit(c1, v1)
        f.emit(c2, v2)
        f.emit(operator)

    assert run_single(engine, [], [rtype], emit) == expected


@pytest.mark.parametrize(
    "case", COMPARE_CASES, ids=[c[0] for c in COMPARE_CASES])
def test_compare_operator(engine, case):
    _name, operand_type, c1, v1, c2, v2, operator, expected = case

    def emit(f):
        f.emit(c1, v1)
        f.emit(c2, v2)
        f.emit(operator)

    assert run_single(engine, [], [I32], emit) == expected


UNARY_CASES = [
    ("i32.clz", I32, op.I32_CONST, 1, op.I32_CLZ, 31),
    ("i32.ctz", I32, op.I32_CONST, 0x8000, op.I32_CTZ, 15),
    ("i32.popcnt", I32, op.I32_CONST, 0xFF, op.I32_POPCNT, 8),
    ("i32.eqz zero", I32, op.I32_CONST, 0, op.I32_EQZ, 1),
    ("i32.eqz nonzero", I32, op.I32_CONST, 9, op.I32_EQZ, 0),
    ("i64.clz", I64, op.I64_CONST, 1, op.I64_CLZ, 63),
    ("i32.extend8_s", I32, op.I32_CONST, 0xFF, op.I32_EXTEND8_S, U32),
    ("i32.extend16_s", I32, op.I32_CONST, 0x8000, op.I32_EXTEND16_S,
     0xFFFF8000),
    ("i64.extend32_s", I64, op.I64_CONST, 0xFFFFFFFF, op.I64_EXTEND32_S, U64),
]


@pytest.mark.parametrize("case", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_operator(engine, case):
    _name, rtype, const, value, operator, expected = case

    def emit(f):
        f.emit(const, value)
        f.emit(operator)

    assert run_single(engine, [], [rtype], emit) == expected


FLOAT_UNARY_CASES = [
    ("f64.abs", op.F64_CONST, -2.5, op.F64_ABS, 2.5),
    ("f64.neg", op.F64_CONST, 2.5, op.F64_NEG, -2.5),
    ("f64.ceil", op.F64_CONST, 1.2, op.F64_CEIL, 2.0),
    ("f64.floor", op.F64_CONST, 1.8, op.F64_FLOOR, 1.0),
    ("f64.trunc", op.F64_CONST, -1.8, op.F64_TRUNC, -1.0),
    ("f64.nearest", op.F64_CONST, 2.5, op.F64_NEAREST, 2.0),
    ("f64.sqrt", op.F64_CONST, 2.25, op.F64_SQRT, 1.5),
]


@pytest.mark.parametrize("case", FLOAT_UNARY_CASES,
                         ids=[c[0] for c in FLOAT_UNARY_CASES])
def test_float_unary(engine, case):
    _name, const, value, operator, expected = case

    def emit(f):
        f.emit(const, value)
        f.emit(operator)

    assert run_single(engine, [], [F64], emit) == expected


CONVERSION_CASES = [
    ("i32.wrap_i64", I64, I32, op.I64_CONST, 0x1_0000_0005,
     op.I32_WRAP_I64, 5),
    ("i64.extend_i32_s", I32, I64, op.I32_CONST, U32,
     op.I64_EXTEND_I32_S, U64),
    ("i64.extend_i32_u", I32, I64, op.I32_CONST, U32,
     op.I64_EXTEND_I32_U, U32),
    ("i32.trunc_f64_s", F64, I32, op.F64_CONST, -3.7,
     op.I32_TRUNC_F64_S, -3 & U32),
    ("i32.trunc_f64_u", F64, I32, op.F64_CONST, 3.7,
     op.I32_TRUNC_F64_U, 3),
    ("f64.convert_i32_s", I32, F64, op.I32_CONST, U32,
     op.F64_CONVERT_I32_S, -1.0),
    ("f64.convert_i32_u", I32, F64, op.I32_CONST, U32,
     op.F64_CONVERT_I32_U, 4294967295.0),
    ("f64.convert_i64_s", I64, F64, op.I64_CONST, U64,
     op.F64_CONVERT_I64_S, -1.0),
    ("f32.demote_f64", F64, F32, op.F64_CONST, 0.1,
     op.F32_DEMOTE_F64, 0.10000000149011612),
    ("f64.promote_f32", F32, F64, op.F32_CONST, 1.5,
     op.F64_PROMOTE_F32, 1.5),
    ("i32.reinterpret_f32", F32, I32, op.F32_CONST, 1.0,
     op.I32_REINTERPRET_F32, 0x3F800000),
    ("f64.reinterpret_i64", I64, F64, op.I64_CONST, 0x3FF0000000000000,
     op.F64_REINTERPRET_I64, 1.0),
]


@pytest.mark.parametrize("case", CONVERSION_CASES,
                         ids=[c[0] for c in CONVERSION_CASES])
def test_conversion(engine, case):
    _name, _src, dst, const, value, operator, expected = case

    def emit(f):
        f.emit(const, value)
        f.emit(operator)

    result = run_single(engine, [], [dst], emit)
    if dst in (I32, I64) and expected < 0:
        expected &= U32 if dst == I32 else U64
    assert result == expected
