"""The profile-guided tier: format, collection, and graceful degradation.

Three contracts pinned here:

* the profile format — a stable content hash (equal profiles hash equal),
  JSON round-trips, typed rejection of malformed payloads, and merge
  semantics (counts add, masks OR, const-globals must agree);
* collection — ``profile_module`` runs the instrumented build, records
  what actually executed, and (via a tracer) publishes the profile as a
  ``wasm.profile`` span the obs layer can recover;
* robustness — an empty profile, a profile recorded on a different
  module, and a truncated/corrupt profile file all degrade cleanly to
  opt level 2 with a :class:`ProfileWarning`, and a *lying* profile
  (wrong constant, wrong alignment) only ever costs the specialised
  path: the guarded deopt arms keep results exact.
"""

import warnings

import pytest

from repro.wasm import AotCompiler, Interpreter
from repro.wasm import opcodes as op
from repro.wasm.builder import ModuleBuilder
from repro.wasm.codecache import CodeCache
from repro.wasm.decoder import decode_module
from repro.wasm.pgo import (
    Profile,
    ProfileError,
    ProfileWarning,
    merge_profiles,
    profile_module,
)
from repro.wasm.types import I32
from tests.wasm.helpers import build_single


def _loop_module() -> bytes:
    """sum(0..9) via a counted loop — exercises call + backedge counters."""

    def emit(f):
        acc = f.add_local(I32)
        i = f.add_local(I32)
        f.block()
        f.loop()
        f.local_get(i)
        f.i32_const(10)
        f.emit(op.I32_GE_S)
        f.br_if(1)
        f.local_get(acc)
        f.local_get(i)
        f.emit(op.I32_ADD)
        f.local_set(acc)
        f.local_get(i)
        f.i32_const(1)
        f.emit(op.I32_ADD)
        f.local_set(i)
        f.br(0)
        f.end()
        f.end()
        f.local_get(acc)

    return build_single([], [I32], emit, locals=[I32, I32], export="run")


def _global_reader(init: int) -> bytes:
    """return g0 + 1 — the global-specialisation shape (read, no write)."""
    builder = ModuleBuilder()
    builder.add_global(I32, True, init)
    type_index = builder.add_type([], [I32])
    function = builder.add_function(type_index)
    function.global_get(0)
    function.i32_const(1)
    function.emit(op.I32_ADD)
    builder.export_function("run", function.index)
    return builder.build()


def _key(binary: bytes) -> str:
    return CodeCache.module_key(binary)


# -- the profile format -------------------------------------------------------


def test_profile_hash_is_content_stable():
    a = Profile(module_key="m", func_calls={0: 1, 1: 2},
                loop_backedges={"f0:3": 9})
    b = Profile(module_key="m", func_calls={1: 2, 0: 1},
                loop_backedges={"f0:3": 9})
    assert a.profile_hash == b.profile_hash  # insertion order is irrelevant
    c = Profile(module_key="m", func_calls={0: 1, 1: 3})
    assert a.profile_hash != c.profile_hash


def test_profile_roundtrips_through_json_and_disk(tmp_path):
    profile = Profile(module_key="m", func_calls={3: 7},
                      loop_backedges={"f3:1": 100},
                      access_masks={"f3:5": 0}, const_globals={0: 2.5},
                      mem_grows=1)
    assert Profile.coerce(profile.canonical_json()) == profile
    assert Profile.coerce(profile.to_json()) == profile
    assert Profile.coerce(profile) is profile
    path = tmp_path / "p.json"
    profile.save(path)
    assert Profile.load(path) == profile
    assert Profile.load(path).profile_hash == profile.profile_hash


@pytest.mark.parametrize("payload", [
    "{not json",
    "[1, 2, 3]",
    '{"format": "watz-pgo/9"}',
    '{"format": "watz-pgo/1", "func_calls": {"0": -1}}',
    '{"format": "watz-pgo/1", "func_calls": {"x": 1}}',
    '{"format": "watz-pgo/1", "const_globals": {"0": true}}',
    42,
])
def test_malformed_profiles_raise_typed_errors(payload):
    with pytest.raises(ProfileError):
        Profile.coerce(payload)


def test_merge_adds_counts_ors_masks_and_intersects_globals():
    a = Profile(module_key="m", func_calls={0: 2}, access_masks={"s": 0},
                const_globals={0: 5, 1: 9}, mem_grows=1)
    b = Profile(module_key="m", func_calls={0: 3, 1: 1},
                access_masks={"s": 2}, const_globals={0: 5, 1: 8})
    merged = merge_profiles([a, b])
    assert merged.func_calls == {0: 5, 1: 1}
    assert merged.access_masks == {"s": 2}
    assert merged.const_globals == {0: 5}  # g1 disagreed: dropped
    assert merged.mem_grows == 1
    with pytest.raises(ProfileError):
        merge_profiles([])
    with pytest.raises(ProfileError):
        merge_profiles([a, Profile(module_key="other")])


# -- collection ---------------------------------------------------------------


def test_profile_module_records_what_ran():
    binary = _loop_module()
    profile = profile_module(binary, [("run", ()), ("run", ())])
    assert profile.module_key == _key(binary)
    assert profile.func_calls.get(0) == 2
    # The counter ticks per loop-header execution: 10 iterations plus
    # the exiting check, twice.
    assert sum(profile.loop_backedges.values()) == 22
    assert not profile.is_empty


def test_profile_module_publishes_span_the_obs_layer_recovers():
    from repro.obs import Tracer, extract_profile

    binary = _loop_module()
    tracer = Tracer()
    direct = profile_module(binary, [("run", ())], tracer=tracer)
    recovered = extract_profile(tracer.spans())
    assert recovered == direct
    assert recovered.profile_hash == direct.profile_hash
    # Asking for a module the trace never profiled yields nothing.
    assert extract_profile(tracer.spans(), module_key="absent") is None


def test_instrumented_artifacts_never_enter_the_shared_cache():
    from repro.wasm.pgo import ProfileCollector

    cache = CodeCache()
    engine = AotCompiler(profile_collector=ProfileCollector())
    assert engine.cache_identity == "aot@profile"
    assert engine.supports_code_artifacts is False
    engine.instantiate(_loop_module(), code_cache=cache)
    entry = cache.peek(_key(_loop_module()), "aot@profile")
    assert entry is None or not entry.artifacts


# -- robustness: every bad profile degrades to o2, never crashes --------------


def _assert_degraded_to_o2(engine):
    assert engine.profile is None
    assert engine.opt_level == 2
    assert engine.cache_identity == "aot@o2"


def test_level3_without_profile_degrades_with_warning():
    with pytest.warns(ProfileWarning, match="requires a profile"):
        engine = AotCompiler(opt_level=3)
    _assert_degraded_to_o2(engine)
    assert engine.instantiate(_loop_module()).invoke("run") == 45


def test_empty_profile_degrades_with_warning():
    empty = Profile(module_key=_key(_loop_module()))
    with pytest.warns(ProfileWarning, match="empty profile"):
        engine = AotCompiler(opt_level=3, profile=empty)
    _assert_degraded_to_o2(engine)
    assert engine.instantiate(_loop_module()).invoke("run") == 45


def test_corrupt_profile_payload_degrades_with_warning():
    with pytest.warns(ProfileWarning, match="invalid profile"):
        engine = AotCompiler(opt_level=3, profile="{truncated")
    _assert_degraded_to_o2(engine)
    assert engine.instantiate(_loop_module()).invoke("run") == 45


def test_truncated_profile_file_fails_load_then_degrades(tmp_path):
    binary = _loop_module()
    path = tmp_path / "p.json"
    profile_module(binary, [("run", ())]).save(path)
    text = path.read_text()
    path.write_text(text[:len(text) // 2])  # simulate a torn write
    with pytest.raises(ProfileError, match="not valid JSON"):
        Profile.load(path)
    # The operational path — feed whatever the file held to the engine —
    # degrades instead of crashing, and still computes the right answer.
    with pytest.warns(ProfileWarning, match="invalid profile"):
        engine = AotCompiler(opt_level=3, profile=path.read_text())
    _assert_degraded_to_o2(engine)
    assert engine.instantiate(binary).invoke("run") == 45


def test_wrong_module_profile_degrades_at_instantiate():
    """A profile recorded on module A applied to module B: the engine
    keeps its o3 identity but the load itself falls back to a plain o2
    instantiation — warned, cached under o2, and exact."""
    cache = CodeCache()
    binary_a = _loop_module()
    binary_b = _global_reader(41)
    profile = profile_module(binary_a, [("run", ())])
    engine = AotCompiler(opt_level=3, profile=profile)
    with pytest.warns(ProfileWarning, match="different module"):
        instance = engine.instantiate(binary_b, code_cache=cache)
    assert instance.invoke("run") == 42
    assert cache.peek(_key(binary_b), "aot@o2") is not None
    assert cache.peek(_key(binary_b), engine.cache_identity) is None
    # The matching module still loads at full o3 with no warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error", ProfileWarning)
        assert engine.instantiate(binary_a,
                                  code_cache=cache).invoke("run") == 45


# -- forced deopt: a lying profile costs speed, never correctness -------------


def test_mispredicted_const_global_takes_deopt_arm():
    binary = _global_reader(41)
    lying = Profile(module_key=_key(binary), func_calls={0: 50},
                    const_globals={0: 7})  # the global is actually 41
    engine = AotCompiler(opt_level=3, profile=lying)
    module = decode_module(binary)
    _, source = engine.compile_artifact(module, 0)
    assert "_g[0].value == 7" in source  # the guard was emitted...
    instance = engine.instantiate(binary)
    assert instance.invoke("run") == 42  # ...and the deopt arm ran
    assert instance.invoke("run") == Interpreter() \
        .instantiate(binary).invoke("run")


def test_truthful_const_global_still_exact():
    binary = _global_reader(41)
    honest = Profile(module_key=_key(binary), func_calls={0: 50},
                     const_globals={0: 41})
    instance = AotCompiler(opt_level=3, profile=honest).instantiate(binary)
    assert instance.invoke("run") == 42


def test_mispredicted_alignment_takes_struct_path():
    """Profile claims the load site is always aligned; the run feeds it
    an unaligned address. The per-access guard must fall back to the
    byte-accurate path and agree with the interpreter."""

    def emit(f):
        # mem[0:4] = 0x01020304, then i32.load at the address parameter.
        f.i32_const(0)
        f.i32_const(0x01020304)
        f.emit(op.I32_STORE, 0)
        f.local_get(0)
        f.emit(op.I32_LOAD, 0)

    binary = build_single([I32], [I32], emit, memory=(1, 1), export="run")
    site = "f0:3"  # the I32_LOAD is the fourth body instruction
    lying = Profile(module_key=_key(binary), func_calls={0: 50},
                    access_masks={site: 0})
    engine = AotCompiler(opt_level=3, profile=lying)
    reference = Interpreter().instantiate(binary)
    for address in (0, 1, 2, 3):
        got = engine.instantiate(binary).invoke("run", address)
        assert got == reference.invoke("run", address), address


def test_cold_functions_compile_to_fused_artifacts_and_still_run():
    """A function the profile never saw called gets the interpreter-fed
    ("cold", fused-body) artifact — and invoking it anyway is exact."""
    builder = ModuleBuilder()
    type_index = builder.add_type([], [I32])
    hot = builder.add_function(type_index)
    hot.i32_const(1)
    cold = builder.add_function(type_index)
    cold.i32_const(2)
    cold.i32_const(3)
    cold.emit(op.I32_ADD)
    builder.export_function("hot", hot.index)
    builder.export_function("cold", cold.index)
    binary = builder.build()

    profile = Profile(module_key=_key(binary), func_calls={0: 100})
    engine = AotCompiler(opt_level=3, profile=profile)
    module = decode_module(binary)
    artifact = engine.compile_artifact(module, 1)
    assert artifact[0] == "cold"
    instance = engine.instantiate(binary)
    assert instance.invoke("hot") == 1
    assert instance.invoke("cold") == 5
