"""Numeric semantics helpers against spec-defined behaviour."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError
from repro.wasm import numerics as num


def test_signed_reinterpretation():
    assert num.s32(0xFFFFFFFF) == -1
    assert num.s32(0x80000000) == -(1 << 31)
    assert num.s32(0x7FFFFFFF) == (1 << 31) - 1
    assert num.s64(0xFFFFFFFFFFFFFFFF) == -1


def test_clz_ctz_popcnt():
    assert num.clz(0, 32) == 32
    assert num.clz(1, 32) == 31
    assert num.clz(0x80000000, 32) == 0
    assert num.ctz(0, 32) == 32
    assert num.ctz(0x80000000, 32) == 31
    assert num.ctz(0b1000, 32) == 3
    assert num.popcnt(0xF0F0) == 8


def test_rotations():
    assert num.rotl(0x80000001, 1, 32) == 0x00000003
    assert num.rotr(0x00000003, 1, 32) == 0x80000001
    assert num.rotl(0xABCD, 0, 32) == 0xABCD
    assert num.rotl(0xABCD, 32, 32) == 0xABCD


def test_signed_division_truncates_toward_zero():
    assert num.s32(num.idiv_s(7, 0x100000000 - 2, 32)) == -3  # 7 / -2
    assert num.s32(num.idiv_s(0x100000000 - 7, 2, 32)) == -3  # -7 / 2


def test_division_by_zero_traps():
    with pytest.raises(TrapError):
        num.idiv_s(1, 0, 32)
    with pytest.raises(TrapError):
        num.idiv_u(1, 0)
    with pytest.raises(TrapError):
        num.irem_s(1, 0, 32)
    with pytest.raises(TrapError):
        num.irem_u(1, 0)


def test_int_min_overflow_traps():
    with pytest.raises(TrapError):
        num.idiv_s(0x80000000, 0xFFFFFFFF, 32)  # INT_MIN / -1


def test_int_min_rem_minus_one_is_zero():
    assert num.irem_s(0x80000000, 0xFFFFFFFF, 32) == 0


def test_signed_remainder_sign_of_dividend():
    assert num.s32(num.irem_s(0x100000000 - 7, 2, 32)) == -1
    assert num.s32(num.irem_s(7, 0x100000000 - 2, 32)) == 1


def test_shr_s_sign_extends():
    assert num.shr_s(0x80000000, 1, 32) == 0xC0000000
    assert num.shr_s(0x40000000, 1, 32) == 0x20000000


def test_trunc_traps_on_nan_and_overflow():
    with pytest.raises(TrapError):
        num.trunc_to_int(math.nan, True, 32)
    with pytest.raises(TrapError):
        num.trunc_to_int(math.inf, True, 32)
    with pytest.raises(TrapError):
        num.trunc_to_int(2147483648.0, True, 32)
    with pytest.raises(TrapError):
        num.trunc_to_int(-1.0, False, 32)


def test_trunc_valid_edges():
    assert num.trunc_to_int(2147483647.0, True, 32) == 0x7FFFFFFF
    assert num.s32(num.trunc_to_int(-2147483648.0, True, 32)) == -(1 << 31)
    assert num.trunc_to_int(3.99, True, 32) == 3
    assert num.s32(num.trunc_to_int(-3.99, True, 32)) == -3


def test_nearest_ties_to_even():
    assert num.fnearest(0.5) == 0.0
    assert num.fnearest(1.5) == 2.0
    assert num.fnearest(2.5) == 2.0
    assert num.fnearest(-0.5) == 0.0
    assert math.copysign(1.0, num.fnearest(-0.5)) == -1.0
    assert num.fnearest(-1.5) == -2.0


def test_fmin_fmax_nan_and_zero():
    assert math.isnan(num.fmin(math.nan, 1.0))
    assert math.isnan(num.fmax(1.0, math.nan))
    assert math.copysign(1.0, num.fmin(0.0, -0.0)) == -1.0
    assert math.copysign(1.0, num.fmax(0.0, -0.0)) == 1.0
    assert num.fmin(1.0, 2.0) == 1.0
    assert num.fmax(1.0, 2.0) == 2.0


def test_float_unaries_sign_of_zero():
    assert math.copysign(1.0, num.ftrunc(-0.5)) == -1.0
    assert math.copysign(1.0, num.fceil(-0.5)) == -1.0
    assert num.ffloor(-0.5) == -1.0


def test_fsqrt_negative_is_nan():
    assert math.isnan(num.fsqrt(-1.0))
    assert num.fsqrt(9.0) == 3.0


def test_reinterpret_roundtrips():
    assert num.f64_reinterpret_i64(num.i64_reinterpret_f64(1.5)) == 1.5
    assert num.f32_reinterpret_i32(num.i32_reinterpret_f32(1.5)) == 1.5
    assert num.i32_reinterpret_f32(1.0) == 0x3F800000
    assert num.i64_reinterpret_f64(1.0) == 0x3FF0000000000000


def test_extend_signed():
    assert num.extend_signed(0xFF, 8, 32) == 0xFFFFFFFF
    assert num.extend_signed(0x7F, 8, 32) == 0x7F
    assert num.extend_signed(0x8000, 16, 32) == 0xFFFF8000
    assert num.extend_signed(0xFFFFFFFF, 32, 64) == 0xFFFFFFFFFFFFFFFF


def test_f32_round():
    assert num.f32_round(0.1) != 0.1  # 0.1 is not representable in f32
    assert num.f32_round(1.5) == 1.5


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 0xFFFFFFFF), st.integers(1, 0xFFFFFFFF))
def test_divmod_identity_unsigned(a, b):
    q = num.idiv_u(a, b)
    r = num.irem_u(a, b)
    assert q * b + r == a
    assert 0 <= r < b


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 63))
def test_rotl_rotr_inverse(value, count):
    assert num.rotr(num.rotl(value, count, 32), count, 32) == value
