"""Regression tests for the AOT expression-fusion hazards.

Each test pins one invalidation rule of the fusing code generator: a
deferred expression must be materialised before anything it reads is
overwritten (locals, globals, memory), and trap ordering must survive
fusion. Every case runs on both engines and asserts agreement, so a
broken spill rule fails loudly rather than producing wrong numbers.
"""

import pytest

from repro.errors import TrapError
from repro.walc import compile_source
from repro.wasm import AotCompiler, HostFunction, Interpreter, ModuleBuilder
from repro.wasm import opcodes as op
from repro.wasm.types import FuncType, I32


def _both(source, function, *args):
    binary = compile_source(source)
    results = []
    for engine in (Interpreter(), AotCompiler()):
        results.append(engine.instantiate(binary).invoke(function, *args))
    assert results[0] == results[1], results
    return results[0]


def test_deferred_local_read_survives_local_write():
    # `a + a` where the second operand is written between the reads at
    # the Wasm level: a deferred `l0` must capture the old value.
    source = """
export fn f(a: i32) -> i32 {
  var old: i32 = a;   // deferred read of a
  a = a * 10;         // write invalidates it
  return old + a;
}
"""
    assert _both(source, "f", 7) == 7 + 70


def test_deferred_global_read_survives_global_write():
    source = """
var g: i32 = 5;
export fn f() -> i32 {
  var old: i32 = g;
  g = 100;
  return old * 1000 + g;
}
"""
    assert _both(source, "f") == 5 * 1000 + 100


def test_deferred_global_read_survives_call():
    source = """
var g: i32 = 5;
fn mutate() -> i32 { g = 42; return 0; }
export fn f() -> i32 {
  var old: i32 = g;        // must be captured before the call
  var ignore: i32 = mutate();
  return old * 1000 + g + ignore;
}
"""
    assert _both(source, "f") == 5 * 1000 + 42


def test_deferred_memory_size_survives_grow():
    source = """
memory 1 max 4;
export fn f() -> i32 {
  var before: i32 = memory_size();
  memory_grow(2);
  return before * 100 + memory_size();
}
"""
    assert _both(source, "f") == 1 * 100 + 3


def test_store_invalidates_nothing_it_should_not():
    # Stores must spill memory readers but leave local/const expressions
    # deferred; the result is the same either way — this is a behaviour
    # check plus a smoke test that the spill predicate runs.
    source = """
memory 1;
export fn f(v: i32) -> i32 {
  store_i32(0, 11);
  var x: i32 = load_i32(0);   // materialised (loads never defer)
  store_i32(0, 22);           // must not corrupt x
  return x * 100 + load_i32(0) + v;
}
"""
    assert _both(source, "f", 0) == 11 * 100 + 22


def test_trap_order_store_before_division():
    source = """
memory 1;
export fn f(d: i32) -> i32 {
  store_i32(0, 7);
  return 100 / d;
}
export fn peek() -> i32 { return load_i32(0); }
"""
    binary = compile_source(source)
    for engine in (Interpreter(), AotCompiler()):
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError):
            instance.invoke("f", 0)
        assert instance.invoke("peek") == 7  # the store happened first


def test_trap_order_division_before_store():
    source = """
memory 1;
export fn f(d: i32) -> i32 {
  var q: i32 = 100 / d;
  store_i32(0, q);
  return q;
}
export fn peek() -> i32 { return load_i32(0); }
"""
    binary = compile_source(source)
    for engine in (Interpreter(), AotCompiler()):
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError):
            instance.invoke("f", 0)
        assert instance.invoke("peek") == 0  # the store never happened


def test_fused_condition_chain():
    # eqz(eqz(relop)) folds to the raw condition; semantics must hold for
    # all the sign cases.
    source = """
export fn f(a: i32, b: i32) -> i32 {
  if (!(a < b)) { return 1; }
  return 0;
}
"""
    assert _both(source, "f", 2, 3) == 0
    assert _both(source, "f", 3, 2) == 1
    assert _both(source, "f", 0xFFFFFFFF, 0) == 0  # -1 < 0 holds (signed)


def test_oversized_expression_spills():
    # A chain longer than the fusion cap must still compute correctly.
    terms = " + ".join(["a"] * 64)
    source = f"export fn f(a: i32) -> i32 {{ return {terms}; }}"
    assert _both(source, "f", 3) == 3 * 64


def test_deep_mixed_expression_tree():
    source = """
export fn f(a: i32, b: i32) -> i32 {
  return ((a + b) * (a - b) + (a ^ b)) & ((a | b) + (b << 2)) ^ (a >> 1);
}
"""
    a, b = 12345, 678
    expected = (((a + b) * (a - b) + (a ^ b)) & ((a | b) + (b << 2))) ^ (a >> 1)
    assert _both(source, "f", a, b) == expected & 0xFFFFFFFF


def test_select_with_deferred_operands():
    source = """
export fn f(c: i32, a: i32, b: i32) -> i32 {
  var x: i32 = a * 2 + 1;
  var y: i32 = b * 3 + 2;
  if (c != 0) { return x; }
  return y;
}
"""
    assert _both(source, "f", 1, 10, 20) == 21
    assert _both(source, "f", 0, 10, 20) == 62


def test_call_arguments_fuse_in_order():
    """Argument expressions embed into the call; evaluation order is
    left to right, as on the Wasm stack."""
    order = []

    def probe(_instance, value):
        order.append(value)
        return value

    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    host = builder.import_function("env", "probe", t)
    t2 = builder.add_type([I32, I32], [I32])
    f = builder.add_function(t2)
    f.local_get(0)
    f.call(host)
    f.local_get(1)
    f.call(host)
    f.emit(op.I32_ADD)
    builder.export_function("f", f.index)
    imports = {"env": {"probe": HostFunction(FuncType((I32,), (I32,)),
                                             probe)}}
    instance = AotCompiler().instantiate(builder.build(), imports)
    assert instance.invoke("f", 1, 2) == 3
    assert order == [1, 2]


def test_float_ne_nan_multi_use_materialised():
    source = """
export fn f(x: f64) -> i32 {
  var zero: f64 = 0.0;
  if ((x / zero) * 0.0 != 0.0) { return 1; }  // NaN != NaN -> true
  return 0;
}
"""
    assert _both(source, "f", 1.0) == 1   # inf * 0 = NaN
    assert _both(source, "f", 0.0) == 1   # 0/0 = NaN
