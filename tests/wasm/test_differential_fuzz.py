"""Differential fuzzing: the two engines must agree on everything.

Hypothesis generates random (but well-typed) walc programs — arithmetic,
comparisons, branching, loops, memory traffic, function calls — and every
program is executed on the interpreter and on the AOT engine. The engines
must agree on the result value *and* on trap behaviour. This is the
strongest guard on the AOT expression-fusion optimisations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError
from repro.walc import compile_source
from repro.wasm import AotCompiler, Interpreter

# -- random program generation ---------------------------------------------------

_I32_VARS = ["a", "b", "c"]
_F64_VARS = ["x", "y"]


def _i32_expr(draw, depth):
    if depth <= 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return draw(st.sampled_from(_I32_VARS))
        return str(draw(st.integers(0, 0x7FFFFFFF)))
    operator = draw(st.sampled_from(
        ["+", "-", "*", "&", "|", "^", "%", "/", "<<", ">>",
         "==", "!=", "<", ">", "<=", ">="]))
    left = _i32_expr(draw, depth - 1)
    right = _i32_expr(draw, depth - 1)
    return f"({left} {operator} {right})"


def _f64_expr(draw, depth):
    if depth <= 0:
        choice = draw(st.integers(0, 1))
        if choice == 0:
            value = draw(st.floats(-1e6, 1e6, allow_nan=False))
            return repr(value)
        return draw(st.sampled_from(_F64_VARS))
    operator = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = _f64_expr(draw, depth - 1)
    right = _f64_expr(draw, depth - 1)
    return f"({left} {operator} {right})"


def _statement(draw, depth):
    choice = draw(st.integers(0, 6))
    if choice == 0:
        var = draw(st.sampled_from(_I32_VARS))
        return f"{var} = {_i32_expr(draw, draw(st.integers(0, 2)))};"
    if choice == 1:
        var = draw(st.sampled_from(_F64_VARS))
        return f"{var} = {_f64_expr(draw, draw(st.integers(0, 2)))};"
    if choice == 2:
        condition = _i32_expr(draw, 1)
        body = _statement(draw, depth - 1) if depth > 0 else "a = a + 1;"
        other = _statement(draw, depth - 1) if depth > 0 else "b = b - 1;"
        return f"if ({condition}) {{ {body} }} else {{ {other} }}"
    if choice == 3 and depth > 0:
        body = _statement(draw, depth - 1)
        return (f"for (var q{depth}: i32 = 0; q{depth} < "
                f"{draw(st.integers(1, 5))}; q{depth} = q{depth} + 1) "
                f"{{ {body} }}")
    if choice == 4:
        address = draw(st.integers(0, 120)) * 8
        return f"store_f64({address}, {_f64_expr(draw, 1)});"
    if choice == 5:
        address = draw(st.integers(0, 120)) * 8
        var = draw(st.sampled_from(_F64_VARS))
        return f"{var} = load_f64({address});"
    address = draw(st.integers(0, 240)) * 4
    return f"store_i32({address}, {_i32_expr(draw, 1)});"


@st.composite
def walc_programs(draw):
    statements = [
        _statement(draw, draw(st.integers(0, 2)))
        for _ in range(draw(st.integers(1, 6)))
    ]
    body = "\n  ".join(statements)
    return f"""
memory 1;
fn helper(v: i32) -> i32 {{ return (v * 17 + 3) & 0xffff; }}
export fn f(a: i32, b: i32) -> i32 {{
  var c: i32 = helper(a);
  var x: f64 = 1.5;
  var y: f64 = -0.25;
  {body}
  var acc: f64 = x * 1000.0 + y;
  if (acc > 2147483.0 || acc < -2147483.0) {{ acc = 0.0; }}
  return (a ^ b ^ c) + ((acc * 100.0) as i32);
}}
"""


def _outcome(instance, arguments):
    try:
        return ("value", instance.invoke("f", *arguments))
    except TrapError as trap:
        return ("trap", str(trap))


@settings(max_examples=120, deadline=None)
@given(source=walc_programs(),
       arguments=st.tuples(st.integers(0, 1000), st.integers(0, 1000)))
def test_engines_agree(source, arguments):
    binary = compile_source(source)
    interp = Interpreter().instantiate(binary)
    aot = AotCompiler().instantiate(binary)
    assert _outcome(interp, arguments) == _outcome(aot, arguments)


@settings(max_examples=40, deadline=None)
@given(source=walc_programs(),
       arguments=st.tuples(st.integers(0, 1000), st.integers(0, 1000)))
def test_aot_is_deterministic(source, arguments):
    binary = compile_source(source)
    first = AotCompiler().instantiate(binary)
    second = AotCompiler().instantiate(binary)
    assert _outcome(first, arguments) == _outcome(second, arguments)


def test_engines_agree_on_known_trap_order():
    """A store before a division by zero must happen on both engines."""
    source = """
memory 1;
export fn f(d: i32) -> i32 {
  store_i32(0, 42);
  var q: i32 = 10 / d;
  store_i32(0, q);
  return load_i32(0);
}
export fn peek() -> i32 { return load_i32(0); }
"""
    binary = compile_source(source)
    for engine_class in (Interpreter, AotCompiler):
        instance = engine_class().instantiate(binary)
        with pytest.raises(TrapError):
            instance.invoke("f", 0)
        # The first store executed before the trap on both engines.
        assert instance.invoke("peek") == 42
