"""Differential testing of the AOT optimisation tier.

Hypothesis generates random counted-loop programs with linear-memory
traffic directly through :mod:`repro.wasm.builder` — the exact shapes the
optimiser rewrites (affine addresses in an induction local, masked
arithmetic, loop-invariant subexpressions, aligned and misaligned
accesses) plus the shapes that must defeat it (out-of-bounds addresses,
division by zero). Every program runs on the interpreter (the reference
oracle), on AOT at ``opt_level=0`` (the reference codegen) and at
``opt_level=2`` (the optimising tier); all three must agree on the result
value *and* on trap type and message.

The profile-guided tier joins the same oracle twice over: once under an
honestly collected profile, and once under a *lying* profile (inflated
hotness, every access site claimed aligned) that forces the guarded
specialisations down their deopt arms — a mispredicting profile may only
cost speed, never correctness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError
from repro.wasm import AotCompiler, Interpreter, ModuleBuilder
from repro.wasm import opcodes as op
from repro.wasm.types import I32

_WIDTH_OPS = {
    # width -> (load, store)
    1: (op.I32_LOAD8_U, op.I32_STORE8),
    2: (op.I32_LOAD16_U, op.I32_STORE16),
    4: (op.I32_LOAD, op.I32_STORE),
}

_RELOPS = [op.I32_LT_S, op.I32_LT_U, op.I32_LE_S, op.I32_LE_U]

# Locals of f(base: i32) -> i32.
_BASE, _I, _ACC = 0, 1, 2


@st.composite
def loop_programs(draw):
    """A counted loop over memory: the optimiser's target shape.

    ``f(base)`` initialises ``i``, then loops while ``i <relop> bound``,
    each iteration performing a few stores/loads at ``i*stride + offset``
    (optionally ``+ base``, which turns the hoisted bound symbolic) and
    folding loads into an accumulator; returns the accumulator. ``base``
    also serves as a divisor when a division is drawn, so callers can
    steer execution into the div-by-zero trap.
    """
    init = draw(st.integers(0, 8))
    bound = draw(st.integers(0, 40))
    step = draw(st.integers(1, 4))
    relop = draw(st.sampled_from(_RELOPS))
    add_base = draw(st.booleans())
    divide = draw(st.booleans())
    accesses = draw(st.lists(
        st.tuples(
            st.sampled_from([1, 2, 4]),       # access width
            st.sampled_from([1, 2, 4, 8]),    # stride (i multiplier)
            st.integers(0, 64),               # constant offset
            st.booleans(),                    # store (True) or load
        ),
        min_size=1, max_size=5))

    builder = ModuleBuilder()
    builder.add_memory(1, 2)
    type_index = builder.add_type([I32], [I32])
    f = builder.add_function(type_index)
    f.add_local(I32)  # i
    f.add_local(I32)  # acc

    f.i32_const(init).local_set(_I)
    f.block()
    f.loop()
    # Guard: i <relop> bound; eqz; br_if 1.
    f.local_get(_I).i32_const(bound).emit(relop)
    f.emit(op.I32_EQZ).br_if(1)
    for width, stride, offset, is_store in accesses:
        load_op, store_op = _WIDTH_OPS[width]
        # Address: i * stride [+ base].
        f.local_get(_I).i32_const(stride).emit(op.I32_MUL)
        if add_base:
            f.local_get(_BASE).emit(op.I32_ADD)
        if is_store:
            # Value: acc ^ (i + offset), masked by the store width.
            f.local_get(_ACC).local_get(_I).emit(op.I32_XOR)
            f.i32_const(offset).emit(op.I32_ADD)
            f.emit(store_op, offset)
        else:
            f.emit(load_op, offset)
            f.local_get(_ACC).emit(op.I32_ADD).local_set(_ACC)
    if divide:
        # acc = acc / base — traps when invoked with base == 0.
        f.local_get(_ACC).local_get(_BASE).emit(op.I32_DIV_U)
        f.local_set(_ACC)
    # Step, loop.
    f.local_get(_I).i32_const(step).emit(op.I32_ADD).local_set(_I)
    f.br(0)
    f.end()
    f.end()
    f.local_get(_ACC)
    builder.export_function("f", f.index)
    return builder.build()


def _profiled_engine(binary, args=(1,), lie=False):
    """An ``opt_level=3`` engine for ``binary``.

    The honest variant profiles a real (possibly trapping) run under the
    instrumented build. The lying variant then inflates every counter
    and claims every access site was always aligned, so the specialised
    paths are emitted aggressively and their runtime guards must save
    correctness on their own.
    """
    from repro.wasm.codecache import CodeCache
    from repro.wasm.pgo import Profile, ProfileCollector

    collector = ProfileCollector()
    probe = AotCompiler(profile_collector=collector)
    instance = probe.instantiate(binary, code_cache=None)
    try:
        instance.invoke("f", *args)
    except TrapError:
        pass  # a partial profile is still a valid profile
    profile = collector.finish(CodeCache.module_key(binary), instance)
    if lie:
        profile = Profile(
            module_key=profile.module_key,
            func_calls={k: 1000 for k in profile.func_calls} or {0: 1000},
            loop_backedges={k: 1_000_000
                            for k in profile.loop_backedges},
            access_masks={k: 0 for k in profile.access_masks},
            const_globals=dict(profile.const_globals),
        )
    return AotCompiler(opt_level=3, profile=profile)


def _outcome(instance, argument):
    try:
        return ("value", instance.invoke("f", argument))
    except TrapError as trap:
        return (type(trap).__name__, str(trap))


# Argument classes: in-bounds bases, a zero divisor, bases near and past
# the end of the one-page memory (exercising both preflight rejection and
# genuine out-of-bounds traps).
_ARGUMENTS = st.one_of(
    st.integers(0, 1024),
    st.just(0),
    st.integers(65_000, 66_000),
    st.integers(0x7FFF_0000, 0x7FFF_FFFF),
)


@settings(max_examples=150, deadline=None)
@given(binary=loop_programs(), argument=_ARGUMENTS)
def test_opt_levels_and_interpreter_agree(binary, argument):
    interp = Interpreter().instantiate(binary)
    reference = AotCompiler(opt_level=0).instantiate(binary)
    optimised = AotCompiler(opt_level=2).instantiate(binary)
    expected = _outcome(interp, argument)
    assert _outcome(reference, argument) == expected
    assert _outcome(optimised, argument) == expected


@settings(max_examples=60, deadline=None)
@given(binary=loop_programs(), argument=_ARGUMENTS)
def test_opt_levels_agree_on_final_memory(binary, argument):
    """Beyond the return value: the stores must have landed identically."""
    reference = AotCompiler(opt_level=0).instantiate(binary)
    optimised = AotCompiler(opt_level=2).instantiate(binary)
    if _outcome(reference, argument) != _outcome(optimised, argument):
        raise AssertionError("outcome divergence (covered elsewhere)")
    assert reference.memory.data == optimised.memory.data


@settings(max_examples=80, deadline=None)
@given(binary=loop_programs(), argument=_ARGUMENTS)
def test_profile_guided_tier_agrees_with_interpreter(binary, argument):
    """opt_level=3 under an honest profile and under a lying (forced
    deopt) profile: result, trap identity and final memory all pinned
    against the interpreter and the reference codegen."""
    interp = Interpreter().instantiate(binary)
    expected = _outcome(interp, argument)
    reference = AotCompiler(opt_level=0).instantiate(binary)
    honest = _profiled_engine(binary).instantiate(binary)
    lying = _profiled_engine(binary, lie=True).instantiate(binary)
    assert _outcome(reference, argument) == expected
    assert _outcome(honest, argument) == expected
    assert _outcome(lying, argument) == expected
    assert honest.memory.data == reference.memory.data
    assert lying.memory.data == reference.memory.data


def _engines():
    return (Interpreter(), AotCompiler(opt_level=0),
            AotCompiler(opt_level=2))


def test_oob_trap_message_identical_across_engines():
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    f = builder.add_function(builder.add_type([I32], [I32]))
    f.local_get(0).emit(op.I32_LOAD, 0)
    builder.export_function("f", f.index)
    binary = builder.build()
    outcomes = set()
    engines = _engines() + (_profiled_engine(binary, args=(0,)),
                            _profiled_engine(binary, args=(0,), lie=True))
    for engine in engines:
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError) as info:
            instance.invoke("f", 65_536)
        outcomes.add((type(info.value).__name__, str(info.value)))
    assert outcomes == {("TrapError", "out-of-bounds memory access")}


def test_div_by_zero_trap_message_identical_across_engines():
    builder = ModuleBuilder()
    f = builder.add_function(builder.add_type([I32, I32], [I32]))
    f.local_get(0).local_get(1).emit(op.I32_DIV_S)
    builder.export_function("f", f.index)
    binary = builder.build()
    outcomes = set()
    engines = _engines() + (_profiled_engine(binary, args=(7, 1)),
                            _profiled_engine(binary, args=(7, 1), lie=True))
    for engine in engines:
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError) as info:
            instance.invoke("f", 7, 0)
        outcomes.add((type(info.value).__name__, str(info.value)))
    assert outcomes == {("TrapError", "integer divide by zero")}


def test_partial_loop_trap_leaves_identical_memory():
    """A loop that traps mid-flight must keep every pre-trap store (the
    optimised tier must not have entered an unchecked fast path)."""
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    f = builder.add_function(builder.add_type([I32], [I32]))
    f.add_local(I32)  # i
    f.i32_const(0).local_set(1)
    f.block()
    f.loop()
    f.local_get(1).i32_const(40_000).emit(op.I32_LT_U)
    f.emit(op.I32_EQZ).br_if(1)
    # store32 at i*2: traps once i*2+4 passes the 65536-byte page.
    f.local_get(1).i32_const(2).emit(op.I32_MUL)
    f.local_get(1).emit(op.I32_STORE, 0)
    f.local_get(1).i32_const(1).emit(op.I32_ADD).local_set(1)
    f.br(0)
    f.end()
    f.end()
    f.local_get(1)
    builder.export_function("f", f.index)
    binary = builder.build()

    snapshots = []
    engines = _engines() + (_profiled_engine(binary, args=(0,)),
                            _profiled_engine(binary, args=(0,), lie=True))
    for engine in engines:
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError) as info:
            instance.invoke("f", 0)
        assert str(info.value) == "out-of-bounds memory access"
        snapshots.append(bytes(instance.memory.data))
    assert len(set(snapshots)) == 1
