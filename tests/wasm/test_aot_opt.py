"""The AOT optimisation tier: knob, generated-code shape, plane coherence.

The differential suite (test_opt_differential.py) pins *behaviour*; this
file pins the *mechanism* — that the optimiser actually emits what it
promises (plane indexing, a hoisted preflight, mask-free induction
arithmetic, loop-invariant hoists) and that the knob and plane machinery
behave: ``opt_level=0`` keeps the reference codegen, planes track
``memory.grow``, and traps fall back to the byte-identical safe path.
"""

from __future__ import annotations

import pytest

from repro.errors import TrapError, WasmError
from repro.wasm import (
    AotCompiler,
    Interpreter,
    Memory,
    ModuleBuilder,
    default_opt_level,
    reference_codegen,
    set_default_opt_level,
)
from repro.wasm import opcodes as op
from repro.wasm.decoder import decode_module
from repro.wasm.types import F64, I32


def _f64_stream_kernel() -> bytes:
    """for (i = 0; i < 64; i++) mem_f64[i*8] = mem_f64[i*8] * 2.0 + p0*3.0

    Affine aligned f64 traffic plus a loop-invariant float expression —
    the shape every optimisation pass fires on.
    """
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    f = builder.add_function(builder.add_type([F64], []))
    f.add_local(I32)  # i = local 1
    f.i32_const(0).local_set(1)
    f.block()
    f.loop()
    f.local_get(1).i32_const(64).emit(op.I32_LT_S)
    f.emit(op.I32_EQZ).br_if(1)
    f.local_get(1).i32_const(8).emit(op.I32_MUL)       # address
    f.local_get(1).i32_const(8).emit(op.I32_MUL)
    f.emit(op.F64_LOAD, 0)
    f.f64_const(2.0).emit(op.F64_MUL)
    f.local_get(0).f64_const(3.0).emit(op.F64_MUL).emit(op.F64_ADD)
    f.emit(op.F64_STORE, 0)
    f.local_get(1).i32_const(1).emit(op.I32_ADD).local_set(1)
    f.br(0)
    f.end()
    f.end()
    builder.export_function("f", f.index)
    return builder.build()


def _source(binary: bytes, opt_level: int) -> str:
    module = decode_module(binary)
    compiler = AotCompiler(opt_level=opt_level)
    _, source = compiler.compile_artifact(module, 0)
    return source


def _loop_body(source: str) -> str:
    """The lines emitted after the preflight branch (the fast region)."""
    lines = source.splitlines()
    for index, line in enumerate(lines):
        if line.strip().startswith("if ") and "_ml" in line:
            return "\n".join(lines[index:])
    raise AssertionError(f"no preflight found in:\n{source}")


# -- the opt_level knob -------------------------------------------------------


def test_default_opt_level_is_two():
    assert default_opt_level() == 2
    assert AotCompiler().opt_level == 2


def test_set_default_opt_level_round_trips():
    previous = set_default_opt_level(0)
    try:
        assert AotCompiler().opt_level == 0
    finally:
        set_default_opt_level(previous)
    assert AotCompiler().opt_level == previous


def test_reference_codegen_context_manager():
    with reference_codegen():
        assert default_opt_level() == 0
        assert AotCompiler().cache_identity == "aot@o0"
    assert default_opt_level() == 2


def test_invalid_opt_level_rejected():
    with pytest.raises(WasmError):
        AotCompiler(opt_level=7)
    with pytest.raises(WasmError):
        set_default_opt_level("fast")


def test_cache_identity_includes_opt_level():
    assert AotCompiler(opt_level=0).cache_identity == "aot@o0"
    assert AotCompiler(opt_level=2).cache_identity == "aot@o2"
    assert Interpreter().cache_identity == Interpreter.name


# -- generated-code shape -----------------------------------------------------


@pytest.mark.skipif(not Memory.planes_supported,
                    reason="typed planes need a little-endian host")
def test_opt2_emits_planes_preflight_and_no_masks():
    source = _source(_f64_stream_kernel(), 2)
    # One hoisted bounds check per loop entry...
    assert "_ml = len(_m)" in source
    fast = _loop_body(source)
    fast_region, _, safe_region = fast.partition("else:")
    # ...direct f64 plane indexing in the fast region, with no per-access
    # bounds checks and no masks on the induction arithmetic...
    assert "_pD[" in fast_region
    assert "out-of-bounds" not in fast_region
    assert "& 0xFFFFFFFF" not in fast_region
    # ...while the safe copy keeps the reference per-access checks
    # (planes and range-proven mask drops may appear there too — those
    # passes are sound without the preflight).
    assert "out-of-bounds" in safe_region


def test_opt2_hoists_loop_invariant_expression():
    source = _source(_f64_stream_kernel(), 2)
    # p0 * 3.0 is pure and loop-invariant: computed once in a preheader
    # (once per loop version — fast and safe copies each hoist it).
    assert "h0 = " in source
    for line in source.splitlines():
        if "3.0" in line:
            assert line.strip().startswith("h"), line


def test_opt0_is_reference_codegen():
    source = _source(_f64_stream_kernel(), 0)
    assert "_ml" not in source
    assert "_pD[" not in source
    assert "h0" not in source
    assert "& 0xFFFFFFFF" in source


def test_opt_levels_produce_distinct_sources():
    binary = _f64_stream_kernel()
    assert _source(binary, 0) != _source(binary, 2)
    # Determinism at each level (the artifact is cacheable).
    assert _source(binary, 2) == _source(binary, 2)


# -- typed memory planes ------------------------------------------------------


@pytest.mark.skipif(not Memory.planes_supported,
                    reason="typed planes need a little-endian host")
def test_memory_planes_alias_data():
    memory = Memory(1, 2)
    plane = memory.plane("I")
    memory.data[0:4] = (0x44332211).to_bytes(4, "little")
    assert plane[0] == 0x44332211
    plane[1] = 0xDEADBEEF
    assert memory.data[4:8] == (0xDEADBEEF).to_bytes(4, "little")


@pytest.mark.skipif(not Memory.planes_supported,
                    reason="typed planes need a little-endian host")
def test_memory_planes_track_grow():
    memory = Memory(1, 4)
    seen = []
    memory.add_plane_listener(lambda: seen.append(len(memory.data)))
    plane = memory.plane("Q")
    plane[0] = 123
    assert memory.grow(1) == 1
    assert seen, "grow must notify plane listeners"
    fresh = memory.plane("Q")
    assert len(fresh) == len(memory.data) // 8
    assert fresh[0] == 123  # contents carried over


def test_grow_inside_loop_stays_coherent_with_interpreter():
    """A loop that grows memory then writes into the new pages: planes are
    re-requested after every grow, so both engines see the stores."""
    builder = ModuleBuilder()
    builder.add_memory(1, 4)
    f = builder.add_function(builder.add_type([], [I32]))
    f.add_local(I32)  # i
    f.i32_const(0).local_set(0)
    f.block()
    f.loop()
    f.local_get(0).i32_const(3).emit(op.I32_LT_U)
    f.emit(op.I32_EQZ).br_if(1)
    f.i32_const(1).emit(op.MEMORY_GROW).emit(op.DROP)
    # Store into the page that just appeared.
    f.local_get(0).i32_const(65_536).emit(op.I32_MUL)
    f.local_get(0).i32_const(7).emit(op.I32_ADD)
    f.emit(op.I32_STORE, 65_536)
    f.local_get(0).i32_const(1).emit(op.I32_ADD).local_set(0)
    f.br(0)
    f.end()
    f.end()
    # Checksum the three stores.
    f.i32_const(65_536).emit(op.I32_LOAD, 0)
    f.i32_const(131_072).emit(op.I32_LOAD, 0)
    f.emit(op.I32_ADD)
    f.i32_const(196_608).emit(op.I32_LOAD, 0)
    f.emit(op.I32_ADD)
    builder.export_function("f", f.index)
    binary = builder.build()

    expected = Interpreter().instantiate(binary).invoke("f")
    assert AotCompiler(opt_level=0).instantiate(binary).invoke("f") == expected
    assert AotCompiler(opt_level=2).instantiate(binary).invoke("f") == expected


# -- trap fallback ------------------------------------------------------------


def test_preflight_failure_takes_safe_path_and_traps_identically():
    """An OOB loop fails the preflight, runs the safe copy, and traps with
    the reference message at the reference iteration."""
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    f = builder.add_function(builder.add_type([], [I32]))
    f.add_local(I32)
    f.i32_const(0).local_set(0)
    f.block()
    f.loop()
    f.local_get(0).i32_const(20_000).emit(op.I32_LT_U)
    f.emit(op.I32_EQZ).br_if(1)
    f.local_get(0).i32_const(4).emit(op.I32_MUL)
    f.local_get(0).emit(op.I32_STORE, 0)
    f.local_get(0).i32_const(1).emit(op.I32_ADD).local_set(0)
    f.br(0)
    f.end()
    f.end()
    f.local_get(0)
    builder.export_function("f", f.index)
    binary = builder.build()

    memories = []
    for engine in (Interpreter(), AotCompiler(opt_level=0),
                   AotCompiler(opt_level=2)):
        instance = engine.instantiate(binary)
        with pytest.raises(TrapError) as info:
            instance.invoke("f")
        assert str(info.value) == "out-of-bounds memory access"
        memories.append(bytes(instance.memory.data))
    assert memories[0] == memories[1] == memories[2]
