"""Helpers for building tiny test modules."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.wasm import ModuleBuilder
from repro.wasm.types import ValType


def build_single(params: Sequence[ValType], results: Sequence[ValType],
                 emit: Callable, locals: Sequence[ValType] = (),
                 memory: Optional[tuple] = None,
                 export: str = "f") -> bytes:
    """A module with one exported function whose body ``emit`` writes."""
    builder = ModuleBuilder()
    if memory is not None:
        builder.add_memory(*memory)
    type_index = builder.add_type(params, results)
    function = builder.add_function(type_index)
    for valtype in locals:
        function.add_local(valtype)
    emit(function)
    builder.export_function(export, function.index)
    return builder.build()


def run_single(engine, params, results, emit, args=(), **kwargs):
    """Build, instantiate and invoke in one step."""
    binary = build_single(params, results, emit, **kwargs)
    instance = engine.instantiate(binary)
    return instance.invoke("f", *args)
