"""LEB128 encoding: vectors, limits, round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError
from repro.wasm.leb128 import (
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_unsigned,
)


@pytest.mark.parametrize("value,encoded", [
    (0, b"\x00"),
    (1, b"\x01"),
    (127, b"\x7f"),
    (128, b"\x80\x01"),
    (624485, b"\xe5\x8e\x26"),
])
def test_unsigned_vectors(value, encoded):
    assert encode_unsigned(value) == encoded
    assert decode_unsigned(encoded, 0) == (value, len(encoded))


@pytest.mark.parametrize("value,encoded", [
    (0, b"\x00"),
    (-1, b"\x7f"),
    (63, b"\x3f"),
    (64, b"\xc0\x00"),
    (-64, b"\x40"),
    (-123456, b"\xc0\xbb\x78"),
])
def test_signed_vectors(value, encoded):
    assert encode_signed(value) == encoded
    assert decode_signed(encoded, 0) == (value, len(encoded))


def test_unsigned_rejects_negative():
    with pytest.raises(ValueError):
        encode_unsigned(-1)


def test_truncated_input():
    with pytest.raises(DecodeError):
        decode_unsigned(b"\x80", 0)
    with pytest.raises(DecodeError):
        decode_signed(b"\xff", 0)


def test_overlong_encoding_rejected():
    with pytest.raises(DecodeError):
        decode_unsigned(b"\x80" * 12 + b"\x01", 0)


def test_value_exceeding_bit_width_rejected():
    encoded = encode_unsigned(1 << 40)
    with pytest.raises(DecodeError):
        decode_unsigned(encoded, 0, max_bits=32)


def test_signed_value_exceeding_bit_width_rejected():
    encoded = encode_signed(1 << 40)
    with pytest.raises(DecodeError):
        decode_signed(encoded, 0, max_bits=32)


def test_decode_at_offset():
    data = b"\xaa\xbb" + encode_unsigned(300)
    value, offset = decode_unsigned(data, 2)
    assert value == 300
    assert offset == len(data)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 64) - 1))
def test_unsigned_roundtrip(value):
    encoded = encode_unsigned(value)
    assert decode_unsigned(encoded, 0) == (value, len(encoded))


@settings(max_examples=200, deadline=None)
@given(st.integers(-(1 << 63), (1 << 63) - 1))
def test_signed_roundtrip(value):
    encoded = encode_signed(value)
    assert decode_signed(encoded, 0) == (value, len(encoded))
