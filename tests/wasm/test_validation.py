"""The validator: sandbox guarantees via rejected modules."""

import pytest

from repro.errors import ValidationError
from repro.wasm import ModuleBuilder, decode_module, validate_module
from repro.wasm import opcodes as op
from repro.wasm.types import F64, I32


def _validate(builder: ModuleBuilder):
    validate_module(decode_module(builder.build()))


def _single(emit, params=(), results=(), locals=(), memory=None,
            table=False):
    builder = ModuleBuilder()
    if memory:
        builder.add_memory(*memory)
    if table:
        builder.add_table(1, 1)
    t = builder.add_type(params, results)
    f = builder.add_function(t)
    for valtype in locals:
        f.add_local(valtype)
    emit(f)
    return builder


def test_valid_module_passes():
    def emit(f):
        f.i32_const(1)
        f.i32_const(2)
        f.emit(op.I32_ADD)

    _validate(_single(emit, results=[I32]))


def test_stack_underflow_rejected():
    def emit(f):
        f.emit(op.I32_ADD)

    with pytest.raises(ValidationError, match="underflow"):
        _validate(_single(emit, results=[I32]))


def test_type_mismatch_rejected():
    def emit(f):
        f.i32_const(1)
        f.f64_const(1.0)
        f.emit(op.I32_ADD)

    with pytest.raises(ValidationError, match="expected"):
        _validate(_single(emit, results=[I32]))


def test_missing_result_rejected():
    def emit(f):
        pass

    with pytest.raises(ValidationError):
        _validate(_single(emit, results=[I32]))


def test_excess_values_rejected():
    def emit(f):
        f.i32_const(1)
        f.i32_const(2)

    with pytest.raises(ValidationError, match="left on stack"):
        _validate(_single(emit, results=[I32]))


def test_unknown_local_rejected():
    def emit(f):
        f.local_get(3)

    with pytest.raises(ValidationError, match="local"):
        _validate(_single(emit, results=[I32]))


def test_local_type_mismatch_rejected():
    def emit(f):
        f.local_get(0)
        f.emit(op.F64_NEG)

    with pytest.raises(ValidationError):
        _validate(_single(emit, params=[I32], results=[F64]))


def test_unknown_global_rejected():
    def emit(f):
        f.global_get(0)

    with pytest.raises(ValidationError, match="global"):
        _validate(_single(emit, results=[I32]))


def test_immutable_global_assignment_rejected():
    builder = ModuleBuilder()
    builder.add_global(I32, False, 1)
    t = builder.add_type([], [])
    f = builder.add_function(t)
    f.i32_const(2)
    f.global_set(0)
    with pytest.raises(ValidationError, match="immutable"):
        _validate(builder)


def test_branch_depth_out_of_range_rejected():
    def emit(f):
        f.block()
        f.br(5)
        f.end()

    with pytest.raises(ValidationError, match="depth"):
        _validate(_single(emit))


def test_branch_with_missing_value_rejected():
    def emit(f):
        f.block(I32)
        f.br(0)
        f.end()

    with pytest.raises(ValidationError):
        _validate(_single(emit, results=[I32]))


def test_if_condition_required():
    def emit(f):
        f.if_()
        f.end()

    with pytest.raises(ValidationError):
        _validate(_single(emit))


def test_if_with_result_requires_else():
    def emit(f):
        f.i32_const(1)
        f.if_(I32)
        f.i32_const(2)
        f.end()

    with pytest.raises(ValidationError, match="else"):
        _validate(_single(emit, results=[I32]))


def test_if_arm_type_mismatch_rejected():
    def emit(f):
        f.i32_const(1)
        f.if_(I32)
        f.i32_const(2)
        f.else_()
        f.f64_const(2.0)
        f.end()

    with pytest.raises(ValidationError):
        _validate(_single(emit, results=[I32]))


def test_memory_instruction_without_memory_rejected():
    def emit(f):
        f.i32_const(0)
        f.emit(op.I32_LOAD, 0)

    with pytest.raises(ValidationError, match="memory"):
        _validate(_single(emit, results=[I32]))


def test_call_unknown_function_rejected():
    def emit(f):
        f.call(9)

    with pytest.raises(ValidationError, match="unknown function"):
        _validate(_single(emit))


def test_call_argument_type_checked():
    builder = ModuleBuilder()
    t_f = builder.add_type([F64], [F64])
    callee = builder.add_function(t_f)
    callee.local_get(0)
    t_i = builder.add_type([], [I32])
    caller = builder.add_function(t_i)
    caller.i32_const(1)
    caller.call(callee.index)
    with pytest.raises(ValidationError):
        _validate(builder)


def test_call_indirect_requires_table():
    def emit(f):
        f.i32_const(0)
        f.emit(op.CALL_INDIRECT, 0)

    with pytest.raises(ValidationError, match="table"):
        _validate(_single(emit))


def test_br_table_label_types_must_agree():
    def emit(f):
        f.block(I32)        # result i32
        f.block()           # no result
        f.i32_const(0)
        f.emit(op.BR_TABLE, (0,), 1)
        f.end()
        f.i32_const(1)
        f.end()

    with pytest.raises(ValidationError, match="br_table"):
        _validate(_single(emit, results=[I32]))


def test_unreachable_makes_stack_polymorphic():
    def emit(f):
        f.emit(op.UNREACHABLE)
        f.emit(op.I32_ADD)  # allowed after unreachable

    _validate(_single(emit, results=[I32]))


def test_code_after_return_is_polymorphic():
    def emit(f):
        f.i32_const(1)
        f.ret()
        f.emit(op.DROP)

    _validate(_single(emit, results=[I32]))


def test_select_operand_types_must_match():
    def emit(f):
        f.i32_const(1)
        f.f64_const(1.0)
        f.i32_const(0)
        f.emit(op.SELECT)

    with pytest.raises(ValidationError):
        _validate(_single(emit, results=[I32]))


def test_start_function_signature_checked():
    builder = ModuleBuilder()
    t = builder.add_type([I32], [])
    f = builder.add_function(t)
    f.local_get(0)
    f.emit(op.DROP)
    builder.set_start(f.index)
    with pytest.raises(ValidationError, match="start"):
        _validate(builder)


def test_export_index_out_of_range_rejected():
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    builder.add_function(t)
    builder.export_function("ghost", 7)
    with pytest.raises(ValidationError, match="out of range"):
        _validate(builder)


def test_element_function_index_checked():
    builder = ModuleBuilder()
    builder.add_table(2, 2)
    t = builder.add_type([], [])
    builder.add_function(t)
    builder.add_element(0, [5])
    with pytest.raises(ValidationError, match="element"):
        _validate(builder)
