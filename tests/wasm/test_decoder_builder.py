"""Binary format: builder/decoder round trips and malformed binaries."""

import pytest

from repro.errors import DecodeError
from repro.wasm import ModuleBuilder, decode_module
from repro.wasm import opcodes as op
from repro.wasm.types import F64, I32, I64


def _sample_binary():
    builder = ModuleBuilder()
    builder.add_memory(2, 8)
    builder.add_table(3, 3)
    builder.add_global(I32, True, 7)
    builder.add_global(F64, False, 2.5)
    builder.add_data(16, b"hello")
    t0 = builder.add_type([I32, I32], [I32])
    t1 = builder.add_type([], [])
    imported = builder.import_function("env", "host", t1)
    f = builder.add_function(t0)
    f.local_get(0)
    f.local_get(1)
    f.emit(op.I32_ADD)
    g = builder.add_function(t1)
    g.call(imported)
    builder.add_element(0, [f.index, g.index])
    builder.export_function("add", f.index)
    builder.export_memory("memory")
    builder.export_global("counter", 0)
    builder.set_start(g.index)
    return builder.build()


def test_roundtrip_structure():
    module = decode_module(_sample_binary())
    assert len(module.types) == 2
    assert len(module.imported_funcs) == 1
    assert module.imported_funcs[0].module == "env"
    assert len(module.functions) == 2
    assert module.memories[0].limits.minimum == 2
    assert module.memories[0].limits.maximum == 8
    assert module.tables[0].limits.minimum == 3
    assert module.globals[0].init == 7
    assert module.globals[0].type.mutable
    assert module.globals[1].init == 2.5
    assert not module.globals[1].type.mutable
    assert module.data_segments[0].offset == 16
    assert module.data_segments[0].data == b"hello"
    assert module.start == 2
    assert {e.name for e in module.exports} == {"add", "memory", "counter"}


def test_type_interning():
    builder = ModuleBuilder()
    first = builder.add_type([I32], [I32])
    second = builder.add_type([I32], [I32])
    assert first == second
    third = builder.add_type([I64], [I32])
    assert third != first


def test_func_type_lookup_spans_imports():
    module = decode_module(_sample_binary())
    assert module.func_type(0).params == ()  # the import
    assert module.func_type(1).params == (I32, I32)


def test_body_targets_resolved():
    builder = ModuleBuilder()
    t = builder.add_type([], [I32])
    f = builder.add_function(t)
    f.block(I32)
    f.i32_const(1)
    f.end()
    builder.export_function("f", f.index)
    module = decode_module(builder.build())
    body = module.functions[0].body
    assert body[0].opcode == op.BLOCK
    assert body[body[0].target].opcode == op.END


def test_if_else_targets_resolved():
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    f = builder.add_function(t)
    f.local_get(0)
    f.if_(I32)
    f.i32_const(1)
    f.else_()
    f.i32_const(2)
    f.end()
    builder.export_function("f", f.index)
    module = decode_module(builder.build())
    body = module.functions[0].body
    if_instr = body[1]
    assert if_instr.opcode == op.IF
    assert body[if_instr.else_target].opcode == op.ELSE
    assert body[if_instr.target].opcode == op.END


def test_locals_run_length_encoding():
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    f = builder.add_function(t)
    for valtype in (I32, I32, I64, F64, F64, F64):
        f.add_local(valtype)
    binary = builder.build()
    module = decode_module(binary)
    assert module.functions[0].locals == [I32, I32, I64, F64, F64, F64]


@pytest.mark.parametrize("mutation,message", [
    (lambda b: b[:3], "header"),
    (lambda b: b"\x01asm" + b[4:], "magic"),
    (lambda b: b[:4] + b"\x02\x00\x00\x00" + b[8:], "version"),
])
def test_malformed_headers(mutation, message):
    binary = _sample_binary()
    with pytest.raises(DecodeError, match=message):
        decode_module(mutation(bytearray(binary)))


def test_truncated_binary_rejected():
    binary = _sample_binary()
    with pytest.raises(DecodeError):
        decode_module(binary[: len(binary) - 4])


def test_unknown_opcode_rejected():
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    f = builder.add_function(t)
    f._body.append(0xFE)  # not a valid MVP opcode
    with pytest.raises(DecodeError, match="opcode"):
        decode_module(builder.build())


def test_unbalanced_block_caught_by_builder():
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    f = builder.add_function(t)
    f.block()
    with pytest.raises(Exception, match="unterminated"):
        builder.build()


def test_binary_size_recorded():
    binary = _sample_binary()
    module = decode_module(binary)
    assert module.binary_size == len(binary)


def test_duplicate_export_rejected():
    builder = ModuleBuilder()
    t = builder.add_type([], [])
    f = builder.add_function(t)
    builder.export_function("x", f.index)
    builder.export_function("x", f.index)
    with pytest.raises(DecodeError, match="duplicate"):
        decode_module(builder.build())
