"""The code cache under concurrency: shared code, never shared state.

The fleet gateway loads the same module binaries from many worker
threads at once (and, with process shards, each shard process runs its
own loader threads). These tests pin the cache's concurrent contract:
racing cold loads of one binary converge to a single cache entry whose
artifacts are write-once, warm loads never recompile, the LRU bound
holds under parallel stores, and instances built from shared cached
code still never share memories.
"""

import threading

from repro.wasm import AotCompiler
from repro.wasm import opcodes as op
from repro.wasm.codecache import CodeCache
from repro.wasm.types import I32
from tests.wasm.helpers import build_single


def _counter_module() -> bytes:
    """mem[0] += 1; return mem[0] — observable per-instance state."""

    def emit(f):
        f.i32_const(0)
        f.i32_const(0)
        f.emit(op.I32_LOAD, 0)
        f.i32_const(1)
        f.emit(op.I32_ADD)
        f.emit(op.I32_STORE, 0)
        f.i32_const(0)
        f.emit(op.I32_LOAD, 0)

    return build_single([], [I32], emit, memory=(1, 1))


def _const_module(value: int) -> bytes:
    """return value — distinct content hash per value."""
    return build_single([], [I32], lambda f: f.i32_const(value))


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    failures = []

    def wrapped(index):
        barrier.wait()  # maximise overlap: all threads enter together
        try:
            target(index)
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=wrapped, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures


def test_parallel_cold_loads_of_same_binary_converge():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    instances = [None] * 8

    def load(index):
        instances[index] = engine.instantiate(binary, code_cache=cache)

    _run_threads(8, load)
    # However the compile race resolved, the cache holds exactly one
    # entry for this content hash, and its artifacts are populated.
    assert len(cache) == 1
    entry = cache.peek(CodeCache.module_key(binary), engine.cache_identity)
    assert entry is not None and entry.artifacts
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == 8
    assert stats["misses"] >= 1
    # Shared code, fresh state: every instance has its own memory.
    assert all(instance.invoke("f") == 1 for instance in instances)
    assert all(instance.invoke("f") == 2 for instance in instances)


def test_warm_parallel_loads_never_recompile():
    engine = AotCompiler()
    cache = CodeCache()
    binary = _counter_module()
    engine.instantiate(binary, code_cache=cache)  # cold compile

    compiles = []
    original = engine.compile_function

    def counting(module, instance, func_index):
        compiles.append(func_index)
        return original(module, instance, func_index)

    engine.compile_function = counting
    _run_threads(8, lambda _:
                 engine.instantiate(binary, code_cache=cache))
    assert compiles == []  # single-compile semantics: warm loads reuse
    assert cache.stats()["hits"] == 8


def test_parallel_loads_of_distinct_binaries_all_cached():
    engine = AotCompiler()
    cache = CodeCache()
    binaries = [_const_module(value) for value in range(8)]
    results = [None] * 8

    def load(index):
        results[index] = engine.instantiate(binaries[index],
                                            code_cache=cache)

    _run_threads(8, load)
    assert len(cache) == 8
    assert cache.stats()["misses"] == 8
    assert cache.stats()["hits"] == 0
    assert [instance.invoke("f") for instance in results] == list(range(8))


def test_lru_bound_holds_under_parallel_stores():
    from repro.wasm.decoder import decode_module

    cache = CodeCache(capacity=4)
    module = decode_module(_counter_module())

    _run_threads(8, lambda index:
                 cache.store(f"key{index}", "aot", module))
    stats = cache.stats()
    assert stats["entries"] == 4  # never grows past capacity
    assert stats["evictions"] == 4  # 8 distinct stores - 4 kept
    survivors = [index for index in range(8)
                 if cache.peek(f"key{index}", "aot") is not None]
    assert len(survivors) == 4


def test_parallel_cmd_load_on_devices_shares_the_default_cache(testbed):
    """Four boards load the same binary through CMD_LOAD concurrently;
    the process-wide cache converges to one entry and every app still
    gets a private memory."""
    from repro.wasm.codecache import DEFAULT_CACHE

    binary = _counter_module()
    devices = [testbed.create_device() for _ in range(4)]
    sessions = [device.open_watz(heap_size=1 << 20) for device in devices]
    loaded = [None] * 4

    def load(index):
        loaded[index] = devices[index].load_wasm(sessions[index], binary)

    _run_threads(4, load)
    aot_entries = [key for key in DEFAULT_CACHE._entries
                   if key[1].startswith("aot@")]
    assert len(aot_entries) == 1
    counts = [devices[index].run_wasm(sessions[index],
                                      loaded[index]["app"], "f")
              for index in range(4)]
    assert counts == [1, 1, 1, 1]  # no shared mutable state across TAs
    # And a warm reload on any board hits rather than recompiles.
    before = DEFAULT_CACHE.stats()["hits"]
    devices[0].load_wasm(sessions[0], binary)
    assert DEFAULT_CACHE.stats()["hits"] == before + 1
