"""Structured control flow: blocks, loops, branches, select, traps."""

import pytest

from repro.errors import ExhaustionError, TrapError
from repro.wasm import ModuleBuilder
from repro.wasm import opcodes as op
from repro.wasm.types import F64, I32
from tests.wasm.helpers import run_single


def test_block_with_result(engine):
    def emit(f):
        f.block(I32)
        f.i32_const(42)
        f.end()

    assert run_single(engine, [], [I32], emit) == 42


def test_br_skips_code(engine):
    def emit(f):
        f.block(I32)
        f.i32_const(1)
        f.br(0)
        f.emit(op.DROP)
        f.i32_const(99)
        f.end()

    assert run_single(engine, [], [I32], emit) == 1


def test_br_out_of_nested_blocks(engine):
    def emit(f):
        f.block(I32)
        f.block()
        f.block()
        f.i32_const(7)
        f.br(2)
        f.end()
        f.end()
        f.i32_const(8)
        f.end()

    assert run_single(engine, [], [I32], emit) == 7


def test_br_if_taken_and_not_taken(engine):
    def emit(f):
        # if arg != 0 return 10 else 20
        f.block(I32)
        f.i32_const(10)
        f.local_get(0)
        f.br_if(0)
        f.emit(op.DROP)
        f.i32_const(20)
        f.end()

    binary_args = [(1, 10), (0, 20), (5, 10)]
    for arg, expected in binary_args:
        assert run_single(engine, [I32], [I32], emit, (arg,)) == expected


def test_loop_countdown(engine):
    def emit(f):
        # while (n != 0) n--; return 123
        f.block()
        f.loop()
        f.local_get(0)
        f.emit(op.I32_EQZ)
        f.br_if(1)
        f.local_get(0)
        f.i32_const(1)
        f.emit(op.I32_SUB)
        f.local_set(0)
        f.br(0)
        f.end()
        f.end()
        f.i32_const(123)

    assert run_single(engine, [I32], [I32], emit, (10,)) == 123


def test_loop_accumulates(engine):
    def emit(f):
        # sum 1..n into local 1
        f.block()
        f.loop()
        f.local_get(0)
        f.emit(op.I32_EQZ)
        f.br_if(1)
        f.local_get(1)
        f.local_get(0)
        f.emit(op.I32_ADD)
        f.local_set(1)
        f.local_get(0)
        f.i32_const(1)
        f.emit(op.I32_SUB)
        f.local_set(0)
        f.br(0)
        f.end()
        f.end()
        f.local_get(1)

    assert run_single(engine, [I32], [I32], emit, (100,),
                      locals=[I32]) == 5050


def test_if_else_both_arms(engine):
    def emit(f):
        f.local_get(0)
        f.if_(I32)
        f.i32_const(111)
        f.else_()
        f.i32_const(222)
        f.end()

    assert run_single(engine, [I32], [I32], emit, (1,)) == 111
    assert run_single(engine, [I32], [I32], emit, (0,)) == 222


def test_if_without_else(engine):
    def emit(f):
        f.local_get(0)
        f.if_()
        f.i32_const(5)
        f.local_set(1)
        f.end()
        f.local_get(1)

    assert run_single(engine, [I32], [I32], emit, (1,), locals=[I32]) == 5
    assert run_single(engine, [I32], [I32], emit, (0,), locals=[I32]) == 0


def test_nested_if_in_loop(engine):
    def emit(f):
        # count even numbers in [0, n)
        f.block()
        f.loop()
        f.local_get(0)
        f.emit(op.I32_EQZ)
        f.br_if(1)
        f.local_get(0)
        f.i32_const(1)
        f.emit(op.I32_SUB)
        f.local_set(0)
        f.local_get(0)
        f.i32_const(2)
        f.emit(op.I32_REM_U)
        f.emit(op.I32_EQZ)
        f.if_()
        f.local_get(1)
        f.i32_const(1)
        f.emit(op.I32_ADD)
        f.local_set(1)
        f.end()
        f.br(0)
        f.end()
        f.end()
        f.local_get(1)

    assert run_single(engine, [I32], [I32], emit, (10,), locals=[I32]) == 5


def test_br_table_dense_dispatch(engine):
    def emit(f):
        f.block(I32)
        f.block()
        f.block()
        f.block()
        f.local_get(0)
        f.emit(op.BR_TABLE, (0, 1), 2)
        f.end()
        f.i32_const(100)
        f.br(2)
        f.end()
        f.i32_const(200)
        f.br(1)
        f.end()
        f.i32_const(300)
        f.end()

    for selector, expected in [(0, 100), (1, 200), (2, 300), (99, 300)]:
        assert run_single(engine, [I32], [I32], emit, (selector,)) == expected


def test_br_table_empty_targets(engine):
    def emit(f):
        f.block(I32)
        f.block()
        f.local_get(0)
        f.emit(op.BR_TABLE, (), 0)
        f.end()
        f.i32_const(1)
        f.br(0)
        f.end()

    assert run_single(engine, [I32], [I32], emit, (7,)) == 1


def test_return_from_nested_control(engine):
    def emit(f):
        f.block()
        f.loop()
        f.local_get(0)
        f.if_()
        f.i32_const(77)
        f.ret()
        f.end()
        f.br(1)
        f.end()
        f.end()
        f.i32_const(88)

    assert run_single(engine, [I32], [I32], emit, (1,)) == 77
    assert run_single(engine, [I32], [I32], emit, (0,)) == 88


def test_select(engine):
    def emit(f):
        f.i32_const(111)
        f.i32_const(222)
        f.local_get(0)
        f.emit(op.SELECT)

    assert run_single(engine, [I32], [I32], emit, (1,)) == 111
    assert run_single(engine, [I32], [I32], emit, (0,)) == 222


def test_select_floats(engine):
    def emit(f):
        f.f64_const(1.25)
        f.f64_const(2.5)
        f.local_get(0)
        f.emit(op.SELECT)

    assert run_single(engine, [I32], [F64], emit, (0,)) == 2.5


def test_drop(engine):
    def emit(f):
        f.i32_const(1)
        f.i32_const(2)
        f.emit(op.DROP)

    assert run_single(engine, [], [I32], emit) == 1


def test_unreachable_traps(engine):
    def emit(f):
        f.emit(op.UNREACHABLE)

    with pytest.raises(TrapError, match="unreachable"):
        run_single(engine, [], [], emit)


def test_unreachable_after_branch_not_executed(engine):
    def emit(f):
        f.block()
        f.br(0)
        f.emit(op.UNREACHABLE)
        f.end()
        f.i32_const(9)

    assert run_single(engine, [], [I32], emit) == 9


def test_local_tee(engine):
    def emit(f):
        f.i32_const(42)
        f.local_tee(0)
        f.local_get(0)
        f.emit(op.I32_ADD)

    assert run_single(engine, [], [I32], emit, locals=[I32]) == 84


def test_globals(engine):
    builder = ModuleBuilder()
    gidx = builder.add_global(I32, True, 10)
    t = builder.add_type([], [I32])
    f = builder.add_function(t)
    f.global_get(gidx)
    f.i32_const(5)
    f.emit(op.I32_ADD)
    f.global_set(gidx)
    f.global_get(gidx)
    builder.export_function("bump", f.index)
    instance = engine.instantiate(builder.build())
    assert instance.invoke("bump") == 15
    assert instance.invoke("bump") == 20


def test_deep_recursion_traps(engine):
    builder = ModuleBuilder()
    t = builder.add_type([I32], [I32])
    f = builder.add_function(t)
    f.local_get(0)
    f.i32_const(1)
    f.emit(op.I32_ADD)
    f.call(f.index)
    builder.export_function("spin", f.index)
    instance = engine.instantiate(builder.build())
    with pytest.raises(TrapError, match="call stack"):
        instance.invoke("spin", 0)


def test_division_by_zero_traps_at_runtime(engine):
    def emit(f):
        f.local_get(0)
        f.local_get(1)
        f.emit(op.I32_DIV_S)

    with pytest.raises(TrapError, match="divide by zero"):
        run_single(engine, [I32, I32], [I32], emit, (10, 0))


def test_trunc_nan_traps_at_runtime(engine):
    def emit(f):
        f.f64_const(float("nan"))
        f.emit(op.I32_TRUNC_F64_S)

    with pytest.raises(TrapError):
        run_single(engine, [], [I32], emit)
