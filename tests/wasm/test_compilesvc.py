"""The parallel compilation service: determinism and warm-load reuse.

The service's whole value is that it warms the cache *correctly*: the
artifacts a worker pool publishes must be bit-identical to a single
in-process compilation (any worker count, any scheduling), and a
subsequent instantiate of the same (binary, opt level, profile) triple
must be a pure cache hit — zero compiles. Degradation mirrors the
engine: a mismatched profile precompiles at o2 with a typed warning.
"""

import pytest

from repro.wasm import AotCompiler
from repro.wasm import opcodes as op
from repro.wasm.builder import ModuleBuilder
from repro.wasm.codecache import CodeCache
from repro.wasm.compilesvc import (
    artifact_fingerprint,
    decode_artifact,
    encode_artifact,
    precompile,
)
from repro.wasm.pgo import ProfileWarning, profile_module
from repro.wasm.types import I32


def _multi_function_module() -> bytes:
    """Three functions: a hot loop, a helper, and one never called."""
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    type_index = builder.add_type([], [I32])

    looper = builder.add_function(type_index)
    acc = looper.add_local(I32)
    i = looper.add_local(I32)
    looper.block()
    looper.loop()
    looper.local_get(i)
    looper.i32_const(50)
    looper.emit(op.I32_GE_S)
    looper.br_if(1)
    looper.local_get(acc)
    looper.local_get(i)
    looper.emit(op.I32_ADD)
    looper.local_set(acc)
    looper.local_get(i)
    looper.i32_const(1)
    looper.emit(op.I32_ADD)
    looper.local_set(i)
    looper.br(0)
    looper.end()
    looper.end()
    looper.local_get(acc)

    helper = builder.add_function(type_index)
    helper.i32_const(7)

    unused = builder.add_function(type_index)
    unused.i32_const(99)

    builder.export_function("run", looper.index)
    builder.export_function("helper", helper.index)
    builder.export_function("unused", unused.index)
    return builder.build()


_EXPECTED = sum(range(50))


def test_artifact_encoding_roundtrips():
    binary = _multi_function_module()
    engine = AotCompiler(opt_level=2)
    from repro.wasm.decoder import decode_module

    module = decode_module(binary)
    for func_index in range(3):
        artifact = engine.compile_artifact(module, func_index)
        payload = encode_artifact(artifact)
        code, source = decode_artifact(payload)
        assert source == artifact[1]
        assert code.co_code == artifact[0].co_code
        assert artifact_fingerprint(artifact) == artifact_fingerprint(payload)
    with pytest.raises(ValueError):
        decode_artifact(b"garbage")


def test_parallel_artifacts_bit_identical_to_single_worker():
    binary = _multi_function_module()
    profile = profile_module(binary, [("run", ()), ("helper", ())])
    summaries = [
        precompile(binary, opt_level=3, profile=profile,
                   workers=workers, code_cache=CodeCache())
        for workers in (1, 2, 4)
    ]
    assert summaries[0]["workers"] == 1
    assert all(s["functions"] == 3 for s in summaries)
    assert all(s["identity"].startswith("aot@o3+") for s in summaries)
    # The determinism contract: every worker count, same fingerprints.
    assert summaries[0]["fingerprints"] == summaries[1]["fingerprints"] \
        == summaries[2]["fingerprints"]


def test_warm_o3_load_after_precompile_never_recompiles():
    binary = _multi_function_module()
    profile = profile_module(binary, [("run", ()), ("helper", ())])
    cache = CodeCache()
    summary = precompile(binary, opt_level=3, profile=profile,
                         workers=2, code_cache=cache)
    entry = cache.peek(summary["module_key"], summary["identity"])
    assert entry is not None and len(entry.artifacts) == 3

    engine = AotCompiler(opt_level=3, profile=profile)
    assert engine.cache_identity == summary["identity"]
    compiles = []
    original = engine.compile_function

    def counting(module, instance, func_index):
        compiles.append(func_index)
        return original(module, instance, func_index)

    engine.compile_function = counting
    instance = engine.instantiate(binary, code_cache=cache)
    assert compiles == [], "warm o3 load must re-link, not recompile"
    assert cache.stats()["hits"] == 1
    assert instance.invoke("run") == _EXPECTED
    assert instance.invoke("helper") == 7
    assert instance.invoke("unused") == 99


def test_precompile_matches_direct_instantiate_results():
    binary = _multi_function_module()
    profile = profile_module(binary, [("run", ())])
    cache = CodeCache()
    precompile(binary, opt_level=3, profile=profile, workers=2,
               code_cache=cache)
    warmed = AotCompiler(opt_level=3, profile=profile) \
        .instantiate(binary, code_cache=cache)
    direct = AotCompiler(opt_level=3, profile=profile) \
        .instantiate(binary, code_cache=None)
    for name in ("run", "helper", "unused"):
        assert warmed.invoke(name) == direct.invoke(name), name


def test_precompile_mismatched_profile_degrades_to_o2():
    binary = _multi_function_module()
    other_builder = ModuleBuilder()
    other_fn = other_builder.add_function(other_builder.add_type([], [I32]))
    other_fn.i32_const(1)
    other_builder.export_function("f", other_fn.index)
    other = profile_module(other_builder.build(), [("f", ())])
    cache = CodeCache()
    with pytest.warns(ProfileWarning, match="different module"):
        summary = precompile(binary, opt_level=3, profile=other,
                             workers=2, code_cache=cache)
    assert summary["identity"] == "aot@o2"
    entry = cache.peek(summary["module_key"], "aot@o2")
    assert entry is not None and len(entry.artifacts) == 3
    # And the o2 warm load links against exactly what was published.
    instance = AotCompiler(opt_level=2).instantiate(binary, code_cache=cache)
    assert instance.invoke("run") == _EXPECTED


def test_precompile_emits_tracer_span():
    from repro.obs import Tracer

    binary = _multi_function_module()
    tracer = Tracer()
    summary = precompile(binary, opt_level=2, workers=1,
                         code_cache=CodeCache(), tracer=tracer)
    spans = [s for s in tracer.spans() if s.name == "wasm.precompile"]
    assert len(spans) == 1
    assert spans[0].attrs["module_key"] == summary["module_key"]
    assert spans[0].attrs["identity"] == "aot@o2"
    assert spans[0].attrs["functions"] == 3
