"""The AOT optimisation tier must be invisible to the cost model.

Mirror of tests/crypto/test_cost_invariance.py for the Wasm engine: the
typed planes / hoisted bounds checks / mask elimination change *wall
clock* only. A full on-device attestation — Wasm module measured, loaded,
executed, evidence exchanged over the simulated network — must produce
byte-identical RA transcripts and identical SimClock totals whether the
AOT tier runs the optimising codegen (``opt_level=2``, the default), the
reference codegen (``opt_level=0``), or the profile-guided tier
(``opt_level=3`` — including when the profile leaves most of the module
cold and execution goes through the interpreter-fed cold entries).
"""

from __future__ import annotations

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.crypto import ecdsa
from repro.testbed import Testbed
from repro.wasm import reference_codegen
from repro.wasm.codecache import DEFAULT_CACHE
from repro.workloads.attested import build_attested_app

_SECRET = b"the attested payload" * 10
_VERIFIER_PRIVATE = 0x5EC2E7 + 7
_HOST, _PORT = "opt-invariance.local", 7190


def _attested_run(**load_params):
    """Full on-device attestation; returns (SimClock ns, RA transcript)."""
    DEFAULT_CACHE.clear()  # identical cold-cache conditions for both runs
    testbed = Testbed(deterministic_rng=True)
    transcript = []
    original_connect = testbed.network.connect

    def recording_connect(host, port):
        connection = original_connect(host, port)
        original_send, original_receive = connection.send, connection.receive

        def send(data):
            transcript.append(("send", bytes(data)))
            original_send(data)

        def receive():
            data = original_receive()
            transcript.append(("recv", bytes(data)))
            return data

        connection.send = send
        connection.receive = receive
        return connection

    testbed.network.connect = recording_connect

    device = testbed.create_device()
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    app = build_attested_app(identity.public_bytes(), _HOST, _PORT,
                             secret_capacity=1 << 12)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, _HOST, _PORT, device.client,
                   testbed.vendor_key, identity, policy, lambda: _SECRET)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app, **load_params)
    assert device.run_wasm(session, loaded["app"], "attest") == len(_SECRET)
    return device.soc.clock.now_ns(), transcript


def test_simclock_and_ra_transcript_identical_at_both_opt_levels():
    optimised_ns, optimised_transcript = _attested_run()
    with reference_codegen():
        reference_ns, reference_transcript = _attested_run()

    # The wire bytes of msg0..msg3 must not depend on which codegen
    # produced the Wasm closures that drove the exchange.
    assert optimised_transcript == reference_transcript
    assert optimised_transcript, "the attestation must actually exchange data"
    # Every simulated charge (world transitions, shared-memory copies,
    # crypto phases, WASI dispatches) is identical: the optimiser changed
    # no observable cost.
    assert optimised_ns == reference_ns


def test_simclock_and_ra_transcript_identical_at_profile_guided_tier():
    """opt_level=3 joins the invariance contract: an all-hot profile
    (inlining + specialisation everywhere) and a sparse profile (one hot
    function, the rest compiled as cold interpreter-fed entries) both
    produce the exact o2 transcript and SimClock total."""
    from repro.wasm.codecache import CodeCache
    from repro.wasm.decoder import decode_module
    from repro.wasm.pgo import Profile

    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    app = build_attested_app(identity.public_bytes(), _HOST, _PORT,
                             secret_capacity=1 << 12)
    module = decode_module(app)
    imported = len(module.imported_funcs)
    key = CodeCache.module_key(app)
    all_hot = Profile(module_key=key, func_calls={
        imported + i: 10 for i in range(len(module.functions))})
    sparse = Profile(module_key=key, func_calls={imported: 10})

    baseline_ns, baseline_transcript = _attested_run()
    for profile in (all_hot, sparse):
        pgo_ns, pgo_transcript = _attested_run(
            opt_level=3, profile=profile.canonical_json())
        assert pgo_transcript == baseline_transcript
        assert pgo_ns == baseline_ns
