"""The AOT optimisation tier must be invisible to the cost model.

Mirror of tests/crypto/test_cost_invariance.py for the Wasm engine: the
typed planes / hoisted bounds checks / mask elimination change *wall
clock* only. A full on-device attestation — Wasm module measured, loaded,
executed, evidence exchanged over the simulated network — must produce
byte-identical RA transcripts and identical SimClock totals whether the
AOT tier runs the optimising codegen (``opt_level=2``, the default) or
the reference codegen (``opt_level=0``).
"""

from __future__ import annotations

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.crypto import ecdsa
from repro.testbed import Testbed
from repro.wasm import reference_codegen
from repro.wasm.codecache import DEFAULT_CACHE
from repro.workloads.attested import build_attested_app

_SECRET = b"the attested payload" * 10
_VERIFIER_PRIVATE = 0x5EC2E7 + 7
_HOST, _PORT = "opt-invariance.local", 7190


def _attested_run():
    """Full on-device attestation; returns (SimClock ns, RA transcript)."""
    DEFAULT_CACHE.clear()  # identical cold-cache conditions for both runs
    testbed = Testbed(deterministic_rng=True)
    transcript = []
    original_connect = testbed.network.connect

    def recording_connect(host, port):
        connection = original_connect(host, port)
        original_send, original_receive = connection.send, connection.receive

        def send(data):
            transcript.append(("send", bytes(data)))
            original_send(data)

        def receive():
            data = original_receive()
            transcript.append(("recv", bytes(data)))
            return data

        connection.send = send
        connection.receive = receive
        return connection

    testbed.network.connect = recording_connect

    device = testbed.create_device()
    identity = ecdsa.keypair_from_private(_VERIFIER_PRIVATE)
    app = build_attested_app(identity.public_bytes(), _HOST, _PORT,
                             secret_capacity=1 << 12)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, _HOST, _PORT, device.client,
                   testbed.vendor_key, identity, policy, lambda: _SECRET)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") == len(_SECRET)
    return device.soc.clock.now_ns(), transcript


def test_simclock_and_ra_transcript_identical_at_both_opt_levels():
    optimised_ns, optimised_transcript = _attested_run()
    with reference_codegen():
        reference_ns, reference_transcript = _attested_run()

    # The wire bytes of msg0..msg3 must not depend on which codegen
    # produced the Wasm closures that drove the exchange.
    assert optimised_transcript == reference_transcript
    assert optimised_transcript, "the attestation must actually exchange data"
    # Every simulated charge (world transitions, shared-memory copies,
    # crypto phases, WASI dispatches) is identical: the optimiser changed
    # no observable cost.
    assert optimised_ns == reference_ns
