"""Evidence structure and code measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evidence import (
    EVIDENCE_BODY_SIZE,
    EVIDENCE_SIZE,
    Evidence,
    SignedEvidence,
    WATZ_VERSION,
)
from repro.core.measurement import MeasuringCopier, measure_bytes
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import EvidenceError, SignatureError

_KEY = ecdsa.keypair_from_private(0x1234)


def _evidence(**overrides):
    fields = dict(
        anchor=b"\xaa" * 32,
        claim=b"\xbb" * 32,
        attestation_public_key=_KEY.public_bytes(),
    )
    fields.update(overrides)
    return Evidence(**fields)


def test_encode_decode_roundtrip():
    evidence = _evidence()
    decoded = Evidence.decode(evidence.encode())
    assert decoded == evidence
    assert decoded.version == WATZ_VERSION


def test_encoded_size_is_fixed():
    assert len(_evidence().encode()) == EVIDENCE_BODY_SIZE


def test_version_carried():
    evidence = _evidence(version=(2, 7))
    assert Evidence.decode(evidence.encode()).version == (2, 7)


def test_bad_field_sizes_rejected():
    with pytest.raises(EvidenceError):
        _evidence(anchor=b"short")
    with pytest.raises(EvidenceError):
        _evidence(claim=b"x" * 31)
    with pytest.raises(EvidenceError):
        _evidence(attestation_public_key=b"x" * 64)


def test_decode_rejects_bad_magic():
    raw = bytearray(_evidence().encode())
    raw[0] ^= 0xFF
    with pytest.raises(EvidenceError, match="magic"):
        Evidence.decode(bytes(raw))


def test_decode_rejects_bad_length():
    with pytest.raises(EvidenceError):
        Evidence.decode(_evidence().encode() + b"x")


def test_signed_evidence_roundtrip_and_verify():
    evidence = _evidence()
    signature = ecdsa.sign(_KEY.private, evidence.encode())
    signed = SignedEvidence(evidence, signature)
    assert len(signed.encode()) == EVIDENCE_SIZE
    decoded = SignedEvidence.decode(signed.encode())
    decoded.verify_signature()


def test_signed_evidence_detects_tampered_claim():
    evidence = _evidence()
    signature = ecdsa.sign(_KEY.private, evidence.encode())
    forged = SignedEvidence(_evidence(claim=b"\xcc" * 32), signature)
    with pytest.raises(SignatureError):
        forged.verify_signature()


def test_signed_evidence_key_must_match_signer():
    """Self-consistent evidence under a rogue key verifies — which is
    exactly why verifiers must also check endorsement (paper §IV(d))."""
    rogue = ecdsa.keypair_from_private(777)
    evidence = _evidence(attestation_public_key=rogue.public_bytes())
    signed = SignedEvidence(evidence,
                            ecdsa.sign(rogue.private, evidence.encode()))
    signed.verify_signature()  # passes: signature is self-consistent


def test_measure_bytes():
    measurement = measure_bytes(b"bytecode")
    assert measurement.digest == sha256(b"bytecode")
    assert measurement.size == 8
    assert measurement.hex == sha256(b"bytecode").hex()


def test_measuring_copier_matches_one_shot():
    copier = MeasuringCopier()
    payload = bytes(range(256)) * 1024  # multiple chunks
    copy = copier.copy(payload)
    measurement = copier.finish()
    assert copy == payload
    assert measurement.digest == sha256(payload)
    assert measurement.size == len(payload)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=200_000))
def test_measuring_copier_property(payload):
    copier = MeasuringCopier()
    assert copier.copy(payload) == payload
    assert copier.finish().digest == sha256(payload)
