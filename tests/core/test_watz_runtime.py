"""The WaTZ runtime TA: loading, measuring, executing Wasm on the platform."""

import pytest

from repro.core.runtime import (
    CMD_INVOKE,
    CMD_LOAD,
    CMD_MEASUREMENT,
    CMD_STDOUT,
    CMD_UNLOAD,
    NormalWorldRuntime,
    RELOCATION_OVERHEAD_FACTOR,
)
from repro.core.measurement import measure_bytes
from repro.errors import TeeAccessDenied, TeeBadParameters, TeeOutOfMemory
from repro.walc import compile_source

_APP = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
data 100 (111, 107);  // "ok"

export fn add(a: i32, b: i32) -> i32 { return a + b; }

export fn now() -> i64 {
  clock_time_get(1, 1L, 64);
  return load_i64(64);
}

export fn say_ok() -> i32 {
  store_i32(0, 100);
  store_i32(4, 2);
  return fd_write(1, 0, 1, 16);
}
"""


@pytest.fixture
def watz(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    binary = compile_source(_APP)
    loaded = device.load_wasm(session, binary)
    return device, session, loaded, binary


def test_load_reports_measurement(watz):
    device, session, loaded, binary = watz
    assert loaded["measurement"] == measure_bytes(binary).hex


def test_measurement_queryable_later(watz):
    device, session, loaded, binary = watz
    result = session.invoke(CMD_MEASUREMENT, {"app": loaded["app"]})
    assert result["measurement"] == measure_bytes(binary).hex


def test_invoke_exported_function(watz):
    device, session, loaded, _ = watz
    assert device.run_wasm(session, loaded["app"], "add", 20, 22) == 42


def test_wasi_clock_runs_on_simulated_time(watz):
    device, session, loaded, _ = watz
    first = device.run_wasm(session, loaded["app"], "now")
    second = device.run_wasm(session, loaded["app"], "now")
    assert second > first > 0


def test_wasm_clock_fetch_charges_figure_3a_cost(watz):
    device, session, loaded, _ = watz
    costs = device.soc.costs
    # Isolate the in-TA cost: measure around the TA-internal invocation.
    app = session.ta._apps[loaded["app"]]
    with device.soc.enter_secure_world():
        before = device.soc.clock.now_ns()
        app.instance.invoke("now")
        elapsed = device.soc.clock.now_ns() - before
    assert elapsed == costs.wasm_time_fetch_ns


def test_stdout_captured(watz):
    device, session, loaded, _ = watz
    assert device.run_wasm(session, loaded["app"], "say_ok") == 0
    assert device.read_stdout(session, loaded["app"]) == "ok"


def test_startup_breakdown_phases_positive(watz):
    _, _, loaded, _ = watz
    breakdown = loaded["breakdown"]
    assert breakdown.transition_ns > 0
    assert breakdown.load_s > 0
    assert breakdown.hash_s > 0
    fractions = breakdown.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    # Loading dominates (Fig. 4: ~73%).
    assert fractions["load"] == max(fractions.values())


def test_load_accounts_relocation_overhead(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    binary = compile_source(_APP)
    before = session.api.heap_used
    device.load_wasm(session, binary)
    used = session.api.heap_used - before
    # 2x for relocations plus the executable region itself.
    assert used >= len(binary) * RELOCATION_OVERHEAD_FACTOR + len(binary)


def test_load_fails_when_heap_cannot_hold_bytecode(testbed):
    device = testbed.create_device()
    session = device.open_watz(heap_size=256)  # smaller than the bytecode
    binary = compile_source(_APP)
    with pytest.raises(TeeOutOfMemory):
        device.load_wasm(session, binary)


def test_load_fails_when_heap_cannot_hold_wasm_memory(testbed):
    from repro.errors import TrapError

    device = testbed.create_device()
    # Enough for bytecode + relocations, not for the app's linear memory.
    session = device.open_watz(heap_size=2048)
    binary = compile_source(_APP)
    with pytest.raises(TrapError, match="heap cap"):
        device.load_wasm(session, binary)


def test_aot_needs_executable_pages_extension(testbed):
    """The paper's OP-TEE extension: without it, AOT loading fails."""
    device = testbed.create_device(allow_executable_pages=False)
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    binary = compile_source(_APP)
    with pytest.raises(TeeAccessDenied, match="executable"):
        device.load_wasm(session, binary)


def test_interpreter_engine_selectable(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024,
                               engine="interpreter")
    binary = compile_source(_APP)
    loaded = device.load_wasm(session, binary, engine="interpreter")
    assert device.run_wasm(session, loaded["app"], "add", 1, 2) == 3


def test_multiple_apps_isolated(device):
    """Two hosted apps cannot see each other's memory (sandbox claim)."""
    session = device.open_watz(heap_size=8 * 1024 * 1024)
    source = """
memory 1;
var secret: i32 = 0;
export fn put(v: i32) { secret = v; store_i32(0, v); }
export fn get() -> i32 { return load_i32(0); }
"""
    binary = compile_source(source)
    first = device.load_wasm(session, binary)
    second = device.load_wasm(session, binary)
    device.run_wasm(session, first["app"], "put", 1234)
    assert device.run_wasm(session, first["app"], "get") == 1234
    assert device.run_wasm(session, second["app"], "get") == 0


def test_unload_returns_memory(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    binary = compile_source(_APP)
    before = session.api.heap_used
    loaded = device.load_wasm(session, binary)
    session.invoke(CMD_UNLOAD, {"app": loaded["app"]})
    assert session.api.heap_used == before


def test_unknown_app_handle_rejected(watz):
    _, session, _, _ = watz
    with pytest.raises(TeeBadParameters):
        session.invoke(CMD_INVOKE, {"app": 999, "function": "add"})


def test_unknown_command_rejected(watz):
    _, session, _, _ = watz
    with pytest.raises(TeeBadParameters):
        session.invoke(77, {})


def test_entry_point_runs_at_load(device):
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    source = """
memory 1;
var started: i32 = 0;
export fn main() { started = 1; }
export fn check() -> i32 { return started; }
"""
    loaded = device.load_wasm(session, compile_source(source), entry="main")
    assert loaded["breakdown"].execute_s >= 0
    assert device.run_wasm(session, loaded["app"], "check") == 1


def test_normal_world_runtime_matches_result(device):
    binary = compile_source(_APP)
    runtime = NormalWorldRuntime(device.soc)
    app = runtime.load(binary)
    assert runtime.invoke(app, "add", 20, 22) == 42
    assert app.measurement.digest == measure_bytes(binary).digest
    assert app.wasi_ra is None  # no attestation outside the TEE
