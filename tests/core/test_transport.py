"""The in-process network fabric.

Covers the behaviours the fleet gateway leans on: registry lifecycle
(double listen, shutdown closing live connections), graceful vs abortive
close semantics, and isolation between concurrently open connections.
"""

import pytest

from repro.core.transport import ClientConnection, Network, Service
from repro.errors import TeeCommunicationError


class EchoService(Service):
    """Replies with a tagged echo; records lifecycle events."""

    def __init__(self, tag=b"echo"):
        self.tag = tag
        self.seen = []
        self.closed = False

    def on_message(self, data):
        self.seen.append(bytes(data))
        return self.tag + b":" + data

    def on_close(self):
        self.closed = True


class SilentService(Service):
    """Consumes messages without replying."""

    def __init__(self):
        self.seen = []
        self.closed = False

    def on_message(self, data):
        self.seen.append(bytes(data))
        return None

    def on_close(self):
        self.closed = True


def test_double_listen_same_address_rejected():
    network = Network()
    network.listen("host", 1, EchoService)
    with pytest.raises(TeeCommunicationError, match="already in use"):
        network.listen("host", 1, EchoService)


def test_connect_to_unknown_address_refused():
    network = Network()
    with pytest.raises(TeeCommunicationError, match="refused"):
        network.connect("nowhere", 9)


def test_connect_after_shutdown_refused():
    network = Network()
    network.listen("host", 1, EchoService)
    network.shutdown("host", 1)
    with pytest.raises(TeeCommunicationError, match="refused"):
        network.connect("host", 1)


def test_shutdown_closes_live_connections():
    # Regression: shutdown used to remove only the listener, leaving
    # connections serving a dead address.
    network = Network()
    services = []

    def factory():
        service = EchoService()
        services.append(service)
        return service

    network.listen("host", 1, factory)
    first = network.connect("host", 1)
    second = network.connect("host", 1)
    network.shutdown("host", 1)
    assert all(service.closed for service in services)
    for connection in (first, second):
        with pytest.raises(TeeCommunicationError, match="closed"):
            connection.send(b"late")


def test_shutdown_drops_unflushed_messages():
    # Server-initiated teardown is a reset: queued messages never reach
    # the service (unlike a graceful client close).
    network = Network()
    service = SilentService()
    network.listen("host", 1, lambda: service)
    connection = network.connect("host", 1)
    connection.send(b"queued")
    network.shutdown("host", 1)
    assert service.seen == []
    assert service.closed


def test_close_flushes_outbox_to_service():
    # Regression: close used to drop the outbox, so a fire-and-forget
    # message sent just before closing silently vanished.
    network = Network()
    service = SilentService()
    network.listen("host", 1, lambda: service)
    connection = network.connect("host", 1)
    connection.send(b"first")
    connection.send(b"second")
    connection.close()
    assert service.seen == [b"first", b"second"]
    assert service.closed


def test_send_and_receive_after_close_raise():
    network = Network()
    network.listen("host", 1, EchoService)
    connection = network.connect("host", 1)
    connection.close()
    with pytest.raises(TeeCommunicationError, match="closed"):
        connection.send(b"x")
    with pytest.raises(TeeCommunicationError, match="closed"):
        connection.receive()


def test_close_is_idempotent():
    service = EchoService()
    connection = ClientConnection(service)
    connection.close()
    connection.close()
    assert service.closed


def test_receive_without_pending_data_raises():
    network = Network()
    network.listen("host", 1, SilentService)
    connection = network.connect("host", 1)
    connection.send(b"no reply expected")
    with pytest.raises(TeeCommunicationError, match="no pending data"):
        connection.receive()


def test_interleaved_connections_are_isolated():
    # Two live connections to one listener: each gets its own service
    # instance, and interleaved sends/receives never cross streams.
    network = Network()
    services = []

    def factory():
        service = EchoService(tag=b"s%d" % len(services))
        services.append(service)
        return service

    network.listen("host", 1, factory)
    alpha = network.connect("host", 1)
    beta = network.connect("host", 1)
    alpha.send(b"a1")
    beta.send(b"b1")
    alpha.send(b"a2")
    assert beta.receive() == b"s1:b1"
    assert alpha.receive() == b"s0:a1"
    assert alpha.receive() == b"s0:a2"
    assert services[0].seen == [b"a1", b"a2"]
    assert services[1].seen == [b"b1"]


def test_closed_connection_is_forgotten_by_registry():
    network = Network()
    network.listen("host", 1, EchoService)
    connection = network.connect("host", 1)
    connection.close()
    # Shutdown after the close must not try to abort the dead connection
    # (it has been removed from the registry) — and must not raise.
    network.shutdown("host", 1)
