"""Concurrent remote-attestation sessions.

The paper omits protocol session identifiers "for conciseness", noting
they are needed for concurrent attestations. In this architecture the
verifier spawns one TA session per inbound connection, so concurrency is
structural — these tests interleave several live attestations and check
they cannot contaminate each other.
"""

import pytest

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.errors import ProtocolError
from repro.workloads.attested import build_attested_app

HOST, PORT = "concurrent.verifier", 7500
SECRET = b"concurrent secret blob"


@pytest.fixture
def deployment(testbed, verifier_identity):
    device = testbed.create_device()
    app = build_attested_app(verifier_identity.public_bytes(), HOST, PORT,
                             secret_capacity=1 << 14)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    # Each inbound connection holds a verifier TA session for its
    # lifetime; concurrent attestations therefore need small per-session
    # heaps to fit the 27 MB secure-heap cap alongside the runtime.
    start_verifier(testbed.network, HOST, PORT, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: SECRET, heap_size=3 * 1024 * 1024)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    return device, session, loaded["app"]


def test_two_interleaved_attestations(deployment):
    device, session, app = deployment
    # Open both handshakes before either finishes.
    ctx_one = device.run_wasm(session, app, "ra_handshake")
    ctx_two = device.run_wasm(session, app, "ra_handshake")
    assert ctx_one > 0 and ctx_two > 0 and ctx_one != ctx_two
    quote_one = device.run_wasm(session, app, "ra_collect_quote")
    # Note: the app's anchor buffer holds the *latest* handshake's anchor,
    # so quote_one actually belongs to ctx_two's session.
    assert device.run_wasm(session, app, "ra_send_quote",
                           ctx_two, quote_one) == 0
    assert device.run_wasm(session, app, "ra_receive_data", ctx_two) \
        == len(SECRET)


def test_evidence_from_one_session_rejected_in_another(deployment):
    device, session, app = deployment
    ctx_one = device.run_wasm(session, app, "ra_handshake")
    quote_one = device.run_wasm(session, app, "ra_collect_quote")
    ctx_two = device.run_wasm(session, app, "ra_handshake")
    # quote_one is anchored to session one; sending it on session two
    # must fail (the attester-side anchor guard catches it).
    result = device.run_wasm(session, app, "ra_send_quote",
                             ctx_two, quote_one)
    assert result != 0


def test_sequential_attestations_reuse_nothing(deployment):
    device, session, app = deployment
    assert device.run_wasm(session, app, "attest") == len(SECRET)
    assert device.run_wasm(session, app, "attest") == len(SECRET)


def test_verifier_ta_rejects_out_of_order_messages(testbed, deployment,
                                                   verifier_identity):
    device, _session, _app = deployment
    connection = testbed.network.connect(HOST, PORT)
    # msg2 before any msg0 on this connection.
    from repro.core import protocol

    connection.send(bytes([protocol.MSG2]) + b"\x00" * 346)
    with pytest.raises(Exception):
        connection.receive()


def test_verifier_ta_rejects_double_msg0(testbed, deployment):
    import os

    from repro.core.attester import Attester

    device, _session, _app = deployment
    attester = Attester(os.urandom)
    connection = testbed.network.connect(HOST, PORT)
    first = attester.start_session(b"\x04" + b"\x00" * 64)
    connection.send(attester.make_msg0(first))
    connection.receive()
    connection.send(attester.make_msg0(first))
    with pytest.raises(ProtocolError, match="msg0 after"):
        connection.receive()
