"""Wire formats and the attester/verifier state machines (Table II)."""

import os

import pytest

from repro.core import protocol
from repro.core.attester import Attester
from repro.core.evidence import SignedEvidence
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import (
    AuthenticationError,
    EndorsementError,
    MeasurementMismatch,
    ProtocolError,
)

DEVICE = ecdsa.keypair_from_private(1111)
IDENTITY = ecdsa.keypair_from_private(2222)
CLAIM = measure_bytes(b"trusted app").digest


def _sign(body: bytes) -> bytes:
    return ecdsa.sign(DEVICE.private, body)


def _policy(**kwargs):
    policy = VerifierPolicy(**kwargs)
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    return policy


def _actors(policy=None):
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, policy or _policy(), os.urandom)
    return attester, verifier


def _run_protocol(attester, verifier, claim=CLAIM, secret=b"blob"):
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    msg2 = attester.attest(session, claim, DEVICE.public_bytes(), _sign)
    msg3 = verifier.handle_msg2(verifier_session, msg2, secret)
    return attester.handle_msg3(session, msg3), session, verifier_session


def test_full_roundtrip_delivers_secret():
    attester, verifier = _actors()
    blob, _, _ = _run_protocol(attester, verifier, secret=b"s3cret" * 100)
    assert blob == b"s3cret" * 100


def test_msg0_encoding():
    attester, _ = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    msg0 = attester.make_msg0(session)
    assert msg0[0] == protocol.MSG0
    assert protocol.decode_msg0(msg0) == session.g_a


def test_anchor_binds_both_session_keys():
    a = protocol.compute_anchor(b"A" * 65, b"B" * 65)
    assert a != protocol.compute_anchor(b"B" * 65, b"A" * 65)
    assert len(a) == 32


def test_misordered_message_rejected():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    with pytest.raises(ProtocolError):
        protocol.decode_msg1(attester.make_msg0(session))


def test_attester_rejects_rogue_verifier_identity():
    attester, verifier = _actors()
    rogue = ecdsa.keypair_from_private(3333)
    session = attester.start_session(rogue.public_bytes())
    _, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    with pytest.raises(AuthenticationError, match="hard-coded"):
        attester.handle_msg1(session, msg1)


def test_attester_rejects_tampered_msg1_mac():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    _, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    tampered = bytearray(msg1)
    tampered[-1] ^= 1
    with pytest.raises(AuthenticationError):
        attester.handle_msg1(session, bytes(tampered))


def test_attester_rejects_swapped_session_key_signature():
    """Replay: a msg1 from a *different* session must not verify."""
    attester, verifier = _actors()
    session_one = attester.start_session(IDENTITY.public_bytes())
    _, msg1_one = verifier.handle_msg0(attester.make_msg0(session_one))
    session_two = attester.start_session(IDENTITY.public_bytes())
    verifier.handle_msg0(attester.make_msg0(session_two))
    with pytest.raises(AuthenticationError):
        attester.handle_msg1(session_two, msg1_one)


def test_verifier_rejects_unendorsed_device():
    policy = VerifierPolicy()
    policy.trust_measurement(CLAIM)
    attester, verifier = _actors(policy)
    with pytest.raises(EndorsementError, match="endorsed"):
        _run_protocol(attester, verifier)


def test_verifier_rejects_unknown_measurement():
    attester, verifier = _actors()
    with pytest.raises(MeasurementMismatch):
        _run_protocol(attester, verifier,
                      claim=measure_bytes(b"evil app").digest)


def test_verifier_rejects_tampered_msg2_mac():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    msg2 = bytearray(
        attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign))
    msg2[-1] ^= 1
    with pytest.raises(AuthenticationError):
        verifier.handle_msg2(verifier_session, bytes(msg2), b"s")


def test_verifier_rejects_cross_session_evidence_replay():
    """The anchor check: evidence from session A fails in session B."""
    attester, verifier = _actors()
    _, session_a, _ = _run_protocol(attester, verifier)
    evidence_a = attester.collect_evidence(
        session_a.anchor, CLAIM, DEVICE.public_bytes(), _sign)

    session_b = attester.start_session(IDENTITY.public_bytes())
    verifier_session_b, msg1 = verifier.handle_msg0(
        attester.make_msg0(session_b))
    attester.handle_msg1(session_b, msg1)
    with pytest.raises(ProtocolError, match="anchor"):
        attester.make_msg2(session_b, evidence_a)  # attester-side guard
    # Bypass the attester-side guard to test the verifier's check.
    from repro.crypto.cmac import AesCmac

    content = session_b.g_a + evidence_a.encode()
    mac = AesCmac(session_b.keys.mac_key).mac(content)
    forged = protocol.encode_msg2(session_b.g_a, evidence_a, mac)
    with pytest.raises(ProtocolError, match="anchor|replay|masquerading"):
        verifier.handle_msg2(verifier_session_b, forged, b"s")


def test_verifier_rejects_old_runtime_version():
    policy = _policy(minimum_version=(9, 0))
    attester, verifier = _actors(policy)
    with pytest.raises(EndorsementError, match="version"):
        _run_protocol(attester, verifier)


def test_msg3_tamper_detected():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    msg2 = attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign)
    msg3 = bytearray(verifier.handle_msg2(verifier_session, msg2, b"secret"))
    msg3[-2] ^= 0x10
    with pytest.raises(AuthenticationError):
        attester.handle_msg3(session, bytes(msg3))


def test_fresh_session_keys_per_attempt():
    attester, _ = _actors()
    one = attester.start_session(IDENTITY.public_bytes())
    two = attester.start_session(IDENTITY.public_bytes())
    assert one.g_a != two.g_a  # freshness requirement (paper §IV)


def test_forward_secrecy_keys_differ_per_session():
    attester, verifier = _actors()
    _, session_one, _ = _run_protocol(attester, verifier)
    _, session_two, _ = _run_protocol(attester, verifier)
    assert session_one.keys.enc_key != session_two.keys.enc_key


def test_cost_recorder_categories():
    recorder = protocol.CostRecorder()
    attester = Attester(os.urandom, recorder)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        protocol.CostRecorder())
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign)
    assert recorder.get("msg0", protocol.KEYGEN) > 0
    assert recorder.get("msg1", protocol.KEYGEN) > 0
    assert recorder.get("msg1", protocol.ASYMMETRIC) > 0
    assert recorder.get("msg2", protocol.ASYMMETRIC) > 0
    # Asymmetric work dominates symmetric (Table III's headline).
    assert recorder.get("msg1", protocol.ASYMMETRIC) > \
        recorder.get("msg1", protocol.SYMMETRIC)


def test_protocol_message_sizes_fixed():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    msg0 = attester.make_msg0(session)
    verifier_session, msg1 = verifier.handle_msg0(msg0)
    attester.handle_msg1(session, msg1)
    msg2 = attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign)
    from repro.core.evidence import EVIDENCE_SIZE

    assert len(msg0) == 66
    assert len(msg1) == 1 + 65 + 65 + 64 + 16
    # Evidence: 8B header + anchor + claim + boot claim + key + signature.
    assert EVIDENCE_SIZE == 8 + 32 + 32 + 32 + 65 + 64
    assert len(msg2) == 1 + 65 + EVIDENCE_SIZE + 16


def test_msg2_roundtrips_with_a_resumption_ticket():
    attester, verifier = _actors()
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    attester.resumption_key = b"\xA5" * protocol.RESUMPTION_KEY_SIZE
    msg2 = attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign)
    assert len(msg2) == 1 + 65 + protocol.EVIDENCE_SIZE \
        + protocol.TICKET_SIZE + 16
    decoded = protocol.decode_msg2(msg2)
    assert len(decoded.ticket) == protocol.TICKET_SIZE
    # The ticket sits inside the session-MAC'd content: stripping it (or
    # the whole trailing block) breaks the MAC, so it cannot be removed
    # or spliced in transit.
    assert decoded.content.endswith(decoded.ticket)
    stripped = msg2[: 1 + 65 + protocol.EVIDENCE_SIZE] + msg2[-16:]
    with pytest.raises(AuthenticationError):
        verifier.handle_msg2(verifier_session, stripped, b"secret")


def test_msg3_resume_variant_carries_the_key_to_the_attester():
    from repro.fleet.cache import AppraisalCache

    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=AppraisalCache())
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    msg2 = attester.attest(session, CLAIM, DEVICE.public_bytes(), _sign)
    msg3 = verifier.handle_msg2(verifier_session, msg2, b"fleet secret")
    assert msg3[0] == protocol.MSG3_RESUME
    # The key rides inside the AES-GCM envelope; the attester strips it
    # and the application still receives exactly the secret.
    assert attester.handle_msg3(session, msg3) == b"fleet secret"
    assert len(attester.resumption_key) == protocol.RESUMPTION_KEY_SIZE
