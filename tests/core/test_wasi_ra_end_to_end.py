"""WASI-RA end to end on the full platform (paper Fig. 2 flow)."""

import pytest

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.core.transport import Network
from repro.errors import TeeCommunicationError
from repro.workloads.attested import build_attested_app

HOST, PORT = "verifier.local", 7000
SECRET = bytes(range(251)) * 41  # 10291 bytes


@pytest.fixture
def deployment(testbed, verifier_identity):
    device = testbed.create_device()
    app = build_attested_app(verifier_identity.public_bytes(), HOST, PORT,
                             secret_capacity=1 << 16)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, HOST, PORT, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: SECRET)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    return testbed, device, session, loaded, policy, verifier_identity


def test_one_shot_attest_delivers_secret(deployment):
    _, device, session, loaded, _, _ = deployment
    assert device.run_wasm(session, loaded["app"], "attest") == len(SECRET)
    checksum = device.run_wasm(session, loaded["app"], "secret_checksum")
    assert checksum == sum(SECRET) % 65536


def test_stepwise_wasi_ra_flow(deployment):
    _, device, session, loaded, _, _ = deployment
    app = loaded["app"]
    ctx = device.run_wasm(session, app, "ra_handshake")
    assert ctx > 0
    quote = device.run_wasm(session, app, "ra_collect_quote")
    assert quote > 0
    assert device.run_wasm(session, app, "ra_send_quote", ctx, quote) == 0
    received = device.run_wasm(session, app, "ra_receive_data", ctx)
    assert received == len(SECRET)
    device.run_wasm(session, app, "ra_dispose", ctx, quote)
    assert device.run_wasm(session, app, "secret_length") == len(SECRET)


def test_secret_bytes_accessible(deployment):
    _, device, session, loaded, _, _ = deployment
    device.run_wasm(session, loaded["app"], "attest")
    for index in (0, 1, 100, len(SECRET) - 1):
        value = device.run_wasm(session, loaded["app"], "secret_byte", index)
        assert value == SECRET[index]
    assert device.run_wasm(session, loaded["app"], "secret_byte",
                           len(SECRET)) == 0xFFFFFFFF  # -1 as u32


def test_tampered_app_gets_no_secret(deployment):
    testbed, device, session, _, _, identity = deployment
    evil = build_attested_app(identity.public_bytes(), HOST, PORT,
                              secret_capacity=1 << 16,
                              extra_functions="export fn evil() -> i32 "
                                              "{ return 666; }")
    loaded = device.load_wasm(session, evil)
    assert device.run_wasm(session, loaded["app"], "attest") < 0


def test_unendorsed_second_device_rejected(deployment):
    testbed, _, _, _, _, identity = deployment
    other = testbed.create_device()
    app = build_attested_app(identity.public_bytes(), HOST, PORT,
                             secret_capacity=1 << 16)
    # The app measurement is trusted, but this device's key is not endorsed.
    session = other.open_watz(heap_size=17 * 1024 * 1024)
    loaded = other.load_wasm(session, app)
    assert other.run_wasm(session, loaded["app"], "attest") < 0


def test_app_with_rogue_verifier_key_aborts(deployment):
    testbed, device, session, _, policy, _ = deployment
    from repro.crypto import ecdsa

    rogue = ecdsa.keypair_from_private(987654321)
    app = build_attested_app(rogue.public_bytes(), HOST, PORT,
                             secret_capacity=1 << 16)
    policy.trust_measurement(measure_bytes(app).digest)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") < 0


def test_connection_refused_reported_as_errno(deployment):
    testbed, device, session, _, policy, identity = deployment
    app = build_attested_app(identity.public_bytes(), "nowhere", 9,
                             secret_capacity=1 << 16)
    policy.trust_measurement(measure_bytes(app).digest)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") < 0


def test_attestation_consumes_simulated_network_time(deployment):
    _, device, session, loaded, _, _ = deployment
    before = device.soc.clock.now_ns()
    device.run_wasm(session, loaded["app"], "attest")
    elapsed = device.soc.clock.now_ns() - before
    # At least: several socket round trips + world transitions.
    assert elapsed > 4 * device.soc.costs.socket_roundtrip_ns


def test_transport_send_then_receive_ordering():
    network = Network()

    class Echo:
        def on_message(self, data):
            return b"re:" + data

        def on_close(self):
            pass

    network.listen("h", 1, Echo)
    connection = network.connect("h", 1)
    connection.send(b"one")
    connection.send(b"two")
    assert connection.receive() == b"re:one"
    assert connection.receive() == b"re:two"
    with pytest.raises(TeeCommunicationError):
        connection.receive()
    connection.close()
    with pytest.raises(TeeCommunicationError):
        connection.send(b"after close")


def test_network_connection_refused():
    with pytest.raises(TeeCommunicationError, match="refused"):
        Network().connect("nobody", 1)


def test_network_rejects_duplicate_listeners():
    network = Network()
    network.listen("h", 1, lambda: None)
    with pytest.raises(TeeCommunicationError, match="in use"):
        network.listen("h", 1, lambda: None)
