"""The §VII extensions: measured boot and encrypted evidence."""

import os

import pytest

from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.core.attester import Attester
from repro.core.evidence import NO_BOOT_CLAIM, Evidence, SignedEvidence
from repro.core.verifier import Verifier
from repro.core import protocol
from repro.crypto import ecdsa
from repro.errors import AuthenticationError, MeasurementMismatch
from repro.workloads.attested import build_attested_app

DEVICE = ecdsa.keypair_from_private(600613)
IDENTITY = ecdsa.keypair_from_private(424243)
CLAIM = measure_bytes(b"extension app").digest


def _sign(body):
    return ecdsa.sign(DEVICE.private, body)


def _policy():
    policy = VerifierPolicy()
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    return policy


def _handshake(attester, verifier):
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    return session, verifier_session


# -- measured boot -----------------------------------------------------------------


def test_boot_measurement_accumulates_pcr_style(device):
    report = device.soc.boot_report
    accumulated = report.accumulated_measurement()
    # Recompute by hand with TPM extend semantics.
    from repro.crypto.hashing import sha256

    register = b"\x00" * 32
    for measurement in report.measurements:
        register = sha256(register + measurement)
    assert accumulated == register
    assert device.kernel.boot_measurement == accumulated


def test_boot_measurement_sensitive_to_stage_payloads(testbed):
    """Different firmware -> different accumulated boot claim."""
    import repro.testbed as tb_module

    device_one = testbed.create_device()
    original = tb_module.BOOT_STAGES
    try:
        tb_module.BOOT_STAGES = ("spl", "arm-trusted-firmware", "op-tee-v2")
        device_two = testbed.create_device()
    finally:
        tb_module.BOOT_STAGES = original
    assert device_one.kernel.boot_measurement != \
        device_two.kernel.boot_measurement


def test_evidence_carries_boot_claim():
    evidence = Evidence(
        anchor=b"\x01" * 32, claim=CLAIM,
        attestation_public_key=DEVICE.public_bytes(),
        boot_claim=b"\x07" * 32,
    )
    assert Evidence.decode(evidence.encode()).boot_claim == b"\x07" * 32


def test_verifier_appraises_boot_claim():
    policy = _policy()
    policy.trust_boot_measurement(b"\x07" * 32)
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, policy, os.urandom)
    session, verifier_session = _handshake(attester, verifier)

    good = attester.collect_evidence(session.anchor, CLAIM,
                                     DEVICE.public_bytes(), _sign,
                                     boot_claim=b"\x07" * 32)
    msg3 = verifier.handle_msg2(verifier_session,
                                attester.make_msg2(session, good), b"s")
    assert attester.handle_msg3(session, msg3) == b"s"


def test_verifier_rejects_unknown_boot_claim():
    policy = _policy()
    policy.trust_boot_measurement(b"\x07" * 32)
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, policy, os.urandom)
    session, verifier_session = _handshake(attester, verifier)

    bad = attester.collect_evidence(session.anchor, CLAIM,
                                    DEVICE.public_bytes(), _sign,
                                    boot_claim=b"\x66" * 32)
    with pytest.raises(MeasurementMismatch, match="boot"):
        verifier.handle_msg2(verifier_session,
                             attester.make_msg2(session, bad), b"s")


def test_boot_claim_optional_when_policy_silent():
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom)
    session, verifier_session = _handshake(attester, verifier)
    evidence = attester.collect_evidence(session.anchor, CLAIM,
                                         DEVICE.public_bytes(), _sign)
    assert evidence.evidence.boot_claim == NO_BOOT_CLAIM
    verifier.handle_msg2(verifier_session,
                         attester.make_msg2(session, evidence), b"s")


def test_end_to_end_boot_claim_from_platform(testbed, verifier_identity):
    """The WASI-RA flow embeds the real platform boot measurement, and a
    verifier pinned to it accepts the device."""
    device = testbed.create_device()
    app = build_attested_app(verifier_identity.public_bytes(),
                             "boot.verifier", 7910, secret_capacity=4096)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    policy.trust_boot_measurement(device.kernel.boot_measurement)
    start_verifier(testbed.network, "boot.verifier", 7910, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: b"boot-gated secret")
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") == \
        len(b"boot-gated secret")
    session.close()


def test_end_to_end_wrong_boot_pin_rejected(testbed, verifier_identity):
    device = testbed.create_device()
    app = build_attested_app(verifier_identity.public_bytes(),
                             "boot2.verifier", 7911, secret_capacity=4096)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    policy.trust_boot_measurement(b"\x13" * 32)  # some other firmware
    start_verifier(testbed.network, "boot2.verifier", 7911, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: b"secret")
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    assert device.run_wasm(session, loaded["app"], "attest") < 0
    session.close()


# -- encrypted evidence ---------------------------------------------------------------


def test_encrypted_msg2_roundtrip():
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom)
    session, verifier_session = _handshake(attester, verifier)
    evidence = attester.collect_evidence(session.anchor, CLAIM,
                                         DEVICE.public_bytes(), _sign)
    msg2 = attester.make_msg2(session, evidence, encrypt_evidence=True)
    assert msg2[0] == protocol.MSG2_ENC
    msg3 = verifier.handle_msg2(verifier_session, msg2, b"hidden")
    assert attester.handle_msg3(session, msg3) == b"hidden"


def test_encrypted_msg2_hides_claim_and_device():
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom)
    session, _verifier_session = _handshake(attester, verifier)
    evidence = attester.collect_evidence(session.anchor, CLAIM,
                                         DEVICE.public_bytes(), _sign)
    clear = attester.make_msg2(session, evidence)
    sealed = attester.make_msg2(session, evidence, encrypt_evidence=True)
    assert CLAIM in clear                      # Table II: evidence in clear
    assert CLAIM not in sealed                 # extension: sealed under K_e
    assert DEVICE.public_bytes() not in sealed


def test_encrypted_msg2_tamper_detected():
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom)
    session, verifier_session = _handshake(attester, verifier)
    evidence = attester.collect_evidence(session.anchor, CLAIM,
                                         DEVICE.public_bytes(), _sign)
    msg2 = bytearray(attester.make_msg2(session, evidence,
                                        encrypt_evidence=True))
    msg2[80] ^= 0x01  # inside the sealed evidence
    with pytest.raises(AuthenticationError):
        verifier.handle_msg2(verifier_session, bytes(msg2), b"s")


def test_verifier_ta_accepts_encrypted_msg2(testbed, verifier_identity):
    """Through the full platform: listener + verifier TA."""
    device = testbed.create_device()
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(CLAIM)
    start_verifier(testbed.network, "enc.verifier", 7912, device.client,
                   testbed.vendor_key, verifier_identity, policy,
                   lambda: b"enc secret")
    attester = Attester(os.urandom)
    connection = testbed.network.connect("enc.verifier", 7912)
    session = attester.start_session(verifier_identity.public_bytes())
    connection.send(attester.make_msg0(session))
    attester.handle_msg1(session, connection.receive())
    with device.soc.enter_secure_world():
        signature_fn = device.kernel.attestation_service.sign_evidence
        evidence = attester.collect_evidence(
            session.anchor, CLAIM, device.attestation_public_key,
            signature_fn)
    connection.send(attester.make_msg2(session, evidence,
                                       encrypt_evidence=True))
    blob = attester.handle_msg3(session, connection.receive())
    assert blob == b"enc secret"
