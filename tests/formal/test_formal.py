"""The Dolev–Yao checker: term algebra, claims, mutation detection."""

import pytest

from repro.errors import FormalError
from repro.formal import (
    MUTATION_EXPECTATIONS,
    Atom,
    DhPub,
    DhShared,
    Hash,
    Kdf,
    Knowledge,
    Mac,
    Pair,
    PrivKey,
    ProtocolVariant,
    PubKey,
    Sign,
    SymEnc,
    pair,
    run_mutation_suite,
    subterms,
    verify_protocol,
)

A, B, K = Atom("a"), Atom("b"), Atom("k")


# -- term algebra ------------------------------------------------------------


def test_terms_structural_equality():
    assert Pair(A, B) == Pair(A, B)
    assert Pair(A, B) != Pair(B, A)
    assert hash(Pair(A, B)) == hash(Pair(A, B))


def test_dh_shared_commutes():
    assert DhShared(A, B) == DhShared(B, A)
    assert hash(DhShared(A, B)) == hash(DhShared(B, A))


def test_pair_nests_right():
    nested = pair(A, B, K)
    assert nested == Pair(A, Pair(B, K))


def test_subterms_cover_structure():
    term = SymEnc(Kdf(DhShared(A, B), "Ke"), Pair(K, Hash(A)))
    found = set(subterms(term))
    assert {A, B, K, Hash(A)} <= found


# -- intruder deduction -----------------------------------------------------------


def test_pairs_decompose():
    knowledge = Knowledge([Pair(A, B)])
    assert knowledge.derives(A)
    assert knowledge.derives(B)


def test_signature_reveals_body_not_key():
    knowledge = Knowledge([Sign(PrivKey(Atom("V")), Pair(A, B))])
    assert knowledge.derives(A)
    assert not knowledge.derives(PrivKey(Atom("V")))


def test_ciphertext_opaque_without_key():
    knowledge = Knowledge([SymEnc(K, A)])
    assert not knowledge.derives(A)


def test_ciphertext_opens_with_key():
    knowledge = Knowledge([SymEnc(K, A), K])
    assert knowledge.derives(A)


def test_ciphertext_opens_when_key_arrives_later():
    knowledge = Knowledge([SymEnc(K, A)])
    assert not knowledge.derives(A)
    knowledge.add(K)
    assert knowledge.derives(A)


def test_mac_reveals_nothing():
    knowledge = Knowledge([Mac(K, A)])
    assert not knowledge.derives(A)
    assert not knowledge.derives(K)


def test_mac_constructible_with_key_and_body():
    knowledge = Knowledge([K, A])
    assert knowledge.derives(Mac(K, A))


def test_hash_one_way():
    knowledge = Knowledge([Hash(A)])
    assert not knowledge.derives(A)
    knowledge.add(A)
    assert knowledge.derives(Hash(Pair(A, A)))


def test_dh_needs_a_scalar():
    e, v = Atom("e"), Atom("v")
    knowledge = Knowledge([DhPub(v), e])
    assert knowledge.derives(DhShared(e, v))
    assert not knowledge.derives(DhShared(Atom("a"), v))


def test_kdf_derivable_from_secret():
    e, v = Atom("e"), Atom("v")
    knowledge = Knowledge([DhPub(v), e])
    assert knowledge.derives(Kdf(DhShared(e, v), "Km"))


def test_public_keys_always_derivable():
    assert Knowledge([]).derives(PubKey(Atom("anyone")))


def test_snapshot_restore():
    knowledge = Knowledge([A])
    snapshot = knowledge.snapshot()
    knowledge.add(B)
    assert knowledge.derives(B)
    knowledge.restore(snapshot)
    assert not knowledge.derives(B)


# -- protocol verification ----------------------------------------------------------


@pytest.fixture(scope="module")
def shipped_report():
    return verify_protocol()


def test_shipped_protocol_all_claims_hold(shipped_report):
    assert shipped_report.all_hold, shipped_report.failed_claims()


def test_shipped_protocol_checks_the_paper_claim_set(shipped_report):
    names = {claim.name for claim in shipped_report.claims}
    assert "secrecy_secret_blob" in names
    assert "secrecy_honest_enc_key" in names
    assert "secrecy_attester_scalar" in names
    assert "aliveness_verifier" in names
    assert "weak_agreement_attester" in names
    assert "ni_agreement_attester" in names
    assert "ni_agreement_verifier" in names
    assert "ni_synchronisation" in names
    assert "reachability" in names


def test_reachability_witness_exists(shipped_report):
    assert shipped_report.claim("reachability").holds


@pytest.mark.parametrize("mutation", sorted(MUTATION_EXPECTATIONS))
def test_each_disabled_check_yields_attack(mutation):
    """Checker self-test (DESIGN.md ablation 3): removing any protocol
    check must produce at least the expected claim violations."""
    variant = ProtocolVariant().mutate(**{mutation: False})
    report = verify_protocol(variant)
    failed = set(report.failed_claims())
    assert failed, f"no attack found with {mutation} disabled"
    assert set(MUTATION_EXPECTATIONS[mutation]) <= failed


def test_identity_check_off_gives_attack_trace():
    report = verify_protocol(
        ProtocolVariant().mutate(attester_checks_identity=False))
    attack = report.claim("aliveness_verifier").attack
    assert attack is not None
    assert attack.events  # a concrete trace is attached


def test_claim_check_off_leaks_blob_via_colocated_app():
    """The WaTZ-specific attack: a malicious Wasm app on the same device
    holds genuine device-signed evidence; only the measurement check
    stops it from receiving the secret blob."""
    report = verify_protocol(
        ProtocolVariant().mutate(verifier_checks_claim=False))
    assert not report.claim("secrecy_secret_blob").holds


def test_mutation_suite_shape():
    reports = run_mutation_suite()
    assert reports["shipped"].all_hold
    for name, report in reports.items():
        if name != "shipped":
            assert not report.all_hold
