"""The benchmark harness utilities."""

import math

import pytest

from repro.bench import (
    Summary,
    format_duration,
    format_table,
    geometric_mean,
    measure_real,
    measure_simulated,
    paper_comparison,
    percentile,
    ratio,
)
from repro.hw import SimClock


def test_summary_statistics():
    summary = Summary.of([3.0, 1.0, 2.0])
    assert summary.median == 2.0
    assert summary.mean == 2.0
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.runs == 3
    assert summary.stdev == pytest.approx(1.0)


def test_summary_single_sample():
    summary = Summary.of([5.0])
    assert summary.median == 5.0
    assert summary.stdev == 0.0


def test_summary_rejects_empty():
    with pytest.raises(ValueError):
        Summary.of([])


def test_summary_tail_percentiles():
    samples = [float(value) for value in range(1, 101)]
    summary = Summary.of(samples)
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p95 == pytest.approx(95.05)
    assert summary.p99 == pytest.approx(99.01)
    assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


def test_summary_hand_built_without_percentiles_still_works():
    # Pre-existing call sites construct Summary positionally; the tail
    # percentiles must stay optional for them — and absent percentiles
    # are None, never a 0.0 that looks like a measurement.
    summary = Summary(median=1.0, mean=1.0, stdev=0.0, minimum=1.0,
                      maximum=1.0, runs=1)
    assert summary.p50 is None
    assert summary.p95 is None
    assert summary.p99 is None


def test_percentile_interpolates_linearly():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.0) == 10.0
    assert percentile(samples, 1.0) == 40.0
    assert percentile(samples, 0.5) == pytest.approx(25.0)
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([3.0, 1.0], 0.5) == pytest.approx(2.0)  # sorts first


def test_percentile_validates_inputs():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_measure_real_counts_runs():
    calls = []
    summary = measure_real(lambda: calls.append(1), runs=4, warmup=2)
    assert summary.runs == 4
    assert len(calls) == 6  # warmup + measured


def test_measure_simulated_uses_virtual_clock():
    clock = SimClock()
    summary = measure_simulated(clock, lambda: clock.advance(1500), runs=3)
    assert summary.median == 1500.0


def test_ratio():
    fast = Summary.of([1.0])
    slow = Summary.of([3.0])
    assert ratio(slow, fast) == 3.0
    assert math.isinf(ratio(slow, Summary.of([0.0])))


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])


def test_format_duration_scales():
    assert format_duration(2.5) == "2.50 s"
    assert format_duration(0.0025) == "2.50 ms"
    assert format_duration(2.5e-6) == "2.50 us"
    assert format_duration(3e-9) == "3 ns"


def test_format_table_alignment():
    table = format_table("demo", ["name", "value"],
                         [("alpha", 1.0), ("b", 123.456)])
    lines = table.splitlines()
    assert lines[0] == "== demo =="
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}  # the separator row
    assert lines[3].startswith("alpha")
    # Columns align: the value column starts at the same offset everywhere.
    offset = lines[1].index("value")
    assert lines[3][offset:].strip() == "1.00"
    assert lines[4][offset:].strip() == "123"


def test_paper_comparison_header():
    block = paper_comparison("Fig. X", [("q", "1", "2", "")])
    assert "paper vs measured" in block
    assert "Fig. X" in block
