"""Simulated hardware: fuses, CAAM, secure boot, worlds, cost model."""

import pytest

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import FuseError, SecureBootError, WorldError
from repro.hw import (
    DEFAULT_COSTS,
    CostModel,
    EFuses,
    SimClock,
    SoC,
    StageImage,
    StopWatch,
    World,
    sign_stage,
)

_VENDOR = ecdsa.keypair_from_private(0xABCDEF)


def _provisioned_soc() -> SoC:
    soc = SoC()
    soc.provision(b"\x11" * 32, sha256(_VENDOR.public_bytes()))
    return soc


def _stages():
    return [sign_stage(name, f"{name} payload".encode(), _VENDOR)
            for name in ("spl", "atf", "optee")]


# -- fuses ----------------------------------------------------------------


def test_fuses_write_once():
    fuses = EFuses()
    fuses.program_otpmk(b"\x01" * 32)
    with pytest.raises(FuseError):
        fuses.program_otpmk(b"\x02" * 32)


def test_fuse_size_enforced():
    fuses = EFuses()
    with pytest.raises(FuseError):
        fuses.program_otpmk(b"short")


def test_unprogrammed_fuse_read_fails():
    fuses = EFuses()
    with pytest.raises(FuseError):
        fuses.boot_key_hash.read()


def test_otpmk_not_software_readable():
    soc = _provisioned_soc()
    with pytest.raises(FuseError, match="CAAM"):
        soc.fuses.read_otpmk_from_caam(object())


# -- CAAM / MKVB ------------------------------------------------------------


def test_mkvb_differs_per_world():
    soc = _provisioned_soc()
    normal = soc.caam.master_key_verification_blob(World.NORMAL)
    secure = soc.caam.master_key_verification_blob(World.SECURE)
    assert normal != secure
    assert len(normal) == len(secure) == 32


def test_mkvb_stable_across_reads():
    soc = _provisioned_soc()
    assert soc.caam.master_key_verification_blob(World.SECURE) == \
        soc.caam.master_key_verification_blob(World.SECURE)


def test_mkvb_differs_per_device():
    one = SoC()
    one.provision(b"\x01" * 32, sha256(_VENDOR.public_bytes()))
    two = SoC()
    two.provision(b"\x02" * 32, sha256(_VENDOR.public_bytes()))
    assert one.caam.master_key_verification_blob(World.SECURE) != \
        two.caam.master_key_verification_blob(World.SECURE)


# -- secure boot -------------------------------------------------------------


def test_secure_boot_succeeds_with_genuine_stages():
    soc = _provisioned_soc()
    report = soc.secure_boot(_VENDOR.public_bytes(), _stages())
    assert report.stages == ["spl", "atf", "optee"]
    assert len(report.measurements) == 3
    assert soc.current_world == World.SECURE


def test_secure_boot_rejects_tampered_stage():
    soc = _provisioned_soc()
    stages = _stages()
    tampered = StageImage(stages[1].name, b"evil payload",
                          stages[1].signature)
    with pytest.raises(SecureBootError, match="signature"):
        soc.secure_boot(_VENDOR.public_bytes(), [stages[0], tampered])
    assert not soc.securely_booted


def test_secure_boot_rejects_wrong_vendor_key():
    soc = _provisioned_soc()
    rogue = ecdsa.keypair_from_private(31337)
    stages = [sign_stage("spl", b"x", rogue)]
    with pytest.raises(SecureBootError, match="fused"):
        soc.secure_boot(rogue.public_bytes(), stages)


def test_secure_boot_rejects_empty_chain():
    soc = _provisioned_soc()
    with pytest.raises(SecureBootError, match="empty"):
        soc.secure_boot(_VENDOR.public_bytes(), [])


def test_stage_measurements_are_payload_hashes():
    stage = sign_stage("spl", b"payload bytes", _VENDOR)
    assert stage.measurement == sha256(b"payload bytes")


# -- worlds and clock ----------------------------------------------------------


def test_enter_secure_world_requires_boot():
    soc = _provisioned_soc()
    with pytest.raises(SecureBootError):
        with soc.enter_secure_world():
            pass


def test_world_transition_costs_match_figure_3b():
    soc = _provisioned_soc()
    soc.secure_boot(_VENDOR.public_bytes(), _stages())
    soc.current_world = World.NORMAL
    before = soc.clock.now_ns()
    with soc.enter_secure_world():
        entered = soc.clock.now_ns()
    returned = soc.clock.now_ns()
    assert entered - before == DEFAULT_COSTS.world_enter_ns
    assert returned - entered == DEFAULT_COSTS.world_return_ns


def test_nested_world_enter_rejected():
    soc = _provisioned_soc()
    soc.secure_boot(_VENDOR.public_bytes(), _stages())
    soc.current_world = World.NORMAL
    with soc.enter_secure_world():
        with pytest.raises(WorldError):
            with soc.enter_secure_world():
                pass


def test_rpc_requires_secure_world():
    soc = _provisioned_soc()
    with pytest.raises(WorldError):
        with soc.rpc_to_normal_world():
            pass


def test_monotonic_read_cost_depends_on_world():
    soc = _provisioned_soc()
    soc.secure_boot(_VENDOR.public_bytes(), _stages())
    # Secure-world read pays the kernel RPC.
    before = soc.clock.now_ns()
    soc.read_monotonic_ns()
    secure_cost = soc.clock.now_ns() - before
    assert secure_cost == DEFAULT_COSTS.secure_time_fetch_ns
    # Normal-world read is just the clock read.
    soc.current_world = World.NORMAL
    before = soc.clock.now_ns()
    soc.read_monotonic_ns()
    assert soc.clock.now_ns() - before == DEFAULT_COSTS.clock_read_ns


def test_clock_monotonicity():
    soc = SoC()
    with pytest.raises(ValueError):
        soc.clock.advance(-1)


def test_clock_advance_zero_is_a_noop():
    clock = SimClock()
    clock.advance(5)
    clock.advance(0)
    assert clock.now_ns() == 5


def test_stopwatch_nesting_attributes_inner_time_to_both():
    clock = SimClock()
    with StopWatch(clock) as outer:
        clock.advance(100)
        with StopWatch(clock) as inner:
            clock.advance(40)
        clock.advance(10)
    assert inner.elapsed_ns == 40
    assert outer.elapsed_ns == 150
    # The outer watch includes the inner region exactly once.
    assert outer.elapsed_ns - inner.elapsed_ns == 110


def test_secure_read_charges_fetch_cost_exactly_once_per_call():
    soc = _provisioned_soc()
    soc.secure_boot(_VENDOR.public_bytes(), _stages())
    before = soc.clock.now_ns()
    soc.read_monotonic_ns()
    first = soc.clock.now_ns()
    soc.read_monotonic_ns()
    second = soc.clock.now_ns()
    # Each secure-world read pays kernel RPC + clock read, once — the
    # cost does not accumulate or get double-charged across calls.
    assert first - before == DEFAULT_COSTS.secure_time_fetch_ns
    assert second - first == DEFAULT_COSTS.secure_time_fetch_ns
    assert DEFAULT_COSTS.secure_time_fetch_ns == \
        DEFAULT_COSTS.kernel_rpc_ns + DEFAULT_COSTS.clock_read_ns


def test_secure_read_returns_post_charge_timestamp():
    soc = _provisioned_soc()
    soc.secure_boot(_VENDOR.public_bytes(), _stages())
    reading = soc.read_monotonic_ns()
    # The returned timestamp is taken while still in the normal world,
    # i.e. after the fetch cost has been charged, and the CPU is back in
    # the secure world afterwards.
    assert reading == soc.clock.now_ns()
    assert soc.current_world == World.SECURE


# -- cost model composition ------------------------------------------------------


def test_cost_model_composes_paper_values():
    """The calibration contract of DESIGN.md: paper numbers emerge from
    composition of primitives, they are not stored anywhere."""
    costs = CostModel()
    assert costs.world_enter_ns == 86_000
    assert costs.world_return_ns == 20_000
    assert abs(costs.secure_time_fetch_ns - 10_000) <= 1000
    assert abs(costs.wasm_time_fetch_ns - 13_000) <= 1000
    assert costs.wasm_time_fetch_ns - costs.secure_time_fetch_ns == \
        costs.wasi_dispatch_ns


def test_shared_copy_cost_scales_linearly():
    costs = CostModel()
    assert costs.shared_copy_ns(2048) == 2 * costs.shared_copy_ns(1024)
