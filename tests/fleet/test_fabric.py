"""The replicated appraisal fabric, unit-level and live on the testbed.

Covers the tentpole's acceptance criteria: the consistent-hash ring is
deterministic and rebalances locally, the versioned store/replica pair
rejects everything stale, a device bouncing between live shard processes
resumes via the replicated ticket (cross-shard hits recover the
single-shard hit-rate), resumption survives a shard respawn, a crash
mid-message never leaks a cached verdict, the evict fan-out batches to
O(shards) frames, the hierarchy verifies edge audit chains at the root,
and the churn model reproduces the partitioned pathology the fabric
exists to fix. ``fabric=False`` behaviour is pinned byte-identical by
``test_shards.py``'s invariance suite, which runs untouched.
"""

import dataclasses
import time

import pytest

from repro.appraisal import AppraisalEngine, AppraisalPolicy
from repro.appraisal.audit import AuditLog
from repro.appraisal.envelope import TEE_SGX, TEE_TRUSTZONE
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import FleetShardCrashed
from repro.fleet import (
    AppraisalCache,
    ChurnProfile,
    FabricStore,
    FleetConfig,
    HashRing,
    ReplicaState,
    RootAuditor,
    build_attester_stacks,
    build_mixed_stacks,
    model_churn,
    model_revocation_storm,
    run_one_handshake,
    run_one_handshake_multi,
    start_fleet_gateway,
    zipf_sequence,
)
from repro.fleet.fabric.hierarchy import AuditBatch
from repro.testbed import Testbed

HOST = "fleet.verifier"
SECRET = b"fabric fleet secret blob" * 4
IDENTITY = ecdsa.keypair_from_private(0xB00B1E5 + 777)

KEY_A = (1, b"id-a" * 8, b"claim-a" * 4, b"")
KEY_B = (1, b"id-b" * 8, b"claim-b" * 4, b"")
FP_1 = b"\x11" * 32
FP_2 = b"\x22" * 32
RK = b"\x07" * 16


def _start(testbed, policy, port, engine=None, **overrides):
    defaults = dict(shards=2, heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=1.0, fabric=True)
    defaults.update(overrides)
    return start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET, FleetConfig(**defaults),
        engine=engine,
    )


def _wait_for(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# -- the ring ------------------------------------------------------------------


def test_hash_ring_is_deterministic_and_rebalances_locally():
    keys = [f"device-{i}".encode() for i in range(500)]
    ring_a = HashRing(range(4))
    ring_b = HashRing(range(4))
    owners = {key: ring_a.owner(key) for key in keys}
    # Same members, fresh instance: identical placement (pure sha256).
    assert owners == {key: ring_b.owner(key) for key in keys}
    # All members carry a share of a 500-key population.
    assert {owners[key] for key in keys} == {0, 1, 2, 3}
    # Removing one member moves only its keys; survivors keep theirs.
    ring_a.remove(2)
    for key in keys:
        if owners[key] != 2:
            assert ring_a.owner(key) == owners[key]
        else:
            assert ring_a.owner(key) != 2
    # Re-adding restores the original placement exactly.
    ring_a.add(2)
    assert owners == {key: ring_a.owner(key) for key in keys}


# -- the versioned store -------------------------------------------------------


def test_store_versions_mints_and_tombstones():
    store = FabricStore([0, 1], capacity=16)
    store.refresh(FP_1)
    assert store.record_mint(0, FP_1, KEY_A, RK) is not None
    entry = store.lookup(KEY_A)
    assert entry.origin == 0 and entry.seq == 1
    # A mint under a stale fingerprint raced a policy change: dropped.
    assert store.record_mint(1, FP_2, KEY_B, RK) is None
    assert store.stale_mints == 1
    # Eviction leaves a tombstone with a newer sequence than the entry.
    epoch, seq, replicas = store.evict(KEY_A)
    assert (epoch, seq, replicas) == (1, 2, [0])
    assert store.lookup(KEY_A) is None
    # A fingerprint change bumps the epoch and clears everything.
    assert store.refresh(FP_2)
    assert store.epoch == 2 and len(store) == 0
    assert not store.refresh(FP_2)  # idempotent


def test_store_membership_replay_plans_moves_and_syncs():
    store = FabricStore([0, 1], capacity=64)
    store.refresh(FP_1)
    keys = [(1, f"dev-{i}".encode() * 4, b"claim", b"") for i in range(32)]
    # Mint each ticket at its ring owner, so the owner is its only replica.
    for key in keys:
        store.record_mint(store.owner(key), FP_1, key, RK)
    dead_keys = [key for key in keys if store.owner(key) == 1]
    assert dead_keys  # 64 vnodes over 32 keys: both members own some
    moves = store.member_down(1)
    # Every key the dead member owned moves to the sole survivor.
    assert sorted(key for key, _ in moves) == sorted(dead_keys)
    assert all(owner == 0 for _, owner in moves)
    # The respawned member is re-seeded with exactly its owned slice.
    sync = store.member_up(1)
    assert sorted(sync) == sorted(dead_keys)


def test_replica_state_rejects_stale_and_replayed_frames():
    replica = ReplicaState()
    assert replica.admit_put(1, 5, KEY_A)
    assert not replica.admit_put(1, 5, KEY_A)   # replay
    assert not replica.admit_put(1, 3, KEY_A)   # reordered older put
    assert replica.admit_evict(1, 7, KEY_A)     # tombstone at seq 7
    assert not replica.admit_put(1, 6, KEY_A)   # put older than tombstone
    assert replica.admit_put(1, 8, KEY_A)       # genuinely newer
    assert not replica.admit_put(0, 99, KEY_A)  # old epoch, any seq
    assert replica.admit_put(2, 1, KEY_B)       # new epoch resets per-key
    assert replica.epoch == 2
    assert replica.snapshot()["rejected"] == 4


def test_cache_seed_respects_scope_and_never_echoes():
    cache = AppraisalCache(capacity=8, ttl_s=60.0)
    echoes = []
    cache.set_store_listener(lambda *args: echoes.append(args))
    # A fresh cache adopts the pushed scope; a mismatch is refused.
    assert cache.seed(FP_1, KEY_A, RK)
    assert not cache.seed(FP_2, KEY_B, RK)
    assert len(cache) == 1 and cache.seeds == 1
    # Seeds never invoke the mint listener (no replication echo).
    assert echoes == []
    assert cache.evict_key(KEY_A)
    assert not cache.evict_key(KEY_A)
    assert len(cache) == 0


# -- live: cross-shard resumption ----------------------------------------------


def test_cross_shard_resumption_hits_replicated_ticket():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7840)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        # Affinity is conn % 2, conns count up from 1: the device
        # alternates shards every handshake. Only the first is a miss —
        # the fabric replicates the minted ticket to the other shard.
        for attempt in range(4):
            result = run_one_handshake(testbed.network, HOST, 7840,
                                       IDENTITY.public_bytes(), stack,
                                       attempt)
            assert result.ok, result.error
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, True, True, True]
        counters = gateway.snapshot()["counters"]
        assert counters["fabric_mints"] == 1
        assert counters["fabric_cross_shard_hits"] >= 1
        snapshot = gateway.snapshot()
        assert snapshot["fabric"]["store"]["entries"] == 1
        # The replica landed through the bus, not a local verify.
        assert snapshot["cache"]["seeds"] >= 1
    finally:
        gateway.stop()


def test_fabric_off_keeps_caches_partitioned():
    # The control: same alternating workload, fabric disabled — every
    # shard bounce is a full verify (the partitioned pathology).
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7841, fabric=False)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        for attempt in range(4):
            result = run_one_handshake(testbed.network, HOST, 7841,
                                       IDENTITY.public_bytes(), stack,
                                       attempt)
            assert result.ok, result.error
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, False, False, False]
        snapshot = gateway.snapshot()
        assert "fabric" not in snapshot
        assert snapshot["counters"].get("fabric_mints", 0) == 0
        assert gateway.fabric is None
    finally:
        gateway.stop()


def test_fabric_hit_rate_matches_single_shard_baseline():
    # Acceptance: fabric on 2 shards within 10% of the 1-shard hit-rate
    # for the same reconnect schedule (3 devices x 4 handshakes).
    def run(port, **overrides):
        testbed = Testbed(first_serial=10)
        policy = VerifierPolicy()
        gateway = _start(testbed, policy, port, **overrides)
        try:
            stacks = build_attester_stacks(testbed, policy, 3)
            for attempt in range(4):
                for stack in stacks:
                    result = run_one_handshake(
                        testbed.network, HOST, port,
                        IDENTITY.public_bytes(), stack, attempt)
                    assert result.ok, result.error
            return gateway.snapshot()["cache"]["hit_rate"]
        finally:
            gateway.stop()

    baseline = run(7842, shards=1, fabric=False)
    fabricated = run(7843, shards=2, fabric=True)
    assert baseline == pytest.approx(0.75)  # 3 misses of 12 msg2s
    assert fabricated >= baseline * 0.9


# -- live: respawn and crash ---------------------------------------------------


def test_resumption_survives_shard_respawn():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7844)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        result = run_one_handshake(testbed.network, HOST, 7844,
                                   IDENTITY.public_bytes(), stack, 0)
        assert result.ok, result.error
        # conn 1 landed on shard 1: kill it and let supervision respawn.
        gateway._shards[1].channel.process.kill()
        assert _wait_for(
            lambda: gateway.metrics.counter("shard_respawns") >= 1)
        assert gateway.metrics.counter("fabric_member_down") == 1
        assert gateway.metrics.counter("fabric_member_down_death") == 1
        # Force the next handshake onto the respawned shard.
        while (gateway._conn_counter + 1) % 2 != 1:
            testbed.network.connect(HOST, 7844).close()
        result = run_one_handshake(testbed.network, HOST, 7844,
                                   IDENTITY.public_bytes(), stack, 1)
        assert result.ok, result.error
        # The fresh worker resumed the device from the replicated ticket:
        # no second full verify anywhere in the fleet.
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, True]
        assert gateway.snapshot()["counters"]["fabric_mints"] == 1
    finally:
        gateway.stop()


def test_inflight_crash_never_leaks_a_cached_verdict():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7845, shards=1,
                     heartbeat_interval_s=60.0)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        gateway._shards[0].channel.process.kill()
        assert _wait_for(lambda: gateway._shards[0].channel.down.is_set())
        connection = testbed.network.connect(HOST, 7845)
        session = stack.attester.start_session(IDENTITY.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        with pytest.raises(FleetShardCrashed):
            connection.receive()
        # The failed in-flight message produced no record, no mint, and
        # no ticket in the authority — nothing to leak to a later conn.
        assert gateway.drain_records() == []
        assert gateway.snapshot()["fabric"]["store"]["entries"] == 0
        assert gateway.metrics.counter("fabric_mints") == 0
        assert gateway.metrics.counter("failed_messages") == 1
    finally:
        gateway.stop()


# -- live: batched evict fan-out -----------------------------------------------


def test_revocation_storm_coalesces_to_per_shard_frames():
    # 1000 synthetic sessions evicted in one storm must reach the shards
    # as O(shards) batched OP_EVICT frames, not O(devices) round-trips.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7846, fabric=False,
                     evict_coalesce_s=0.05, max_sessions=2048)
    try:
        for conn in range(1, 1001):
            gateway.sessions.open(conn, conn % 2)
        for lane in (0, 1):
            gateway.sessions.evict_lane(lane, "storm")
        assert _wait_for(
            lambda: gateway.metrics.counter("evict_coalesced") >= 1000)
        frames = gateway.metrics.counter("evict_batched")
        assert 2 <= frames <= 8  # a few windows x 2 shards, never 1000
        assert gateway.metrics.counter("evict_coalesced") == 1000
        assert gateway.metrics.counter("sessions_evicted_storm") == 1000
    finally:
        gateway.stop()


# -- the threaded mirror -------------------------------------------------------


def test_threaded_gateway_mirrors_mints_into_the_fabric():
    testbed = Testbed()
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7847, device.client, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET,
        FleetConfig(workers=2, fabric=True))
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        for attempt in range(2):
            result = run_one_handshake(testbed.network, HOST, 7847,
                                       IDENTITY.public_bytes(), stack,
                                       attempt)
            assert result.ok, result.error
        snapshot = gateway.snapshot()
        # One full verify, one resumption: the single mint is mirrored
        # into the authority (member 0 — the cache is already fleet-wide).
        assert snapshot["fabric"]["mints"] == 1
        assert snapshot["fabric"]["members"] == [0]
        assert snapshot["counters"]["fabric_mints"] == 1
        assert snapshot["cache"]["hits"] == 1
    finally:
        gateway.stop()


# -- the hierarchy -------------------------------------------------------------


def test_root_auditor_ingests_edge_chains_and_pushes_revocation():
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = _start(testbed, VerifierPolicy(), 7848, engine=engine)
    root = RootAuditor()
    try:
        relay = root.attach("edge-0", gateway)
        stacks = build_mixed_stacks(testbed, appraisal,
                                    [TEE_TRUSTZONE, TEE_SGX])
        for stack in stacks:
            result = run_one_handshake_multi(testbed.network, HOST, 7848,
                                             IDENTITY.public_bytes(),
                                             stack)
            assert result.ok, result.error
        ingested = root.pump()
        assert ingested >= 2  # one "ok" verdict per handshake
        first = root.snapshot()
        assert first["accepts"] >= 2 and first["denials"] == 0
        assert first["batches_accepted"] >= 1
        assert first["batches_rejected"] == 0
        # The relay drained per-shard-generation streams, not one blob.
        assert any(stream.startswith("shard-")
                   for stream in relay._cursors)
        # Idempotent: nothing new, nothing re-ingested.
        assert root.pump() == 0

        # The root pushes a revocation down to every attached edge; the
        # next handshake with the revoked measurement is denied at the
        # edge, and the denial flows back up on the next pump.
        assert root.revoke_measurement(stacks[0].claim) == 1
        denied = run_one_handshake_multi(testbed.network, HOST, 7848,
                                         IDENTITY.public_bytes(),
                                         stacks[0], 1)
        assert not denied.ok and denied.error == "PolicyDenied"
        assert root.pump() >= 1
        second = root.snapshot()
        assert second["denials"] >= 1
        assert "measurement-revoked" in second["denials_by_reason"]
        assert second["revocations_pushed"] == 1
    finally:
        gateway.stop()


def test_root_auditor_rejects_tampered_and_gapped_batches():
    root = RootAuditor()
    log = AuditLog()
    for i in range(6):
        log.record(tee_type=1, accepted=True, reason="ok",
                   policy_fingerprint=FP_1, detail=f"d{i}")
    entries = log.entries()
    # A valid genesis-anchored batch is accepted...
    assert root.submit(AuditBatch("edge", "s", None, entries[:3]))
    # ...a continuation that skips an entry breaks continuity...
    assert not root.submit(AuditBatch("edge", "s", entries[2].digest,
                                      entries[4:]))
    # ...a tampered field breaks the chain even with continuity...
    forged = dataclasses.replace(entries[3], reason="forged")
    assert not root.submit(AuditBatch("edge", "s", entries[2].digest,
                                      [forged] + entries[4:]))
    # ...and the honest continuation still lands afterwards.
    assert root.submit(AuditBatch("edge", "s", entries[2].digest,
                                  entries[3:]))
    snap = root.snapshot()
    assert snap["batches_accepted"] == 2
    assert snap["batches_rejected"] == 2
    assert snap["entries_ingested"] == 6
    assert snap["root_log"] == 2  # one chained digest entry per batch


# -- the churn model -----------------------------------------------------------


def test_zipf_sequence_is_deterministic_and_skewed():
    seq_a = zipf_sequence(100_000, 5_000, s=1.1, seed=7)
    seq_b = zipf_sequence(100_000, 5_000, s=1.1, seed=7)
    assert seq_a == seq_b
    assert zipf_sequence(100_000, 5_000, s=1.1, seed=8) != seq_a
    # Zipf head: rank 0 dominates any individual tail rank.
    assert seq_a.count(0) > 50 * max(1, seq_a.count(90_000))
    with pytest.raises(ValueError):
        zipf_sequence(0, 10)


def test_churn_model_shows_fabric_recovering_hit_rate():
    profile = ChurnProfile(identities=20_000, reconnects=40_000,
                           shards=4, cache_capacity=8_192)
    sequence = profile.sequence()
    fabric = model_churn(profile, fabric=True, sequence=sequence)
    split = model_churn(profile, fabric=False, sequence=sequence)
    single = model_churn(ChurnProfile(identities=20_000, reconnects=40_000,
                                      shards=1, cache_capacity=8_192),
                         fabric=False, sequence=sequence)
    # The partitioned pathology: every shard bounce after a re-mint is a
    # miss, so 4-way splitting loses most of the single-shard hit-rate.
    assert split.hit_rate < 0.55 * single.hit_rate
    # The fabric recovers it (>= because the store is shards x larger).
    assert fabric.hit_rate >= single.hit_rate * 0.9
    assert fabric.cross_shard_hits > 0
    assert fabric.distinct_devices == split.distinct_devices


def test_storm_model_frames_scale_with_shards_not_devices():
    batched = model_revocation_storm(10_000, shards=4, batched=True)
    naive = model_revocation_storm(10_000, shards=4, batched=False)
    assert batched.frames == 4
    assert naive.frames == 10_000
    assert batched.drain_s < naive.drain_s
    assert model_revocation_storm(0, shards=4, batched=True).frames == 0
    with pytest.raises(ValueError):
        model_revocation_storm(-1, shards=1, batched=True)
