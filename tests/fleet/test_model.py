"""The fleet capacity model: deterministic, and scaling as queueing says.

The model composes *measured* per-message costs; these tests feed it
synthetic costs so the expected queueing behaviour is exact.
"""

import pytest

from repro.fleet import FleetModel, model_fleet

# Client work dominates: attesters are independent boards, so adding
# attesters should scale throughput until the lanes saturate.
CLIENT_BOUND = FleetModel(client_pre_s=0.002, client_mid_s=0.020,
                          client_post_s=0.008, server_msg0_s=0.001,
                          server_msg2_s=0.002)
# Server work dominates: throughput is capped by lanes / service time.
SERVER_BOUND = FleetModel(client_pre_s=0.0, client_mid_s=0.0,
                          client_post_s=0.0, server_msg0_s=0.004,
                          server_msg2_s=0.006)


def test_deterministic():
    first = model_fleet(CLIENT_BOUND, workers=4, concurrency=8,
                        handshakes_per_attester=3)
    second = model_fleet(CLIENT_BOUND, workers=4, concurrency=8,
                         handshakes_per_attester=3)
    assert first == second


def test_single_attester_latency_is_the_sum_of_segments():
    result = model_fleet(CLIENT_BOUND, workers=4, concurrency=1,
                         handshakes_per_attester=1)
    expected = 0.002 + 0.001 + 0.020 + 0.002 + 0.008
    assert result.handshakes == 1
    assert result.p50_s == pytest.approx(expected)
    assert result.makespan_s == pytest.approx(expected)


def test_concurrency_scales_until_lanes_saturate():
    single = model_fleet(CLIENT_BOUND, workers=4, concurrency=1,
                         handshakes_per_attester=4)
    sixteen = model_fleet(CLIENT_BOUND, workers=4, concurrency=16,
                          handshakes_per_attester=4)
    assert sixteen.throughput_hz > 3 * single.throughput_hz


def test_server_bound_throughput_caps_at_lane_capacity():
    # Each handshake needs 10 ms of lane time; K lanes sustain K/0.01.
    result = model_fleet(SERVER_BOUND, workers=2, concurrency=32,
                         handshakes_per_attester=4)
    assert result.throughput_hz == pytest.approx(2 / 0.010, rel=0.05)
    more_lanes = model_fleet(SERVER_BOUND, workers=4, concurrency=32,
                             handshakes_per_attester=4)
    assert more_lanes.throughput_hz == pytest.approx(4 / 0.010, rel=0.05)


def test_queueing_inflates_latency_under_contention():
    alone = model_fleet(SERVER_BOUND, workers=1, concurrency=1,
                        handshakes_per_attester=1)
    crowded = model_fleet(SERVER_BOUND, workers=1, concurrency=16,
                          handshakes_per_attester=1)
    assert crowded.p99_s > 5 * alone.p99_s


def test_open_loop_arrivals_spread_the_load():
    # With arrivals slower than the service time, nobody queues: every
    # handshake sees the unloaded latency.
    paced = model_fleet(SERVER_BOUND, workers=1, concurrency=8,
                        handshakes_per_attester=1, arrival_interval_s=0.1)
    alone = model_fleet(SERVER_BOUND, workers=1, concurrency=1,
                        handshakes_per_attester=1)
    assert paced.p99_s == pytest.approx(alone.p99_s)
    assert paced.makespan_s == pytest.approx(7 * 0.1 + alone.p99_s)


def test_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        model_fleet(CLIENT_BOUND, workers=0, concurrency=1,
                    handshakes_per_attester=1)
    with pytest.raises(ValueError):
        model_fleet(CLIENT_BOUND, workers=1, concurrency=0,
                    handshakes_per_attester=1)
