"""The appraisal cache: ticket redemption, TTL, capacity, invalidation.

Plus the verifier integration: a cache hit — authorised by a valid
resumption ticket — skips exactly the msg2 asymmetric verify (Table III's
dominant cost) while every session-bound check still runs. Crucially, a
warm cache never weakens device authentication: a msg2 fabricated from
public values (endorsed key, trusted claims, attacker's own session MAC
and anchor) with a forged signature is still rejected, because without
the resumption key no valid ticket can be produced and the full ECDSA
verify runs.
"""

import os

import pytest

from repro.core import measure_bytes, protocol
from repro.core.attester import Attester
from repro.core.evidence import Evidence, SignedEvidence
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.crypto.cmac import AesCmac
from repro.errors import AuthenticationError, SignatureError
from repro.fleet.cache import AppraisalCache, policy_fingerprint

DEVICE = ecdsa.keypair_from_private(515151)
IDENTITY = ecdsa.keypair_from_private(616161)
CLAIM = measure_bytes(b"cached app").digest
KEY = b"\xA5" * protocol.RESUMPTION_KEY_SIZE


def _sign(body):
    return ecdsa.sign(DEVICE.private, body)


def _policy():
    policy = VerifierPolicy()
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    return policy


def _evidence(anchor=b"\x01" * 32, claim=CLAIM,
              key=DEVICE.public_bytes(), boot=b"\x00" * 32):
    return Evidence(anchor=anchor, claim=claim,
                    attestation_public_key=key, boot_claim=boot)


def _ticket(resumption_key, evidence):
    return AesCmac(resumption_key).mac(evidence.encode())


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1e9)


# -- unit behaviour ----------------------------------------------------------------


def test_miss_then_store_then_redeem():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) is None
    cache.store(policy, evidence, KEY)
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) == KEY
    assert cache.hits == 1 and cache.misses == 1


def test_redeem_requires_a_valid_ticket():
    # An entry alone is worthless: an attacker who knows every public
    # field of the evidence still cannot redeem without the key.
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    cache.store(policy, evidence, KEY)
    assert cache.redeem(policy, evidence, b"") is None
    wrong = _ticket(b"\x5A" * protocol.RESUMPTION_KEY_SIZE, evidence)
    assert cache.redeem(policy, evidence, wrong) is None
    assert cache.hits == 0 and cache.misses == 2
    assert cache.bad_tickets == 1  # only the wrong guess, not the absence


def test_ticket_is_bound_to_the_evidence_body():
    # A captured ticket covers the old session's anchor; presenting it
    # with evidence for a new anchor must not redeem.
    cache = AppraisalCache()
    policy = _policy()
    old = _evidence(anchor=b"\x01" * 32)
    cache.store(policy, old, KEY)
    captured = _ticket(KEY, old)
    fresh = _evidence(anchor=b"\x99" * 32)
    assert cache.redeem(policy, fresh, captured) is None
    assert cache.bad_tickets == 1
    # The same key over the fresh body does redeem (anchor is per-session
    # and deliberately not part of the cache key).
    assert cache.redeem(policy, fresh, _ticket(KEY, fresh)) == KEY


def test_key_binds_device_claim_and_boot():
    cache = AppraisalCache()
    policy = _policy()
    cache.store(policy, _evidence(), KEY)
    other_key = ecdsa.keypair_from_private(999).public_bytes()
    for changed in (_evidence(key=other_key), _evidence(claim=b"\x42" * 32),
                    _evidence(boot=b"\x42" * 32)):
        assert cache.redeem(policy, changed, _ticket(KEY, changed)) is None


def test_ttl_expires_from_store_time_even_when_redeemed():
    clock = FakeClock()
    cache = AppraisalCache(ttl_s=10.0, time_source=clock)
    policy = _policy()
    evidence = _evidence()
    cache.store(policy, evidence, KEY)
    clock.advance_s(6)
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) == KEY
    clock.advance_s(6)
    # 12 s since the store: the redemption at 6 s must not have extended
    # the TTL — the device must re-prove key possession.
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) is None
    assert cache.expirations == 1


def test_capacity_evicts_in_store_order():
    # Order is pure store time (matching the TTL-from-store semantics):
    # a redemption does not protect an entry from capacity eviction.
    cache = AppraisalCache(capacity=2)
    policy = _policy()
    first = _evidence(boot=b"\x01" * 32)
    second = _evidence(boot=b"\x02" * 32)
    third = _evidence(boot=b"\x03" * 32)
    cache.store(policy, first, KEY)
    cache.store(policy, second, KEY)
    assert cache.redeem(policy, first, _ticket(KEY, first)) == KEY
    cache.store(policy, third, KEY)   # evicts first, the oldest store
    assert len(cache) == 2
    assert cache.redeem(policy, first, _ticket(KEY, first)) is None
    assert cache.redeem(policy, second, _ticket(KEY, second)) == KEY
    assert cache.redeem(policy, third, _ticket(KEY, third)) == KEY


def test_restore_resets_the_store_order():
    cache = AppraisalCache(capacity=2)
    policy = _policy()
    first = _evidence(boot=b"\x01" * 32)
    second = _evidence(boot=b"\x02" * 32)
    third = _evidence(boot=b"\x03" * 32)
    cache.store(policy, first, KEY)
    cache.store(policy, second, KEY)
    cache.store(policy, first, KEY)   # re-verified: first is newest again
    cache.store(policy, third, KEY)   # evicts second
    assert cache.redeem(policy, first, _ticket(KEY, first)) == KEY
    assert cache.redeem(policy, second, _ticket(KEY, second)) is None


def test_policy_change_invalidates_everything():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    cache.store(policy, evidence, KEY)
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) == KEY
    policy.trust_measurement(b"\x55" * 32)  # any policy edit
    assert cache.redeem(policy, evidence, _ticket(KEY, evidence)) is None
    assert cache.invalidations == 1
    assert policy_fingerprint(policy) != policy_fingerprint(_policy())


def test_store_rejects_a_malformed_key():
    with pytest.raises(ValueError):
        AppraisalCache().store(_policy(), _evidence(), b"short")


def test_snapshot_counters():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    cache.redeem(policy, evidence, b"")
    cache.store(policy, evidence, KEY)
    cache.redeem(policy, evidence, _ticket(KEY, evidence))
    snapshot = cache.snapshot()
    assert snapshot["entries"] == 1
    assert snapshot["hits"] == 1
    assert snapshot["misses"] == 1
    assert snapshot["hit_rate"] == 0.5
    assert snapshot["bad_tickets"] == 0


# -- verifier integration ----------------------------------------------------------


def _attest_once(cache, recorder=None, attester=None):
    attester = attester or Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom, recorder,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(session.anchor, CLAIM,
                                       DEVICE.public_bytes(), _sign)
    msg3 = verifier.handle_msg2(verifier_session,
                                attester.make_msg2(session, signed),
                                b"the secret")
    assert attester.handle_msg3(session, msg3) == b"the secret"
    return attester, verifier


def _start_attack_session(cache):
    """An attacker's own handshake state: fresh ECDH, valid msg1."""
    attacker = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    session = attacker.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attacker.make_msg0(session))
    attacker.handle_msg1(session, msg1)
    return attacker, verifier, session, verifier_session


def test_resumption_ticket_skips_the_asymmetric_verify():
    cache = AppraisalCache()
    attester = Attester(os.urandom)
    cold = protocol.CostRecorder()
    _attest_once(cache, cold, attester)
    assert cold.get("msg2", protocol.ASYMMETRIC) > 0
    assert attester.resumption_key is not None
    assert cache.misses == 1 and cache.hits == 0

    warm = protocol.CostRecorder()
    _attest_once(cache, warm, attester)  # same attester: carries a ticket
    # The redeemed ticket skipped the ECDSA verify phase entirely.
    assert warm.get("msg2", protocol.ASYMMETRIC) == 0
    assert cache.hits == 1


def test_warm_cache_without_a_ticket_still_verifies_the_signature():
    cache = AppraisalCache()
    _attest_once(cache)  # warm the entry for DEVICE's triple
    fresh = Attester(os.urandom)  # no resumption key, no ticket
    recorder = protocol.CostRecorder()
    _attest_once(cache, recorder, fresh)
    # Same device triple, warm cache — but a bare msg2 pays full ECDSA.
    assert recorder.get("msg2", protocol.ASYMMETRIC) > 0
    assert cache.hits == 0 and cache.misses == 2


def test_forged_signature_with_warm_cache_is_rejected():
    # The REVIEW.md attack: after a genuine device warms the cache, a
    # network attacker runs their own ECDH session (valid MAC and anchor)
    # and fabricates msg2 with the victim's endorsed key, the trusted
    # claims and a forged signature. Without the resumption key there is
    # no valid ticket, the full verify runs, and the forgery dies there.
    cache = AppraisalCache()
    _attest_once(cache)
    attacker, verifier, session, verifier_session = \
        _start_attack_session(cache)
    forged = SignedEvidence(
        Evidence(anchor=session.anchor, claim=CLAIM,
                 attestation_public_key=DEVICE.public_bytes()),
        signature=b"\x01" * ecdsa.SIGNATURE_SIZE,
    )
    with pytest.raises(SignatureError):
        verifier.handle_msg2(verifier_session,
                             attacker.make_msg2(session, forged), b"secret")
    assert cache.hits == 0


def test_forged_signature_with_guessed_ticket_is_rejected():
    cache = AppraisalCache()
    _attest_once(cache)
    attacker, verifier, session, verifier_session = \
        _start_attack_session(cache)
    attacker.resumption_key = os.urandom(protocol.RESUMPTION_KEY_SIZE)
    forged = SignedEvidence(
        Evidence(anchor=session.anchor, claim=CLAIM,
                 attestation_public_key=DEVICE.public_bytes()),
        signature=b"\x01" * ecdsa.SIGNATURE_SIZE,
    )
    with pytest.raises(SignatureError):
        verifier.handle_msg2(verifier_session,
                             attacker.make_msg2(session, forged), b"secret")
    assert cache.hits == 0 and cache.bad_tickets == 1


def test_forged_signature_with_captured_ticket_is_rejected():
    # The ticket travels in clear inside msg2, so assume the attacker
    # captured the genuine device's ticket. It MACs the *old* evidence
    # body (old anchor); over the attacker's evidence it cannot verify.
    cache = AppraisalCache()
    genuine = Attester(os.urandom)
    _attest_once(cache, attester=genuine)
    victim_session = genuine.start_session(IDENTITY.public_bytes())
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    verifier_session, msg1 = verifier.handle_msg0(
        genuine.make_msg0(victim_session))
    genuine.handle_msg1(victim_session, msg1)
    signed = genuine.collect_evidence(victim_session.anchor, CLAIM,
                                      DEVICE.public_bytes(), _sign)
    captured = protocol.decode_msg2(
        genuine.make_msg2(victim_session, signed)).ticket
    assert captured  # the genuine re-attestation does carry a ticket

    attacker, verifier2, session, verifier_session2 = \
        _start_attack_session(cache)
    forged = SignedEvidence(
        Evidence(anchor=session.anchor, claim=CLAIM,
                 attestation_public_key=DEVICE.public_bytes()),
        signature=b"\x01" * ecdsa.SIGNATURE_SIZE,
    )
    content = session.g_a + forged.encode() + captured
    mac = AesCmac(session.keys.mac_key).mac(content)
    msg2 = protocol.encode_msg2(session.g_a, forged, mac, captured)
    with pytest.raises(SignatureError):
        verifier2.handle_msg2(verifier_session2, msg2, b"secret")
    assert cache.hits == 0 and cache.bad_tickets == 1


def test_cache_hit_still_enforces_session_mac():
    cache = AppraisalCache()
    attester, _ = _attest_once(cache)  # prime the cache + the ticket key
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(session.anchor, CLAIM,
                                       DEVICE.public_bytes(), _sign)
    msg2 = bytearray(attester.make_msg2(session, signed))
    msg2[-1] ^= 0xFF  # corrupt the MAC trailer
    with pytest.raises(AuthenticationError):
        verifier.handle_msg2(verifier_session, bytes(msg2), b"secret")


def test_failed_appraisal_is_never_stored():
    cache = AppraisalCache()
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    rogue_claim = measure_bytes(b"tampered app").digest
    signed = attester.collect_evidence(session.anchor, rogue_claim,
                                       DEVICE.public_bytes(), _sign)
    with pytest.raises(Exception):
        verifier.handle_msg2(verifier_session,
                             attester.make_msg2(session, signed), b"secret")
    assert len(cache) == 0
