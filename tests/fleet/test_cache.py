"""The appraisal cache: hit/miss accounting, TTL, LRU, invalidation.

Plus the verifier integration: a cache hit skips exactly the msg2
asymmetric verify (Table III's dominant cost) while every session-bound
check still runs — including the session MAC, so a forged msg2 is
rejected even when its claims are cached.
"""

import os

import pytest

from repro.core import measure_bytes, protocol
from repro.core.attester import Attester
from repro.core.evidence import Evidence
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import AuthenticationError
from repro.fleet.cache import AppraisalCache, policy_fingerprint

DEVICE = ecdsa.keypair_from_private(515151)
IDENTITY = ecdsa.keypair_from_private(616161)
CLAIM = measure_bytes(b"cached app").digest


def _sign(body):
    return ecdsa.sign(DEVICE.private, body)


def _policy():
    policy = VerifierPolicy()
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    return policy


def _evidence(anchor=b"\x01" * 32, claim=CLAIM,
              key=DEVICE.public_bytes(), boot=b"\x00" * 32):
    return Evidence(anchor=anchor, claim=claim,
                    attestation_public_key=key, boot_claim=boot)


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1e9)


# -- unit behaviour ----------------------------------------------------------------


def test_miss_then_store_then_hit():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    assert not cache.contains(policy, evidence)
    cache.store(policy, evidence)
    assert cache.contains(policy, evidence)
    assert cache.hits == 1 and cache.misses == 1


def test_key_binds_device_claim_and_boot():
    cache = AppraisalCache()
    policy = _policy()
    cache.store(policy, _evidence())
    other_key = ecdsa.keypair_from_private(999).public_bytes()
    assert not cache.contains(policy, _evidence(key=other_key))
    assert not cache.contains(policy, _evidence(claim=b"\x42" * 32))
    assert not cache.contains(policy, _evidence(boot=b"\x42" * 32))
    # The anchor is per-session and deliberately NOT part of the key.
    assert cache.contains(policy, _evidence(anchor=b"\x99" * 32))


def test_ttl_expires_from_store_time_even_when_hit(monkeypatch):
    clock = FakeClock()
    cache = AppraisalCache(ttl_s=10.0, time_source=clock)
    policy = _policy()
    evidence = _evidence()
    cache.store(policy, evidence)
    clock.advance_s(6)
    assert cache.contains(policy, evidence)  # still fresh, and touched
    clock.advance_s(6)
    # 12 s since the store: the touch at 6 s must not have extended the
    # TTL — the device must re-prove key possession.
    assert not cache.contains(policy, evidence)
    assert cache.expirations == 1


def test_lru_capacity_evicts_oldest():
    cache = AppraisalCache(capacity=2)
    policy = _policy()
    first = _evidence(boot=b"\x01" * 32)
    second = _evidence(boot=b"\x02" * 32)
    third = _evidence(boot=b"\x03" * 32)
    cache.store(policy, first)
    cache.store(policy, second)
    assert cache.contains(policy, first)  # refresh first's recency
    cache.store(policy, third)            # evicts second, the LRU entry
    assert len(cache) == 2
    assert cache.contains(policy, first)
    assert cache.contains(policy, third)
    assert not cache.contains(policy, second)


def test_policy_change_invalidates_everything():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    cache.store(policy, evidence)
    assert cache.contains(policy, evidence)
    policy.trust_measurement(b"\x55" * 32)  # any policy edit
    assert not cache.contains(policy, evidence)
    assert cache.invalidations == 1
    assert policy_fingerprint(policy) != policy_fingerprint(_policy())


def test_snapshot_counters():
    cache = AppraisalCache()
    policy = _policy()
    evidence = _evidence()
    cache.contains(policy, evidence)
    cache.store(policy, evidence)
    cache.contains(policy, evidence)
    snapshot = cache.snapshot()
    assert snapshot["entries"] == 1
    assert snapshot["hits"] == 1
    assert snapshot["misses"] == 1
    assert snapshot["hit_rate"] == 0.5


# -- verifier integration ----------------------------------------------------------


def _attest_once(cache, recorder=None):
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom, recorder,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(session.anchor, CLAIM,
                                       DEVICE.public_bytes(), _sign)
    msg3 = verifier.handle_msg2(verifier_session,
                                attester.make_msg2(session, signed),
                                b"the secret")
    assert attester.handle_msg3(session, msg3) == b"the secret"
    return attester, verifier


def test_cache_hit_skips_the_asymmetric_verify():
    cache = AppraisalCache()
    cold = protocol.CostRecorder()
    _attest_once(cache, cold)
    assert cold.get("msg2", protocol.ASYMMETRIC) > 0
    assert cache.misses == 1 and cache.hits == 0

    warm = protocol.CostRecorder()
    _attest_once(cache, warm)
    # The hit skipped the ECDSA verify phase entirely.
    assert warm.get("msg2", protocol.ASYMMETRIC) == 0
    assert cache.hits == 1


def test_cache_hit_still_enforces_session_mac():
    cache = AppraisalCache()
    _attest_once(cache)  # prime the cache
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(session.anchor, CLAIM,
                                       DEVICE.public_bytes(), _sign)
    msg2 = bytearray(attester.make_msg2(session, signed))
    msg2[-1] ^= 0xFF  # corrupt the MAC trailer
    with pytest.raises(AuthenticationError):
        verifier.handle_msg2(verifier_session, bytes(msg2), b"secret")


def test_failed_appraisal_is_never_stored():
    cache = AppraisalCache()
    attester = Attester(os.urandom)
    verifier = Verifier(IDENTITY, _policy(), os.urandom,
                        appraisal_cache=cache)
    session = attester.start_session(IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    rogue_claim = measure_bytes(b"tampered app").digest
    signed = attester.collect_evidence(session.anchor, rogue_claim,
                                       DEVICE.public_bytes(), _sign)
    with pytest.raises(Exception):
        verifier.handle_msg2(verifier_session,
                             attester.make_msg2(session, signed), b"secret")
    assert len(cache) == 0
