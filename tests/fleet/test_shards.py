"""The process-sharded gateway, end to end on the testbed.

Covers the tentpole's acceptance criteria: handshakes complete across
real shard processes, session affinity pins a connection's messages to
one shard, behaviour is *invariant* with the threaded gateway (byte-
identical protocol transcripts, identical per-message SimClock
nanoseconds, same ``FleetOverloaded`` semantics), the per-shard queue is
bounded, and a shard crash mid-handshake never wedges the gateway — the
orphaned session is evicted with a distinct reason, the supervisor
respawns the worker, and the attester's retry from msg0 succeeds.
"""

import hashlib
import os
import signal
import time

import pytest

from repro.core.attester import Attester
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import (FleetOverloaded, FleetShardCrashed, ProtocolError,
                          TeeCommunicationError)
from repro.fleet import (FleetConfig, LoadProfile, ShardedGateway,
                         build_attester_stacks, run_load, run_one_handshake,
                         start_fleet_gateway)
from repro.fleet.shards import (decode_policy_into, encode_policy,
                                CRASH_EVICT_REASON)
from repro.testbed import Testbed

HOST = "fleet.verifier"
SECRET = b"sharded fleet secret" * 8
IDENTITY = ecdsa.keypair_from_private(0xB00B1E5 + 12345)


def _start_sharded(testbed, policy, port, **overrides):
    defaults = dict(shards=2, heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=1.0)
    defaults.update(overrides)
    return start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET, FleetConfig(**defaults),
    )


@pytest.fixture
def sharded():
    # Shard boards take serials 1..N; the attester boards built from this
    # testbed start above them so serials never collide.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7800)
    yield testbed, gateway, policy
    gateway.stop()


def _wait_for(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# -- end to end ---------------------------------------------------------------


def test_concurrent_handshakes_across_shards(sharded):
    testbed, gateway, policy = sharded
    stacks = build_attester_stacks(testbed, policy, 4)
    report = run_load(testbed.network, HOST, 7800, IDENTITY.public_bytes(),
                      stacks, LoadProfile(concurrency=4,
                                          handshakes_per_attester=2))
    assert len(report.completed) == 8
    assert not report.failed and not report.rejected
    assert all(r.secret_len == len(SECRET) for r in report.completed)
    # Both shards actually served traffic (affinity is conn_id % shards).
    shards_used = {record.conn_id % 2 for record in gateway.drain_records()}
    assert shards_used == {0, 1}
    snapshot = gateway.snapshot()
    assert snapshot["counters"]["handshakes_completed"] == 8
    assert snapshot["shards"]["count"] == 2
    assert snapshot["shards"]["respawns"] == 0
    assert all(entry["alive"] for entry in snapshot["shards"]["per_shard"])


def test_reattestation_hits_the_shard_cache():
    # Appraisal caches are per shard (they live next to the verifier
    # state they memoise): a resumption ticket only hits when affinity
    # routes the re-attestation to the shard that stored it. One shard
    # makes that deterministic here; DESIGN.md §10 discusses the
    # partitioned-cache consequence for larger pools.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7808, shards=1)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        for attempt in range(2):
            result = run_one_handshake(testbed.network, HOST, 7808,
                                       IDENTITY.public_bytes(), stack,
                                       attempt)
            assert result.ok, result.error
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, True]
        cache = gateway.snapshot()["cache"]
        assert cache["hits"] == 1 and cache["misses"] == 1
    finally:
        gateway.stop()


def test_rogue_attester_rejected_with_original_error_type(sharded):
    # The shard's appraisal failure crosses the IPC boundary and
    # resurfaces as the *same* exception type the threaded gateway raises.
    testbed, gateway, policy = sharded
    trusted = build_attester_stacks(testbed, policy, 1)
    rogue = build_attester_stacks(testbed, policy, 1, trusted=False)[0]
    rogue.index = 1
    report = run_load(testbed.network, HOST, 7800, IDENTITY.public_bytes(),
                      trusted + [rogue],
                      LoadProfile(concurrency=2, handshakes_per_attester=1))
    assert len(report.completed) == 1
    assert len(report.failed) == 1
    assert report.failed[0].error == "MeasurementMismatch"
    assert gateway.metrics.counter("failed_messages") == 1


def test_policy_mutations_reach_running_shards(sharded):
    # Endorsing a new attester *after* the shards booted must propagate
    # (lazily, fingerprint-gated) before its first message is appraised.
    testbed, gateway, policy = sharded
    first = build_attester_stacks(testbed, policy, 1)[0]
    assert run_one_handshake(testbed.network, HOST, 7800,
                             IDENTITY.public_bytes(), first).ok
    late = build_attester_stacks(testbed, policy, 1)[0]
    late.index = 1
    result = run_one_handshake(testbed.network, HOST, 7800,
                               IDENTITY.public_bytes(), late)
    assert result.ok, result.error
    # One sync per shard per distinct fingerprint, not one per message.
    assert 1 <= gateway.metrics.counter("shard_policy_syncs") <= 4


def test_policy_codec_roundtrip():
    policy = VerifierPolicy()
    policy.endorse(b"\x04" + b"\x01" * 64)
    policy.trust_measurement(b"\x22" * 32)
    policy.trust_boot_measurement(b"\x33" * 32)
    policy.minimum_version = (2, 7)
    clone = VerifierPolicy()
    decode_policy_into(clone, encode_policy(policy))
    assert clone.endorsements == policy.endorsements
    assert clone.reference_values == policy.reference_values
    assert clone.trusted_boot_measurements == policy.trusted_boot_measurements
    assert clone.minimum_version == (2, 7)


# -- behaviour invariance with the threaded gateway ---------------------------


def _deterministic_rng(label):
    state = {"n": 0}

    def rng(size):
        state["n"] += 1
        out = b""
        while len(out) < size:
            out += hashlib.sha256(
                f"{label}/{state['n']}/{len(out)}".encode()).digest()
        return out[:size]

    return rng


def _run_transcript(sharded_mode, port):
    """Two full handshakes (miss then resumption hit), wire bytes captured.

    Both runs pin every entropy stream: the verifier board is serial 1
    with deterministic kernel entropy (in-process for the threaded
    gateway, rebuilt inside the shard for the sharded one), the attester
    board is serial 2, and the attester's session RNG is a fixed hash
    stream.
    """
    if sharded_mode:
        testbed = Testbed(deterministic_rng=True, first_serial=2)
        policy = VerifierPolicy()
        gateway = start_fleet_gateway(
            testbed.network, HOST, port, None, testbed.vendor_key,
            IDENTITY, policy, lambda: SECRET,
            FleetConfig(shards=1, shard_base_serial=1,
                        shard_deterministic_rng=True),
        )
    else:
        testbed = Testbed(deterministic_rng=True)
        device = testbed.create_device()  # serial 1: the gateway board
        policy = VerifierPolicy()
        gateway = start_fleet_gateway(
            testbed.network, HOST, port, device.client, testbed.vendor_key,
            IDENTITY, policy, lambda: SECRET, FleetConfig(workers=1),
        )
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        stack.attester = Attester(_deterministic_rng("invariance-attester"))
        wire, secrets = [], []
        for _attempt in range(2):
            connection = testbed.network.connect(HOST, port)
            session = stack.attester.start_session(IDENTITY.public_bytes())
            msg0 = stack.attester.make_msg0(session)
            wire.append(msg0)
            connection.send(msg0)
            msg1 = connection.receive()
            wire.append(msg1)
            stack.attester.handle_msg1(session, msg1)
            signed = stack.attester.collect_evidence(
                session.anchor, stack.claim,
                stack.device.attestation_public_key, stack.sign_evidence,
                boot_claim=stack.device.kernel.boot_measurement)
            msg2 = stack.attester.make_msg2(session, signed)
            wire.append(msg2)
            connection.send(msg2)
            msg3 = connection.receive()
            wire.append(msg3)
            secrets.append(stack.attester.handle_msg3(session, msg3))
            connection.close()
        sim = [(r.kind, r.sim_transition_ns, r.cache_hit)
               for r in gateway.drain_records()]
        return wire, sim, secrets
    finally:
        gateway.stop()


def test_sharded_transcript_is_byte_identical_to_threaded():
    wire_threaded, sim_threaded, secrets_threaded = _run_transcript(False,
                                                                    7801)
    wire_sharded, sim_sharded, secrets_sharded = _run_transcript(True, 7802)
    assert secrets_threaded == secrets_sharded == [SECRET, SECRET]
    # Byte-identical wire transcripts: msg0/msg1/msg2/msg3, twice (the
    # second msg2 carries the resumption ticket).
    assert wire_threaded == wire_sharded
    # Identical per-message simulated world-transition nanoseconds, and
    # the same cache-hit pattern: miss on the first msg2, hit on resume.
    assert sim_threaded == sim_sharded
    assert [hit for _, _, hit in sim_threaded] == [False, False, False, True]


def test_overload_sheds_identically_to_threaded():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7803, shards=1,
                             rate_per_s=0.0, rate_burst=1)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        connection = testbed.network.connect(HOST, 7803)
        session = stack.attester.start_session(IDENTITY.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        stack.attester.handle_msg1(session, connection.receive())  # token 1
        signed = stack.attester.collect_evidence(
            session.anchor, stack.claim, stack.device.attestation_public_key,
            stack.sign_evidence,
            boot_claim=stack.device.kernel.boot_measurement)
        connection.send(stack.attester.make_msg2(session, signed))
        with pytest.raises(FleetOverloaded):
            connection.receive()
        snapshot = gateway.snapshot()
        assert snapshot["counters"]["rejected_rate"] >= 1
        assert snapshot["admission"]["rejected_rate"] >= 1
    finally:
        gateway.stop()


def test_full_shard_queue_sheds_with_fleet_overloaded(sharded):
    testbed, gateway, policy = sharded
    stack = build_attester_stacks(testbed, policy, 1)[0]
    connection = testbed.network.connect(HOST, 7800)
    conn_id = gateway._conn_counter
    handle = gateway._shards[conn_id % 2]
    # Deterministically saturate the shard's bounded queue, then deliver.
    depth = 0
    while handle.try_enter():
        depth += 1
    assert depth == gateway.config.max_in_flight  # default sizing
    try:
        session = stack.attester.start_session(IDENTITY.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        with pytest.raises(FleetOverloaded):
            connection.receive()
    finally:
        for _ in range(depth):
            handle.leave()
        connection.close()
    assert gateway.metrics.counter("rejected_shard_queue") == 1
    assert gateway.metrics.counter("rejected_queue") == 1


# -- supervision and fault injection ------------------------------------------


def test_shard_killed_mid_handshake_recovers(sharded):
    """The headline fault injection: SIGKILL between msg1 and msg2.

    The gateway must stay up, evict the orphaned session with the
    distinct ``shard_crash`` reason, respawn the worker, fail the stale
    msg2 cleanly, and serve a full retry from msg0 on the fresh shard.
    """
    testbed, gateway, policy = sharded
    stack = build_attester_stacks(testbed, policy, 1)[0]
    connection = testbed.network.connect(HOST, 7800)
    victim_shard = gateway._conn_counter % 2
    session = stack.attester.start_session(IDENTITY.public_bytes())
    connection.send(stack.attester.make_msg0(session))
    stack.attester.handle_msg1(session, connection.receive())
    # Kill the worker holding this handshake's protocol state.
    gateway._shards[victim_shard].channel.process.kill()
    assert _wait_for(lambda: gateway.metrics.counter("shard_respawns") >= 1)
    assert gateway.metrics.counter(
        f"sessions_evicted_{CRASH_EVICT_REASON}") == 1
    # The stale msg2 fails cleanly — the session was invalidated.
    signed = stack.attester.collect_evidence(
        session.anchor, stack.claim, stack.device.attestation_public_key,
        stack.sign_evidence, boot_claim=stack.device.kernel.boot_measurement)
    connection.send(stack.attester.make_msg2(session, signed))
    with pytest.raises(ProtocolError, match="expired or was evicted"):
        connection.receive()
    connection.close()
    # Retry from msg0, forced onto the *respawned* shard.
    while (gateway._conn_counter + 1) % 2 != victim_shard:
        testbed.network.connect(HOST, 7800).close()
    result = run_one_handshake(testbed.network, HOST, 7800,
                               IDENTITY.public_bytes(), stack)
    assert result.ok, result.error
    snapshot = gateway.snapshot()
    assert snapshot["shards"]["per_shard"][victim_shard]["respawns"] == 1
    assert snapshot["counters"]["shard_respawns_death"] == 1
    assert all(entry["alive"] for entry in snapshot["shards"]["per_shard"])


def test_message_in_flight_when_shard_dies_fails_cleanly():
    # With supervision effectively disabled, the router itself must turn
    # a dead channel into FleetShardCrashed for the in-flight message.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7804, shards=1,
                             heartbeat_interval_s=60.0)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        gateway._shards[0].channel.process.kill()
        assert _wait_for(lambda: gateway._shards[0].channel.down.is_set())
        connection = testbed.network.connect(HOST, 7804)
        session = stack.attester.start_session(IDENTITY.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        with pytest.raises(FleetShardCrashed):
            connection.receive()
        assert gateway.metrics.counter("failed_messages") == 1
        # Manual respawn (the supervisor is parked): service resumes.
        gateway._respawn(gateway._shards[0], "death")
        result = run_one_handshake(testbed.network, HOST, 7804,
                                   IDENTITY.public_bytes(), stack)
        assert result.ok, result.error
    finally:
        gateway.stop()


@pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                    reason="needs SIGSTOP to wedge a process")
def test_wedged_shard_is_detected_and_respawned():
    # A shard that is alive but unresponsive (stopped, or stuck in C
    # code) must trip the heartbeat timeout, not hang the gateway.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7805, shards=1,
                             heartbeat_interval_s=0.05,
                             heartbeat_timeout_s=0.3)
    try:
        victim = gateway._shards[0].channel.process
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            assert _wait_for(
                lambda: gateway.metrics.counter("shard_respawns") >= 1,
                timeout_s=15.0)
        finally:
            try:
                os.kill(victim.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        assert gateway.metrics.counter("shard_respawns_wedged") == 1
        stack = build_attester_stacks(testbed, policy, 1)[0]
        result = run_one_handshake(testbed.network, HOST, 7805,
                                   IDENTITY.public_bytes(), stack)
        assert result.ok, result.error
    finally:
        gateway.stop()


# -- lifecycle and validation --------------------------------------------------


def test_stop_closes_listener_and_reaps_workers():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start_sharded(testbed, policy, 7806)
    processes = [handle.channel.process for handle in gateway._shards]
    connection = testbed.network.connect(HOST, 7806)
    gateway.stop()
    with pytest.raises(TeeCommunicationError, match="refused"):
        testbed.network.connect(HOST, 7806)
    with pytest.raises(TeeCommunicationError, match="closed"):
        connection.send(b"\x00")
    assert all(not process.is_alive() for process in processes)
    gateway.stop()  # idempotent


def test_rejects_zero_shards_and_inprocess_observers():
    testbed = Testbed(first_serial=10)
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedGateway(testbed.network, HOST, 7807, testbed.vendor_key,
                       IDENTITY, VerifierPolicy(), lambda: SECRET,
                       FleetConfig(shards=0))
    with pytest.raises(ValueError, match="thread-pool gateway"):
        ShardedGateway(testbed.network, HOST, 7807, testbed.vendor_key,
                       IDENTITY, VerifierPolicy(), lambda: SECRET,
                       FleetConfig(shards=1), tracer=object())
