"""Backpressure: token bucket and bounded in-flight admission."""

import pytest

from repro.errors import FleetOverloaded
from repro.fleet.backpressure import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1e9)


def test_bucket_burst_then_starvation():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=1.0, burst=3, time_source=clock)
    assert all(bucket.try_acquire() for _ in range(3))
    assert not bucket.try_acquire()


def test_bucket_refills_at_the_configured_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=4, time_source=clock)
    for _ in range(4):
        bucket.try_acquire()
    clock.advance_s(1.0)  # 2 tokens back
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=100.0, burst=2, time_source=clock)
    clock.advance_s(60)
    assert bucket.available == 2


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=-1.0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=1.0, burst=0)


def test_admission_bounds_in_flight():
    controller = AdmissionController(max_in_flight=2)
    controller.admit()
    controller.admit()
    with pytest.raises(FleetOverloaded) as excinfo:
        controller.admit()
    assert excinfo.value.reason == "queue"
    controller.release()
    controller.admit()  # freed slot is reusable
    assert controller.in_flight == 2
    assert controller.rejected_queue == 1


def test_admission_rate_rejection_carries_reason():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=0.0, burst=1, time_source=clock)
    controller = AdmissionController(max_in_flight=10, bucket=bucket)
    controller.admit()  # consumes the single burst token
    with pytest.raises(FleetOverloaded) as excinfo:
        controller.admit()
    assert excinfo.value.reason == "rate"
    assert controller.rejected_rate == 1
    # The rate rejection must not leak an in-flight slot.
    assert controller.in_flight == 1


def test_release_without_admit_is_a_bug():
    controller = AdmissionController(max_in_flight=1)
    with pytest.raises(RuntimeError):
        controller.release()


def test_snapshot():
    controller = AdmissionController(max_in_flight=3)
    controller.admit()
    assert controller.snapshot() == {
        "in_flight": 1, "max_in_flight": 3,
        "rejected_rate": 0, "rejected_queue": 0,
    }
