"""Batched ECDSA verification in both gateway cores.

Pins the three-way drain contract of the threaded gateway's staging
batcher, the shard loop's queue-draining batch tick (made deterministic
by SIGSTOPping the worker while msg2 frames pile up), the honest
amortised-cost accounting, and — the non-negotiable — that batching
changes wall-clock time only: reply bytes and SimClock nanoseconds are
identical with batching on and off.
"""

import hashlib
import os
import signal
import threading
import time
from collections import deque

import pytest

from repro.core.attester import Attester
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.fleet import (FleetConfig, LoadProfile, build_attester_stacks,
                         run_load, run_one_handshake, start_fleet_gateway)
from repro.fleet import gateway as gateway_module
from repro.fleet.metrics import FleetMetrics
from repro.testbed import Testbed

HOST = "fleet.verifier"
SECRET = b"batched fleet secret" * 8
IDENTITY = ecdsa.keypair_from_private(0xBA7C4 + 99)


@pytest.fixture(autouse=True)
def _clean_memo():
    ecdsa.clear_verified_memo()
    yield
    ecdsa.clear_verified_memo()


def _deterministic_rng(label):
    state = {"n": 0}

    def rng(size):
        state["n"] += 1
        out = b""
        while len(out) < size:
            out += hashlib.sha256(
                f"{label}/{state['n']}/{len(out)}".encode()).digest()
        return out[:size]

    return rng


# -- the staging batcher (threaded gateway), in isolation ----------------------


def _signed_triple(seed, message):
    pair = ecdsa.keypair_from_private(seed)
    return pair.public, message, ecdsa.sign(pair.private, message)


def test_batcher_drain_contract(monkeypatch):
    triples = {b"a": _signed_triple(101, b"msg a"),
               b"b": _signed_triple(102, b"msg b"),
               b"c": _signed_triple(103, b"msg c")}
    monkeypatch.setattr(gateway_module, "batch_candidate_from_message",
                        triples.get)
    metrics = FleetMetrics()
    batcher = gateway_module._Msg2Batcher(metrics)

    # Ineligible data never stages.
    assert batcher.stage(b"nope") is None

    # Solo: stays on the legacy prewarm path, withdraws at drain time.
    solo = batcher.stage(b"a")
    assert batcher.should_prewarm(solo)
    assert batcher.drain(solo) == 0.0
    assert metrics.counter("batch_drains") == 0

    # Two staged: neither prewarms; the first drainer verifies both and
    # leaves the second its share — without re-verifying.
    first = batcher.stage(b"b")
    second = batcher.stage(b"c")
    assert not batcher.should_prewarm(first)
    assert not batcher.should_prewarm(second)
    share = batcher.drain(first)
    assert share > 0.0
    assert metrics.counter("batch_drains") == 1
    assert metrics.counter("batch_verified") == 2
    assert batcher.drain(second) == share
    assert metrics.counter("batch_drains") == 1  # no second verify
    # Both verified triples were seeded for the in-lock TA verify.
    assert ecdsa.verified_memo_size() == 2
    # A share is collected exactly once.
    assert batcher.drain(second) == 0.0


# -- cost invariance: batching may only change wall time -----------------------


class _FairLock:
    """A FIFO-fair drop-in for the gateway's device lock.

    The verifier draws msg3 IVs and resumption keys from one RNG stream
    in msg2 *service* order, so comparing replies across two runs needs
    that order pinned — a plain ``threading.Lock`` hands contended
    acquisitions to an arbitrary waiter. This lock grants strictly in
    blocking order, and exposes the waiter count so the test can stage
    the threads one at a time.
    """

    def __init__(self):
        self._mutex = threading.Lock()
        self._locked = False
        self._queue = deque()

    def waiters(self):
        with self._mutex:
            return len(self._queue)

    def acquire(self):
        with self._mutex:
            if not self._locked:
                self._locked = True
                return True
            event = threading.Event()
            self._queue.append(event)
        event.wait()
        return True

    def release(self):
        with self._mutex:
            if self._queue:
                self._queue.popleft().set()  # hand off: stays locked
            else:
                self._locked = False

    __enter__ = acquire

    def __exit__(self, *_exc):
        self.release()


def _two_concurrent_msg2(batch_on, port):
    """Two handshakes with their msg2s forced to overlap, in a pinned order.

    Both lanes are advanced to post-msg1 sequentially (deterministic
    entropy order). The gateway's device lock is replaced with a
    FIFO-fair one the test holds while starting the sender threads one
    at a time — each is observed blocked on the lock before the next
    starts — so msg2s are always *served* lane-0-then-lane-1, with
    batching on or off. With batching on, both stage before either
    serves, and exactly one batch drain covers both.
    """
    testbed = Testbed(deterministic_rng=True)
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, port, device.client, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET,
        FleetConfig(workers=2, batch_verify=batch_on))
    try:
        lanes = []
        for index, stack in enumerate(
                build_attester_stacks(testbed, policy, 2)):
            stack.attester = Attester(_deterministic_rng(f"lane-{index}"))
            connection = testbed.network.connect(HOST, port)
            session = stack.attester.start_session(IDENTITY.public_bytes())
            connection.send(stack.attester.make_msg0(session))
            stack.attester.handle_msg1(session, connection.receive())
            signed = stack.attester.collect_evidence(
                session.anchor, stack.claim,
                stack.device.attestation_public_key, stack.sign_evidence,
                boot_claim=stack.device.kernel.boot_measurement)
            lanes.append((connection, session, stack,
                          stack.attester.make_msg2(session, signed)))
        replies = [None, None]

        def run(index):
            connection, _session, _stack, msg2 = lanes[index]
            connection.send(msg2)
            replies[index] = connection.receive()

        fair = gateway._device_lock = _FairLock()
        threads = [threading.Thread(target=run, args=(index,))
                   for index in range(2)]
        with fair:
            for count, thread in enumerate(threads, start=1):
                thread.start()
                deadline = time.monotonic() + 10.0
                while fair.waiters() < count:
                    assert time.monotonic() < deadline, "serve never queued"
                    time.sleep(0.005)
            if batch_on:
                # Staging happens before the lock: both must be in.
                with gateway._batcher._lock:
                    assert len(gateway._batcher._staged) == 2
        for thread in threads:
            thread.join(timeout=10.0)
        secrets = [stack.attester.handle_msg3(session, replies[index])
                   for index, (_conn, session, stack, _msg2)
                   in enumerate(lanes)]
        records = sorted(
            (record.conn_id, record.kind, record.sim_transition_ns)
            for record in gateway.drain_records())
        counters = {name: gateway.metrics.counter(name)
                    for name in ("batch_drains", "batch_verified",
                                 "crypto_prewarms")}
        return replies, secrets, records, counters
    finally:
        gateway.stop()


def test_batching_changes_wall_time_only():
    replies_on, secrets_on, records_on, counters_on = \
        _two_concurrent_msg2(True, 7810)
    replies_off, secrets_off, records_off, counters_off = \
        _two_concurrent_msg2(False, 7811)
    assert secrets_on == secrets_off == [SECRET, SECRET]
    # Byte-identical msg3 replies and identical per-message SimClock
    # nanoseconds: the batch settles signatures early, it never changes
    # what the verifier TA computes or bills on the virtual clock.
    assert replies_on == replies_off
    assert records_on == records_off
    # The batch actually ran on the batched side and only there: one
    # drain covered both lanes, and neither paid the solo prewarm.
    assert counters_on["batch_drains"] == 1
    assert counters_on["batch_verified"] == 2
    assert counters_on["crypto_prewarms"] <= 1
    assert counters_off["batch_drains"] == 0
    assert counters_off["batch_verified"] == 0
    assert counters_off["crypto_prewarms"] == 2


def test_batch_share_lands_in_service_time():
    # The amortised batch cost must surface in the covered messages'
    # service_s (the capacity model's input), not vanish.
    testbed = Testbed(first_serial=10)
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7812, device.client, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET, FleetConfig(workers=4))
    try:
        stacks = build_attester_stacks(testbed, policy, 4)
        report = run_load(testbed.network, HOST, 7812,
                          IDENTITY.public_bytes(), stacks,
                          LoadProfile(concurrency=4,
                                      handshakes_per_attester=1))
        assert len(report.completed) == 4
        drains = gateway.metrics.counter("batch_drains")
        covered = gateway.metrics.counter("batch_verified")
        if drains:  # concurrency-dependent; the deterministic tests
            assert covered >= 2  # above force this path explicitly
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert all(record.service_s > 0.0 for record in msg2)
    finally:
        gateway.stop()


# -- the shard loop's batch tick, deterministically ----------------------------


def test_shard_batch_tick_drains_queued_msg2s():
    """SIGSTOP the worker, pile up six msg2 frames, SIGCONT.

    On resume the single loop reads every queued frame in one fill; the
    head of the queue is a batchable msg2 with five more behind it, so
    ONE batch tick must settle all six signatures (one drain, six
    covered), and every handshake completes with the right secret.
    """
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7813, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET,
        FleetConfig(shards=1, heartbeat_interval_s=60.0))
    try:
        lanes = []
        for stack in build_attester_stacks(testbed, policy, 6):
            connection = testbed.network.connect(HOST, 7813)
            session = stack.attester.start_session(IDENTITY.public_bytes())
            connection.send(stack.attester.make_msg0(session))
            stack.attester.handle_msg1(session, connection.receive())
            signed = stack.attester.collect_evidence(
                session.anchor, stack.claim,
                stack.device.attestation_public_key, stack.sign_evidence,
                boot_claim=stack.device.kernel.boot_measurement)
            lanes.append((connection, session, stack,
                          stack.attester.make_msg2(session, signed)))
        worker = gateway._shards[0].channel.process
        replies = [None] * len(lanes)

        def run(index):
            connection, _session, _stack, msg2 = lanes[index]
            connection.send(msg2)
            replies[index] = connection.receive()

        os.kill(worker.pid, signal.SIGSTOP)
        try:
            threads = [threading.Thread(target=run, args=(index,))
                       for index in range(len(lanes))]
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # let every frame land in the socket buffer
        finally:
            os.kill(worker.pid, signal.SIGCONT)
        for thread in threads:
            thread.join(timeout=30.0)
        secrets = {stack.attester.handle_msg3(session, replies[index])
                   for index, (_conn, session, stack, _msg2)
                   in enumerate(lanes)}
        assert secrets == {SECRET}
        counters = gateway.snapshot()["counters"]
        assert counters["batch_drains"] == 1
        assert counters["batch_verified"] == 6
        # Batched messages skip the per-message table prewarm: their
        # verify settles from the memo and never touches the tables.
        assert counters.get("crypto_prewarms", 0) == 0
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert len(msg2) == 6
        # The tick's elapsed time was split across the six messages.
        assert all(record.service_s > 0.0 for record in msg2)
    finally:
        gateway.stop()


@pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                    reason="needs SIGSTOP to park the worker")
def test_shard_batch_disabled_serves_identically():
    # Same queue pile-up with batching off: no drains, same outcomes.
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7814, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET,
        FleetConfig(shards=1, heartbeat_interval_s=60.0,
                    batch_verify=False))
    try:
        lanes = []
        for stack in build_attester_stacks(testbed, policy, 3):
            connection = testbed.network.connect(HOST, 7814)
            session = stack.attester.start_session(IDENTITY.public_bytes())
            connection.send(stack.attester.make_msg0(session))
            stack.attester.handle_msg1(session, connection.receive())
            signed = stack.attester.collect_evidence(
                session.anchor, stack.claim,
                stack.device.attestation_public_key, stack.sign_evidence,
                boot_claim=stack.device.kernel.boot_measurement)
            lanes.append((connection, session, stack,
                          stack.attester.make_msg2(session, signed)))
        worker = gateway._shards[0].channel.process
        replies = [None] * len(lanes)

        def run(index):
            connection, _session, _stack, msg2 = lanes[index]
            connection.send(msg2)
            replies[index] = connection.receive()

        os.kill(worker.pid, signal.SIGSTOP)
        try:
            threads = [threading.Thread(target=run, args=(index,))
                       for index in range(len(lanes))]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
        finally:
            os.kill(worker.pid, signal.SIGCONT)
        for thread in threads:
            thread.join(timeout=30.0)
        secrets = {stack.attester.handle_msg3(session, replies[index])
                   for index, (_conn, session, stack, _msg2)
                   in enumerate(lanes)}
        assert secrets == {SECRET}
        counters = gateway.snapshot()["counters"]
        assert counters.get("batch_drains", 0) == 0
        assert counters.get("batch_verified", 0) == 0
        # Unbatched queued msg2s keep the legacy per-message prewarm.
        assert counters["crypto_prewarms"] == 3
    finally:
        gateway.stop()


# -- shard-local flame export --------------------------------------------------


def test_shard_flame_export_names_the_request_spans():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7815, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET,
        FleetConfig(shards=1, shard_trace=True))
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        result = run_one_handshake(testbed.network, HOST, 7815,
                                   IDENTITY.public_bytes(), stack)
        assert result.ok, result.error
        report = gateway.flame_report()
        assert "shard 0" in report
        assert "fleet.request" in report
        # The report drained the tracer: a fresh export starts empty.
        flame = gateway.shard_flame(0)
        assert flame is not None and flame["spans"] == 0
        assert flame["folded_wall"] == [] and flame["folded_sim"] == []
    finally:
        gateway.stop()


def test_shard_flame_without_tracing_is_empty():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7816, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET, FleetConfig(shards=1))
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        assert run_one_handshake(testbed.network, HOST, 7816,
                                 IDENTITY.public_bytes(), stack).ok
        flame = gateway.shard_flame(0)
        assert flame is not None and flame["spans"] == 0
    finally:
        gateway.stop()
