"""The gateway session table: TTL expiry, LRU cap, explicit teardown."""

import pytest

from repro.errors import ProtocolError
from repro.fleet.sessions import SessionTable


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1e9)


def test_open_touch_discard_roundtrip():
    table = SessionTable(capacity=4, ttl_s=30.0)
    entry = table.open(7, lane=2)
    assert entry.lane == 2 and 7 in table
    touched = table.touch(7)
    assert touched.messages == 1
    assert table.discard(7) is entry
    assert 7 not in table and len(table) == 0


def test_touch_unknown_session_raises():
    table = SessionTable(capacity=4, ttl_s=30.0)
    with pytest.raises(ProtocolError, match="expired or was evicted"):
        table.touch(42)


def test_ttl_expiry_reported_with_reason():
    clock = FakeClock()
    evictions = []
    table = SessionTable(capacity=4, ttl_s=10.0, time_source=clock,
                         on_evict=lambda entry, reason:
                         evictions.append((entry.conn_id, reason)))
    table.open(1, lane=0)
    clock.advance_s(5)
    table.open(2, lane=1)
    clock.advance_s(6)  # conn 1 is now 11 s idle, conn 2 only 6 s
    assert table.sweep() == 1
    assert evictions == [(1, "ttl")]
    assert 2 in table
    with pytest.raises(ProtocolError):
        table.touch(1)


def test_touch_refreshes_the_ttl():
    clock = FakeClock()
    table = SessionTable(capacity=4, ttl_s=10.0, time_source=clock)
    table.open(1, lane=0)
    clock.advance_s(8)
    table.touch(1)
    clock.advance_s(8)
    table.touch(1)  # 16 s since open, but only 8 s since the last touch
    assert table.expired == 0


def test_lru_cap_evicts_least_recent():
    evictions = []
    table = SessionTable(capacity=2, ttl_s=60.0,
                         on_evict=lambda entry, reason:
                         evictions.append((entry.conn_id, reason)))
    table.open(1, lane=0)
    table.open(2, lane=1)
    table.touch(1)      # 2 becomes the least recently used
    table.open(3, lane=0)
    assert evictions == [(2, "lru")]
    assert 1 in table and 3 in table and 2 not in table
    assert table.evicted_lru == 1


def test_discard_does_not_fire_evict_callback():
    evictions = []
    table = SessionTable(capacity=4, ttl_s=60.0,
                         on_evict=lambda entry, reason:
                         evictions.append(entry.conn_id))
    table.open(1, lane=0)
    table.discard(1)
    assert evictions == []


def test_evict_callback_may_reenter_the_table():
    # Callbacks run outside the table lock, so an evict handler that
    # queries the table (as the gateway's does) must not deadlock.
    clock = FakeClock()
    table = SessionTable(capacity=4, ttl_s=10.0, time_source=clock,
                         on_evict=lambda entry, reason: len(table))
    table.open(1, lane=0)
    clock.advance_s(11)
    assert table.sweep() == 1


def test_snapshot():
    table = SessionTable(capacity=8, ttl_s=60.0)
    table.open(1, lane=0)
    snapshot = table.snapshot()
    assert snapshot == {"live": 1, "capacity": 8, "expired": 0,
                        "evicted_lru": 0}
