"""Framing edge cases for the single-loop IPC core.

The async core parses ``u32 len | u8 opcode | u64 req-id | body`` frames
incrementally from whatever byte boundaries the kernel hands it. These
tests pin the parser at EVERY split point of the 13-byte header, the
oversized-length rejection (which must fire at header-parse time, before
any body byte is buffered), short-write handling in the writer, and the
reactor's register/EOF/unregister lifecycle.
"""

import socket
import threading

import pytest

from repro.fleet.asynccore import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    FrameWriter,
    Reactor,
    encode_frame,
)

_HEADER_SIZE = 4 + 1 + 8  # u32 len | u8 opcode | u64 req-id


def _drain(reader):
    return [(opcode, req_id, bytes(body))
            for opcode, req_id, body in reader.frames()]


# -- incremental parsing -------------------------------------------------------

def test_single_frame_roundtrip():
    reader = FrameReader()
    reader.feed(encode_frame(0x01, 42, b"hello"))
    assert _drain(reader) == [(0x01, 42, b"hello")]
    assert reader.buffered == 0


def test_empty_body_frame():
    reader = FrameReader()
    reader.feed(encode_frame(0x04, 7))
    assert _drain(reader) == [(0x04, 7, b"")]


@pytest.mark.parametrize("split", range(1, _HEADER_SIZE + 1))
def test_partial_reads_split_at_every_header_boundary(split):
    # One frame delivered as two reads, cut at byte `split` — including
    # mid-length-prefix, between length and opcode, and mid-req-id.
    frame = encode_frame(0x02, 0xDEADBEEFCAFE, b"payload-bytes")
    reader = FrameReader()
    reader.feed(frame[:split])
    assert _drain(reader) == []  # incomplete: nothing yielded yet
    reader.feed(frame[split:])
    assert _drain(reader) == [(0x02, 0xDEADBEEFCAFE, b"payload-bytes")]


def test_byte_by_byte_delivery():
    frames = [encode_frame(0x01, 1, b"a"),
              encode_frame(0x02, 2, b""),
              encode_frame(0x03, 3, b"x" * 300)]
    reader = FrameReader()
    got = []
    for byte in b"".join(frames):
        reader.feed(bytes([byte]))
        got.extend(_drain(reader))
    assert got == [(0x01, 1, b"a"), (0x02, 2, b""),
                   (0x03, 3, b"x" * 300)]


def test_many_frames_in_one_fill():
    reader = FrameReader()
    reader.feed(b"".join(encode_frame(i, i * 10, bytes([i]) * i)
                         for i in range(1, 20)))
    assert _drain(reader) == [(i, i * 10, bytes([i]) * i)
                              for i in range(1, 20)]


def test_frame_straddling_buffer_growth():
    # A body larger than the initial recv chunk forces _reserve to grow
    # while a partial frame is pending; bytes must survive the copy.
    reader = FrameReader(recv_chunk=64)
    body = bytes(range(256)) * 20  # 5120 bytes > 64
    frame = encode_frame(0x05, 99, body)
    for start in range(0, len(frame), 50):
        reader.feed(frame[start:start + 50])
    assert _drain(reader) == [(0x05, 99, body)]


def test_interleaved_parse_and_feed_compacts():
    # Parse some frames, then keep feeding: the reader must reuse the
    # parsed-out space (compaction) rather than grow without bound.
    reader = FrameReader(recv_chunk=128)
    frame = encode_frame(0x01, 5, b"y" * 40)
    for _ in range(1000):
        reader.feed(frame)
        assert _drain(reader) == [(0x01, 5, b"y" * 40)]
    assert len(reader._buf) <= 1024


def test_bodies_are_memoryviews_into_shared_buffer():
    reader = FrameReader()
    reader.feed(encode_frame(0x01, 1, b"zero-copy"))
    for _opcode, _req_id, body in reader.frames():
        assert isinstance(body, memoryview)
        assert bytes(body) == b"zero-copy"


# -- hostile length prefixes ---------------------------------------------------

def test_oversized_length_rejected_at_header_time():
    # Only the four length bytes arrive; the claimed 2 GiB body never
    # does. The parser must raise NOW, not buffer-and-wait.
    reader = FrameReader()
    reader.feed((2**31).to_bytes(4, "big"))
    with pytest.raises(FrameError):
        _drain(reader)


def test_oversized_length_never_allocates_body_space():
    reader = FrameReader(recv_chunk=64)
    reader.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    with pytest.raises(FrameError):
        _drain(reader)
    # The internal buffer must not have been grown toward the bogus
    # length — rejection happened before any body reservation.
    assert len(reader._buf) < 1024


def test_undersized_length_rejected():
    # A length below the opcode+req-id prefix cannot frame anything.
    reader = FrameReader()
    reader.feed((4).to_bytes(4, "big") + b"\x00" * 4)
    with pytest.raises(FrameError):
        _drain(reader)


def test_max_frame_boundary_is_inclusive():
    reader = FrameReader(max_frame=64)
    body = b"b" * (64 - 9)  # length field == max_frame exactly
    reader.feed(encode_frame(0x01, 1, body))
    assert _drain(reader) == [(0x01, 1, body)]
    reader.feed(encode_frame(0x01, 2, b"b" * (64 - 8)))  # one over
    with pytest.raises(FrameError):
        _drain(reader)


def test_max_frame_below_prefix_rejected():
    with pytest.raises(ValueError):
        FrameReader(max_frame=8)


# -- socket fill ---------------------------------------------------------------

def test_fill_from_socketpair_and_eof():
    left, right = socket.socketpair()
    try:
        reader = FrameReader()
        left.sendall(encode_frame(0x01, 3, b"over the wire"))
        assert reader.fill(right) is True
        assert _drain(reader) == [(0x01, 3, b"over the wire")]
        left.close()
        assert reader.fill(right) is False  # EOF
    finally:
        right.close()


def test_fill_nonblocking_empty_returns_none():
    left, right = socket.socketpair()
    try:
        right.setblocking(False)
        assert FrameReader().fill(right) is None
    finally:
        left.close()
        right.close()


# -- short-write-safe writer ---------------------------------------------------

class _TrickleSocket:
    """A socket stand-in that accepts one byte per send call."""

    def __init__(self):
        self.received = bytearray()

    def send(self, data):
        self.received += data[:1]
        return 1


def test_writer_survives_short_writes():
    sock = _TrickleSocket()
    writer = FrameWriter(sock)
    writer.send(0x01, 77, b"short-write payload")
    assert writer.pending == 0
    reader = FrameReader()
    reader.feed(bytes(sock.received))
    assert _drain(reader) == [(0x01, 77, b"short-write payload")]


def test_writer_pump_nonblocking_keeps_remainder():
    class _FullSocket:
        def __init__(self):
            self.calls = 0

        def send(self, data):
            self.calls += 1
            if self.calls == 1:
                return 3
            raise BlockingIOError

    sock = _FullSocket()
    writer = FrameWriter(sock)
    writer._pending += encode_frame(0x02, 1, b"abc")
    assert writer.pump(block=False) is False
    assert writer.pending == len(encode_frame(0x02, 1, b"abc")) - 3


def test_writer_roundtrip_over_real_socketpair():
    left, right = socket.socketpair()
    try:
        writer = FrameWriter(left)
        bodies = [bytes([i]) * (i * 7) for i in range(10)]
        for i, body in enumerate(bodies):
            writer.send(0x03, i, body)
        reader = FrameReader()
        got = []
        while len(got) < len(bodies):
            assert reader.fill(right) is True
            got.extend(_drain(reader))
        assert got == [(0x03, i, body) for i, body in enumerate(bodies)]
    finally:
        left.close()
        right.close()


# -- reactor lifecycle ---------------------------------------------------------

def test_reactor_dispatches_frames_and_eof():
    reactor = Reactor(name="test-reactor")
    left, right = socket.socketpair()
    frames = []
    eof = threading.Event()
    arrived = threading.Event()
    try:
        def on_frame(opcode, req_id, body):
            frames.append((opcode, req_id, bytes(body)))
            arrived.set()

        reactor.register(right, on_frame, lambda sock: eof.set())
        left.sendall(encode_frame(0x01, 11, b"via reactor"))
        assert arrived.wait(5.0)
        assert frames == [(0x01, 11, b"via reactor")]
        left.close()
        assert eof.wait(5.0)
    finally:
        reactor.stop()
        right.close()
        left.close()


def test_reactor_unregister_blocks_until_dropped():
    reactor = Reactor(name="test-reactor-2")
    left, right = socket.socketpair()
    try:
        reactor.register(right, lambda *a: None, lambda sock: None)
        reactor.unregister(right)
        # After unregister returns, closing the fd must not disturb the
        # loop: a different socket still gets served.
        right.close()
        left2, right2 = socket.socketpair()
        arrived = threading.Event()
        try:
            reactor.register(
                right2,
                lambda opcode, req_id, body: arrived.set(),
                lambda sock: None)
            left2.sendall(encode_frame(0x02, 1, b"still alive"))
            assert arrived.wait(5.0)
        finally:
            left2.close()
            right2.close()
    finally:
        reactor.stop()
        left.close()


def test_reactor_frame_error_drops_connection():
    reactor = Reactor(name="test-reactor-3")
    left, right = socket.socketpair()
    eof = threading.Event()
    try:
        reactor.register(right, lambda *a: None, lambda sock: eof.set())
        left.sendall((2**31).to_bytes(4, "big"))  # hostile length
        assert eof.wait(5.0)
    finally:
        reactor.stop()
        left.close()
        right.close()
