"""Adversarial replication: frames that must never resurrect a ticket.

The replication bus is an attack surface: a frame captured on the IPC
channel (or a buggy router re-sending one) must never reinstate ticket
state that revocation or supersession already retired. These tests
inject crafted ``OP_TICKET_PUT`` / ``OP_TICKET_EVICT`` frames straight
into live shard processes and pin the rejection at both defensive
layers — the shard's versioned :class:`ReplicaState` admission and the
appraisal cache's fingerprint-scoped :meth:`seed` — plus the cross-TEE
key separation that replication must preserve.
"""

import copy

from repro.appraisal import AppraisalEngine, AppraisalPolicy
from repro.appraisal.envelope import TEE_SGX, TEE_TRUSTZONE
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.fleet import FleetConfig, start_fleet_gateway
from repro.fleet.fabric.store import (
    decode_ticket_put,
    encode_ticket_evict,
    encode_ticket_put,
)
from repro.fleet.loadgen import (
    build_attester_stacks,
    build_mixed_stacks,
    run_one_handshake,
    run_one_handshake_multi,
)
from repro.fleet.shards import OP_OK, OP_TICKET_EVICT, OP_TICKET_PUT
from repro.testbed import Testbed

HOST = "fleet.verifier"
SECRET = b"adversarial fabric secret bytes!" * 2
IDENTITY = ecdsa.keypair_from_private(0xB00B1E5 + 778)


def _start(testbed, policy, port, engine=None, **overrides):
    defaults = dict(shards=2, heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=1.0, fabric=True)
    defaults.update(overrides)
    return start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key,
        IDENTITY, policy, lambda: SECRET, FleetConfig(**defaults),
        engine=engine,
    )


def _inject(gateway, shard, opcode, body):
    """Send one crafted replication frame to a live shard process."""
    status, resp = gateway._request(gateway._shards[shard], opcode, body,
                                    timeout=5.0)
    assert status == OP_OK
    return resp


def _replica_counts(gateway, shard):
    return gateway.shard_snapshots()[shard]["fabric"]


def test_replayed_and_stale_puts_are_rejected_on_the_shard():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7860)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        # conn 1 -> shard 1 mints; replicate the ticket into shard 0.
        assert run_one_handshake(testbed.network, HOST, 7860,
                                 IDENTITY.public_bytes(), stack, 0).ok
        store = gateway.fabric
        key = next(iter(store._entries))
        entry = store._entries[key]
        if not gateway._replicate_to(0, key, "fabric_lazy_pushes"):
            pass  # the eager owner push already landed it
        genuine = encode_ticket_put(store.epoch, entry.seq, 0,
                                    store.fingerprint, key,
                                    entry.resumption_key)
        before = _replica_counts(gateway, 0)

        # 1. Byte-exact replay of the genuine frame: seq not newer.
        assert _inject(gateway, 0, OP_TICKET_PUT, genuine) == b"\x00"
        # 2. Old epoch, arbitrarily high sequence: epoch gates first.
        assert _inject(gateway, 0, OP_TICKET_PUT, encode_ticket_put(
            store.epoch - 1, entry.seq + 10_000, 0, store.fingerprint,
            key, b"\xaa" * 16)) == b"\x00"
        # 3. Newer sequence but a stale scope fingerprint: the replica
        #    admits the version, the fingerprint-scoped cache refuses.
        assert _inject(gateway, 0, OP_TICKET_PUT, encode_ticket_put(
            store.epoch, entry.seq + 10_000, 0, b"\x99" * 32,
            key, b"\xbb" * 16)) == b"\x00"
        after = _replica_counts(gateway, 0)
        assert after["rejected"] >= before["rejected"] + 2

        # The genuine ticket still resumes: the forged keys never
        # displaced the replicated one (conn 2 -> shard 0).
        assert run_one_handshake(testbed.network, HOST, 7860,
                                 IDENTITY.public_bytes(), stack, 1).ok
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, True]
    finally:
        gateway.stop()


def test_evict_tombstone_blocks_straggler_put():
    # A tombstoned ticket must stay dead even when an older PUT for the
    # same key arrives afterwards (reordered replication).
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7861)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        assert run_one_handshake(testbed.network, HOST, 7861,
                                 IDENTITY.public_bytes(), stack, 0).ok
        store = gateway.fabric
        key = next(iter(store._entries))
        entry = store._entries[key]
        gateway._replicate_to(0, key, "fabric_lazy_pushes")
        straggler = encode_ticket_put(store.epoch, entry.seq, 0,
                                      store.fingerprint, key,
                                      entry.resumption_key)
        epoch, seq, _replicas = store.evict(key)
        assert _inject(gateway, 0, OP_TICKET_EVICT,
                       encode_ticket_evict(epoch, seq, key)) == b"\x01"
        # The straggler PUT is older than the tombstone: rejected, and
        # the device's next resumption on that shard is a full verify.
        assert _inject(gateway, 0, OP_TICKET_PUT, straggler) == b"\x00"
        assert run_one_handshake(testbed.network, HOST, 7861,
                                 IDENTITY.public_bytes(), stack, 1).ok
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, False]
    finally:
        gateway.stop()


def test_unrevoke_never_resurrects_pre_revocation_tickets():
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = _start(testbed, VerifierPolicy(), 7862, engine=engine)
    try:
        stack = build_mixed_stacks(testbed, appraisal, [TEE_TRUSTZONE])[0]
        pristine = copy.deepcopy(appraisal)
        for attempt in range(2):
            result = run_one_handshake_multi(testbed.network, HOST, 7862,
                                             IDENTITY.public_bytes(),
                                             stack, attempt)
            assert result.ok, result.error
        store = gateway.fabric
        key = next(iter(store._entries))
        entry = store._entries[key]
        captured = encode_ticket_put(store.epoch, entry.seq, 0,
                                     store.fingerprint, key,
                                     entry.resumption_key)
        old_epoch = store.epoch

        gateway.revoke_measurement(stack.claim)
        denied = run_one_handshake_multi(testbed.network, HOST, 7862,
                                         IDENTITY.public_bytes(), stack, 2)
        assert not denied.ok and denied.error == "PolicyDenied"
        # The epoch bumped and the authority purged every ticket.
        assert store.epoch > old_epoch and len(store) == 0

        # Un-revoke: restore the accept sets but keep the epoch counter
        # monotonic (the AppraisalPolicy discipline — an epoch never
        # repeats, so pre-revocation scopes are permanently retired).
        restored = copy.deepcopy(pristine)
        restored.epoch = engine.policy.epoch + 1
        engine.replace_policy(restored)

        # The captured pre-revocation PUT replayed into both shards is
        # rejected everywhere: its epoch and fingerprint are both stale.
        assert _inject(gateway, 0, OP_TICKET_PUT, captured) == b"\x00"
        assert _inject(gateway, 1, OP_TICKET_PUT, captured) == b"\x00"
        # The device re-attests fine — with a full verify, not the dead
        # ticket: nothing resurrected anywhere in the fleet. (The denied
        # msg2 raised before recording, so only three records exist.)
        fresh = run_one_handshake_multi(testbed.network, HOST, 7862,
                                        IDENTITY.public_bytes(), stack, 3)
        assert fresh.ok, fresh.error
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, True, False]
    finally:
        gateway.stop()


def test_fabric_evict_identity_purges_every_replica():
    testbed = Testbed(first_serial=10)
    policy = VerifierPolicy()
    gateway = _start(testbed, policy, 7863)
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        # Two handshakes: the ticket is minted on shard 1 and replicated
        # to shard 0 (which resumes from it).
        for attempt in range(2):
            assert run_one_handshake(testbed.network, HOST, 7863,
                                     IDENTITY.public_bytes(), stack,
                                     attempt).ok
        key = next(iter(gateway.fabric._entries))
        assert gateway.fabric_evict_identity(key[1]) == 1
        assert len(gateway.fabric) == 0
        assert gateway.metrics.counter("fabric_ticket_evictions") == 1
        # No replica serves the dead ticket: both affinities full-verify.
        for attempt in range(2, 4):
            assert run_one_handshake(testbed.network, HOST, 7863,
                                     IDENTITY.public_bytes(), stack,
                                     attempt).ok
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert msg2[0].cache_hit is False and msg2[1].cache_hit is True
        assert [r.cache_hit for r in msg2[2:]] == [False, True]
    finally:
        gateway.stop()


def test_cross_tee_tickets_never_collide_after_replication():
    # One logical module attested from TrustZone and SGX: the replicated
    # tickets stay distinct (tee_type + cache_extra live in the key), so
    # neither backend can redeem the other's ticket on any shard.
    testbed = Testbed(first_serial=10)
    appraisal = AppraisalPolicy()
    engine = AppraisalEngine(appraisal)
    gateway = _start(testbed, VerifierPolicy(), 7864, engine=engine)
    try:
        tz, sgx = build_mixed_stacks(testbed, appraisal,
                                     [TEE_TRUSTZONE, TEE_SGX])
        for attempt in range(2):
            for stack in (tz, sgx):
                result = run_one_handshake_multi(
                    testbed.network, HOST, 7864, IDENTITY.public_bytes(),
                    stack, attempt)
                assert result.ok, result.error
        store = gateway.fabric
        assert len(store) == 2
        keys = list(store._entries)
        assert {key[0] for key in keys} == {TEE_TRUSTZONE, TEE_SGX}
        # Distinct resumption keys per backend, and the wire codec
        # round-trips both keys without aliasing.
        entries = [store._entries[key] for key in keys]
        assert entries[0].resumption_key != entries[1].resumption_key
        for key, entry in zip(keys, entries):
            blob = encode_ticket_put(store.epoch, entry.seq, 0,
                                     store.fingerprint, key,
                                     entry.resumption_key)
            _epoch, _seq, _age, _fp, decoded, rk = decode_ticket_put(blob)
            assert decoded == key and rk == entry.resumption_key
        # Every second-round msg2 resumed from its own backend's ticket.
        msg2 = [r for r in gateway.drain_records() if r.kind == "msg2"]
        assert [r.cache_hit for r in msg2] == [False, False, True, True]
    finally:
        gateway.stop()
