"""Fleet metrics: counters, gauges and latency histograms."""

import threading

from repro.fleet.metrics import FleetMetrics, LatencyHistogram


def test_histogram_summary_percentiles():
    histogram = LatencyHistogram()
    for value in range(1, 101):
        histogram.add(value / 1000.0)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 0.001 and summary["max"] == 0.1
    assert abs(summary["p50"] - 0.0505) < 1e-9
    assert summary["p95"] > summary["p50"]
    assert summary["p99"] >= summary["p95"]


def test_empty_histogram_summary():
    assert LatencyHistogram().summary() == {"count": 0}


def test_histogram_reservoir_is_bounded():
    histogram = LatencyHistogram(capacity=64)
    for value in range(10_000):
        histogram.add(value / 1000.0)
    assert histogram.count == 10_000
    assert len(histogram._samples) == 64
    summary = histogram.summary()
    # The exact accumulators never degrade, whatever the reservoir holds.
    assert summary["count"] == 10_000
    assert summary["min"] == 0.0
    assert summary["max"] == 9.999
    assert abs(summary["mean"] - sum(range(10_000)) / 10_000 / 1000.0) < 1e-9
    # Percentiles come from a uniform reservoir of the stream: for a
    # uniform ramp the median lands near the middle of the range.
    assert 3.0 < summary["p50"] < 7.0
    assert summary["p50"] < summary["p95"] <= summary["p99"]


def test_histogram_snapshot_is_deterministic():
    def build():
        histogram = LatencyHistogram(capacity=32)
        for value in range(1000):
            histogram.add(value * 0.001)
        return histogram.summary()

    assert build() == build()


def test_histogram_concurrent_add_loses_nothing():
    histogram = LatencyHistogram(capacity=128)
    per_thread = 5000

    def worker(offset):
        for i in range(per_thread):
            histogram.add((offset * per_thread + i) * 1e-6)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    summary = histogram.summary()
    assert summary["count"] == 8 * per_thread
    assert len(histogram._samples) == 128
    assert summary["min"] == 0.0
    assert abs(summary["max"] - (8 * per_thread - 1) * 1e-6) < 1e-12


def test_histogram_rejects_bad_capacity():
    try:
        LatencyHistogram(capacity=0)
    except ValueError:
        pass
    else:
        raise AssertionError("capacity=0 must be rejected")


def test_counters_and_flight_gauge():
    metrics = FleetMetrics()
    metrics.increment("accepted")
    metrics.increment("accepted", 2)
    metrics.enter_flight()
    metrics.enter_flight()
    metrics.exit_flight()
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["accepted"] == 3
    assert snapshot["in_flight"] == 1
    assert snapshot["max_in_flight"] == 2


def test_observe_builds_named_histograms():
    metrics = FleetMetrics()
    metrics.observe("service.msg2", 0.010)
    metrics.observe("service.msg2", 0.030)
    summary = metrics.histogram("service.msg2")
    assert summary["count"] == 2
    assert abs(summary["mean"] - 0.020) < 1e-9
    assert metrics.histogram("never.seen") == {"count": 0}
    assert "service.msg2" in metrics.snapshot()["latency"]


# -- cross-process snapshot-merge (repro.fleet.shards) ------------------------


def test_histogram_state_roundtrip_small():
    histogram = LatencyHistogram()
    for value in (0.001, 0.002, 0.003):
        histogram.add(value)
    merged = LatencyHistogram.from_states([histogram.state()])
    assert merged.summary() == histogram.summary()


def test_histogram_state_is_json_safe():
    import json

    histogram = LatencyHistogram()
    histogram.add(0.5)
    assert json.loads(json.dumps(histogram.state())) == histogram.state()
    empty = LatencyHistogram().state()
    assert empty["min"] is None and empty["max"] is None
    assert json.loads(json.dumps(empty)) == empty


def test_histogram_merge_exact_accumulators():
    a, b = LatencyHistogram(), LatencyHistogram()
    for value in range(100):
        a.add(value * 1e-3)
    for value in range(100, 300):
        b.add(value * 1e-3)
    merged = LatencyHistogram.from_states([a.state(), b.state()])
    summary = merged.summary()
    assert summary["count"] == 300
    assert summary["min"] == 0.0
    assert abs(summary["max"] - 0.299) < 1e-12
    assert abs(summary["mean"] - sum(range(300)) / 300 * 1e-3) < 1e-9


def test_histogram_merge_is_deterministic_and_bounded():
    def states():
        parts = []
        for shard in range(4):
            histogram = LatencyHistogram(capacity=256)
            for i in range(5000):
                histogram.add((shard * 5000 + i) * 1e-6)
            parts.append(histogram.state())
        return parts

    merged_a = LatencyHistogram.from_states(states(), capacity=128)
    merged_b = LatencyHistogram.from_states(states(), capacity=128)
    assert merged_a.summary() == merged_b.summary()
    assert len(merged_a._samples) <= 128


def test_histogram_merge_slots_proportional_to_counts():
    # A shard that saw 10x the traffic gets ~10x the merged reservoir.
    heavy, light = LatencyHistogram(capacity=512), LatencyHistogram(capacity=512)
    for i in range(5000):
        heavy.add(1.0 + i * 1e-6)
    for i in range(500):
        light.add(i * 1e-6)
    merged = LatencyHistogram.from_states([heavy.state(), light.state()],
                                          capacity=110)
    heavy_share = sum(1 for s in merged._samples if s >= 1.0)
    light_share = len(merged._samples) - heavy_share
    assert heavy_share == 100
    assert light_share == 10
    # The weighting keeps the merged median inside the heavy shard.
    assert merged.summary()["p50"] >= 1.0


def test_histogram_merge_skips_empty_states():
    histogram = LatencyHistogram()
    histogram.add(0.25)
    merged = LatencyHistogram.from_states(
        [LatencyHistogram().state(), histogram.state(), None, {}])
    assert merged.summary()["count"] == 1
    assert LatencyHistogram.from_states([]).summary() == {"count": 0}


def test_fleet_metrics_merge():
    shard_a, shard_b = FleetMetrics(), FleetMetrics()
    shard_a.increment("accepted", 3)
    shard_a.observe("service.msg2", 0.010)
    shard_a.enter_flight()
    shard_a.enter_flight()
    shard_a.exit_flight()
    shard_b.increment("accepted", 2)
    shard_b.increment("handshakes_completed")
    shard_b.observe("service.msg2", 0.030)
    shard_b.observe("service.msg0", 0.001)
    shard_b.enter_flight()
    merged = FleetMetrics.from_states([shard_a.state(), shard_b.state()])
    assert merged.counter("accepted") == 5
    assert merged.counter("handshakes_completed") == 1
    assert merged.histogram("service.msg2")["count"] == 2
    assert abs(merged.histogram("service.msg2")["mean"] - 0.020) < 1e-9
    assert merged.histogram("service.msg0")["count"] == 1
    snapshot = merged.snapshot()
    assert snapshot["in_flight"] == 2  # 1 + 1 live across processes
    assert snapshot["max_in_flight"] == 2  # max of per-process peaks


def test_fleet_metrics_merge_tolerates_missing_states():
    metrics = FleetMetrics()
    metrics.increment("connections")
    merged = FleetMetrics.from_states([metrics.state(), None, {}])
    assert merged.counter("connections") == 1
