"""Fleet metrics: counters, gauges and latency histograms."""

from repro.fleet.metrics import FleetMetrics, LatencyHistogram


def test_histogram_summary_percentiles():
    histogram = LatencyHistogram()
    for value in range(1, 101):
        histogram.add(value / 1000.0)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 0.001 and summary["max"] == 0.1
    assert abs(summary["p50"] - 0.0505) < 1e-9
    assert summary["p95"] > summary["p50"]
    assert summary["p99"] >= summary["p95"]


def test_empty_histogram_summary():
    assert LatencyHistogram().summary() == {"count": 0}


def test_counters_and_flight_gauge():
    metrics = FleetMetrics()
    metrics.increment("accepted")
    metrics.increment("accepted", 2)
    metrics.enter_flight()
    metrics.enter_flight()
    metrics.exit_flight()
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["accepted"] == 3
    assert snapshot["in_flight"] == 1
    assert snapshot["max_in_flight"] == 2


def test_observe_builds_named_histograms():
    metrics = FleetMetrics()
    metrics.observe("service.msg2", 0.010)
    metrics.observe("service.msg2", 0.030)
    summary = metrics.histogram("service.msg2")
    assert summary["count"] == 2
    assert abs(summary["mean"] - 0.020) < 1e-9
    assert metrics.histogram("never.seen") == {"count": 0}
    assert "service.msg2" in metrics.snapshot()["latency"]
