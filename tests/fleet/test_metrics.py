"""Fleet metrics: counters, gauges and latency histograms."""

import threading

from repro.fleet.metrics import FleetMetrics, LatencyHistogram


def test_histogram_summary_percentiles():
    histogram = LatencyHistogram()
    for value in range(1, 101):
        histogram.add(value / 1000.0)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 0.001 and summary["max"] == 0.1
    assert abs(summary["p50"] - 0.0505) < 1e-9
    assert summary["p95"] > summary["p50"]
    assert summary["p99"] >= summary["p95"]


def test_empty_histogram_summary():
    assert LatencyHistogram().summary() == {"count": 0}


def test_histogram_reservoir_is_bounded():
    histogram = LatencyHistogram(capacity=64)
    for value in range(10_000):
        histogram.add(value / 1000.0)
    assert histogram.count == 10_000
    assert len(histogram._samples) == 64
    summary = histogram.summary()
    # The exact accumulators never degrade, whatever the reservoir holds.
    assert summary["count"] == 10_000
    assert summary["min"] == 0.0
    assert summary["max"] == 9.999
    assert abs(summary["mean"] - sum(range(10_000)) / 10_000 / 1000.0) < 1e-9
    # Percentiles come from a uniform reservoir of the stream: for a
    # uniform ramp the median lands near the middle of the range.
    assert 3.0 < summary["p50"] < 7.0
    assert summary["p50"] < summary["p95"] <= summary["p99"]


def test_histogram_snapshot_is_deterministic():
    def build():
        histogram = LatencyHistogram(capacity=32)
        for value in range(1000):
            histogram.add(value * 0.001)
        return histogram.summary()

    assert build() == build()


def test_histogram_concurrent_add_loses_nothing():
    histogram = LatencyHistogram(capacity=128)
    per_thread = 5000

    def worker(offset):
        for i in range(per_thread):
            histogram.add((offset * per_thread + i) * 1e-6)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    summary = histogram.summary()
    assert summary["count"] == 8 * per_thread
    assert len(histogram._samples) == 128
    assert summary["min"] == 0.0
    assert abs(summary["max"] - (8 * per_thread - 1) * 1e-6) < 1e-12


def test_histogram_rejects_bad_capacity():
    try:
        LatencyHistogram(capacity=0)
    except ValueError:
        pass
    else:
        raise AssertionError("capacity=0 must be rejected")


def test_counters_and_flight_gauge():
    metrics = FleetMetrics()
    metrics.increment("accepted")
    metrics.increment("accepted", 2)
    metrics.enter_flight()
    metrics.enter_flight()
    metrics.exit_flight()
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["accepted"] == 3
    assert snapshot["in_flight"] == 1
    assert snapshot["max_in_flight"] == 2


def test_observe_builds_named_histograms():
    metrics = FleetMetrics()
    metrics.observe("service.msg2", 0.010)
    metrics.observe("service.msg2", 0.030)
    summary = metrics.histogram("service.msg2")
    assert summary["count"] == 2
    assert abs(summary["mean"] - 0.020) < 1e-9
    assert metrics.histogram("never.seen") == {"count": 0}
    assert "service.msg2" in metrics.snapshot()["latency"]
