"""Cross-backend and stale-policy attacks on the appraisal cache.

PR 6 widened the cache to multi-TEE evidence; this file pins the two
properties that widening must add: the cache key binds the evidence
*backend* (``tee_type`` and the backend's extra appraised state), and
the scope the verifier passes includes the declarative policy's
fingerprint — so the revocation killswitch's epoch bump strands every
outstanding resumption ticket, on the full handshake path *and* the
resumption path.
"""

import os

import pytest

from repro.appraisal import AppraisalEngine, AppraisalPolicy, synthetic
from repro.appraisal.codecs.trustzone import TrustZoneView
from repro.appraisal.envelope import TEE_SGX, TEE_TRUSTZONE
from repro.core import measure_bytes, protocol
from repro.core.attester import Attester
from repro.core.evidence import Evidence, SignedEvidence
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa
from repro.crypto.cmac import AesCmac
from repro.errors import PolicyDenied
from repro.fleet.cache import AppraisalCache

DEVICE = ecdsa.keypair_from_private(717171)
IDENTITY = ecdsa.keypair_from_private(727272)
CLAIM = measure_bytes(b"cross-tee app").digest
KEY = b"\xA5" * protocol.RESUMPTION_KEY_SIZE
SECRET = b"cache attack secret blob"
SCOPE = b"\x5C" * 32


def _tz_view(anchor=b"\x01" * 32, boot=b"\x00" * 32):
    evidence = Evidence(anchor=anchor, claim=CLAIM,
                        attestation_public_key=DEVICE.public_bytes(),
                        boot_claim=boot)
    return TrustZoneView(SignedEvidence(evidence=evidence,
                                        signature=b"\x07" * 64))


def _sgx_view(anchor=b"\x01" * 32, **kwargs):
    return synthetic.sgx_enclave(3, CLAIM, **kwargs).collect_evidence(anchor)


def _ticket(view, key=KEY):
    return AesCmac(key).mac(view.envelope())


# -- the key binds the backend ------------------------------------------------


def test_same_claim_different_backend_is_a_different_entry():
    # An SGX enclave and a TrustZone board attesting the same module
    # share the primary measurement; their cache entries must not.
    cache = AppraisalCache()
    cache.store(SCOPE, _sgx_view(), KEY)
    tz = _tz_view()
    assert cache.redeem(SCOPE, tz, _ticket(tz)) is None
    assert cache.misses == 1 and cache.hits == 0


def test_ticket_minted_under_one_backend_never_crosses():
    # Even with a colliding key *construction*, the ticket MAC covers the
    # envelope header — tee_type included — so a captured SGX ticket is
    # useless with evidence claiming another backend.
    cache = AppraisalCache()
    sgx = _sgx_view()
    cache.store(SCOPE, sgx, KEY)
    assert cache.redeem(SCOPE, sgx, _ticket(sgx)) == KEY
    forged = AesCmac(KEY).mac(_tz_view().envelope())
    assert cache.redeem(SCOPE, sgx, forged) is None
    assert cache.bad_tickets == 1


def test_legacy_and_envelope_tickets_are_domain_separated():
    # The legacy path MACs the bare evidence bytes (seed behaviour,
    # unchanged); the multi path MACs the envelope. A ticket captured on
    # one path cannot be replayed on the other even for the *same*
    # TrustZone evidence.
    view = _tz_view()
    legacy_body = view.signed.evidence  # what the seed verifier caches
    legacy_ticket = AesCmac(KEY).mac(legacy_body.encode())
    envelope_ticket = _ticket(view)
    assert legacy_ticket != envelope_ticket

    cache = AppraisalCache()
    cache.store(SCOPE, view, KEY)
    assert cache.redeem(SCOPE, view, legacy_ticket) is None
    assert cache.redeem(SCOPE, view, envelope_ticket) == KEY


def test_sgx_config_change_misses_the_old_entry():
    # cache_extra carries MRSIGNER/SVN/debug: a debug relaunch of the
    # same enclave code is a different cache entry (and ticket body).
    cache = AppraisalCache()
    cache.store(SCOPE, _sgx_view(), KEY)
    debug = _sgx_view(debug=True)
    assert cache.redeem(SCOPE, debug, _ticket(debug)) is None
    assert cache.misses == 1


# -- the scope binds the declarative policy -----------------------------------


def test_scope_bytes_invalidate_like_a_policy_change():
    cache = AppraisalCache()
    sgx = _sgx_view()
    cache.store(b"\x01" * 32, sgx, KEY)
    assert cache.redeem(b"\x02" * 32, sgx, _ticket(sgx)) is None
    assert cache.invalidations == 1


def _multi_actors(cache):
    attester = Attester(os.urandom)
    enclave = synthetic.sgx_enclave(9, CLAIM)
    policy = AppraisalPolicy()
    tee = policy.accept_tee(TEE_SGX)
    tee.trust_measurement(enclave.mrenclave)
    tee.endorse(enclave.attestation_public_key)
    tee.trust_signer(enclave.mrsigner)
    engine = AppraisalEngine(policy)
    verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                        appraisal_cache=cache, engine=engine)
    return attester, verifier, enclave, engine


def _multi_handshake(attester, verifier, enclave):
    session = attester.start_session(IDENTITY.public_bytes())
    vsession, msg1 = verifier.handle_msg0_multi(
        attester.make_msg0_multi(session, enclave.tee_type))
    attester.handle_msg1(session, msg1)
    view = enclave.collect_evidence(session.anchor)
    msg3 = verifier.handle_msg2_multi(
        vsession, attester.make_msg2_multi(session, view), SECRET)
    return attester.handle_msg3(session, msg3)


def test_revocation_epoch_strands_outstanding_tickets():
    cache = AppraisalCache()
    attester, verifier, enclave, engine = _multi_actors(cache)
    assert _multi_handshake(attester, verifier, enclave) == SECRET
    assert _multi_handshake(attester, verifier, enclave) == SECRET
    assert cache.hits == 1  # the second ride was a ticket

    engine.revoke_measurement(enclave.mrenclave)
    with pytest.raises(PolicyDenied) as excinfo:
        _multi_handshake(attester, verifier, enclave)
    assert excinfo.value.reason_code == "measurement-revoked"
    # The epoch bump moved the combined scope: the ticket redeemed
    # nothing (invalidation), the denial came from the policy run.
    assert cache.hits == 1
    assert cache.invalidations >= 1

    # Un-revoking restores the accept set but NOT the old scope: the
    # stranded tickets stay dead and the device must re-verify in full.
    engine.policy.revoked_measurements.clear()
    assert _multi_handshake(attester, verifier, enclave) == SECRET
    assert cache.hits == 1 and cache.misses >= 2


def test_cache_hit_still_runs_the_declarative_policy():
    # The cache stands in for the ECDSA verify only. A policy that
    # tightens *without* changing the legacy scope would be caught by
    # the fingerprint; here we pin the stronger property: even on a
    # same-scope hit the evaluator runs (audit shows one verdict per
    # handshake, hit or miss).
    cache = AppraisalCache()
    attester, verifier, enclave, engine = _multi_actors(cache)
    assert _multi_handshake(attester, verifier, enclave) == SECRET
    assert _multi_handshake(attester, verifier, enclave) == SECRET
    assert cache.hits == 1
    assert len(engine.audit.entries()) == 2
    assert all(e.accepted for e in engine.audit.entries())
