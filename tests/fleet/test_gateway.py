"""The attestation gateway, end to end on the testbed.

Every handshake crosses the real fabric into real verifier TA lanes —
full protocol checks, world-transition costs on the SimClock, secrets
sealed per session. The suite covers the acceptance criteria: concurrent
attesters all verified, protocol streams never cross, a tampered
attester is rejected under load, overload sheds with FleetOverloaded,
and the TTL/LRU session table drops stalled handshakes.
"""

import os
import threading

import pytest

from repro.core.attester import Attester
from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.errors import FleetOverloaded, ProtocolError, TeeCommunicationError
from repro.fleet import (AttestationGateway, FleetConfig, LoadProfile,
                         build_attester_stacks, run_load, run_one_handshake,
                         start_fleet_gateway)

HOST, PORT = "fleet.verifier", 7700
SECRET = b"fleet secret payload" * 8


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1e9)


@pytest.fixture
def fleet(testbed, verifier_identity):
    """A started gateway plus a policy the tests can extend."""
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, PORT, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET,
        FleetConfig(workers=2),
    )
    yield testbed, gateway, policy, verifier_identity
    gateway.stop()


def test_single_handshake_delivers_the_secret(fleet):
    testbed, gateway, policy, identity = fleet
    stack = build_attester_stacks(testbed, policy, 1)[0]
    result = run_one_handshake(testbed.network, HOST, PORT,
                               identity.public_bytes(), stack)
    assert result.ok, result.error
    assert result.secret_len == len(SECRET)
    assert gateway.metrics.counter("handshakes_completed") == 1


def test_concurrent_attesters_all_verified(fleet):
    testbed, gateway, policy, identity = fleet
    stacks = build_attester_stacks(testbed, policy, 4)
    report = run_load(testbed.network, HOST, PORT, identity.public_bytes(),
                      stacks, LoadProfile(concurrency=4,
                                          handshakes_per_attester=2))
    assert len(report.completed) == 8
    assert not report.failed and not report.rejected
    assert all(r.secret_len == len(SECRET) for r in report.completed)
    assert gateway.metrics.counter("handshakes_completed") == 8
    # Sticky lanes: both lanes of the pool actually served traffic.
    lanes_used = {record.conn_id % 2 for record in gateway.drain_records()}
    assert lanes_used == {0, 1}


def test_interleaved_streams_never_cross(fleet):
    # Drive two handshakes strictly interleaved (msg0/msg0/msg2/msg2) on
    # connections pinned to the same lane as well as different lanes; each
    # attester must get a secret sealed to ITS session keys.
    testbed, gateway, policy, identity = fleet
    stacks = build_attester_stacks(testbed, policy, 2)
    connections = [testbed.network.connect(HOST, PORT) for _ in stacks]
    sessions = []
    for stack, connection in zip(stacks, connections):
        session = stack.attester.start_session(identity.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        sessions.append(session)
    for stack, connection, session in zip(stacks, connections, sessions):
        stack.attester.handle_msg1(session, connection.receive())
    for stack, connection, session in zip(stacks, connections, sessions):
        signed = stack.attester.collect_evidence(
            session.anchor, stack.claim, stack.device.attestation_public_key,
            stack.sign_evidence, boot_claim=stack.device.kernel.boot_measurement)
        connection.send(stack.attester.make_msg2(session, signed))
    secrets = [stack.attester.handle_msg3(session, connection.receive())
               for stack, connection, session
               in zip(stacks, connections, sessions)]
    assert secrets == [SECRET, SECRET]
    for connection in connections:
        connection.close()


def test_tampered_attester_rejected_under_load(fleet):
    testbed, gateway, policy, identity = fleet
    trusted = build_attester_stacks(testbed, policy, 3)
    rogue = build_attester_stacks(testbed, policy, 1, trusted=False)[0]
    rogue.index = 3
    report = run_load(testbed.network, HOST, PORT, identity.public_bytes(),
                      trusted + [rogue],
                      LoadProfile(concurrency=4, handshakes_per_attester=1))
    assert len(report.completed) == 3
    assert {r.attester for r in report.completed} == {0, 1, 2}
    assert len(report.failed) == 1
    assert report.failed[0].attester == 3
    assert report.failed[0].error == "MeasurementMismatch"
    assert gateway.metrics.counter("failed_messages") == 1


def test_evidence_replayed_on_another_connection_rejected(fleet):
    # Cross-connection replay: evidence anchored to session A, delivered
    # over connection B, must fail B's anchor check.
    testbed, gateway, policy, identity = fleet
    stacks = build_attester_stacks(testbed, policy, 2)
    conn_a = testbed.network.connect(HOST, PORT)
    conn_b = testbed.network.connect(HOST, PORT)
    sess_a = stacks[0].attester.start_session(identity.public_bytes())
    sess_b = stacks[1].attester.start_session(identity.public_bytes())
    conn_a.send(stacks[0].attester.make_msg0(sess_a))
    conn_b.send(stacks[1].attester.make_msg0(sess_b))
    stacks[0].attester.handle_msg1(sess_a, conn_a.receive())
    stacks[1].attester.handle_msg1(sess_b, conn_b.receive())
    signed_a = stacks[0].attester.collect_evidence(
        sess_a.anchor, stacks[0].claim,
        stacks[0].device.attestation_public_key, stacks[0].sign_evidence,
        boot_claim=stacks[0].device.kernel.boot_measurement)
    # Replay A's msg2 bytes on connection B.
    conn_b.send(stacks[0].attester.make_msg2(sess_a, signed_a))
    with pytest.raises(Exception):
        conn_b.receive()
    conn_a.close()


def test_overload_sheds_with_fleet_overloaded(testbed, verifier_identity):
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7701, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET,
        FleetConfig(workers=1, rate_per_s=0.0, rate_burst=1),
    )
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        connection = testbed.network.connect(HOST, 7701)
        session = stack.attester.start_session(verifier_identity.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        stack.attester.handle_msg1(session, connection.receive())  # token 1
        signed = stack.attester.collect_evidence(
            session.anchor, stack.claim, stack.device.attestation_public_key,
            stack.sign_evidence,
            boot_claim=stack.device.kernel.boot_measurement)
        connection.send(stack.attester.make_msg2(session, signed))
        with pytest.raises(FleetOverloaded):  # bucket is dry, rate 0
            connection.receive()
        snapshot = gateway.snapshot()
        assert snapshot["counters"]["rejected_rate"] >= 1
        assert snapshot["admission"]["rejected_rate"] >= 1
    finally:
        gateway.stop()


def test_stalled_session_expires_and_forfeits_verifier_state(
        testbed, verifier_identity):
    clock = FakeClock()
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = AttestationGateway(
        testbed.network, HOST, 7702, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET,
        FleetConfig(workers=1, session_ttl_s=30.0), time_source=clock,
    ).start()
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        connection = testbed.network.connect(HOST, 7702)
        session = stack.attester.start_session(verifier_identity.public_bytes())
        connection.send(stack.attester.make_msg0(session))
        stack.attester.handle_msg1(session, connection.receive())
        clock.advance_s(31)  # the attester stalls past the TTL
        signed = stack.attester.collect_evidence(
            session.anchor, stack.claim, stack.device.attestation_public_key,
            stack.sign_evidence,
            boot_claim=stack.device.kernel.boot_measurement)
        connection.send(stack.attester.make_msg2(session, signed))
        with pytest.raises(ProtocolError, match="expired"):
            connection.receive()
        assert gateway.sessions.expired == 1
        assert gateway.metrics.counter("sessions_evicted_ttl") == 1
    finally:
        gateway.stop()


def test_session_cap_evicts_oldest_handshake(testbed, verifier_identity):
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7703, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET,
        FleetConfig(workers=1, max_sessions=2),
    )
    try:
        connections = [testbed.network.connect(HOST, 7703) for _ in range(3)]
        # Opening the third connection evicted the first's session.
        assert gateway.sessions.evicted_lru == 1
        assert gateway.metrics.counter("sessions_evicted_lru") == 1
        connections[0].send(b"\x00")
        with pytest.raises(ProtocolError, match="evicted"):
            connections[0].receive()
    finally:
        gateway.stop()


def test_stop_closes_listener_and_lanes(testbed, verifier_identity):
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, 7704, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET, FleetConfig(workers=2),
    )
    connection = testbed.network.connect(HOST, 7704)
    gateway.stop()
    with pytest.raises(TeeCommunicationError, match="refused"):
        testbed.network.connect(HOST, 7704)
    with pytest.raises(TeeCommunicationError, match="closed"):
        connection.send(b"\x00")
    gateway.stop()  # idempotent


def test_gateway_rejects_zero_workers(testbed, verifier_identity):
    device = testbed.create_device()
    with pytest.raises(ValueError, match="worker lane"):
        AttestationGateway(testbed.network, HOST, 7705, device.client,
                           testbed.vendor_key, verifier_identity,
                           VerifierPolicy(), lambda: SECRET,
                           FleetConfig(workers=0))


def test_cache_accelerates_reattestation(fleet):
    testbed, gateway, policy, identity = fleet
    stack = build_attester_stacks(testbed, policy, 1)[0]
    for attempt in range(2):
        result = run_one_handshake(testbed.network, HOST, PORT,
                                   identity.public_bytes(), stack, attempt)
        assert result.ok, result.error
    records = gateway.drain_records()
    msg2 = [record for record in records if record.kind == "msg2"]
    assert [record.cache_hit for record in msg2] == [False, True]
    assert gateway.cache.snapshot()["hits"] == 1


# -- crypto prewarm: appraisal precompute outside the device lock -------------


def test_msg2_prewarm_runs_before_appraisal(fleet):
    testbed, gateway, policy, identity = fleet
    stack = build_attester_stacks(testbed, policy, 1)[0]
    result = run_one_handshake(testbed.network, HOST, PORT,
                               identity.public_bytes(), stack)
    assert result.ok, result.error
    # One msg2 arrived, so the worker built the evidence key's wNAF table
    # before taking the secure-monitor lock.
    assert gateway.metrics.counter("crypto_prewarms") == 1
    assert gateway.metrics.counter("handshakes_completed") == 1


def test_prewarm_can_be_disabled(testbed, verifier_identity):
    device = testbed.create_device()
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, PORT + 1, device.client, testbed.vendor_key,
        verifier_identity, policy, lambda: SECRET,
        FleetConfig(workers=1, prewarm_crypto=False),
    )
    try:
        stack = build_attester_stacks(testbed, policy, 1)[0]
        result = run_one_handshake(testbed.network, HOST, PORT + 1,
                                   verifier_identity.public_bytes(), stack)
        assert result.ok, result.error
        assert gateway.metrics.counter("crypto_prewarms") == 0
    finally:
        gateway.stop()


def test_prewarm_swallows_malformed_msg2(fleet):
    _, gateway, _, _ = fleet
    # Prewarming is a pure optimisation over untrusted bytes: garbage must
    # neither raise nor count as a prewarm — appraisal rejects it later.
    gateway._prewarm_crypto(b"\x02" + b"\xff" * 40)
    gateway._prewarm_crypto(b"")
    assert gateway.metrics.counter("crypto_prewarms") == 0
