"""The testbed assembly helper."""

import pytest

from repro.errors import TeeItemNotFound
from repro.hw.caam import World
from repro.testbed import Testbed
from repro.walc import compile_source


def test_device_boots_into_normal_world(device):
    assert device.soc.securely_booted
    assert device.soc.current_world == World.NORMAL
    assert device.soc.boot_report.stages == [
        "spl", "arm-trusted-firmware", "op-tee"]


def test_serials_and_identities_are_unique(testbed):
    one = testbed.create_device()
    two = testbed.create_device()
    assert one.serial != two.serial
    assert one.attestation_public_key != two.attestation_public_key


def test_watz_image_cached_per_heap_and_engine(device):
    first = device.install_watz(1 << 20)
    again = device.install_watz(1 << 20)
    other = device.install_watz(2 << 20)
    interp = device.install_watz(1 << 20, engine="interpreter")
    assert first == again
    assert len({first, other, interp}) == 3


def test_load_wasm_frees_the_shared_buffer(device):
    binary = compile_source("export fn f() -> i32 { return 1; }")
    session = device.open_watz(heap_size=1 << 20)
    before = device.kernel.shared_memory.allocated
    device.load_wasm(session, binary)
    assert device.kernel.shared_memory.allocated == before


def test_deterministic_testbed_reproducible():
    one = Testbed(deterministic_rng=True).create_device()
    two = Testbed(deterministic_rng=True).create_device()
    # Same serial, same entropy stream -> identical device randomness.
    assert one.kernel.rng.random_bytes(16) == two.kernel.rng.random_bytes(16)


def test_devices_share_one_network(testbed):
    one = testbed.create_device()
    two = testbed.create_device()
    assert one.network is two.network


def test_unknown_ta_session_raises(device):
    with pytest.raises(TeeItemNotFound):
        device.client.open_session("nonexistent")


def test_cross_device_attestation(testbed, verifier_identity):
    """Attester and verifier on *different* devices over the network —
    beyond the paper's co-located setup."""
    from repro.core import VerifierPolicy, measure_bytes, start_verifier
    from repro.workloads.attested import build_attested_app

    attesting = testbed.create_device()
    verifying = testbed.create_device()
    app = build_attested_app(verifier_identity.public_bytes(),
                             "remote.verifier", 7700, secret_capacity=4096)
    policy = VerifierPolicy()
    policy.endorse(attesting.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, "remote.verifier", 7700,
                   verifying.client, testbed.vendor_key, verifier_identity,
                   policy, lambda: b"cross-device")
    session = attesting.open_watz(heap_size=17 * 1024 * 1024)
    loaded = attesting.load_wasm(session, app)
    assert attesting.run_wasm(session, loaded["app"], "attest") \
        == len(b"cross-device")
    session.close()
