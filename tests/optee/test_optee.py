"""OP-TEE: kernel, TA life cycle, GP API, memory caps, sockets."""

import pytest

from repro.crypto import ecdsa
from repro.errors import (
    TeeAccessDenied,
    TeeBadParameters,
    TeeOutOfMemory,
    TeeSecurityViolation,
)
from repro.hw.caam import World
from repro.optee import (
    SECURE_HEAP_CAP,
    SHARED_MEMORY_CAP,
    TaManifest,
    TrustedApplication,
    sign_ta,
)
from repro.optee.kernel import OpTeeKernel
from repro.optee.sharedmem import SharedMemoryPool
from repro.testbed import Testbed


class EchoTa(TrustedApplication):
    def invoke(self, command, params):
        if command == 1:
            return {"time": self.api.get_system_time_ns()}
        if command == 2:
            self.api.tee_malloc(params["size"])
            return {"used": self.api.heap_used}
        return {"echo": params}


def _install_echo(device, heap=1 << 20):
    manifest = TaManifest(uuid="echo", name="echo", heap_size=heap)
    image = sign_ta(manifest, b"echo payload", EchoTa, device.vendor_key)
    device.kernel.install_ta(image)
    return device.client.open_session("echo")


# -- shared memory ------------------------------------------------------------


def test_shared_memory_cap_is_nine_megabytes():
    assert SHARED_MEMORY_CAP == 9 * 1024 * 1024


def test_shared_memory_cap_enforced():
    pool = SharedMemoryPool()
    pool.allocate(8 * 1024 * 1024)
    with pytest.raises(TeeOutOfMemory, match="cap"):
        pool.allocate(2 * 1024 * 1024)


def test_shared_memory_free_returns_capacity():
    pool = SharedMemoryPool()
    buffer = pool.allocate(8 * 1024 * 1024)
    buffer.free()
    pool.allocate(9 * 1024 * 1024)  # must succeed now


def test_shared_buffer_bounds_checked():
    pool = SharedMemoryPool()
    buffer = pool.allocate(128)
    with pytest.raises(TeeBadParameters):
        buffer.write(120, b"too long for the buffer")
    with pytest.raises(TeeBadParameters):
        buffer.read(120, 64)


def test_shared_buffer_read_write():
    pool = SharedMemoryPool()
    buffer = pool.allocate(64)
    buffer.write(8, b"watz")
    assert buffer.read(8, 4) == b"watz"


# -- kernel ----------------------------------------------------------------------


def test_kernel_requires_secure_boot():
    from repro.hw import SoC

    soc = SoC()
    vendor = ecdsa.keypair_from_private(5)
    with pytest.raises(Exception, match="secure"):
        OpTeeKernel(soc, vendor.public)


def test_secure_heap_cap_is_27mb(device):
    assert device.kernel.secure_heap_capacity == 27 * 1024 * 1024 == SECURE_HEAP_CAP


def test_secure_heap_cap_enforced(device):
    device.kernel.secure_alloc(SECURE_HEAP_CAP)
    with pytest.raises(TeeOutOfMemory):
        device.kernel.secure_alloc(1)
    device.kernel.secure_free(SECURE_HEAP_CAP)


def test_huk_subkeys_stable_and_distinct(device):
    one = device.kernel.huk_subkey_derive(b"usage-a", 32)
    two = device.kernel.huk_subkey_derive(b"usage-a", 32)
    other = device.kernel.huk_subkey_derive(b"usage-b", 32)
    assert one == two
    assert one != other
    assert len(device.kernel.huk_subkey_derive(b"u", 16)) == 16


def test_huk_subkey_size_limit(device):
    with pytest.raises(TeeBadParameters):
        device.kernel.huk_subkey_derive(b"u", 64)


def test_executable_pages_extension(device):
    region = device.kernel.map_executable_pages(4096)
    assert region.executable
    device.kernel.unmap_executable_pages(region)
    assert not region.executable


def test_stock_kernel_refuses_executable_pages(testbed):
    device = testbed.create_device(allow_executable_pages=False)
    with pytest.raises(TeeAccessDenied, match="stock"):
        device.kernel.map_executable_pages(4096)


# -- TA management ----------------------------------------------------------------


def test_ta_signature_verified_on_install(device):
    manifest = TaManifest(uuid="x", name="x", heap_size=1024)
    rogue = ecdsa.keypair_from_private(999)
    image = sign_ta(manifest, b"payload", EchoTa, rogue)
    with pytest.raises(TeeSecurityViolation):
        device.kernel.install_ta(image)


def test_unknown_ta_uuid(device):
    with pytest.raises(Exception, match="UUID"):
        device.client.open_session("missing-uuid")


def test_session_invoke_roundtrip(device):
    session = _install_echo(device)
    assert session.invoke(0, {"x": 1}) == {"echo": {"x": 1}}
    session.close()


def test_session_close_releases_heap(device):
    before = device.kernel.secure_heap_allocated
    session = _install_echo(device, heap=2 << 20)
    assert device.kernel.secure_heap_allocated == before + (2 << 20)
    session.close()
    assert device.kernel.secure_heap_allocated == before


def test_closed_session_rejects_invoke(device):
    session = _install_echo(device)
    session.close()
    with pytest.raises(TeeAccessDenied):
        session.invoke(0, {})


def test_invoke_pays_world_transition(device):
    session = _install_echo(device)
    costs = device.soc.costs
    before = device.soc.clock.now_ns()
    session.invoke(0, {})
    elapsed = device.soc.clock.now_ns() - before
    assert elapsed == costs.world_enter_ns + costs.world_return_ns


def test_ta_heap_budget_enforced(device):
    session = _install_echo(device, heap=4096)
    session.invoke(2, {"size": 4000})
    with pytest.raises(TeeOutOfMemory, match="heap exhausted"):
        session.invoke(2, {"size": 4096})


def test_gp_time_charges_rpc(device):
    session = _install_echo(device)
    result = session.invoke(1)
    assert result["time"] > 0


def test_gp_random(device):
    session = _install_echo(device)
    data = session.api.generate_random(16)
    assert len(data) == 16


def test_two_sessions_share_kernel_heap(device):
    heap = 13 * 1024 * 1024
    _install_echo(device, heap=heap)
    manifest = TaManifest(uuid="echo2", name="echo2", heap_size=heap)
    device.kernel.install_ta(
        sign_ta(manifest, b"p", EchoTa, device.vendor_key))
    device.client.open_session("echo2")
    manifest3 = TaManifest(uuid="echo3", name="echo3", heap_size=heap)
    device.kernel.install_ta(
        sign_ta(manifest3, b"p", EchoTa, device.vendor_key))
    with pytest.raises(TeeOutOfMemory):
        device.client.open_session("echo3")


# -- attestation service ------------------------------------------------------------


def test_attestation_key_deterministic_per_device(testbed):
    device = testbed.create_device()
    key_one = device.attestation_public_key
    # "Rebooting": a new kernel on the same SoC derives the same key.
    device.soc.current_world = World.SECURE
    rebooted = OpTeeKernel(device.soc, testbed.vendor_key.public)
    assert rebooted.attestation_service.public_key_bytes == key_one


def test_attestation_keys_differ_across_devices(testbed):
    one = testbed.create_device()
    two = testbed.create_device()
    assert one.attestation_public_key != two.attestation_public_key


def test_attestation_sign_requires_secure_world(device):
    with pytest.raises(TeeAccessDenied):
        device.kernel.attestation_service.sign_evidence(b"claims")


def test_attestation_sign_verifies_with_public_key(device):
    from repro.crypto import ec

    with device.soc.enter_secure_world():
        signature = device.kernel.attestation_service.sign_evidence(b"claims")
    public = ec.decode_point(device.attestation_public_key)
    ecdsa.verify(public, b"claims", signature)


def test_private_key_not_reachable(device):
    service = device.kernel.attestation_service
    exposed = [name for name in vars(service) if "key_pair" in name.lower()]
    # Name-mangled private attribute only; no public handle to the pair.
    assert all(name.startswith("_AttestationService__") for name in exposed)
