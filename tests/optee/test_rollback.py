"""Rollback protection (§VII): monotonic counters guard trusted storage."""

import pytest

from repro.errors import TeeSecurityViolation, WorldError
from repro.hw.caam import World


def test_counters_only_increase(device):
    with device.soc.enter_secure_world():
        counters = device.soc.monotonic
        assert counters.read("x") == 0
        assert counters.increment("x") == 1
        assert counters.increment("x") == 2
        assert counters.read("x") == 2


def test_counters_gated_to_secure_world(device):
    assert device.soc.current_world == World.NORMAL
    with pytest.raises(WorldError):
        device.soc.monotonic.increment("x")
    with pytest.raises(WorldError):
        device.soc.monotonic.read("x")


def test_storage_versions_advance_per_write(device):
    storage = device.kernel.trusted_storage
    with device.soc.enter_secure_world():
        storage.put("ta", "obj", b"v1")
        storage.put("ta", "obj", b"v2")
        assert storage.get("ta", "obj") == b"v2"
        assert device.soc.monotonic.read("ts/ta/obj") == 2


def test_snapshot_restore_detected_as_rollback(device):
    """The §VII attack: restore an old image of the storage medium."""
    storage = device.kernel.trusted_storage
    with device.soc.enter_secure_world():
        storage.put("ta", "wallet", b"balance=100")
        stale = storage.snapshot()          # attacker copies the medium
        storage.put("ta", "wallet", b"balance=1")
        storage.restore_snapshot(stale)     # attacker restores the copy
        with pytest.raises(TeeSecurityViolation, match="rollback"):
            storage.get("ta", "wallet")


def test_recreated_object_after_delete_not_confusable(device):
    storage = device.kernel.trusted_storage
    with device.soc.enter_secure_world():
        storage.put("ta", "cfg", b"old")
        stale = storage.snapshot()
        storage.delete("ta", "cfg")
        storage.put("ta", "cfg", b"new")
        assert storage.get("ta", "cfg") == b"new"
        storage.restore_snapshot(stale)
        with pytest.raises(TeeSecurityViolation):
            storage.get("ta", "cfg")


def test_wasi_fs_inherits_rollback_protection(device):
    """Files written by a Wasm app through WASI-FS are rollback-protected."""
    from repro.walc import compile_source

    source = """
memory 1;
data 512 (102);  // "f"
import fn wasi_snapshot_preview1.path_open(a: i32, b: i32, c: i32, d: i32,
                                           e: i32, f: i64, g: i64, h: i32,
                                           i: i32) -> i32;
import fn wasi_snapshot_preview1.fd_write(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_close(a: i32) -> i32;
export fn put() -> i32 {
  path_open(3, 0, 512, 1, 1, 0L, 0L, 0, 64);
  var fd: i32 = load_i32(64);
  store_i32(0, 512);
  store_i32(4, 1);
  fd_write(fd, 0, 1, 16);
  return fd_close(fd);
}
"""
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, compile_source(source),
                              filesystem=True)
    device.run_wasm(session, loaded["app"], "put")
    storage = device.kernel.trusted_storage
    with device.soc.enter_secure_world():
        stale = storage.snapshot()
    device.run_wasm(session, loaded["app"], "put")  # version moves on
    storage.restore_snapshot(stale)
    session.close()
    # The next session tries to load the rolled-back file and is refused.
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    with pytest.raises(TeeSecurityViolation, match="rollback"):
        device.load_wasm(session, compile_source(source), filesystem=True)
