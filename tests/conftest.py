"""Shared fixtures: engines, a booted device, a verifier deployment."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.testbed import Device, Testbed
from repro.wasm import AotCompiler, Interpreter


@pytest.fixture(autouse=True)
def _fresh_code_cache():
    """Each test starts with a cold process-wide code cache.

    The cache is content-addressed and process-wide by design; clearing it
    between tests keeps cold-start assertions (e.g. the Fig. 4 breakdown
    shape) independent of test execution order."""
    from repro.wasm.codecache import DEFAULT_CACHE

    DEFAULT_CACHE.clear()
    yield


@pytest.fixture(params=["interpreter", "aot"])
def engine(request):
    """Both execution engines; spec-behaviour tests run on each."""
    if request.param == "interpreter":
        return Interpreter()
    return AotCompiler()


@pytest.fixture
def aot_engine():
    return AotCompiler()


@pytest.fixture
def testbed() -> Testbed:
    return Testbed()


@pytest.fixture
def device(testbed) -> Device:
    return testbed.create_device()


@pytest.fixture
def verifier_identity() -> ecdsa.KeyPair:
    return ecdsa.keypair_from_private(0xB00B1E5 + 12345)
