"""Fig. 5: PolyBench/C performance normalised against native execution.

Three configurations per kernel, as in the paper:

* native — the pure-Python build run directly in the normal world;
* WAMR — the Wasm build on the AOT engine in the normal world;
* WaTZ — the same Wasm binary hosted by the runtime TA in the secure
  world.

The paper's findings: Wasm is ~1.34x slower than native on average, and
WAMR vs WaTZ differ by under 0.02% — TrustZone adds no compute penalty.
The second finding is the architectural one and must reproduce exactly in
shape; the first reproduces in direction (the magnitude depends on the
substituted toolchains — see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

from repro.bench import format_table, geometric_mean, save_report
from repro.core.runtime import NormalWorldRuntime
from repro.walc import compile_source
from repro.workloads.polybench import all_kernels

_RUNS = 3


def _median_seconds(operation, runs=_RUNS):
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def _measure_all(device):
    session = device.open_watz(heap_size=12 * 1024 * 1024)
    normal_world = NormalWorldRuntime()
    results = []
    for kernel in all_kernels():
        size = kernel.default_size
        binary = compile_source(kernel.walc_source(size))

        native_s = _median_seconds(lambda: kernel.native(size))

        wamr_app = normal_world.load(binary)
        wamr_s = _median_seconds(
            lambda: normal_world.invoke(wamr_app, "run"))

        loaded = device.load_wasm(session, binary)
        app = session.ta._apps[loaded["app"]]
        watz_s = _median_seconds(lambda: app.instance.invoke("run"))

        # Cross-check: all three computed the same checksum.
        assert normal_world.invoke(wamr_app, "run") == kernel.native(size) \
            == app.instance.invoke("run")
        results.append((kernel.name, native_s, wamr_s, watz_s))
    session.close()
    return results


def test_fig5_polybench(benchmark, device):
    results = benchmark.pedantic(lambda: _measure_all(device),
                                 rounds=1, iterations=1)
    rows = []
    wamr_ratios, watz_ratios, pair_deltas = [], [], []
    for name, native_s, wamr_s, watz_s in results:
        wamr_ratio = wamr_s / native_s
        watz_ratio = watz_s / native_s
        wamr_ratios.append(wamr_ratio)
        watz_ratios.append(watz_ratio)
        pair_deltas.append(abs(watz_s - wamr_s) / wamr_s)
        rows.append((name, f"{native_s * 1000:.1f} ms",
                     f"{wamr_ratio:.2f}x", f"{watz_ratio:.2f}x"))
    rows.append(("geo-mean (paper: 1.34x / 1.34x)", "-",
                 f"{geometric_mean(wamr_ratios):.2f}x",
                 f"{geometric_mean(watz_ratios):.2f}x"))
    save_report("fig5_polybench", format_table(
        "Fig. 5 — PolyBench/C normalised to native "
        f"(median of {_RUNS} runs)",
        ["kernel", "native", "WAMR (normal world)", "WaTZ (secure world)"],
        rows,
    ))

    # Headline shape 1: Wasm is slower than native for every kernel.
    assert all(ratio > 1.0 for ratio in watz_ratios)
    # Headline shape 2: WaTZ tracks WAMR closely — TrustZone itself adds
    # no computational slowdown (paper: <0.02%; we allow scheduler noise).
    median_delta = sorted(pair_deltas)[len(pair_deltas) // 2]
    assert median_delta < 0.10, median_delta
