"""Fig. 5: PolyBench/C performance normalised against native execution.

Three configurations per kernel, as in the paper:

* native — the pure-Python build run directly in the normal world;
* WAMR — the Wasm build on the AOT engine in the normal world;
* WaTZ — the same Wasm binary hosted by the runtime TA in the secure
  world.

The paper's findings: Wasm is ~1.34x slower than native on average, and
WAMR vs WaTZ differ by under 0.02% — TrustZone adds no compute penalty.
The second finding is the architectural one and must reproduce exactly in
shape; the first reproduces in direction (the magnitude depends on the
substituted toolchains — see EXPERIMENTS.md).

A fourth configuration, AOT at ``opt_level=0`` (the reference codegen,
byte-identical to the pre-optimisation tier), measures what the optimiser
buys, and a fifth — AOT at ``opt_level=3``, driven by a profile recorded
on the same kernel — measures what profile guidance buys on top: the
``BENCH_polybench.json`` artifact records per-kernel ratios at every opt
level so future PRs can diff the compute-speed trajectory.
"""

from __future__ import annotations

import os
import time

from repro.bench import format_table, geometric_mean, save_json, save_report
from repro.core.runtime import NormalWorldRuntime
from repro.walc import compile_source
from repro.wasm.pgo import profile_module
from repro.workloads.polybench import all_kernels

_RUNS = 3


def _median_seconds(operation, runs=_RUNS):
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def _measure_all(device):
    session = device.open_watz(heap_size=12 * 1024 * 1024)
    normal_world = NormalWorldRuntime()
    reference_world = NormalWorldRuntime(opt_level=0)
    results = []
    for kernel in all_kernels():
        size = kernel.default_size
        binary = compile_source(kernel.walc_source(size))

        native_s = _median_seconds(lambda: kernel.native(size))

        baseline_app = reference_world.load(binary)
        baseline_s = _median_seconds(
            lambda: reference_world.invoke(baseline_app, "run"))

        wamr_app = normal_world.load(binary)
        wamr_s = _median_seconds(
            lambda: normal_world.invoke(wamr_app, "run"))

        profile = profile_module(binary, [("run", ())])
        pgo_world = NormalWorldRuntime(opt_level=3, profile=profile)
        pgo_app = pgo_world.load(binary)
        pgo_s = _median_seconds(lambda: pgo_world.invoke(pgo_app, "run"))

        loaded = device.load_wasm(session, binary)
        app = session.ta._apps[loaded["app"]]
        watz_s = _median_seconds(lambda: app.instance.invoke("run"))

        # Cross-check: all five computed the same checksum.
        assert normal_world.invoke(wamr_app, "run") == kernel.native(size) \
            == app.instance.invoke("run") \
            == reference_world.invoke(baseline_app, "run") \
            == pgo_world.invoke(pgo_app, "run")
        results.append((kernel.name, native_s, baseline_s, wamr_s, pgo_s,
                        watz_s))
    session.close()
    return results


def test_fig5_polybench(benchmark, device):
    results = benchmark.pedantic(lambda: _measure_all(device),
                                 rounds=1, iterations=1)
    rows = []
    wamr_ratios, watz_ratios, pair_deltas = [], [], []
    opt_speedups, pgo_ratios, pgo_speedups = [], [], []
    kernels_json = {}
    for name, native_s, baseline_s, wamr_s, pgo_s, watz_s in results:
        baseline_ratio = baseline_s / native_s
        wamr_ratio = wamr_s / native_s
        pgo_ratio = pgo_s / native_s
        watz_ratio = watz_s / native_s
        opt_speedup = baseline_s / wamr_s
        pgo_speedup = wamr_s / pgo_s
        wamr_ratios.append(wamr_ratio)
        watz_ratios.append(watz_ratio)
        opt_speedups.append(opt_speedup)
        pgo_ratios.append(pgo_ratio)
        pgo_speedups.append(pgo_speedup)
        pair_deltas.append(abs(watz_s - wamr_s) / wamr_s)
        kernels_json[name] = {
            "native_s": native_s,
            "aot_o0_s": baseline_s,
            "aot_o2_s": wamr_s,
            "aot_o3_s": pgo_s,
            "watz_s": watz_s,
            "o0_vs_native": baseline_ratio,
            "o2_vs_native": wamr_ratio,
            "o3_vs_native": pgo_ratio,
            "opt_speedup": opt_speedup,
            "pgo_speedup": pgo_speedup,
        }
        rows.append((name, f"{native_s * 1000:.1f} ms",
                     f"{baseline_ratio:.2f}x",
                     f"{wamr_ratio:.2f}x", f"{pgo_ratio:.2f}x",
                     f"{watz_ratio:.2f}x",
                     f"{opt_speedup:.2f}x"))
    opt_geo = geometric_mean(opt_speedups)
    pgo_geo = geometric_mean(pgo_ratios)
    baseline_geo = geometric_mean(
        [k["o0_vs_native"] for k in kernels_json.values()])
    rows.append(("geo-mean (paper: 1.34x / 1.34x)", "-",
                 f"{baseline_geo:.2f}x",
                 f"{geometric_mean(wamr_ratios):.2f}x",
                 f"{pgo_geo:.2f}x",
                 f"{geometric_mean(watz_ratios):.2f}x",
                 f"{opt_geo:.2f}x"))
    save_report("fig5_polybench", format_table(
        "Fig. 5 — PolyBench/C normalised to native "
        f"(median of {_RUNS} runs)",
        ["kernel", "native", "AOT o0", "WAMR (normal world)",
         "AOT o3 (profiled)", "WaTZ (secure world)", "o2 vs o0"],
        rows,
    ))
    save_json("BENCH_polybench", {
        "runs": _RUNS,
        "kernels": kernels_json,
        "geomean": {
            "o0_vs_native": baseline_geo,
            "o2_vs_native": geometric_mean(wamr_ratios),
            "o3_vs_native": pgo_geo,
            "watz_vs_native": geometric_mean(watz_ratios),
            "opt_speedup": opt_geo,
            "pgo_speedup": geometric_mean(pgo_speedups),
        },
    })

    # Headline shape 1: Wasm is slower than native for every kernel.
    assert all(ratio > 1.0 for ratio in watz_ratios)
    # Headline shape 2: WaTZ tracks WAMR closely — TrustZone itself adds
    # no computational slowdown (paper: <0.02%; we allow scheduler noise).
    median_delta = sorted(pair_deltas)[len(pair_deltas) // 2]
    assert median_delta < 0.10, median_delta
    # Acceptance floor for the optimisation tier: opt_level=2 improves the
    # geo-mean by >= 1.3x over the reference codegen.
    assert opt_geo >= 1.3, opt_geo


# -- CI perf smoke: a 3-kernel subset across the opt tiers --------------------

_SMOKE_KERNELS = ["gemm", "atax", "jacobi-1d"]


def _smoke_profiles():
    """Record (via a tracer, the trace-fed path) and persist a profile
    per smoke kernel. The saved files are CI artifacts: the exact inputs
    the o3 numbers in ``BENCH_polybench_smoke.json`` were produced from."""
    from repro.obs import Tracer, extract_profile

    directory = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
    os.makedirs(directory, exist_ok=True)
    profiles = {}
    for name in _SMOKE_KERNELS:
        from repro.workloads.polybench import get_kernel

        kernel = get_kernel(name)
        binary = compile_source(kernel.walc_source(kernel.default_size))
        tracer = Tracer()
        profile_module(binary, [("run", ())], tracer=tracer)
        profile = extract_profile(tracer.spans())
        profile.save(os.path.join(directory, f"profile_{name}.json"))
        profiles[name] = (binary, profile)
    return profiles


def _smoke_measure(profiles):
    from repro.wasm import AotCompiler
    from repro.workloads.polybench import get_kernel

    kernels_json = {}
    for name in _SMOKE_KERNELS:
        kernel = get_kernel(name)
        binary, profile = profiles[name]
        engines = {
            0: AotCompiler(opt_level=0),
            2: AotCompiler(opt_level=2),
            3: AotCompiler(opt_level=3, profile=profile),
        }
        seconds = {}
        results = {}
        for level, engine in engines.items():
            engine.instantiate(binary).invoke("run")  # warm cache+allocator
            fresh = engine.instantiate(binary)
            started = time.perf_counter()
            results[level] = fresh.invoke("run")
            seconds[level] = time.perf_counter() - started
        assert results[0] == results[2] == results[3] \
            == kernel.native(kernel.default_size)
        kernels_json[name] = {
            "aot_o0_s": seconds[0],
            "aot_o2_s": seconds[2],
            "aot_o3_s": seconds[3],
            "opt_speedup": seconds[0] / seconds[2],
            "pgo_speedup": seconds[2] / seconds[3],
        }
    return kernels_json


def test_polybench_opt_smoke():
    """CI gate: the optimising tier must never be slower than the
    reference codegen — and the profile-guided tier never slower than
    o2 — on a representative subset (dense matmul, sparse-ish vector
    kernel, stencil). Writes ``BENCH_polybench_smoke.json`` and a
    ``profile_<kernel>.json`` artifact per smoke kernel.

    Perf gates flake on loaded runners, so the o3-vs-o2 comparison is
    re-measured once before it may fail, and is only enforced on hosts
    with at least two CPUs (a single shared core serialises the pools
    and measures the scheduler, not the codegen)."""
    profiles = _smoke_profiles()
    kernels_json = _smoke_measure(profiles)
    geo = geometric_mean(
        [k["opt_speedup"] for k in kernels_json.values()])
    pgo_geo = geometric_mean(
        [k["pgo_speedup"] for k in kernels_json.values()])
    host_cpus = os.cpu_count() or 1
    if pgo_geo < 1.0 and host_cpus >= 2:
        # One re-measure against noise before the gate may fail.
        kernels_json = _smoke_measure(profiles)
        geo = geometric_mean(
            [k["opt_speedup"] for k in kernels_json.values()])
        pgo_geo = geometric_mean(
            [k["pgo_speedup"] for k in kernels_json.values()])
    save_json("BENCH_polybench_smoke", {
        "kernels": kernels_json,
        "geomean_opt_speedup": geo,
        "geomean_pgo_speedup": pgo_geo,
    })
    # The gates: opt_level=2 may never lose to opt_level=0, and the
    # profiled tier may never lose to o2 (small head-room for scheduler
    # noise on shared CI runners).
    assert geo >= 0.95, kernels_json
    assert all(k["opt_speedup"] >= 0.85 for k in kernels_json.values()), \
        kernels_json
    if host_cpus >= 2:
        assert pgo_geo >= 0.95, kernels_json
