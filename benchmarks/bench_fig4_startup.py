"""Fig. 4: startup breakdown of Wasm applications in WaTZ.

The paper loads nine applications of 1-9 MB and reports where the startup
time goes: loading the bytecode ~73%, runtime initialisation ~16%,
memory allocation ~5%, hashing ~4%, with transition / instantiation /
execution each under 1%. The pure-Python AOT engine is much slower than
WAMR's loader, so the binaries are scaled down 8x (0.125-1.125 MB); the
*fractions* are what Fig. 4 reports and what we compare.
"""

from __future__ import annotations

from repro.bench import format_table, save_report
from repro.workloads.startup import build_startup_app

#: 8x scale-down of the paper's 1..9 MB sweep.
SIZES_BYTES = [i * 1024 * 1024 // 8 for i in range(1, 10)]

_PAPER_FRACTIONS = {
    "load": 0.73, "runtime_init": 0.16, "alloc": 0.05, "hash": 0.04,
    "transition": 0.01, "instantiate": 0.01, "execute": 0.01,
}


def _load_all(device):
    results = []
    for size in SIZES_BYTES:
        binary = build_startup_app(size)
        session = device.open_watz(
            heap_size=min(23 * 1024 * 1024, 4 * len(binary) + (4 << 20)))
        loaded = device.load_wasm(session, binary, entry="entry")
        results.append((len(binary), loaded["breakdown"]))
        session.close()
    return results


def test_fig4_startup_breakdown(benchmark, device):
    results = benchmark.pedantic(lambda: _load_all(device),
                                 rounds=1, iterations=1)
    phases = ["transition", "alloc", "runtime_init", "load", "hash",
              "instantiate", "execute"]
    rows = []
    for size, breakdown in results:
        fractions = breakdown.fractions()
        rows.append(
            [f"{size / 1048576:.2f} MB", f"{breakdown.total_s:.2f} s"]
            + [f"{fractions[p] * 100:.1f}%" for p in phases]
        )
    rows.append(["paper (any size)", "-"]
                + [f"{_PAPER_FRACTIONS[p] * 100:.0f}%" for p in phases])
    save_report("fig4_startup", format_table(
        "Fig. 4 — startup breakdown (fraction of total per phase)",
        ["binary", "total"] + phases, rows,
    ))

    # Shape assertions across all sizes:
    for size, breakdown in results:
        fractions = breakdown.fractions()
        # Loading dominates, as in the paper.
        assert fractions["load"] > 0.5, (size, fractions)
        # Transition, instantiation and execution are minor phases.
        assert fractions["transition"] < 0.1
        assert fractions["execute"] < 0.1
    # Startup grows with binary size (roughly linearly).
    totals = [b.total_s for _s, b in results]
    assert totals[-1] > totals[0] * 4


def test_fig4_hash_overhead_is_small(device):
    """Paper: hashing for attestation adds ~4-5% over plain WAMR loading."""
    binary = build_startup_app(SIZES_BYTES[2])
    session = device.open_watz(heap_size=8 * 1024 * 1024)
    # Bypass the code cache: the breakdown sweep above already loaded this
    # binary, and a warm hit would collapse load_s and skew the fraction.
    loaded = device.load_wasm(session, binary, code_cache=False)
    breakdown = loaded["breakdown"]
    watz_extras = (breakdown.hash_s
                   + breakdown.transition_ns * 1e-9)
    assert watz_extras / breakdown.total_s < 0.15
    session.close()


def test_fig4_code_cache_cold_vs_warm(device):
    """Fleet steady state: the content-addressed code cache collapses the
    load phase (Fig. 4's dominant bar) on every repeat instantiation."""
    from repro.wasm.codecache import CodeCache, DEFAULT_CACHE

    binary = build_startup_app(SIZES_BYTES[1])
    session = device.open_watz(heap_size=8 * 1024 * 1024)
    DEFAULT_CACHE.invalidate(CodeCache.module_key(binary))

    cold = device.load_wasm(session, binary)["breakdown"]
    warm = device.load_wasm(session, binary)["breakdown"]
    bypass = device.load_wasm(session, binary,
                              code_cache=False)["breakdown"]
    session.close()

    def row(label, b):
        return [label, f"{b.total_s * 1e3:.2f} ms",
                f"{b.load_s * 1e3:.2f} ms",
                f"{b.load_s / (cold.load_s or 1.0) * 100:.0f}%"]

    save_report("fig4_code_cache", format_table(
        "Fig. 4 extension — startup with the content-addressed code cache",
        ["load", "total", "load phase", "load vs cold"],
        [row("cache-cold", cold), row("cache-warm", warm),
         row("cache-bypass", bypass)],
    ))

    # Warm loads skip decode/validate/compile entirely.
    assert warm.total_s < cold.total_s
    assert warm.load_s < cold.load_s
    # The bypass knob restores cold-path behaviour on a warm cache.
    assert bypass.load_s > warm.load_s
