"""Ablation A2: formal verification of the RA protocol (paper §VII).

Runs the Dolev–Yao checker over the shipped protocol (all claims must
hold, as Scyther found) and over every single-check mutation (each must
yield a concrete attack — the checker self-test of DESIGN.md ablation 3).
"""

from __future__ import annotations

from repro.bench import format_table, save_report
from repro.formal import (
    MUTATION_EXPECTATIONS,
    ProtocolVariant,
    run_mutation_suite,
    verify_protocol,
)


def test_ablation_formal_verification(benchmark):
    reports = benchmark.pedantic(run_mutation_suite, rounds=1, iterations=1)

    rows = []
    shipped = reports["shipped"]
    rows.append(("shipped protocol", "all claims hold (Scyther)",
                 "all hold" if shipped.all_hold
                 else f"FAILED: {shipped.failed_claims()}"))
    for mutation, report in reports.items():
        if mutation == "shipped":
            continue
        failed = report.failed_claims()
        rows.append((f"without {mutation}", "attack exists",
                     f"attack found: {', '.join(sorted(failed))}"
                     if failed else "NO ATTACK FOUND"))
    save_report("ablation_formal", format_table(
        "A2 — protocol verification (claims: secrecy x6, aliveness, weak "
        "agreement, NI-agreement x2, NI-synchronisation, reachability)",
        ["model", "expected", "result"], rows,
    ))

    assert shipped.all_hold, shipped.failed_claims()
    for mutation, expected in MUTATION_EXPECTATIONS.items():
        report = reports[mutation]
        assert set(expected) <= set(report.failed_claims()), mutation


def test_formal_claim_count_matches_paper():
    """Paper §VII: secrecy of session keys, shared secret and blob, plus
    aliveness, weak agreement, NI-agreement, NI-synchronisation and
    reachability."""
    report = verify_protocol(ProtocolVariant())
    assert len(report.claims) == 12
