"""Fleet gateway throughput: handshakes/sec and tail latency under load.

Drives the attestation gateway with the fleet load generator at
concurrency 1/4/16/64, with and without the appraisal cache, under
deliberate overload, and — the shard-scaling sweep — behind 1/2/4
verifier shard processes. Two kinds of numbers, never mixed (DESIGN.md,
"Clock discipline"):

* **live** — real wall-clock measurements of this host actually running
  every handshake (all crypto, all verifier checks). The *threaded*
  gateway is GIL-serialised, so its live numbers are flat in the worker
  count and establish the single-process baseline; the *sharded* gateway
  (:mod:`repro.fleet.shards`) runs one process per shard and its live
  numbers scale with the cores this host actually has.
* **modeled** — the measured costs composed through a deterministic
  discrete-event model where attesters are independent boards and lanes
  are ideal serial servers. The sweep reports the live-vs-model gap per
  shard count; the model remains the reference for projecting beyond
  this host's core count.

The simulated world-transition time per forwarded message is reported
separately in virtual nanoseconds. Machine-readable series land in
``bench_results/BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import os
from statistics import median

from repro.bench import format_table, host_metadata, save_report, save_trace
from repro.core.verifier import VerifierPolicy
from repro.fleet import (LOOP_BACKEND, FleetConfig, FleetModel, LoadProfile,
                         build_attester_stacks, model_fleet, run_load,
                         start_fleet_gateway)
from repro.obs import TraceAnalyzer, Tracer, flame_summary

HOST, PORT_BASE = "fleet.bench", 7800

CONCURRENCIES = (1, 4, 16, 64)
SHARD_COUNTS = (1, 2, 4)
SHARD_CONCURRENCIES = (4, 16)
HANDSHAKES_EACH = 2
BLOB_SIZE = 4 * 1024
MODEL_WORKERS = 16
#: Acceptance: live C=16 throughput behind 4 shards vs the threaded
#: baseline. Only assertable on a host with cores for the shards to use.
SHARD_SPEEDUP_THRESHOLD = 2.5
SHARD_SPEEDUP_MIN_CPUS = 4
#: Smoke gate: live throughput of ONE shard at C=16 against the model
#: fed by that same run's measured costs. The model is an ideal serial
#: server, so the ratio is the single-loop core's efficiency — IPC,
#: framing and loop overhead are everything it can lose.
SMOKE_LIVE_OVER_MODEL = 0.85
#: Shard scaling (1 -> 2 non-decreasing) needs real cores to show up.
SHARD_SCALING_MIN_CPUS = 4


def _host_meta() -> dict:
    """Host-load context recorded next to every series: throughput and
    live/model ratios are only comparable under like conditions, and the
    scaling assertions gate on these fields. Builds on the shared
    :func:`repro.bench.host_metadata` so every BENCH series agrees on
    the field names."""
    meta = host_metadata()
    meta["loop_backend"] = LOOP_BACKEND
    return meta


def _run_live(testbed, identity, port, concurrency, enable_cache=True,
              rate_per_s=None, rate_burst=32, handshakes=HANDSHAKES_EACH,
              traced=False, shards=0):
    """One fresh gateway + fleet of attesters, driven to completion.

    ``traced=True`` attaches a dual-clock tracer to the gateway board
    (and routes a tracing recorder through the verifier); the default
    keeps the production fast path, where every hook is one attribute
    test against ``None``. ``shards=N`` starts the process-sharded
    gateway instead of the in-process thread pool (tracing stays a
    threaded-gateway facility — shard boards live in other processes).
    """
    secret = bytes(range(256)) * (BLOB_SIZE // 256)
    policy = VerifierPolicy()
    config = FleetConfig(workers=4, enable_cache=enable_cache,
                         rate_per_s=rate_per_s, rate_burst=rate_burst,
                         shards=shards)
    tracer = None
    recorder = None
    client = None
    if not shards:
        gateway_device = testbed.create_device()
        client = gateway_device.client
        if traced:
            tracer = Tracer(sim_now=gateway_device.soc.clock.now_ns)
            recorder = tracer.recorder()
    gateway = start_fleet_gateway(
        testbed.network, HOST, port, client,
        testbed.vendor_key, identity, policy, lambda: secret, config,
        recorder=recorder, tracer=tracer)
    try:
        stacks = build_attester_stacks(testbed, policy, concurrency)
        report = run_load(testbed.network, HOST, port,
                          identity.public_bytes(), stacks,
                          LoadProfile(concurrency=concurrency,
                                      handshakes_per_attester=handshakes,
                                      blob_size=BLOB_SIZE))
        records = gateway.drain_records()
        snapshot = gateway.snapshot()
    finally:
        gateway.stop()
    return report, records, snapshot, tracer


def _save_bench_json(payload: dict) -> str:
    directory = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_fleet.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _live_stats(report, records):
    lat = report.latency_percentiles()
    sim_ns = (int(median(r.sim_transition_ns for r in records))
              if records else 0)
    return {
        "live_hs_per_s": round(report.throughput_hz, 3),
        "p50_ms": round(lat["p50"] * 1000, 3),
        "p95_ms": round(lat["p95"] * 1000, 3),
        "p99_ms": round(lat["p99"] * 1000, 3),
        "sim_ns_per_msg": sim_ns,
    }


def _shard_scaling_sweep(testbed, identity, port_base,
                         shard_counts=SHARD_COUNTS,
                         concurrencies=SHARD_CONCURRENCIES,
                         handshakes=HANDSHAKES_EACH, model=None,
                         model_cell=None):
    """Live shard runs plus the model's projection for the same lanes.

    ``model_cell=(shards, concurrency)`` builds the capacity model from
    that cell's own measured records instead of an external one, so the
    live/model ratio compares a run against costs measured under the
    SAME load — the self-consistency form the smoke gate uses. Returns
    ``(sweep, model)``.
    """
    sweep = {}
    raw = {}
    port = port_base
    for shards in shard_counts:
        sweep[shards] = {}
        for concurrency in concurrencies:
            report, records, snapshot, _ = _run_live(
                testbed, identity, port, concurrency,
                handshakes=handshakes, shards=shards)
            port += 1
            expected = concurrency * handshakes
            assert len(report.completed) == expected, \
                [(r.error, r.attester) for r in report.failed]
            assert snapshot["shards"]["respawns"] == 0
            sweep[shards][concurrency] = _live_stats(report, records)
            raw[(shards, concurrency)] = (report, records)
    if model is None and model_cell is not None:
        model = FleetModel.from_measurements(*raw[model_cell])
    if model is not None:
        for (shards, concurrency), (report, _records) in raw.items():
            projection = model_fleet(
                model, workers=shards, concurrency=concurrency,
                handshakes_per_attester=handshakes)
            stats = sweep[shards][concurrency]
            stats["model_hs_per_s"] = round(projection.throughput_hz, 3)
            stats["live_over_model"] = round(
                report.throughput_hz / projection.throughput_hz, 3) \
                if projection.throughput_hz else None
    return sweep, model


def _flame_smoke(testbed, identity, port) -> str:
    """One traced run on the async core; returns the flame report."""
    secret = bytes(range(256)) * (BLOB_SIZE // 256)
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key, identity,
        policy, lambda: secret,
        FleetConfig(workers=4, shards=1, shard_trace=True))
    try:
        stacks = build_attester_stacks(testbed, policy, 2)
        report = run_load(testbed.network, HOST, port,
                          identity.public_bytes(), stacks,
                          LoadProfile(concurrency=2,
                                      handshakes_per_attester=1,
                                      blob_size=BLOB_SIZE))
        assert len(report.completed) == 2, \
            [(r.error, r.attester) for r in report.failed]
        return gateway.flame_report()
    finally:
        gateway.stop()


def test_fleet_shard_smoke(testbed, verifier_identity):
    """CI-sized shard scaling: 2 shards, one small sweep, ~seconds.

    Proves the process-sharded path end to end on whatever runner CI
    gives us, gates the single-loop core's efficiency (live over the
    self-measured model at 1 shard, C=16), and always writes
    ``BENCH_fleet.json`` (mode "smoke") so the artifact exists for
    eyeballing across runs. The full sweep in
    :func:`test_fleet_throughput` overwrites it with the real series
    when the complete benchmark runs. Assertions that depend on host
    load gate on the recorded metadata: an xdist-parallel run shares its
    cores with sibling workers and can only record the numbers.
    """
    meta = _host_meta()
    unshared_host = meta["xdist_workers"] <= 1
    # The model overlaps client segments with the server lane for free;
    # that needs a second core to even be approachable. A 1-core host —
    # or an xdist worker sharing its cores — records the ratio ungated.
    gate_eligible = unshared_host and meta["host_cpus"] >= 2
    sweep, _model = _shard_scaling_sweep(
        testbed, verifier_identity, PORT_BASE + 40,
        shard_counts=(1, 2), concurrencies=(4, 16),
        handshakes=1, model_cell=(1, 16))
    ratio = sweep[1][16]["live_over_model"]
    retried = False
    if gate_eligible and ratio < SMOKE_LIVE_OVER_MODEL:
        # One re-measure before judging: a single noisy run (CI neighbor
        # burst) should not fail the gate the steady state passes.
        retry_sweep, _ = _shard_scaling_sweep(
            testbed, verifier_identity, PORT_BASE + 44,
            shard_counts=(1,), concurrencies=(16,),
            handshakes=1, model_cell=(1, 16))
        retried = True
        if retry_sweep[1][16]["live_over_model"] > ratio:
            sweep[1][16] = retry_sweep[1][16]
            ratio = retry_sweep[1][16]["live_over_model"]
    rows = [(shards, concurrency,
             f"{stats['live_hs_per_s']:.1f}",
             f"{stats['live_over_model']:.2f}",
             f"{stats['sim_ns_per_msg']}")
            for shards, by_conc in sweep.items()
            for concurrency, stats in by_conc.items()]
    save_report("fleet_shard_smoke", format_table(
        f"Shard smoke — live, {meta['host_cpus']} host core(s), "
        f"{meta['loop_backend']} loop",
        ["shards", "conc", "live hs/s", "live/model", "sim ns/msg"], rows))
    flame = _flame_smoke(testbed, verifier_identity, PORT_BASE + 46)
    assert "fleet.request" in flame
    save_report("fleet_shard_flame", flame)
    _save_bench_json({
        "mode": "smoke",
        **meta,
        "handshakes_per_attester": 1,
        "live_over_model_gate": {
            "shards": 1, "concurrency": 16, "ratio": ratio,
            "threshold": SMOKE_LIVE_OVER_MODEL,
            "asserted": gate_eligible,
            "retried": retried,
        },
        "shard_sweep": {
            str(shards): {str(concurrency): stats
                          for concurrency, stats in by_conc.items()}
            for shards, by_conc in sweep.items()
        },
    })
    if gate_eligible:
        # The single-loop core has no per-message thread wakeups left to
        # lose: one shard must deliver >= 85% of the ideal serial server
        # fed with its own measured costs.
        assert ratio >= SMOKE_LIVE_OVER_MODEL, sweep[1]
    if unshared_host and meta["host_cpus"] >= SHARD_SCALING_MIN_CPUS:
        # With real cores for both workers, adding a shard must not cost
        # throughput (2% tolerance for run-to-run noise).
        assert sweep[2][16]["live_hs_per_s"] >= \
            0.98 * sweep[1][16]["live_hs_per_s"], sweep


def test_fleet_throughput(testbed, verifier_identity):
    identity = verifier_identity

    # -- live sweep over concurrency ------------------------------------------
    live = {}
    for offset, concurrency in enumerate(CONCURRENCIES):
        report, records, snapshot, _ = _run_live(
            testbed, identity, PORT_BASE + offset, concurrency)
        expected = concurrency * HANDSHAKES_EACH
        assert len(report.completed) == expected, \
            [(r.error, r.attester) for r in report.failed]
        assert not report.failed and not report.rejected
        live[concurrency] = (report, records, snapshot)

    # -- capacity model fed by the C=16 measurements --------------------------
    report16, records16, snapshot16 = live[16]
    model = FleetModel.from_measurements(report16, records16)
    modeled = {c: model_fleet(model, workers=MODEL_WORKERS, concurrency=c,
                              handshakes_per_attester=HANDSHAKES_EACH)
               for c in CONCURRENCIES}
    # Acceptance (a): the worker pool scales throughput from 1 to 16
    # concurrent attesters.
    assert modeled[16].throughput_hz > 3 * modeled[1].throughput_hz

    rows = []
    for concurrency in CONCURRENCIES:
        report, records, _ = live[concurrency]
        lat = report.latency_percentiles()
        projection = modeled[concurrency]
        sim_ms = median(r.sim_transition_ns for r in records) / 1e6
        rows.append((
            concurrency,
            f"{report.throughput_hz:.1f}",
            f"{lat['p50'] * 1000:.0f}/{lat['p95'] * 1000:.0f}/"
            f"{lat['p99'] * 1000:.0f}",
            f"{projection.throughput_hz:.1f}",
            f"{projection.p50_s * 1000:.0f}/{projection.p95_s * 1000:.0f}/"
            f"{projection.p99_s * 1000:.0f}",
            f"{sim_ms:.3f}",
        ))
    sweep_table = format_table(
        "Fleet throughput — threaded gateway (single process, "
        f"GIL-bound) vs modeled ({MODEL_WORKERS} ideal lanes)",
        ["conc", "live hs/s", "live p50/95/99 ms",
         "model hs/s", "model p50/95/99 ms", "sim ns->ms/msg"],
        rows,
    )

    # -- shard-scaling sweep: processes instead of threads --------------------
    # The live gateway behind 1/2/4 verifier shard processes, each its
    # own Python process with its own GIL. The model projects the same
    # lane counts as ideal serial servers; live/model is the gap the
    # router's IPC and this host's core count actually cost.
    host_cpus = os.cpu_count() or 1
    shard_sweep, _ = _shard_scaling_sweep(testbed, identity, PORT_BASE + 20,
                                          model=model)
    shard_rows = []
    for shards in SHARD_COUNTS:
        for concurrency in SHARD_CONCURRENCIES:
            stats = shard_sweep[shards][concurrency]
            shard_rows.append((
                shards, concurrency,
                f"{stats['live_hs_per_s']:.1f}",
                f"{stats['p50_ms']:.0f}/{stats['p95_ms']:.0f}/"
                f"{stats['p99_ms']:.0f}",
                f"{stats['model_hs_per_s']:.1f}",
                f"{stats['live_over_model']:.2f}",
            ))
    shard_table = format_table(
        f"Shard scaling — live process shards on {host_cpus} host "
        "core(s) vs modeled ideal lanes",
        ["shards", "conc", "live hs/s", "live p50/95/99 ms",
         "model hs/s", "live/model"],
        shard_rows,
    )
    threaded_baseline_hz = report16.throughput_hz
    sharded4_hz = shard_sweep[4][16]["live_hs_per_s"]
    speedup = (sharded4_hz / threaded_baseline_hz
               if threaded_baseline_hz else 0.0)
    can_assert = host_cpus >= SHARD_SPEEDUP_MIN_CPUS
    speedup_line = (
        f"shard speedup at C=16: 4 shards {sharded4_hz:.1f} hs/s vs "
        f"threaded baseline {threaded_baseline_hz:.1f} hs/s = "
        f"{speedup:.2f}x (threshold {SHARD_SPEEDUP_THRESHOLD}x "
        f"{'asserted' if can_assert else 'recorded only'} on this "
        f"{host_cpus}-core host)"
    )
    if can_assert:
        # Acceptance (d): on a multi-core host the sharded gateway's live
        # throughput escapes the GIL. A 1-core host can only record it.
        assert speedup >= SHARD_SPEEDUP_THRESHOLD, speedup_line

    # -- acceptance (b): cache hit path is measurably cheaper -----------------
    hit_summary = snapshot16["latency"].get("service.msg2_hit", {"count": 0})
    miss_summary = snapshot16["latency"].get("service.msg2_miss",
                                             {"count": 0})
    assert hit_summary["count"] > 0 and miss_summary["count"] > 0
    assert hit_summary["p50"] < miss_summary["p50"], (hit_summary,
                                                      miss_summary)

    report_nc, records_nc, _, _ = _run_live(
        testbed, identity, PORT_BASE + 10, 16, enable_cache=False)
    assert len(report_nc.completed) == 16 * HANDSHAKES_EACH
    nc_msg2 = median(r.service_s for r in records_nc if r.kind == "msg2")
    cache_rows = [
        ("msg2 verify, cache miss", f"{miss_summary['p50'] * 1000:.1f}",
         miss_summary["count"], "full ECDSA verify"),
        ("msg2 verify, cache hit", f"{hit_summary['p50'] * 1000:.1f}",
         hit_summary["count"], "appraisal memoised"),
        ("msg2 verify, cache off", f"{nc_msg2 * 1000:.1f}",
         sum(1 for r in records_nc if r.kind == "msg2"), "baseline gateway"),
    ]
    cache_table = format_table(
        "Appraisal cache — msg2 service time at concurrency 16",
        ["path", "p50 ms", "msgs", "note"], cache_rows,
    )
    cache_line = (f"cache stats at C=16: {snapshot16['cache']}")

    # -- acceptance (c): overload sheds with FleetOverloaded ------------------
    # Rate 0 with a burst of 6 tokens (one token per message, two messages
    # per handshake): a sequential phase completes two fully verified
    # handshakes on the first four tokens, then a flood of 8 attesters
    # finds at most two tokens left and is shed with FleetOverloaded.
    secret = bytes(range(256)) * (BLOB_SIZE // 256)
    overload_policy = VerifierPolicy()
    overload_gateway = start_fleet_gateway(
        testbed.network, HOST, PORT_BASE + 11,
        testbed.create_device().client, testbed.vendor_key, identity,
        overload_policy, lambda: secret,
        FleetConfig(workers=4, rate_per_s=0.0, rate_burst=6))
    try:
        calm_stacks = build_attester_stacks(testbed, overload_policy, 1)
        calm = run_load(testbed.network, HOST, PORT_BASE + 11,
                        identity.public_bytes(), calm_stacks,
                        LoadProfile(concurrency=1, handshakes_per_attester=2,
                                    blob_size=BLOB_SIZE))
        flood_stacks = build_attester_stacks(testbed, overload_policy, 8)
        flood = run_load(testbed.network, HOST, PORT_BASE + 11,
                         identity.public_bytes(), flood_stacks,
                         LoadProfile(concurrency=8, handshakes_per_attester=1,
                                     blob_size=BLOB_SIZE))
        overload_snapshot = overload_gateway.snapshot()
    finally:
        overload_gateway.stop()
    assert len(calm.completed) == 2 and not calm.rejected
    assert all(r.secret_len == BLOB_SIZE for r in calm.completed)
    assert len(flood.rejected) >= 7, "expected FleetOverloaded rejections"
    assert not flood.failed
    assert overload_snapshot["counters"]["rejected_rate"] >= 7
    overload_lines = [
        "overload run (rate=0, burst=6): sequential phase completed "
        f"{len(calm.completed)} verified handshakes; flood of 8 attesters: "
        f"{len(flood.completed)} completed, {len(flood.rejected)} rejected "
        "with FleetOverloaded",
        f"admission stats: {overload_snapshot['admission']}",
    ]

    model_line = (
        "model inputs (medians of the live C=16 run): "
        f"client pre/mid/post = {model.client_pre_s * 1000:.2f}/"
        f"{model.client_mid_s * 1000:.2f}/{model.client_post_s * 1000:.2f} ms, "
        f"server msg0/msg2 = {model.server_msg0_s * 1000:.2f}/"
        f"{model.server_msg2_s * 1000:.2f} ms"
    )
    save_report("fleet_throughput", "\n".join([
        sweep_table, "", shard_table, speedup_line, "", model_line, "",
        cache_table, cache_line, "", *overload_lines,
    ]))

    _save_bench_json({
        "mode": "full",
        **_host_meta(),
        "handshakes_per_attester": HANDSHAKES_EACH,
        "threaded_baseline": {
            str(concurrency): _live_stats(live[concurrency][0],
                                          live[concurrency][1])
            for concurrency in CONCURRENCIES
        },
        "shard_sweep": {
            str(shards): {str(concurrency): stats
                          for concurrency, stats in by_conc.items()}
            for shards, by_conc in shard_sweep.items()
        },
        "speedup": {
            "c16_4shards_over_threaded": round(speedup, 3),
            "threshold": SHARD_SPEEDUP_THRESHOLD,
            "min_cpus_to_assert": SHARD_SPEEDUP_MIN_CPUS,
            "asserted": can_assert,
        },
        "model_inputs_ms": {
            "client_pre": round(model.client_pre_s * 1000, 4),
            "client_mid": round(model.client_mid_s * 1000, 4),
            "client_post": round(model.client_post_s * 1000, 4),
            "server_msg0": round(model.server_msg0_s * 1000, 4),
            "server_msg2": round(model.server_msg2_s * 1000, 4),
        },
    })

    # -- trace artifacts: one traced run, exported for Perfetto ---------------
    # A separate small run with the tracer attached; the sweep above runs
    # the production fast path (tracer is None at every hook).
    report_tr, _, _, tracer = _run_live(
        testbed, identity, PORT_BASE + 12, 2, traced=True)
    assert len(report_tr.completed) == 2 * HANDSHAKES_EACH
    assert tracer.dropped == 0
    spans = tracer.drain()
    analyzer = TraceAnalyzer(spans)
    # The Table-IV property on live data: per-phase virtual-ns self times
    # under the request spans account for the requests' full totals.
    request_rows = analyzer.breakdown("fleet.request")
    assert sum(row.sim_ns for row in request_rows) == \
        sum(span.sim_ns for span in analyzer.named("fleet.request"))
    save_trace("fleet_throughput_trace", spans,
               process_name="watz-fleet-gateway")
    save_report("fleet_throughput_phases", "\n\n".join([
        analyzer.format_breakdown(
            "fleet.request",
            "gateway per-message phases (derived from spans only)"),
        flame_summary(spans),
    ]))
