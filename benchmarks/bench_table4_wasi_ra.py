"""Table IV: execution time of the WASI-RA API, end to end.

Measures each WASI-RA call from the hosted Wasm application's point of
view on the full platform: handshake (msg0+msg1 exchange), collect_quote
(evidence signing), send_quote (fire-and-forget), and receive_data for
0.1 MB and 1 MB secret blobs (which absorbs the verifier's msg2
verification, as the paper observes in §VI-F).

Wall-clock numbers are real crypto on this machine; the simulated network
and world-transition time runs on the virtual clock and is reported
separately, following DESIGN.md's clock discipline.

Paper values: handshake 1.34 s, collect_quote 239 ms, send_quote 1 ms,
receive_data 168 ms (0.1 MB) / 209 ms (1 MB).
"""

from __future__ import annotations

import time

from repro.bench import format_duration, format_table, save_report
from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.workloads.attested import build_attested_app

HOST, PORT_BASE = "table4.verifier", 7400

_PAPER = {
    "handshake": 1.34,
    "collect_quote": 0.239,
    "send_quote": 0.001,
    "receive_data 0.1 MB": 0.168,
    "receive_data 1 MB": 0.209,
}


def _measure(testbed, device, identity, size, port):
    secret = bytes(range(256)) * (size // 256)
    app = build_attested_app(identity.public_bytes(), HOST, port,
                             secret_capacity=size + 4096)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(app).digest)
    start_verifier(testbed.network, HOST, port, device.client,
                   testbed.vendor_key, identity, policy, lambda: secret)
    # Paper §VI-F: attester 14 MB / verifier 13 MB... here 17/10 as in the
    # Genann setup; the WaTZ session takes the larger share.
    session = device.open_watz(heap_size=14 * 1024 * 1024)
    loaded = device.load_wasm(session, app)
    app_handle = loaded["app"]

    timings = {}
    sim_start = device.soc.clock.now_ns()

    started = time.perf_counter()
    ctx = device.run_wasm(session, app_handle, "ra_handshake")
    timings["handshake"] = time.perf_counter() - started
    assert ctx > 0

    started = time.perf_counter()
    quote = device.run_wasm(session, app_handle, "ra_collect_quote")
    timings["collect_quote"] = time.perf_counter() - started
    assert quote > 0

    started = time.perf_counter()
    rc = device.run_wasm(session, app_handle, "ra_send_quote", ctx, quote)
    timings["send_quote"] = time.perf_counter() - started
    assert rc == 0

    started = time.perf_counter()
    received = device.run_wasm(session, app_handle, "ra_receive_data", ctx)
    timings["receive_data"] = time.perf_counter() - started
    assert received == len(secret)

    device.run_wasm(session, app_handle, "ra_dispose", ctx, quote)
    timings["simulated_ns"] = device.soc.clock.now_ns() - sim_start
    session.close()
    testbed.network.shutdown(HOST, port)
    return timings


def test_table4_wasi_ra(benchmark, testbed, device, verifier_identity):
    small = benchmark.pedantic(
        lambda: _measure(testbed, device, verifier_identity,
                         100 * 1024, PORT_BASE),
        rounds=1, iterations=1)
    large = _measure(testbed, device, verifier_identity,
                     1024 * 1024, PORT_BASE + 1)

    rows = [
        ("handshake", format_duration(_PAPER["handshake"]),
         format_duration(small["handshake"]), "msg0+msg1, both key gens"),
        ("collect_quote", format_duration(_PAPER["collect_quote"]),
         format_duration(small["collect_quote"]), "evidence signature"),
        ("send_quote", format_duration(_PAPER["send_quote"]),
         format_duration(small["send_quote"]), "fire-and-forget"),
        ("receive_data 0.1 MB", format_duration(_PAPER["receive_data 0.1 MB"]),
         format_duration(small["receive_data"]),
         "absorbs verifier's msg2 checks"),
        ("receive_data 1 MB", format_duration(_PAPER["receive_data 1 MB"]),
         format_duration(large["receive_data"]), ""),
        ("simulated platform time", "-",
         f"{small['simulated_ns'] / 1e6:.2f} ms (virtual)",
         "transitions + socket RPCs"),
    ]
    save_report("table4_wasi_ra", format_table(
        "Table IV — WASI-RA API execution time (paper vs measured)",
        ["call", "paper", "measured", "note"], rows,
    ))

    # Shape: the handshake is the most expensive call; sending the quote
    # is the cheapest (fire-and-forget — with the fast EC paths the
    # evidence signature is now sub-millisecond, so the margin over it is
    # narrower than the paper's mbedTLS-era 5x); receiving absorbs the
    # verifier's verification and grows with the blob.
    assert small["handshake"] > small["collect_quote"]
    assert small["send_quote"] < small["collect_quote"]
    assert small["send_quote"] < small["receive_data"] / 5
    assert large["receive_data"] > small["receive_data"]
