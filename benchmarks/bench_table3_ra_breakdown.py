"""Table III: execution-time breakdown of msg0/msg1/msg2.

Reproduces the paper's per-message cost matrix for attester and verifier
across four categories (memory management, key generation, symmetric and
asymmetric cryptography). The crypto is real computation, so this bench
reports wall-clock time of the pure-Python primitives; the *structure* to
compare with the paper is which cells are populated and the asymmetric-
vs-symmetric dominance (the paper reports up to 2774x).
"""

from __future__ import annotations

import os

from repro.bench import format_duration, format_table, save_report
from repro.core import protocol
from repro.core.attester import Attester
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ec, ecdsa

_DEVICE = ecdsa.keypair_from_private(31415926)
_IDENTITY = ecdsa.keypair_from_private(27182818)
_CLAIM = measure_bytes(b"table3 app").digest

_ROUNDS = 10

# Paper Table III (converted to seconds) for the side-by-side print.
_PAPER = {
    ("attester", "msg0", protocol.MEMORY): 7e-6,
    ("attester", "msg0", protocol.KEYGEN): 236e-3,
    ("attester", "msg1", protocol.MEMORY): 50e-6,
    ("attester", "msg1", protocol.KEYGEN): 235e-3,
    ("attester", "msg1", protocol.SYMMETRIC): 88e-6,
    ("attester", "msg1", protocol.ASYMMETRIC): 159e-3,
    ("attester", "msg2", protocol.MEMORY): 5e-6,
    ("attester", "msg2", protocol.SYMMETRIC): 79e-6,
    ("attester", "msg2", protocol.ASYMMETRIC): 238e-3,
    ("verifier", "msg0", protocol.MEMORY): 52e-6,
    ("verifier", "msg0", protocol.KEYGEN): 471e-3,
    ("verifier", "msg1", protocol.MEMORY): 7e-6,
    ("verifier", "msg1", protocol.SYMMETRIC): 85e-6,
    ("verifier", "msg1", protocol.ASYMMETRIC): 236e-3,
    ("verifier", "msg2", protocol.MEMORY): 7e-6,
    ("verifier", "msg2", protocol.SYMMETRIC): 80e-6,
    ("verifier", "msg2", protocol.ASYMMETRIC): 159e-3,
}


def _run_with_recorders():
    # Table III models the paper's cost matrix, whose headline (asymmetric
    # crypto dwarfs symmetric) belongs to textbook scalar multiplication.
    # The reproduction therefore runs on the retained naive reference;
    # bench_crypto_microbench.py covers the fast paths' new ratios.
    attester_recorder = protocol.CostRecorder()
    verifier_recorder = protocol.CostRecorder()
    attester = Attester(os.urandom, attester_recorder)
    policy = VerifierPolicy()
    policy.endorse(_DEVICE.public_bytes())
    policy.trust_measurement(_CLAIM)
    verifier = Verifier(_IDENTITY, policy, os.urandom, verifier_recorder)
    with ec.reference_paths():
        for _ in range(_ROUNDS):
            session = attester.start_session(_IDENTITY.public_bytes())
            verifier_session, msg1 = verifier.handle_msg0(
                attester.make_msg0(session))
            attester.handle_msg1(session, msg1)
            msg2 = attester.attest(
                session, _CLAIM, _DEVICE.public_bytes(),
                lambda body: ecdsa.sign(_DEVICE.private, body))
            msg3 = verifier.handle_msg2(verifier_session, msg2, b"blob")
            attester.handle_msg3(session, msg3)
    return attester_recorder, verifier_recorder


def test_table3_breakdown(benchmark):
    attester_recorder, verifier_recorder = benchmark.pedantic(
        _run_with_recorders, rounds=1, iterations=1)

    def table(role, recorder):
        rows = []
        for category in protocol.CATEGORIES:
            row = [category]
            for message in ("msg0", "msg1", "msg2"):
                measured = recorder.get(message, category) / _ROUNDS
                paper = _PAPER.get((role, message, category))
                cell = format_duration(measured) if measured else "-"
                paper_cell = format_duration(paper) if paper else "-"
                row.append(f"{cell} (paper {paper_cell})")
            rows.append(row)
        return format_table(
            f"Table III ({role}) — per-message cost, mean of {_ROUNDS}",
            ["category", "msg0", "msg1", "msg2"], rows)

    save_report("table3_attester", table("attester", attester_recorder))
    save_report("table3_verifier", table("verifier", verifier_recorder))

    # Shape assertions, mirroring the paper's analysis:
    # 1. Key generation dominates msg0 on both sides; the verifier does
    #    roughly double the attester's msg0 keygen work (keygen + derive).
    att_msg0 = attester_recorder.get("msg0", protocol.KEYGEN) / _ROUNDS
    ver_msg0 = verifier_recorder.get("msg0", protocol.KEYGEN) / _ROUNDS
    assert ver_msg0 > att_msg0
    # 2. Asymmetric crypto dominates symmetric on msg1 and msg2. The
    #    paper reports up to 2774x on the Cortex-A53; our pure-Python
    #    CMAC is comparatively slower so the factor is smaller, but the
    #    ordering — Table III's headline — must hold clearly.
    for recorder in (attester_recorder, verifier_recorder):
        for message in ("msg1", "msg2"):
            asym = recorder.get(message, protocol.ASYMMETRIC)
            sym = recorder.get(message, protocol.SYMMETRIC)
            assert asym > 3 * sym, (message, asym, sym)
    # 3. Memory management is negligible next to the cryptography.
    assert attester_recorder.get("msg1", protocol.MEMORY) < att_msg0
