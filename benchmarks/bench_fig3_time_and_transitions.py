"""Fig. 3: time-retrieval and world-transition latencies.

These are the paper's architectural latencies, so they live on the
simulated clock; the paper's numbers were used to *calibrate the cost
primitives* and this bench verifies that the end-to-end figures emerge
from composition (see repro/hw/costs.py).

Paper values: native-TA time fetch ~10 us, Wasm time fetch ~13 us
(Fig. 3a, 1000 runs each); world enter 86 us, return 20 us (Fig. 3b).
"""

from __future__ import annotations

from repro.bench import paper_comparison, save_report
from repro.hw import StopWatch
from repro.walc import compile_source

_RUNS = 1000  # as in the paper

_CLOCK_APP = """
memory 1;
import fn wasi_snapshot_preview1.clock_time_get(a: i32, b: i64, c: i32) -> i32;
export fn now() -> i64 {
  clock_time_get(1, 1L, 64);
  return load_i64(64);
}
"""


def _native_ta_fetch_ns(device) -> float:
    samples = []
    with device.soc.enter_secure_world():
        for _ in range(_RUNS):
            with StopWatch(device.soc.clock) as watch:
                device.soc.read_monotonic_ns()
            samples.append(watch.elapsed_ns)
    samples.sort()
    return samples[len(samples) // 2]


def _wasm_fetch_ns(device) -> float:
    session = device.open_watz(heap_size=4 * 1024 * 1024)
    loaded = device.load_wasm(session, compile_source(_CLOCK_APP))
    app = session.ta._apps[loaded["app"]]
    samples = []
    with device.soc.enter_secure_world():
        for _ in range(_RUNS):
            with StopWatch(device.soc.clock) as watch:
                app.instance.invoke("now")
            samples.append(watch.elapsed_ns)
    session.close()
    samples.sort()
    return samples[len(samples) // 2]


def _transition_ns(device):
    costs = device.soc.costs
    clock = device.soc.clock
    before = clock.now_ns()
    with device.soc.enter_secure_world():
        inside = clock.now_ns()
    after = clock.now_ns()
    return inside - before, after - inside


def test_fig3a_time_retrieval(benchmark, device):
    native_ns = _native_ta_fetch_ns(device)
    wasm_ns = benchmark.pedantic(lambda: _wasm_fetch_ns(device),
                                 rounds=1, iterations=1)
    rows = [
        ("native TA time fetch", "10 us", f"{native_ns / 1000:.1f} us",
         "kernel RPC + clock read"),
        ("Wasm time fetch", "13 us", f"{wasm_ns / 1000:.1f} us",
         "adds the WASI dispatch"),
        ("Wasm - native delta", "~3 us",
         f"{(wasm_ns - native_ns) / 1000:.1f} us", "= wasi_dispatch_ns"),
    ]
    save_report("fig3a_time_retrieval",
                paper_comparison("Fig. 3a — time retrieval (median of "
                                 f"{_RUNS})", rows))
    assert abs(native_ns - 10_000) < 2_000
    assert abs(wasm_ns - 13_000) < 2_000
    assert wasm_ns > native_ns


def test_fig3b_world_transitions(benchmark, device):
    enter_ns, return_ns = benchmark.pedantic(
        lambda: _transition_ns(device), rounds=5, iterations=1)
    rows = [
        ("normal -> secure call", "86 us", f"{enter_ns / 1000:.1f} us",
         "smc + driver + dispatch"),
        ("secure -> normal return", "20 us", f"{return_ns / 1000:.1f} us",
         "smc + return path"),
    ]
    save_report("fig3b_world_transitions",
                paper_comparison("Fig. 3b — world transition latency", rows))
    assert enter_ns == device.soc.costs.world_enter_ns == 86_000
    assert return_ns == device.soc.costs.world_return_ns == 20_000
