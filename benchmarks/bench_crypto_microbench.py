"""Microbenchmarks for the attestation crypto fast paths.

Compares the wNAF/comb/Shamir P-256 implementation against the retained
double-and-add reference on the four operations that dominate the WaTZ
handshake (Table III): ECDSA sign, ECDSA verify, ECDH shared-secret
derivation and a full msg0..msg3 protocol exchange. Headline rows are
measured with warm precomputation tables — the fleet steady state, where
the generator tables are built once per process and the verifier holds a
per-key table for each endorsed device.

Writes ``bench_results/crypto_microbench.txt`` (human-readable) and
``bench_results/BENCH_crypto.json`` (machine-readable, for CI artifact
diffing). The ``>= 3x`` assertions on verify and ECDH are the PR's
acceptance floor; measured speedups are typically 4-5x.
"""

from __future__ import annotations

import hashlib
import time

from repro.bench import format_duration, format_table, save_json, save_report
from repro.core import VerifierPolicy
from repro.core.attester import Attester
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier
from repro.crypto import ec, ecdh, ecdsa

_ROUNDS = 12
_MESSAGE = b"watz evidence body for the microbench"


def _private_scalar(label: bytes) -> int:
    """A deterministic full-width scalar (naive cost scales with bits)."""
    return int.from_bytes(hashlib.sha256(label).digest(), "big") % ec.N


_SIGNER = ecdsa.keypair_from_private(_private_scalar(b"microbench signer"))
_PEER = ecdsa.keypair_from_private(_private_scalar(b"microbench peer"))


def _time(callable_, rounds=_ROUNDS):
    """Best-of-rounds wall clock; robust against scheduler noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _deterministic_random(label):
    state = {"n": 0}

    def random_bytes(size):
        state["n"] += 1
        out = b""
        while len(out) < size:
            out += hashlib.sha256(
                f"{label}/{state['n']}/{len(out)}".encode()).digest()
        return out[:size]

    return random_bytes


def _handshake_once():
    """One full msg0..msg3 exchange between in-process engines."""
    claim = measure_bytes(b"microbench app").digest
    policy = VerifierPolicy()
    policy.endorse(_SIGNER.public_bytes())
    policy.trust_measurement(claim)
    attester = Attester(_deterministic_random("a"))
    verifier = Verifier(_PEER, policy, _deterministic_random("v"))
    session = attester.start_session(_PEER.public_bytes())
    vsession, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    signed = attester.collect_evidence(
        session.anchor, claim, _SIGNER.public_bytes(),
        lambda body: ecdsa.sign(_SIGNER.private, body))
    msg3 = verifier.handle_msg2(vsession, attester.make_msg2(session, signed),
                                b"secret" * 16)
    return attester.handle_msg3(session, msg3)


def _measure_suite():
    """Time the four operations on the currently selected crypto path."""
    signature = ecdsa.sign(_SIGNER.private, _MESSAGE)
    return {
        "sign": _time(lambda: ecdsa.sign(_SIGNER.private, _MESSAGE)),
        "verify": _time(
            lambda: ecdsa.verify(_SIGNER.public, _MESSAGE, signature)),
        "ecdh": _time(
            lambda: ecdh.shared_secret(_SIGNER.private, _PEER.public)),
        "handshake": _time(_handshake_once, rounds=3),
    }


def test_crypto_microbench():
    # Warm tables first: generator combs are process-wide and built once;
    # the per-key tables model a verifier that has precomputed its
    # endorsed device keys (exactly what the gateway prewarm does).
    ec.warm_generator_tables()
    ec.precompute_public_key(_SIGNER.public)
    ec.precompute_public_key(_PEER.public)
    fast = _measure_suite()

    with ec.reference_paths():
        naive = _measure_suite()

    operations = ["sign", "verify", "ecdh", "handshake"]
    speedups = {op: naive[op] / fast[op] for op in operations}
    rows = [[op, format_duration(naive[op]), format_duration(fast[op]),
             f"{speedups[op]:.1f}x"] for op in operations]
    save_report("crypto_microbench", format_table(
        "P-256 fast paths vs naive reference (warm tables, best of "
        f"{_ROUNDS})",
        ["operation", "naive", "fast", "speedup"], rows,
    ))

    save_json("BENCH_crypto", {
        "rounds": _ROUNDS,
        "naive_s": naive,
        "fast_s": fast,
        "speedup": speedups,
    })

    # Acceptance floor: the handshake-dominating verify and ECDH must be
    # at least 3x over the naive reference.
    assert speedups["verify"] >= 3.0, speedups
    assert speedups["ecdh"] >= 3.0, speedups
    assert fast["handshake"] < naive["handshake"]
