"""Fabric churn: cross-shard resumption hit-rate and storm drain cost.

The replicated appraisal fabric exists for one workload: a large fleet
of device identities reconnecting on a Zipf schedule against shards the
devices do not choose. This benchmark measures that workload three ways,
all landing in ``bench_results/BENCH_fabric.json``:

* **live** — a real 2-shard gateway driven through a deterministic Zipf
  reconnect schedule, once partitioned (``fabric=False``, the pathology:
  every shard bounce invalidates the previous shard's ticket) and once
  with the replication bus on, against a single-shard baseline. The
  acceptance gate is the ISSUE's: the fabric's hit-rate recovers to
  within 10% of the single-shard baseline, and cross-shard hits appear
  *only* when the fabric is enabled.
* **modeled** — the discrete-event churn model run on the identical
  sequence (it mirrors the gateway's mechanics: global connection
  numbering, ``conn % shards`` affinity, fresh-key-per-miss), so the
  live-vs-model gap is reported per mode; then the same model at the
  million-identity scale no live run could touch.
* **storm** — a live mass-eviction through the coalescing evictor
  (O(shards) batched frames) against the per-device projection, plus
  the million-device storm drain-time model.
"""

from __future__ import annotations

from repro.bench import format_table, save_json, save_report
from repro.core.verifier import VerifierPolicy
from repro.fleet import (ChurnProfile, FleetConfig, build_attester_stacks,
                         model_churn, model_revocation_storm, run_churn,
                         start_fleet_gateway)
from repro.fleet.fabric.churn import zipf_sequence

HOST, PORT_BASE = "fleet.bench", 7880

#: Live smoke scale: big enough for the partitioned pathology to cost
#: a visible fraction of the hit-rate, small enough for CI seconds.
LIVE_IDENTITIES = 16
LIVE_RECONNECTS = 96
ZIPF_S = 1.1
STORM_SESSIONS = 500
#: ISSUE acceptance: fabric hit-rate within 10% of the 1-shard baseline.
FABRIC_RECOVERY = 0.9
#: The DES model mirrors the live mechanics; the gap is measurement
#: noise (TTL clocking), not structure.
MODEL_GAP_MAX = 0.1

MILLION = ChurnProfile(identities=1_000_000, reconnects=100_000,
                       zipf_s=ZIPF_S, shards=4)


def _save_bench_json(payload: dict) -> str:
    return save_json("BENCH_fabric", payload)


def _live_churn(testbed, identity, port, shards, fabric, sequence):
    """One fresh gateway + device fleet driven through ``sequence``."""
    policy = VerifierPolicy()
    gateway = start_fleet_gateway(
        testbed.network, HOST, port, None, testbed.vendor_key, identity,
        policy, lambda: b"fabric bench secret blob" * 8,
        FleetConfig(shards=shards, fabric=fabric))
    try:
        stacks = build_attester_stacks(testbed, policy, LIVE_IDENTITIES)
        report = run_churn(testbed.network, HOST, port,
                           identity.public_bytes(), stacks, sequence)
        records = gateway.drain_records()
        counters = gateway.snapshot()["counters"]
    finally:
        gateway.stop()
    assert report.failed == 0 and report.rejected == 0, report.errors
    msg2 = [r for r in records if r.kind == "msg2"]
    hits = sum(1 for r in msg2 if r.cache_hit)
    return {
        "shards": shards,
        "fabric": fabric,
        "reconnects": len(sequence),
        "hit_rate": round(hits / len(msg2), 4) if msg2 else 0.0,
        "cross_shard_hits": counters.get("fabric_cross_shard_hits", 0),
        "fabric_mints": counters.get("fabric_mints", 0),
        "throughput_hz": round(report.throughput_hz, 2),
    }


def _wait_for(probe, timeout_s=10.0):
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if probe():
            return True
        time.sleep(0.01)
    return probe()


def test_fabric_churn_smoke(testbed, verifier_identity):
    identity = verifier_identity
    sequence = zipf_sequence(LIVE_IDENTITIES, LIVE_RECONNECTS, s=ZIPF_S)

    # -- live: baseline, partitioned pathology, fabric recovery ---------------
    baseline = _live_churn(testbed, identity, PORT_BASE, 1, False, sequence)
    split = _live_churn(testbed, identity, PORT_BASE + 1, 2, False, sequence)
    fabric = _live_churn(testbed, identity, PORT_BASE + 2, 2, True, sequence)

    # Cross-shard hits exist exactly when the fabric is enabled.
    assert fabric["cross_shard_hits"] > 0
    assert split["cross_shard_hits"] == 0 and \
        baseline["cross_shard_hits"] == 0
    # The pathology is real and the fabric recovers the baseline.
    assert baseline["hit_rate"] > 0
    assert split["hit_rate"] < baseline["hit_rate"]
    assert fabric["hit_rate"] >= FABRIC_RECOVERY * baseline["hit_rate"], \
        (fabric, baseline)

    # -- model: same sequence, same mechanics ---------------------------------
    profile = ChurnProfile(identities=LIVE_IDENTITIES,
                           reconnects=LIVE_RECONNECTS, zipf_s=ZIPF_S,
                           shards=2)
    predictions = {
        "baseline": model_churn(
            ChurnProfile(identities=LIVE_IDENTITIES,
                         reconnects=LIVE_RECONNECTS, zipf_s=ZIPF_S,
                         shards=1), fabric=False, sequence=sequence),
        "split": model_churn(profile, fabric=False, sequence=sequence),
        "fabric": model_churn(profile, fabric=True, sequence=sequence),
    }
    live_by_name = {"baseline": baseline, "split": split, "fabric": fabric}
    for name, predicted in predictions.items():
        gap = abs(predicted.hit_rate - live_by_name[name]["hit_rate"])
        assert gap <= MODEL_GAP_MAX, (name, predicted.hit_rate,
                                      live_by_name[name])
        live_by_name[name]["model_hit_rate"] = round(predicted.hit_rate, 4)
        live_by_name[name]["model_gap"] = round(gap, 4)

    # -- storm: live coalesced fan-out vs the per-device projection -----------
    policy = VerifierPolicy()
    storm_gateway = start_fleet_gateway(
        testbed.network, HOST, PORT_BASE + 3, None, testbed.vendor_key,
        identity, policy, lambda: b"fabric bench secret blob" * 8,
        FleetConfig(shards=2, evict_coalesce_s=0.05,
                    max_sessions=2 * STORM_SESSIONS))
    try:
        for conn in range(1, STORM_SESSIONS + 1):
            storm_gateway.sessions.open(conn, conn % 2)
        for lane in (0, 1):
            storm_gateway.sessions.evict_lane(lane, "storm")
        assert _wait_for(lambda: storm_gateway.metrics.counter(
            "evict_coalesced") >= STORM_SESSIONS)
        storm_frames = storm_gateway.metrics.counter("evict_batched")
    finally:
        storm_gateway.stop()
    storm_batched = model_revocation_storm(STORM_SESSIONS, 2, batched=True)
    storm_naive = model_revocation_storm(STORM_SESSIONS, 2, batched=False)
    # O(shards x windows) frames, never O(devices).
    assert storm_frames < STORM_SESSIONS / 10
    assert storm_naive.frames == STORM_SESSIONS

    # -- model: the million-identity fleet no live smoke can touch ------------
    million_sequence = MILLION.sequence()
    million = {
        mode: model_churn(MILLION, fabric=is_fabric,
                          sequence=million_sequence)
        for mode, is_fabric in (("partitioned", False), ("fabric", True))
    }
    assert million["fabric"].hit_rate > million["partitioned"].hit_rate
    assert million["fabric"].cross_shard_hits > 0
    million_storm = {
        "batched": model_revocation_storm(MILLION.identities,
                                          MILLION.shards, batched=True),
        "naive": model_revocation_storm(MILLION.identities,
                                        MILLION.shards, batched=False),
    }
    assert million_storm["batched"].frames == MILLION.shards

    # -- report ---------------------------------------------------------------
    rows = [(name, stats["shards"], "on" if stats["fabric"] else "off",
             f"{stats['hit_rate']:.3f}", f"{stats['model_hit_rate']:.3f}",
             stats["cross_shard_hits"])
            for name, stats in live_by_name.items()]
    churn_table = format_table(
        f"Fabric churn — live {LIVE_RECONNECTS} Zipf({ZIPF_S}) reconnects "
        f"over {LIVE_IDENTITIES} devices vs the DES model",
        ["run", "shards", "fabric", "live hit-rate", "model hit-rate",
         "x-shard hits"], rows)
    storm_line = (
        f"storm: {STORM_SESSIONS} sessions drained in {storm_frames} "
        f"batched frames live (model: {storm_batched.frames} batched / "
        f"{storm_naive.frames} per-device)")
    million_line = (
        f"million-scale model ({MILLION.identities} ids, "
        f"{MILLION.reconnects} reconnects, {MILLION.shards} shards): "
        f"partitioned {million['partitioned'].hit_rate:.3f} vs fabric "
        f"{million['fabric'].hit_rate:.3f} hit-rate; storm drain "
        f"{million_storm['batched'].drain_s:.2f}s batched vs "
        f"{million_storm['naive'].drain_s:.2f}s per-device")
    save_report("fabric_churn", "\n".join([churn_table, "", storm_line,
                                           million_line]))

    _save_bench_json({
        "mode": "smoke",
        "zipf_s": ZIPF_S,
        "live": live_by_name,
        "storm": {
            "sessions": STORM_SESSIONS,
            "live_batched_frames": storm_frames,
            "model_batched_frames": storm_batched.frames,
            "model_naive_frames": storm_naive.frames,
            "model_batched_drain_s": round(storm_batched.drain_s, 6),
            "model_naive_drain_s": round(storm_naive.drain_s, 6),
        },
        "million_model": {
            "identities": MILLION.identities,
            "reconnects": MILLION.reconnects,
            "shards": MILLION.shards,
            "partitioned_hit_rate": round(
                million["partitioned"].hit_rate, 4),
            "fabric_hit_rate": round(million["fabric"].hit_rate, 4),
            "fabric_cross_shard_hits": million["fabric"].cross_shard_hits,
            "storm_batched_drain_s": round(
                million_storm["batched"].drain_s, 4),
            "storm_naive_drain_s": round(million_storm["naive"].drain_s, 4),
        },
    })
