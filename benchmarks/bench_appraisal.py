"""Multi-TEE appraisal cost: per-backend latency, policy-eval overhead.

Three questions the numbers answer, per evidence backend (TrustZone
native, TrustZone-over-envelope, SGX-style, TDX-style):

* what does one msg2 appraisal cost end to end (decode + signature
  verify + declarative policy eval)?
* how do the envelope/codec and the compiled policy evaluator split that
  cost — i.e. what did the new subsystem *add* to the hot path?
* is the legacy single-TEE deployment unaffected? The acceptance gate:
  arming the verifier with an appraisal engine moves the seed msg2 path
  by **< 5%** (the declarative evaluator runs in microseconds against a
  signature verify in milliseconds).

Machine-readable series land in ``bench_results/BENCH_appraisal.json``.
"""

from __future__ import annotations

import os
import time
from statistics import median

from repro.appraisal import (
    AppraisalEngine,
    AppraisalPolicy,
    default_registry,
    synthetic,
)
from repro.appraisal.codecs.trustzone import TrustZoneView
from repro.appraisal.envelope import TEE_SGX, TEE_TRUSTZONE
from repro.bench import format_table, save_json, save_report
from repro.core.attester import Attester
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa

IDENTITY = ecdsa.keypair_from_private(0xA11CE + 6)
DEVICE = ecdsa.keypair_from_private(0xB0B + 6)
CLAIM = measure_bytes(b"appraisal bench app").digest
BOOT = b"\x0B" * 32
SECRET = b"appraisal benchmark secret blob!"

REPEATS = 12
OVERHEAD_REPEATS = 16
OVERHEAD_LIMIT = 0.05


class _TrustZoneDevice:
    tee_type = TEE_TRUSTZONE

    def __init__(self, attester):
        self._attester = attester

    @property
    def attestation_public_key(self):
        return DEVICE.public_bytes()

    def collect_evidence(self, anchor):
        signed = self._attester.collect_evidence(
            anchor, CLAIM, DEVICE.public_bytes(),
            lambda body: ecdsa.sign(DEVICE.private, body), boot_claim=BOOT)
        return TrustZoneView(signed)


def _appraisal_policy(devices):
    policy = AppraisalPolicy()
    for device in devices:
        tee = policy.accept_tee(device.tee_type)
        tee.endorse(device.attestation_public_key)
        if device.tee_type == TEE_TRUSTZONE:
            tee.trust_measurement(CLAIM)
            tee.trust_boot_measurement(BOOT)
        elif device.tee_type == TEE_SGX:
            tee.trust_measurement(device.mrenclave)
            tee.trust_signer(device.mrsigner)
        else:
            tee.trust_measurement(device.mrtd)
    return policy


def _legacy_policy():
    policy = VerifierPolicy()
    policy.endorse(DEVICE.public_bytes())
    policy.trust_measurement(CLAIM)
    policy.trust_boot_measurement(BOOT)
    return policy


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _multi_msg2_times(attester, verifier, device, repeats=REPEATS):
    """Per-handshake seconds spent in the verifier's msg2 handler."""
    times = []
    for _ in range(repeats):
        session = attester.start_session(IDENTITY.public_bytes())
        vsession, msg1 = verifier.handle_msg0_multi(
            attester.make_msg0_multi(session, device.tee_type))
        attester.handle_msg1(session, msg1)
        view = device.collect_evidence(session.anchor)
        msg2 = attester.make_msg2_multi(session, view)
        elapsed, msg3 = _timed(
            lambda: verifier.handle_msg2_multi(vsession, msg2, SECRET))
        assert attester.handle_msg3(session, msg3) == SECRET
        times.append(elapsed)
    return times


def _legacy_msg2_times(attester, verifier, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        session = attester.start_session(IDENTITY.public_bytes())
        vsession, msg1 = verifier.handle_msg0(attester.make_msg0(session))
        attester.handle_msg1(session, msg1)
        signed = attester.collect_evidence(
            session.anchor, CLAIM, DEVICE.public_bytes(),
            lambda body: ecdsa.sign(DEVICE.private, body), boot_claim=BOOT)
        msg2 = attester.make_msg2(session, signed)
        elapsed, msg3 = _timed(
            lambda: verifier.handle_msg2(vsession, msg2, SECRET))
        assert attester.handle_msg3(session, msg3) == SECRET
        times.append(elapsed)
    return times


def _component_times(view, evaluator, repeats=200):
    """Microseconds for the pieces PR 6 added to the msg2 hot path."""
    registry = default_registry()
    wire = view.envelope()
    decode = []
    for _ in range(repeats):
        elapsed, _unused = _timed(lambda: registry.decode(wire))
        decode.append(elapsed)
    evaluate = []
    for _ in range(repeats):
        elapsed, verdict = _timed(lambda: evaluator.evaluate(view))
        assert verdict.accepted
        evaluate.append(elapsed)
    return median(decode), median(evaluate)


def _save_bench_json(payload: dict) -> str:
    return save_json("BENCH_appraisal", payload)


def test_appraisal_latency_and_overhead():
    import random

    attester = Attester(os.urandom)
    devices = {
        "trustzone": _TrustZoneDevice(attester),
        "sgx": synthetic.sgx_enclave(0, CLAIM),
        "tdx": synthetic.tdx_domain(0, CLAIM),
    }
    policy = _appraisal_policy(devices.values())
    evaluator = policy.compile()

    # -- per-backend envelope-path latency ------------------------------------
    backends = {}
    for name, device in devices.items():
        engine = AppraisalEngine(policy)
        verifier = Verifier(IDENTITY, VerifierPolicy(), os.urandom,
                            engine=engine)
        msg2 = _multi_msg2_times(attester, verifier, device)
        view = device.collect_evidence(b"\x5A" * 32)
        decode_s, evaluate_s = _component_times(view, evaluator)
        backends[name] = {
            "msg2_ms": round(median(msg2) * 1e3, 3),
            "decode_us": round(decode_s * 1e6, 2),
            "policy_eval_us": round(evaluate_s * 1e6, 2),
            "envelope_bytes": len(view.envelope()),
        }

    # -- legacy-path overhead: seed verifier vs engine-armed ------------------
    # Interleave the two configurations so host noise hits both equally.
    plain = Verifier(IDENTITY, _legacy_policy(), os.urandom)
    armed = Verifier(IDENTITY, _legacy_policy(), os.urandom,
                     engine=AppraisalEngine(
                         AppraisalPolicy.from_verifier_policy(
                             _legacy_policy())))
    plain_times, armed_times = [], []
    order = [0, 1] * OVERHEAD_REPEATS
    random.shuffle(order)
    for which in order:
        if which == 0:
            plain_times += _legacy_msg2_times(attester, plain, repeats=1)
        else:
            armed_times += _legacy_msg2_times(attester, armed, repeats=1)
    plain_ms = median(plain_times) * 1e3
    armed_ms = median(armed_times) * 1e3
    overhead = (armed_ms - plain_ms) / plain_ms

    # The declarative evaluator itself must be noise against the
    # signature verify: its pure cost is the architectural bound on the
    # overhead, independent of host jitter.
    eval_share = (backends["trustzone"]["policy_eval_us"] / 1e3) \
        / backends["trustzone"]["msg2_ms"]
    assert eval_share < OVERHEAD_LIMIT, \
        f"policy eval is {eval_share:.1%} of msg2 (limit {OVERHEAD_LIMIT:.0%})"
    assert overhead < OVERHEAD_LIMIT, \
        f"engine-armed legacy msg2 is {overhead:+.1%} vs seed " \
        f"(limit {OVERHEAD_LIMIT:.0%})"

    rows = [(name, stats["msg2_ms"], stats["decode_us"],
             stats["policy_eval_us"], stats["envelope_bytes"])
            for name, stats in sorted(backends.items())]
    rows.append(("legacy (seed)", round(plain_ms, 3), "-", "-", "-"))
    rows.append(("legacy (engine-armed)", round(armed_ms, 3), "-", "-", "-"))
    text = format_table(
        "Multi-TEE appraisal: msg2 latency per backend",
        ["backend", "msg2 ms", "decode us", "policy eval us", "env bytes"],
        rows)
    text += (f"\nlegacy-path overhead (engine-armed vs seed): "
             f"{overhead:+.2%} (gate < {OVERHEAD_LIMIT:.0%})")
    save_report("appraisal_latency", text)
    _save_bench_json({
        "mode": "smoke",
        "backends": backends,
        "legacy_overhead": {
            "plain_ms": round(plain_ms, 3),
            "armed_ms": round(armed_ms, 3),
            "overhead_fraction": round(overhead, 4),
            "limit": OVERHEAD_LIMIT,
        },
    })
