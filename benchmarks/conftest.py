"""Shared benchmark fixtures: a booted device and a deployed verifier."""

from __future__ import annotations

import pytest

from repro.crypto import ecdsa
from repro.testbed import Testbed


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    return Testbed()


@pytest.fixture(scope="session")
def device(testbed):
    return testbed.create_device()


@pytest.fixture(scope="session")
def verifier_identity() -> ecdsa.KeyPair:
    return ecdsa.keypair_from_private(0xC0FFEE + 7)
