"""Fig. 8: Genann training time versus dataset size.

The end-to-end machine-learning scenario of paper §VI-F: in the WAMR
baseline the (replicated Iris) dataset is read from a regular file
through the WASI file system; in WaTZ the same application first
retrieves the dataset over the remote-attestation channel, then trains. Fig. 8 reports the *training* time only, and the
paper finds WaTZ within ~1.4% of WAMR.
"""

from __future__ import annotations

import time

from repro.bench import format_duration, format_table, save_json, save_report
from repro.core import VerifierPolicy, measure_bytes, start_verifier
from repro.core.runtime import NormalWorldRuntime
from repro.workloads.datasets import RECORD_SIZE, dataset_of_size
from repro.workloads.genann.wasm_impl import (
    SECRET_ADDR,
    build_attested_ann,
    build_standalone_ann,
)

HOST, PORT_BASE = "fig8.verifier", 7800

SIZES = [100 * 1024, 400 * 1024, 700 * 1024, 1024 * 1024]

_EPOCHS = 1
_RATE = 0.5
_RUNS = 3  # the optimised AOT tier trains fast enough to need medians


def _median_train_seconds(instance, records):
    samples = []
    for _ in range(_RUNS):
        started = time.perf_counter()
        instance.invoke("ann_train", records, _EPOCHS, _RATE)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def _train_wamr(size):
    blob = dataset_of_size(size)
    runtime = NormalWorldRuntime()
    from repro.wasi import WasiFilesystem
    from repro.workloads.genann.wasm_impl import DATASET_FILENAME

    filesystem = WasiFilesystem()
    filesystem.write_file(DATASET_FILENAME, blob)
    app = runtime.load(build_standalone_ann(len(blob) + 4096),
                       filesystem=filesystem)
    loaded = app.instance.invoke("ann_load_file")  # the "regular file" read
    assert loaded == len(blob), loaded
    app.instance.invoke("ann_init", 1)
    records = len(blob) // RECORD_SIZE
    return _median_train_seconds(app.instance, records), records


def _train_watz(testbed, device, identity, size, port):
    blob = dataset_of_size(size)
    binary = build_attested_ann(identity.public_bytes(), HOST, port,
                                data_capacity=len(blob) + 4096)
    policy = VerifierPolicy()
    policy.endorse(device.attestation_public_key)
    policy.trust_measurement(measure_bytes(binary).digest)
    start_verifier(testbed.network, HOST, port, device.client,
                   testbed.vendor_key, identity, policy, lambda: blob)
    session = device.open_watz(heap_size=17 * 1024 * 1024)
    loaded = device.load_wasm(session, binary)
    handle = loaded["app"]
    received = device.run_wasm(session, handle, "attest")
    assert received == len(blob)
    device.run_wasm(session, handle, "ann_init", 1)
    records = len(blob) // RECORD_SIZE
    app = session.ta._apps[handle]
    with device.soc.enter_secure_world():
        elapsed = _median_train_seconds(app.instance, records)
    session.close()
    testbed.network.shutdown(HOST, port)
    return elapsed, records


def _sweep(testbed, device, identity):
    results = []
    for index, size in enumerate(SIZES):
        wamr_s, records = _train_wamr(size)
        watz_s, records_watz = _train_watz(testbed, device, identity, size,
                                           PORT_BASE + index)
        assert records == records_watz
        results.append((size, records, wamr_s, watz_s))
    return results


def test_fig8_genann_training(benchmark, testbed, device, verifier_identity):
    results = benchmark.pedantic(
        lambda: _sweep(testbed, device, verifier_identity),
        rounds=1, iterations=1)
    rows = []
    deltas = []
    sizes_json = {}
    for size, records, wamr_s, watz_s in results:
        delta = (watz_s - wamr_s) / wamr_s
        deltas.append(abs(delta))
        sizes_json[f"{size // 1024}kB"] = {
            "records": records,
            "wamr_s": wamr_s,
            "watz_s": watz_s,
            "delta": delta,
        }
        rows.append((f"{size // 1024} kB", records,
                     format_duration(wamr_s), format_duration(watz_s),
                     f"{delta * +100:+.1f}%"))
    save_json("BENCH_genann", {
        "epochs": _EPOCHS,
        "rate": _RATE,
        "runs": _RUNS,
        "sizes": sizes_json,
    })
    save_report("fig8_genann", format_table(
        "Fig. 8 — Genann training time (1 epoch, 4-4-3) — paper finds "
        "WaTZ within ~1.4% of WAMR",
        ["dataset", "records", "WAMR (file)", "WaTZ (RA channel)", "delta"],
        rows,
    ))

    # Shape 1: training time grows with the dataset.
    assert results[-1][2] > results[0][2] * 3
    assert results[-1][3] > results[0][3] * 3
    # Shape 2: WaTZ training matches WAMR (same engine, no TEE penalty).
    assert sorted(deltas)[len(deltas) // 2] < 0.10
