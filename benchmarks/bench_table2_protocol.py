"""Table II: the remote-attestation protocol — structure and round trip.

Table II in the paper is the protocol definition; the reproduction prints
the realised message layout (field sizes) and benchmarks a full protocol
round trip, which every other RA result builds on.
"""

from __future__ import annotations

import os

from repro.bench import format_table, save_report
from repro.core import protocol
from repro.core.attester import Attester
from repro.core.evidence import EVIDENCE_BODY_SIZE, EVIDENCE_SIZE
from repro.core.measurement import measure_bytes
from repro.core.verifier import Verifier, VerifierPolicy
from repro.crypto import ecdsa

_DEVICE = ecdsa.keypair_from_private(1234567 + 2)
_IDENTITY = ecdsa.keypair_from_private(7654321)
_CLAIM = measure_bytes(b"benchmark app").digest


def _roundtrip() -> bytes:
    attester = Attester(os.urandom)
    policy = VerifierPolicy()
    policy.endorse(_DEVICE.public_bytes())
    policy.trust_measurement(_CLAIM)
    verifier = Verifier(_IDENTITY, policy, os.urandom)
    session = attester.start_session(_IDENTITY.public_bytes())
    verifier_session, msg1 = verifier.handle_msg0(attester.make_msg0(session))
    attester.handle_msg1(session, msg1)
    msg2 = attester.attest(session, _CLAIM, _DEVICE.public_bytes(),
                           lambda body: ecdsa.sign(_DEVICE.private, body))
    msg3 = verifier.handle_msg2(verifier_session, msg2, b"secret blob")
    return attester.handle_msg3(session, msg3)


def test_table2_protocol_roundtrip(benchmark):
    blob = benchmark.pedantic(_roundtrip, rounds=5, iterations=1)
    assert blob == b"secret blob"

    rows = [
        ("msg0", "G_a", 1 + 65),
        ("msg1", "G_v || V || SIGN_V(G_v||G_a) || MAC", 1 + 65 + 65 + 64 + 16),
        ("msg2", "G_a || evidence || SIGN_A || MAC",
         1 + 65 + EVIDENCE_SIZE + 16),
        ("  evidence", "anchor || version || claim || boot || A",
         EVIDENCE_BODY_SIZE),
        ("msg3", "iv || AES-GCM_Ke(blob)", 1 + 12 + len(b"secret blob") + 16),
    ]
    save_report("table2_protocol", format_table(
        "Table II — realised message layout (bytes, incl. 1-byte tag)",
        ["message", "contents", "size"], rows,
    ))
