"""Table I: feature matrix of TEE runtimes for Wasm.

The paper's Table I is a qualitative comparison; this bench asserts that
the reproduction actually *has* each WaTZ feature (by touching the
implementing module) and regenerates the matrix.
"""

from __future__ import annotations

from repro.bench import format_table, save_report

# name -> (AOT, WASI, RA, RA-in-WASI, uRT, IoT TEE, TEEs) as in Table I.
RELATED_WORK = {
    "TWINE": (True, True, False, False, True, False, "SGX"),
    "Veracruz": (False, True, True, False, False, False, "Nitro, CCA"),
    "Enarx": (False, True, True, False, False, False, "SGX, SEV"),
    "AccTEE": (False, False, False, False, False, False, "SGX"),
    "Se-Lambda": (False, False, True, False, False, False, "SGX"),
    "Teaclave": (False, False, True, False, True, False, "SGX"),
    "WaTZ": (True, True, True, True, True, True, "TrustZone"),
}


def _watz_features() -> tuple:
    """Derive WaTZ's row from the code base rather than hardcoding it."""
    from repro.core.runtime import _ENGINES
    from repro.core.wasi_ra import _SIGNATURES
    from repro.core.verifier import Verifier  # noqa: F401  (RA support)
    from repro.wasi import wasi_function_count

    aot = "aot" in _ENGINES
    wasi = wasi_function_count() == 45
    ra = True
    ra_in_wasi = len(_SIGNATURES) == 6
    micro_runtime = True  # the runtime TA is a single small module
    iot_tee = True        # targets the simulated i.MX 8MQ class
    return (aot, wasi, ra, ra_in_wasi, micro_runtime, iot_tee, "TrustZone")


def test_table1_feature_matrix(benchmark):
    derived = benchmark(_watz_features)
    assert derived == RELATED_WORK["WaTZ"]

    def mark(flag):
        return "yes" if flag else "no"

    rows = []
    for system, row in RELATED_WORK.items():
        rows.append([system] + [mark(v) for v in row[:-1]] + [row[-1]])
    save_report("table1_features", format_table(
        "Table I — related-work feature comparison",
        ["system", "AOT", "WASI", "RA", "RA in WASI", "uRT", "IoT TEE",
         "TEE(s)"],
        rows,
    ))


def test_watz_is_the_only_row_with_everything():
    full_rows = [name for name, row in RELATED_WORK.items() if all(row[:-1])]
    assert full_rows == ["WaTZ"]
