"""Ablation A1: AOT versus interpreted execution.

The paper's justification for extending OP-TEE with executable pages:
"The AOT execution speed is on average 28x faster than with
interpretation" (§III). This ablation runs a PolyBench subset on both
engines and reports the factor.
"""

from __future__ import annotations

import time

from repro.bench import format_table, geometric_mean, save_report
from repro.walc import compile_source
from repro.wasm import AotCompiler, Interpreter
from repro.workloads.polybench import get_kernel

_KERNELS = ["gemm", "atax", "jacobi-1d", "floyd-warshall", "durbin",
            "trisolv"]
_SCALE_DIVISOR = 3  # interpreter-friendly sizes


def _measure():
    results = []
    for name in _KERNELS:
        kernel = get_kernel(name)
        size = max(6, kernel.default_size // _SCALE_DIVISOR)
        binary = compile_source(kernel.walc_source(size))
        aot = AotCompiler().instantiate(binary)
        interp = Interpreter().instantiate(binary)
        assert aot.invoke("run") == interp.invoke("run")

        started = time.perf_counter()
        aot.invoke("run")
        aot_s = time.perf_counter() - started
        started = time.perf_counter()
        interp.invoke("run")
        interp_s = time.perf_counter() - started
        results.append((name, size, aot_s, interp_s))
    return results


def test_ablation_aot_vs_interpreter(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    factors = []
    for name, size, aot_s, interp_s in results:
        factor = interp_s / aot_s
        factors.append(factor)
        rows.append((name, size, f"{aot_s * 1000:.1f} ms",
                     f"{interp_s * 1000:.1f} ms", f"{factor:.1f}x"))
    overall = geometric_mean(factors)
    rows.append(("geo-mean (paper: ~28x)", "-", "-", "-", f"{overall:.1f}x"))
    save_report("ablation_aot", format_table(
        "A1 — AOT vs interpreted execution",
        ["kernel", "size", "AOT", "interpreter", "speed-up"], rows,
    ))
    # The paper's motivation must hold decisively: AOT is an order of
    # magnitude faster, justifying the executable-pages kernel extension.
    assert overall > 10, overall


def test_stock_optee_cannot_run_aot(testbed):
    """The other half of the ablation: without the paper's kernel
    extension, AOT loading is impossible — interpretation would be the
    only option."""
    import pytest

    from repro.errors import TeeAccessDenied
    from repro.workloads.polybench import get_kernel

    device = testbed.create_device(allow_executable_pages=False)
    session = device.open_watz(heap_size=8 * 1024 * 1024)
    kernel = get_kernel("gemm")
    binary = compile_source(kernel.walc_source(8))
    with pytest.raises(TeeAccessDenied):
        device.load_wasm(session, binary)
